//! Figure 3: top-1 accuracy of every pruning method across densities, on
//! all four dataset profiles with ResNet18.
//!
//! Paper result to reproduce (shape, not absolute numbers): FedTiny wins in
//! the low-density regime (d < 1e-2 at paper scale) where the at-init
//! baselines collapse; in the high-density regime every method converges
//! toward dense accuracy.

use ft_bench::table::acc;
use ft_bench::{run_method, Method, Scale, Table};
use ft_data::DatasetProfile;

fn main() {
    let scale = Scale::from_env();
    let profiles = [
        DatasetProfile::Cifar10,
        DatasetProfile::Svhn,
        DatasetProfile::Cifar100,
        DatasetProfile::Cinic10,
    ];
    let methods = Method::figure3_set();
    let densities = scale.density_grid();

    for profile in profiles {
        let env = scale.env(profile, 3);
        let spec = scale.resnet();
        let mut header = vec!["density".to_string()];
        header.extend(methods.iter().map(|m| m.name()));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = Table::new(
            &format!(
                "Fig. 3 — top-1 accuracy vs density ({}, ResNet18)",
                profile.name()
            ),
            &header_refs,
        );
        let mut cost_table = Table::new(
            &format!(
                "Fig. 3 cost check — analytic vs realized per-round FLOPs and wall-clock \
                 (FedTiny, {}, ResNet18)",
                profile.name()
            ),
            &[
                "density",
                "analytic_flops",
                "realized_flops",
                "train_wall_s",
            ],
        );
        for &d in &densities {
            let mut row = vec![format!("{d}")];
            for &m in &methods {
                let r = run_method(&env, &spec, m, d);
                if m.name() == "fedtiny" {
                    cost_table.row(vec![
                        format!("{d}"),
                        format!("{:.3e}", r.max_round_flops),
                        format!("{:.3e}", r.realized_round_flops),
                        format!("{:.2}", r.train_wall_secs),
                    ]);
                }
                row.push(acc(r.accuracy));
            }
            table.row(row);
        }
        table.print();
        cost_table.print();
    }
    println!(
        "\npaper shape: FedTiny dominates for d < 1e-2; SNIP collapses first; \
         SynFlow/FedDST degrade gracefully; PruneFL stays accurate but pays ~0.34x dense FLOPs."
    );
}
