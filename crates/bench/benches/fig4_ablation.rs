//! Figure 4: ablation of FedTiny's two modules on CIFAR-10 with VGG11.
//!
//! Arms: vanilla selection; adaptive BN selection only; vanilla selection +
//! progressive pruning; full FedTiny. Paper shape: each module alone helps;
//! progressive pruning matches FedTiny at high density but collapses without
//! adaptive BN selection at low density; the combination wins everywhere.

use ft_bench::table::acc;
use ft_bench::{run_method, Method, Scale, Table};
use ft_data::DatasetProfile;

fn main() {
    let scale = Scale::from_env();
    let env = scale.env(DatasetProfile::Cifar10, 5);
    let spec = scale.vgg();
    let arms = Method::ablation_set();

    let mut header = vec!["density".to_string()];
    header.extend(arms.iter().map(|m| m.name()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new("Fig. 4 — module ablation (VGG11, CIFAR-10)", &header_refs);

    for &d in &scale.density_grid() {
        let mut row = vec![format!("{d}")];
        for &m in &arms {
            let r = run_method(&env, &spec, m, d);
            row.push(acc(r.accuracy));
        }
        table.row(row);
    }
    table.print();
    println!(
        "\npaper shape: vanilla < adaptive-BN-only and vanilla < vanilla+progressive; \
         vanilla+progressive ~ FedTiny at high density but drops sharply at low density; \
         FedTiny best overall."
    );
}
