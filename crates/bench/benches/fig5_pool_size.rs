//! Figure 5: candidate pool size vs accuracy (left) and vs communication
//! cost of the adaptive BN selection module (right), VGG11 on CIFAR-10.
//!
//! Paper shape: accuracy saturates once `density × pool_size ≈ 0.1`
//! (the `C* = 0.1/d` rule), while the selection communication grows linearly
//! with the pool size.

use fedtiny::run_fedtiny;
use ft_bench::methods::fedtiny_config;
use ft_bench::table::{acc, mb};
use ft_bench::{Scale, Table};
use ft_data::DatasetProfile;

fn main() {
    let scale = Scale::from_env();
    let env = scale.env(DatasetProfile::Cifar10, 6);
    let spec = scale.vgg();
    let densities = scale.table_densities();
    let pools: &[usize] = match scale.kind {
        ft_bench::ScaleKind::Smoke => &[2, 4],
        _ => &[2, 4, 8, 16],
    };

    let mut table = Table::new(
        "Fig. 5 — pool size vs accuracy and selection communication (VGG11, CIFAR-10)",
        &["density", "pool", "d*pool", "top1", "selection_comm"],
    );
    for &d in &densities {
        for &c in pools {
            let mut cfg = fedtiny_config(&env, &spec, d);
            cfg.pool_size = c;
            let r = run_fedtiny(&env, &cfg);
            table.row(vec![
                format!("{d}"),
                format!("{c}"),
                format!("{:.3}", d * c as f32),
                acc(r.accuracy),
                mb(r.comm_bytes),
            ]);
        }
    }
    table.print();
    println!(
        "\npaper shape: accuracy saturates near d*pool = 0.1 (the C* = 0.1/d line); \
         communication grows linearly in the pool size and stays well under one \
         full-size model download for small pools."
    );
}
