//! Figure 6: robustness to data heterogeneity — top-1 accuracy of SynFlow,
//! PruneFL and FedTiny as the Dirichlet α decreases (lower α = more
//! non-iid), ResNet18 on CIFAR-10 at 1% density (lab scale uses its own
//! density grid's low point).
//!
//! Paper shape: baselines degrade as α falls; FedTiny's BN-informed
//! selection keeps it on top at every α.

use ft_bench::table::acc;
use ft_bench::{run_method, Method, Scale, Table};
use ft_data::DatasetProfile;
use ft_pruning::BaselineMethod;

fn main() {
    let scale = Scale::from_env();
    let spec = scale.resnet();
    let d = match scale.kind {
        ft_bench::ScaleKind::Paper => 0.01,
        _ => *scale.table_densities().last().expect("nonempty"),
    };
    let alphas = [0.3f64, 0.5, 0.7, 1.0];
    let methods = [
        Method::Baseline(BaselineMethod::SynFlow),
        Method::Baseline(BaselineMethod::PruneFl),
        Method::FedTiny,
    ];

    let mut header = vec!["alpha".to_string()];
    header.extend(methods.iter().map(|m| m.name()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        &format!("Fig. 6 — accuracy vs non-iid degree (ResNet18, CIFAR-10, d={d})"),
        &header_refs,
    );
    for &alpha in &alphas {
        let env = scale.env_with_alpha(DatasetProfile::Cifar10, alpha, 9);
        let mut row = vec![format!("{alpha}")];
        for &m in &methods {
            let r = run_method(&env, &spec, m, d);
            row.push(acc(r.accuracy));
        }
        table.row(row);
    }
    table.print();
    println!(
        "\npaper shape: all methods improve as alpha grows (more iid); FedTiny stays best \
         and degrades the least at low alpha."
    );
}
