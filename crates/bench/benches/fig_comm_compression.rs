//! Communication compression: accuracy vs *measured* upload bytes for the
//! four wire codecs at two mask densities, printed next to the analytic
//! Fig. 5 numbers.
//!
//! This is the bench that backs the headline wire claims:
//!
//! - `MaskCsr`'s measured bytes track the analytic `sparse_model_bytes`
//!   formula (shared-mask form) at matched density;
//! - `QuantInt8` and `TopK` reach roughly dense-FedAvg accuracy at ≥ 3x
//!   fewer measured upload bytes.
//!
//! ```bash
//! FT_SCALE=smoke cargo bench -p ft-bench --bench fig_comm_compression  # wiring check
//! cargo bench -p ft-bench --bench fig_comm_compression                 # lab scale
//! ```

use ft_bench::table::{acc, mb};
use ft_bench::{Scale, Table};
use ft_data::DatasetProfile;
use ft_fl::Codec;
use ft_metrics::{densities_from_mask, sparse_model_bytes_with, ExtraMemory, IndexWidth};
use ft_nn::sparse_layout;
use ft_pruning::{l1_oneshot_mask, run_with_fixed_mask};
use ft_sparse::Mask;

fn main() {
    let scale = Scale::from_env();
    let env = scale.env(DatasetProfile::Cifar10, 23);
    let spec = scale.small_cnn();
    let densities: &[f32] = &[0.3, 0.05];
    let codecs = [
        Codec::Dense,
        Codec::MaskCsr,
        Codec::QuantInt8,
        Codec::TopK {
            k_frac: 0.1,
            error_feedback: true,
        },
    ];

    // The dense-FedAvg reference: full mask, dense wire.
    let dense_ref = {
        let model = env.build_model(&spec);
        let mask = Mask::ones(&sparse_layout(model.as_ref()));
        drop(model);
        let env = env.clone().with_codec(Codec::Dense);
        run_with_fixed_mask(&env, &spec, &mask, "fedavg", ExtraMemory::None, 0)
    };

    let mut table = Table::new(
        "Communication compression — accuracy vs measured upload bytes (small CNN, CIFAR-10)",
        &[
            "density",
            "codec",
            "top1",
            "upload_meas",
            "analytic_fig5",
            "analytic_shared",
            "vs_dense",
        ],
    );
    table.row(vec![
        "1.0".into(),
        "dense".into(),
        acc(dense_ref.accuracy),
        mb(dense_ref.payload_upload_bytes),
        mb(dense_ref.comm_bytes / 2.0),
        "-".into(),
        "1.0x".into(),
    ]);

    for &d in densities {
        let model = env.build_model(&spec);
        let mask = l1_oneshot_mask(model.as_ref(), d);
        let arch = model.arch();
        drop(model);
        let layer_densities = densities_from_mask(&mask);
        let rounds = env.cfg.rounds as f64;
        let analytic_fig5 = sparse_model_bytes_with(&arch, &layer_densities, IndexWidth::PerLayer);
        let analytic_shared = sparse_model_bytes_with(&arch, &layer_densities, IndexWidth::Shared);
        for codec in codecs {
            let env = env.clone().with_codec(codec);
            let r = run_with_fixed_mask(&env, &spec, &mask, codec.name(), ExtraMemory::None, 0);
            let per_round_upload = r.payload_upload_bytes / rounds;
            let saving = dense_ref.payload_upload_bytes / r.payload_upload_bytes.max(1.0);
            table.row(vec![
                format!("{d}"),
                codec.name().into(),
                acc(r.accuracy),
                mb(per_round_upload * rounds),
                mb(analytic_fig5 * rounds),
                mb(analytic_shared * rounds),
                format!("{saving:.1}x"),
            ]);
        }
    }
    table.print();
    println!(
        "\nexpected shape: mask_csr's measured uploads sit within 25% of the shared-mask\n\
         analytic column (and below the classic Fig. 5 value+index column); quant_int8\n\
         and top_k reach roughly the dense accuracy at >= 3x fewer measured upload bytes.\n\
         All byte columns are whole-run totals ({} rounds).",
        env.cfg.rounds
    );
}
