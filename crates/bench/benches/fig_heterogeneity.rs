//! Heterogeneity figure (extension beyond the paper): accuracy vs
//! *simulated* fleet makespan for the three round schedulers on the same
//! seed and the same mixed fast/balanced/slow fleet.
//!
//! Expected shape: `synchronous` pays the slow tier's time every round
//! (largest makespan); `deadline` cuts stragglers, trading a little
//! accuracy for a bounded round time; `buffered` keeps fast devices busy
//! continuously and reaches comparable accuracy in the smallest simulated
//! makespan, at the price of staleness-discounted updates.

use fedtiny::run_fedtiny;
use ft_bench::methods::fedtiny_config;
use ft_bench::table::{acc, mb};
use ft_bench::{Scale, Table};
use ft_data::DatasetProfile;
use ft_fl::{fleet_spread_deadline, DeviceProfile, Scheduler};
use ft_nn::sparse_layout;

fn main() {
    let scale = Scale::from_env();
    let seed = 7;
    let d_target = 0.1;
    let env = scale.env(DatasetProfile::Cifar10, seed);
    let spec = scale.resnet();
    let fleet = DeviceProfile::fleet_mixed(env.num_devices());

    // A deadline strictly inside the fleet's spread *at the target
    // density* (the fleet's steady state): the fast tier always lands, the
    // slow tier is cut.
    let deadline_secs = {
        let env = env.clone().with_fleet(fleet.clone());
        let model = env.build_model(&spec);
        let densities = vec![d_target; sparse_layout(model.as_ref()).num_layers()];
        fleet_spread_deadline(&env, &model.arch(), &densities)
    };
    let buffer_k = (env.num_devices() / 2).max(1);
    let policies = [
        Scheduler::Synchronous,
        Scheduler::Deadline { deadline_secs },
        Scheduler::Buffered { buffer_k },
    ];

    let mut table = Table::new(
        &format!(
            "Fig. heterogeneity — accuracy vs simulated makespan \
             (FedTiny d={d_target}, mixed fleet, seed {seed}, deadline {deadline_secs:.1}s, K={buffer_k})"
        ),
        &[
            "scheduler",
            "top1",
            "density",
            "sim_makespan_s",
            "vs_sync",
            "comm",
        ],
    );
    let mut sync_makespan = None;
    for policy in policies {
        let env = scale
            .env(DatasetProfile::Cifar10, seed)
            .with_fleet(fleet.clone())
            .with_scheduler(policy);
        let cfg = fedtiny_config(&env, &spec, d_target);
        let r = run_fedtiny(&env, &cfg);
        let makespan = r.sim_makespan_secs;
        let baseline = *sync_makespan.get_or_insert(makespan);
        table.row(vec![
            policy.name().to_string(),
            acc(r.accuracy),
            format!("{:.3}", r.final_density),
            format!("{makespan:.1}"),
            format!("{:.2}x", makespan / baseline.max(f64::MIN_POSITIVE)),
            mb(r.comm_bytes),
        ]);
    }
    table.print();
    println!(
        "\nexpected shape: synchronous pays the slow tier every round; deadline bounds the\n\
         round at {deadline_secs:.1}s simulated; buffered aggregates every {buffer_k} arrivals and\n\
         finishes the same round budget in the least simulated time."
    );
}
