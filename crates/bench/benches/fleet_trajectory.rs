//! Fleet-simulation trajectory (`BENCH_fleet.json`): host wall-clock of the
//! federated round loop under each scheduler at 1 worker thread vs all
//! available ones, on a mixed fast/balanced/slow fleet.
//!
//! Environment generation (data synthesis, Dirichlet partitioning, model
//! init) happens strictly *outside* the timed region, and each measured run
//! is preceded by a discarded warmup run — the setup/measurement separation
//! that keeps these JSON numbers stable across CI runs.
//!
//! The simulated makespans are also cross-checked across thread counts:
//! they must be bit-identical (the runtime determinism contract), so this
//! bench doubles as a smoke test of the parallel round loop.

use ft_bench::BenchReport;
use ft_data::{DatasetProfile, SynthConfig};
use ft_fl::{
    no_hook, run_federated_rounds, AggScratch, Aggregator, CostLedger, DeviceProfile,
    ExperimentEnv, FlConfig, ModelSpec, Scheduler,
};
use ft_nn::{sparse_layout, take_snapshot, wire_ctx};
use ft_runtime::Runtime;
use ft_sparse::{Codec, Mask, Payload, PayloadView};
use std::time::Instant;

/// Every byte this process allocates is counted, so the collect-dataplane
/// records below can pin allocator traffic per round, not just wall time.
#[global_allocator]
static ALLOC: ft_bench::CountingAlloc = ft_bench::CountingAlloc;

const SEED: u64 = 23;
const DEVICES: usize = 6;

/// Rounds at the current quick/full mode — also the only shape input, so
/// the report's shape tags never need an environment rebuild.
fn rounds() -> usize {
    if ft_bench::quick_mode() {
        4
    } else {
        8
    }
}

fn build_env(scheduler: Scheduler, threads: usize) -> ExperimentEnv {
    let quick = ft_bench::quick_mode();
    let synth = SynthConfig {
        profile: DatasetProfile::Cifar10,
        train_per_class: if quick { 8 } else { 16 },
        test_per_class: 6,
        resolution: 8,
        channels: 3,
        seed: SEED,
    };
    let mut cfg = FlConfig::bench_default();
    cfg.devices = DEVICES;
    cfg.rounds = rounds();
    cfg.local_epochs = 1;
    cfg.seed = SEED;
    cfg.parallel = true;
    cfg.threads = threads;
    let env = ExperimentEnv::new(synth, cfg);
    let fleet = DeviceProfile::fleet_mixed(env.num_devices());
    env.with_fleet(fleet).with_scheduler(scheduler)
}

/// One measured run: returns `(wall ns, realized FLOPs, sim makespan)` of
/// the round loop only — environment setup is excluded.
fn run_once(scheduler: Scheduler, threads: usize) -> (f64, f64, f64) {
    let env = build_env(scheduler, threads);
    let mut model = env.build_model(&ModelSpec::SmallCnn { width: 4, input: 8 });
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let t = Instant::now();
    let history = run_federated_rounds(
        model.as_mut(),
        &mut mask,
        &env,
        0,
        &mut ledger,
        &mut no_hook(),
    );
    let wall_ns = t.elapsed().as_nanos() as f64;
    assert!(!history.is_empty());
    let realized: f64 = ledger.realized_flops_history().iter().sum();
    (wall_ns, realized, ledger.sim_makespan_secs())
}

/// Rounds the collect-alloc loops run for one measurement.
fn alloc_rounds() -> usize {
    if ft_bench::quick_mode() {
        16
    } else {
        64
    }
}

/// Measures allocator traffic per round of the Collect → Aggregate hot
/// path, two ways, and records both:
///
/// - `collect_alloc_steady` — the event-driven dataplane: wire bytes land
///   in a recycled per-device frame pool, [`PayloadView`] decodes straight
///   out of the receive buffer, and the sharded [`AggScratch`] is reused
///   round over round. After the warmup round builds the pools, a round
///   must allocate **zero** bytes.
/// - `collect_alloc_naive` — the pre-dataplane shape: a fresh buffer per
///   frame (what `read_frame` did), an owned [`Payload::from_bytes`]
///   decode, and the allocating [`Aggregator::aggregate`].
///
/// The two paths are also asserted bit-identical, so the alloc-free loop
/// is pinned to compute exactly what the naive one does.
fn measure_collect_alloc(report: &mut BenchReport) {
    let env = build_env(Scheduler::Synchronous, 1);
    let model = env.build_model(&ModelSpec::SmallCnn { width: 4, input: 8 });
    let layout = sparse_layout(model.as_ref());
    let mut mask = Mask::ones(&layout);
    for i in 0..layout.layer(0).len {
        if i % 3 == 0 {
            mask.set(0, i, false);
        }
    }
    let epoch = 3;
    let ctx = wire_ctx(model.as_ref(), &mask, epoch);
    let anchor = take_snapshot(model.as_ref()).params;
    let weights = [1.0f64, 2.0, 0.5, 1.5, 3.0, 1.0];
    // One frame per device, as the transport's recv pool would hold them.
    let wire: Vec<Vec<u8>> = (0..DEVICES)
        .map(|d| {
            let delta: Vec<f32> = (0..ctx.len())
                .map(|i| ((i * 31 + d * 7) as f32).sin() * 0.01)
                .collect();
            Codec::MaskCsr
                .encode(&delta, &ctx, epoch, None)
                .to_bytes(&ctx)
        })
        .collect();
    let agg = Aggregator::FedAvg;
    let rt = Runtime::sequential();

    // Steady path: pooled receive + zero-copy decode + recycled scratch.
    let mut scratch = AggScratch::new();
    let mut recv: Vec<Vec<u8>> = (0..DEVICES).map(|_| Vec::new()).collect();
    let mut steady_params: Vec<f32> = Vec::new();
    let steady_round =
        |scratch: &mut AggScratch, recv: &mut Vec<Vec<u8>>, out: Option<&mut Vec<f32>>| {
            for (slot, bytes) in recv.iter_mut().zip(&wire) {
                slot.clear();
                slot.extend_from_slice(bytes);
            }
            let views: [PayloadView<'_>; DEVICES] = std::array::from_fn(|i| {
                PayloadView::parse(&recv[i], &ctx).expect("pooled frame parses")
            });
            let pairs: [(&PayloadView<'_>, f64); DEVICES] =
                std::array::from_fn(|i| (&views[i], weights[i]));
            let got = agg.aggregate_into(&pairs, &anchor, &ctx, &rt, scratch);
            let params = got.params.expect("cohort is non-degenerate");
            if let Some(out) = out {
                out.extend_from_slice(params);
            }
            std::hint::black_box(params[0]);
        };
    steady_round(&mut scratch, &mut recv, Some(&mut steady_params)); // warmup builds the pools
    let rounds = alloc_rounds();
    let before = ft_bench::allocated_bytes();
    let t = Instant::now();
    for _ in 0..rounds {
        steady_round(&mut scratch, &mut recv, None);
    }
    let steady_ns = t.elapsed().as_nanos() as f64 / rounds as f64;
    let steady_bytes = (ft_bench::allocated_bytes() - before) as f64 / rounds as f64;

    // Naive path: fresh buffers, owned decode, allocating aggregate.
    let mut naive_params: Vec<f32> = Vec::new();
    let naive_round = |out: Option<&mut Vec<f32>>| {
        let bufs: Vec<Vec<u8>> = wire.iter().map(|w| w.to_vec()).collect();
        let payloads: Vec<Payload> = bufs
            .iter()
            .map(|b| Payload::from_bytes(b, &ctx).expect("wire frame decodes"))
            .collect();
        let pairs: Vec<(&Payload, f64)> = payloads.iter().zip(weights).collect();
        let got = agg.aggregate(&pairs, &anchor, &ctx);
        let params = got.params.expect("cohort is non-degenerate");
        if let Some(out) = out {
            out.extend_from_slice(&params);
        }
        std::hint::black_box(params[0]);
    };
    naive_round(Some(&mut naive_params)); // warmup, for symmetry
    let before = ft_bench::allocated_bytes();
    let t = Instant::now();
    for _ in 0..rounds {
        naive_round(None);
    }
    let naive_ns = t.elapsed().as_nanos() as f64 / rounds as f64;
    let naive_bytes = (ft_bench::allocated_bytes() - before) as f64 / rounds as f64;

    // The alloc-free path must be the same computation, bit for bit.
    assert_eq!(steady_params.len(), naive_params.len());
    for (i, (s, n)) in steady_params.iter().zip(&naive_params).enumerate() {
        assert_eq!(
            s.to_bits(),
            n.to_bits(),
            "steady vs naive params diverged at coordinate {i}"
        );
    }

    let shape = format!("K{DEVICES}");
    report.push_alloc("collect_alloc_steady", &shape, 1, steady_ns, steady_bytes);
    report.push_alloc("collect_alloc_naive", &shape, 1, naive_ns, naive_bytes);
    for (op, ns, bytes) in [
        ("collect_alloc_steady", steady_ns, steady_bytes),
        ("collect_alloc_naive", naive_ns, naive_bytes),
    ] {
        println!("{:<20} {:>8} {:>14.3} {:>20.1}", op, 1, ns / 1e6, bytes);
    }
}

fn main() {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut threads_grid = vec![1usize];
    if host > 1 {
        threads_grid.push(host);
    }
    let mut report = BenchReport::new("fleet");
    let schedulers = [
        Scheduler::Synchronous,
        Scheduler::Deadline { deadline_secs: 2.0 },
        Scheduler::Buffered { buffer_k: 3 },
    ];
    println!(
        "{:<20} {:>8} {:>14} {:>14} {:>10}",
        "op", "threads", "wall_ms", "sim_makespan_s", "GFLOP/s"
    );
    for scheduler in schedulers {
        let mut makespans = Vec::new();
        for &t in &threads_grid {
            // Warmup run (discarded): pays data synthesis caches, page
            // faults, and thread-pool creation before the timed run.
            let _ = run_once(scheduler, t);
            let (wall_ns, realized, sim) = run_once(scheduler, t);
            makespans.push(sim);
            let op = format!("fleet_{}", scheduler.name());
            let shape = format!("K{DEVICES}xR{}", rounds());
            // The grid never exceeds host parallelism, so requested ==
            // effective here.
            report.push(&op, &shape, 1.0, t, t, wall_ns, realized);
            println!(
                "{:<20} {:>8} {:>14.1} {:>14.2} {:>10.3}",
                op,
                t,
                wall_ns / 1e6,
                sim,
                realized / wall_ns
            );
        }
        // Determinism net: the virtual-time outcome must not depend on how
        // many host threads computed it.
        for m in &makespans[1..] {
            assert_eq!(
                m.to_bits(),
                makespans[0].to_bits(),
                "{}: sim makespan diverged across thread counts",
                scheduler.name()
            );
        }
    }
    println!(
        "{:<20} {:>8} {:>14} {:>20}",
        "op", "threads", "wall_ms", "alloc_bytes/round"
    );
    measure_collect_alloc(&mut report);
    let path = report.write();
    println!(
        "trajectory: {} records -> {} (host_threads={}, quick={})",
        report.records.len(),
        path.display(),
        report.host_threads,
        report.quick
    );
}
