//! Fleet-simulation trajectory (`BENCH_fleet.json`): host wall-clock of the
//! federated round loop under each scheduler at 1 worker thread vs all
//! available ones, on a mixed fast/balanced/slow fleet.
//!
//! Environment generation (data synthesis, Dirichlet partitioning, model
//! init) happens strictly *outside* the timed region, and each measured run
//! is preceded by a discarded warmup run — the setup/measurement separation
//! that keeps these JSON numbers stable across CI runs.
//!
//! The simulated makespans are also cross-checked across thread counts:
//! they must be bit-identical (the runtime determinism contract), so this
//! bench doubles as a smoke test of the parallel round loop.

use ft_bench::BenchReport;
use ft_data::{DatasetProfile, SynthConfig};
use ft_fl::{
    no_hook, run_federated_rounds, CostLedger, DeviceProfile, ExperimentEnv, FlConfig, ModelSpec,
    Scheduler,
};
use ft_nn::sparse_layout;
use ft_sparse::Mask;
use std::time::Instant;

const SEED: u64 = 23;
const DEVICES: usize = 6;

/// Rounds at the current quick/full mode — also the only shape input, so
/// the report's shape tags never need an environment rebuild.
fn rounds() -> usize {
    if ft_bench::quick_mode() {
        4
    } else {
        8
    }
}

fn build_env(scheduler: Scheduler, threads: usize) -> ExperimentEnv {
    let quick = ft_bench::quick_mode();
    let synth = SynthConfig {
        profile: DatasetProfile::Cifar10,
        train_per_class: if quick { 8 } else { 16 },
        test_per_class: 6,
        resolution: 8,
        channels: 3,
        seed: SEED,
    };
    let mut cfg = FlConfig::bench_default();
    cfg.devices = DEVICES;
    cfg.rounds = rounds();
    cfg.local_epochs = 1;
    cfg.seed = SEED;
    cfg.parallel = true;
    cfg.threads = threads;
    let env = ExperimentEnv::new(synth, cfg);
    let fleet = DeviceProfile::fleet_mixed(env.num_devices());
    env.with_fleet(fleet).with_scheduler(scheduler)
}

/// One measured run: returns `(wall ns, realized FLOPs, sim makespan)` of
/// the round loop only — environment setup is excluded.
fn run_once(scheduler: Scheduler, threads: usize) -> (f64, f64, f64) {
    let env = build_env(scheduler, threads);
    let mut model = env.build_model(&ModelSpec::SmallCnn { width: 4, input: 8 });
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let t = Instant::now();
    let history = run_federated_rounds(
        model.as_mut(),
        &mut mask,
        &env,
        0,
        &mut ledger,
        &mut no_hook(),
    );
    let wall_ns = t.elapsed().as_nanos() as f64;
    assert!(!history.is_empty());
    let realized: f64 = ledger.realized_flops_history().iter().sum();
    (wall_ns, realized, ledger.sim_makespan_secs())
}

fn main() {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut threads_grid = vec![1usize];
    if host > 1 {
        threads_grid.push(host);
    }
    let mut report = BenchReport::new("fleet");
    let schedulers = [
        Scheduler::Synchronous,
        Scheduler::Deadline { deadline_secs: 2.0 },
        Scheduler::Buffered { buffer_k: 3 },
    ];
    println!(
        "{:<20} {:>8} {:>14} {:>14} {:>10}",
        "op", "threads", "wall_ms", "sim_makespan_s", "GFLOP/s"
    );
    for scheduler in schedulers {
        let mut makespans = Vec::new();
        for &t in &threads_grid {
            // Warmup run (discarded): pays data synthesis caches, page
            // faults, and thread-pool creation before the timed run.
            let _ = run_once(scheduler, t);
            let (wall_ns, realized, sim) = run_once(scheduler, t);
            makespans.push(sim);
            let op = format!("fleet_{}", scheduler.name());
            let shape = format!("K{DEVICES}xR{}", rounds());
            // The grid never exceeds host parallelism, so requested ==
            // effective here.
            report.push(&op, &shape, 1.0, t, t, wall_ns, realized);
            println!(
                "{:<20} {:>8} {:>14.1} {:>14.2} {:>10.3}",
                op,
                t,
                wall_ns / 1e6,
                sim,
                realized / wall_ns
            );
        }
        // Determinism net: the virtual-time outcome must not depend on how
        // many host threads computed it.
        for m in &makespans[1..] {
            assert_eq!(
                m.to_bits(),
                makespans[0].to_bits(),
                "{}: sim makespan diverged across thread counts",
                scheduler.name()
            );
        }
    }
    let path = report.write();
    println!(
        "trajectory: {} records -> {} (host_threads={}, quick={})",
        report.records.len(),
        path.display(),
        report.host_threads,
        report.quick
    );
}
