//! Criterion micro-benchmarks for the numerical substrate: convolution
//! forward/backward, the `O(k)` top-k buffer vs a full sort, masked SGD
//! steps, and BN-adaptation forward passes. These back the DESIGN.md
//! ablation "top-k buffer vs full sort".

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ft_bench::{allocated_bytes, measure_ns, BenchReport};
use ft_data::Dataset;
use ft_fl::{local_train_scratch, TrainScratch};
use ft_nn::loss::softmax_cross_entropy;
use ft_nn::models::SmallCnn;
use ft_nn::optim::{Sgd, SgdConfig};
use ft_nn::{apply_mask, sparse_layout, Linear, Mode, Model};
use ft_runtime::Runtime;
use ft_sparse::{
    magnitude_mask, uniform_density_vector, CsrMatrix, Mask, SparseLayout, TopKBuffer,
};
use ft_tensor::{
    matmul_into, matmul_into_rt, matmul_nt_into_rt, matmul_tn_into_rt, sddmm_nt_into_rt, spmm_into,
    spmm_into_rt, ConvGeom, Tensor,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

// The train-step records pin an *allocation* budget, which only a counting
// global allocator can observe. Counting overhead is a relaxed atomic add
// per allocation — negligible against the timed kernels.
#[global_allocator]
static ALLOC: ft_bench::CountingAlloc = ft_bench::CountingAlloc;

fn conv_benches(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut model = SmallCnn::new(&mut rng, 8, 10, 3, 16);
    let x = ft_tensor::normal(&mut rng, &[8, 3, 16, 16], 0.0, 1.0);
    c.bench_function("small_cnn_forward_b8", |b| {
        b.iter(|| black_box(model.forward(&x, Mode::Train)))
    });
    c.bench_function("small_cnn_forward_backward_b8", |b| {
        b.iter(|| {
            let y = model.forward(&x, Mode::Train);
            model.backward(&Tensor::ones(y.shape()));
            model.zero_grad();
        })
    });
}

fn topk_benches(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let values: Vec<f32> = (0..100_000).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let k = 512;
    c.bench_function("topk_buffer_100k_k512", |b| {
        b.iter(|| {
            let mut buf = TopKBuffer::new(k);
            buf.extend_from_slice(black_box(&values));
            black_box(buf.into_sorted())
        })
    });
    c.bench_function("full_sort_100k_k512", |b| {
        b.iter_batched(
            || values.iter().cloned().enumerate().collect::<Vec<_>>(),
            |mut all| {
                all.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite"));
                all.truncate(k);
                black_box(all)
            },
            BatchSize::LargeInput,
        )
    });
}

fn sgd_benches(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut model = SmallCnn::new(&mut rng, 8, 10, 3, 16);
    let layout = ft_nn::sparse_layout(&model);
    let mut mask = Mask::ones(&layout);
    for l in 0..layout.num_layers() {
        for i in (0..layout.layer(l).len).step_by(2) {
            mask.set(l, i, false);
        }
    }
    let mut sgd = Sgd::new(SgdConfig::default());
    c.bench_function("masked_sgd_step", |b| {
        b.iter(|| sgd.step(black_box(&mut model), Some(&mask)))
    });
}

fn bn_adapt_benches(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut model = SmallCnn::new(&mut rng, 8, 10, 3, 16);
    model.set_bn_momentum(1.0);
    let x = ft_tensor::normal(&mut rng, &[32, 3, 16, 16], 0.0, 1.0);
    c.bench_function("bn_adaptation_pass_b32", |b| {
        b.iter(|| black_box(model.forward(&x, Mode::Train)))
    });
}

fn mask_benches(c: &mut Criterion) {
    let layout = SparseLayout::new(vec![("w".into(), 1_000_000)]);
    let mask = Mask::ones(&layout);
    c.bench_function("mask_density_1m", |b| b.iter(|| black_box(mask.density())));
}

/// Raw kernel comparison: dense GEMM vs CSR spmm on the same masked matrix.
fn spmm_benches(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let (m, k, n) = (256, 256, 128);
    for density in [0.5f64, 0.2, 0.05] {
        let mut dense = Tensor::zeros(&[m, k]);
        let mut mask = vec![false; m * k];
        for (v, bit) in dense.data_mut().iter_mut().zip(mask.iter_mut()) {
            if rng.gen_range(0.0f64..1.0) < density {
                *v = rng.gen_range(-1.0f32..1.0);
                *bit = true;
            }
        }
        let csr = CsrMatrix::from_mask_values(&mask, dense.data(), m, k);
        let b_mat: Tensor = {
            let data = (0..k * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            Tensor::from_vec(data, &[k, n])
        };
        c.bench_function(&format!("matmul_256x256x128_d{density}"), |b| {
            b.iter(|| {
                let mut out = Tensor::zeros(&[m, n]);
                matmul_into(&dense, &b_mat, &mut out);
                black_box(out)
            })
        });
        c.bench_function(&format!("spmm_256x256x128_d{density}"), |b| {
            b.iter(|| {
                let mut out = Tensor::zeros(&[m, n]);
                spmm_into(csr.view(), &b_mat, &mut out);
                black_box(out)
            })
        });
    }
}

/// The acceptance check for the sparse execution engine: a full training
/// epoch (forward + backward + masked SGD) through the SmallCnn profile,
/// dense path vs sparse path, at and below the default crossover.
fn sparse_epoch_benches(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let x = ft_tensor::normal(&mut rng, &[16, 3, 16, 16], 0.0, 1.0);
    let labels: Vec<usize> = (0..16).map(|i| i % 10).collect();

    for density in [1.0f32, 0.5, 0.2, 0.05] {
        let mut model = SmallCnn::new(&mut ChaCha8Rng::seed_from_u64(6), 8, 10, 3, 16);
        let layout = sparse_layout(&model);
        let weights: Vec<&[f32]> = model
            .params()
            .into_iter()
            .filter(|p| p.prunable)
            .map(|p| p.data.data())
            .collect();
        let mask = magnitude_mask(&layout, &weights, &uniform_density_vector(&layout, density));
        drop(weights);
        apply_mask(&mut model, &mask);

        for (path, crossover) in [("dense", 0.0f32), ("sparse", 1.0)] {
            if density == 1.0 && path == "sparse" {
                continue; // identical to dense by construction
            }
            let mut m = model.clone();
            m.set_sparse_crossover(crossover);
            let mut sgd = Sgd::new(SgdConfig::default());
            c.bench_function(&format!("small_cnn_epoch_{path}_d{density}"), |b| {
                b.iter(|| {
                    let logits = m.forward(&x, Mode::Train);
                    let (_, grad) = ft_nn::loss::softmax_cross_entropy(&logits, &labels);
                    m.backward(&grad);
                    sgd.step(&mut m, Some(&mask));
                    m.zero_grad();
                })
            });
        }
    }
    println!("acceptance: at density <= 0.2 the sparse epoch must be measurably faster than dense");
}

/// A random `[rows, cols]` dense tensor.
fn rand_dense(rng: &mut ChaCha8Rng, rows: usize, cols: usize) -> Tensor {
    Tensor::from_vec(
        (0..rows * cols)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect(),
        &[rows, cols],
    )
}

/// A random CSR matrix at `density` plus its mask-alive count.
fn rand_csr(rng: &mut ChaCha8Rng, rows: usize, cols: usize, density: f64) -> CsrMatrix {
    let mut mask = vec![false; rows * cols];
    let mut vals = vec![0.0f32; rows * cols];
    for (bit, v) in mask.iter_mut().zip(vals.iter_mut()) {
        if rng.gen_range(0.0f64..1.0) < density {
            *bit = true;
            *v = rng.gen_range(-1.0f32..1.0);
        }
    }
    CsrMatrix::from_mask_values(&mask, &vals, rows, cols)
}

// ---------------------------------------------------------------------------
// Legacy training-engine replica (the pre-batched per-sample path)
// ---------------------------------------------------------------------------

/// The convolution data path exactly as the engine computed it before the
/// batched rewrite: one im2col + one GEMM *per sample*, a full reshaped
/// copy of the weight tensor on every forward and backward, fresh column /
/// output buffers each call, and the weight gradient staged in a dense
/// `[oc, cr]` buffer before an `add_assign` pass into the accumulator. The
/// `train_step` floor gate in `bench_check` measures the batched engine
/// against this replica, so the committed baseline stays reproducible even
/// though the legacy code itself is gone.
struct LegacyConv {
    w: Tensor,
    grad_w: Tensor,
    in_c: usize,
    out_c: usize,
    kernel: usize,
    rt: Runtime,
    cols: Tensor,
    x_shape: Vec<usize>,
}

/// Scalar per-element im2col exactly as the pre-rewrite engine shipped it
/// (bounds-checked gather per output position). The crate kernel has since
/// grown contiguous-run fast paths; the replica keeps its own copy so the
/// committed baseline measures the engine as it existed, not the engine
/// after this rewrite's kernel work.
fn legacy_im2col(x: &[f32], g: &ConvGeom, out: &mut [f32]) {
    let (oh, ow) = (g.out_h(), g.out_w());
    let cols = oh * ow;
    let taps = g.kernel * g.kernel;
    for row in 0..g.in_c * taps {
        let c = row / taps;
        let (kh, kw) = ((row % taps) / g.kernel, row % g.kernel);
        let plane = &x[c * g.in_h * g.in_w..(c + 1) * g.in_h * g.in_w];
        let dst = &mut out[row * cols..(row + 1) * cols];
        let mut idx = 0usize;
        for oy in 0..oh {
            let iy = (oy * g.stride + kh) as isize - g.pad as isize;
            for ox in 0..ow {
                let ix = (ox * g.stride + kw) as isize - g.pad as isize;
                dst[idx] = if iy >= 0 && (iy as usize) < g.in_h && ix >= 0 && (ix as usize) < g.in_w
                {
                    plane[iy as usize * g.in_w + ix as usize]
                } else {
                    0.0
                };
                idx += 1;
            }
        }
    }
}

/// Scalar accumulating col2im matching the pre-rewrite engine (see
/// [`legacy_im2col`]).
fn legacy_col2im(col: &[f32], g: &ConvGeom, out: &mut [f32]) {
    let (oh, ow) = (g.out_h(), g.out_w());
    let cols = oh * ow;
    let mut row = 0usize;
    for c in 0..g.in_c {
        let base = c * g.in_h * g.in_w;
        for kh in 0..g.kernel {
            for kw in 0..g.kernel {
                let src = &col[row * cols..(row + 1) * cols];
                let mut idx = 0usize;
                for oy in 0..oh {
                    let iy = (oy * g.stride + kh) as isize - g.pad as isize;
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kw) as isize - g.pad as isize;
                        if iy >= 0 && (iy as usize) < g.in_h && ix >= 0 && (ix as usize) < g.in_w {
                            out[base + iy as usize * g.in_w + ix as usize] += src[idx];
                        }
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

impl LegacyConv {
    fn new(rng: &mut ChaCha8Rng, in_c: usize, out_c: usize, kernel: usize) -> Self {
        let shape = [out_c, in_c, kernel, kernel];
        LegacyConv {
            w: ft_tensor::kaiming_normal(rng, &shape),
            grad_w: Tensor::zeros(&shape),
            in_c,
            out_c,
            kernel,
            rt: Runtime::sequential(),
            cols: Tensor::default(),
            x_shape: Vec::new(),
        }
    }

    fn geom(&self, h: usize, w: usize) -> ConvGeom {
        ConvGeom {
            in_c: self.in_c,
            in_h: h,
            in_w: w,
            kernel: self.kernel,
            stride: 1,
            pad: 1,
        }
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        let n = x.shape()[0];
        let g = self.geom(x.shape()[2], x.shape()[3]);
        let (oh, ow) = (g.out_h(), g.out_w());
        let cc = oh * ow;
        let cr = self.in_c * self.kernel * self.kernel;
        let sample = self.in_c * g.in_h * g.in_w;
        let w2 = self.w.reshaped(&[self.out_c, cr]);
        let mut cols = Tensor::zeros(&[n, cr, cc]);
        let mut out = Tensor::zeros(&[n, self.out_c, oh, ow]);
        for i in 0..n {
            let col_slice = &mut cols.data_mut()[i * cr * cc..(i + 1) * cr * cc];
            legacy_im2col(&x.data()[i * sample..(i + 1) * sample], &g, col_slice);
            let col_t = Tensor::from_vec(col_slice.to_vec(), &[cr, cc]);
            let mut out_i = Tensor::zeros(&[self.out_c, cc]);
            matmul_into_rt(&self.rt, &w2, &col_t, &mut out_i);
            out.data_mut()[i * self.out_c * cc..(i + 1) * self.out_c * cc]
                .copy_from_slice(out_i.data());
        }
        self.cols = cols;
        self.x_shape = x.shape().to_vec();
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let n = grad_out.shape()[0];
        let g = self.geom(self.x_shape[2], self.x_shape[3]);
        let cc = g.out_h() * g.out_w();
        let cr = self.in_c * self.kernel * self.kernel;
        let sample = self.in_c * g.in_h * g.in_w;
        let w2 = self.w.reshaped(&[self.out_c, cr]);
        let mut grad_w2 = Tensor::zeros(&[self.out_c, cr]);
        let mut gx = Tensor::zeros(&self.x_shape);
        for i in 0..n {
            let gob_i = Tensor::from_vec(
                grad_out.data()[i * self.out_c * cc..(i + 1) * self.out_c * cc].to_vec(),
                &[self.out_c, cc],
            );
            let col = Tensor::from_vec(
                self.cols.data()[i * cr * cc..(i + 1) * cr * cc].to_vec(),
                &[cr, cc],
            );
            matmul_nt_into_rt(&self.rt, &gob_i, &col, &mut grad_w2);
            let mut dcol = Tensor::zeros(&[cr, cc]);
            matmul_tn_into_rt(&self.rt, &w2, &gob_i, &mut dcol);
            legacy_col2im(
                dcol.data(),
                &g,
                &mut gx.data_mut()[i * sample..(i + 1) * sample],
            );
        }
        let staged = grad_w2.reshaped(&[self.out_c, self.in_c, self.kernel, self.kernel]);
        for (d, s) in self.grad_w.data_mut().iter_mut().zip(staged.data()) {
            *d += s;
        }
        gx
    }
}

/// Pre-rewrite BatchNorm2d: fresh `out` / `xhat` tensors and statistic
/// vectors on every call, naive per-channel two-pass reduction loops —
/// exactly the shape of the retired implementation.
struct LegacyBn {
    gamma: Tensor,
    beta: Tensor,
    ggrad: Tensor,
    bgrad: Tensor,
    run_mean: Vec<f32>,
    run_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    channels: usize,
    cache: Option<(Tensor, Vec<f32>, Vec<usize>)>,
}

impl LegacyBn {
    fn new(channels: usize) -> Self {
        LegacyBn {
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            ggrad: Tensor::zeros(&[channels]),
            bgrad: Tensor::zeros(&[channels]),
            run_mean: vec![0.0; channels],
            run_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            channels,
            cache: None,
        }
    }

    #[allow(clippy::needless_range_loop)] // verbatim replica of the retired loops
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let s = x.shape().to_vec();
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        assert_eq!(c, self.channels);
        let plane = h * w;
        let count = (n * plane) as f32;
        let xd = x.data();
        let mut out = Tensor::zeros(&s);
        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        for ci in 0..c {
            let mut sum = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                sum += xd[base..base + plane].iter().sum::<f32>();
            }
            mean[ci] = sum / count;
        }
        for ci in 0..c {
            let m = mean[ci];
            let mut sq = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                sq += xd[base..base + plane]
                    .iter()
                    .map(|&v| (v - m) * (v - m))
                    .sum::<f32>();
            }
            var[ci] = sq / count;
        }
        for ci in 0..c {
            self.run_mean[ci] =
                (1.0 - self.momentum) * self.run_mean[ci] + self.momentum * mean[ci];
            self.run_var[ci] = (1.0 - self.momentum) * self.run_var[ci] + self.momentum * var[ci];
        }
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut xhat = Tensor::zeros(&s);
        {
            let xh = xhat.data_mut();
            let od = out.data_mut();
            for ni in 0..n {
                for ci in 0..c {
                    let base = (ni * c + ci) * plane;
                    let (m, is) = (mean[ci], inv_std[ci]);
                    let (g, b) = (self.gamma.data()[ci], self.beta.data()[ci]);
                    for idx in base..base + plane {
                        let xn = (xd[idx] - m) * is;
                        xh[idx] = xn;
                        od[idx] = g * xn + b;
                    }
                }
            }
        }
        self.cache = Some((xhat, inv_std, s));
        out
    }

    #[allow(clippy::needless_range_loop)] // verbatim replica of the retired loops
    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (xhat, inv_std, s) = self.cache.take().expect("bn backward before forward");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let plane = h * w;
        let count = (n * plane) as f32;
        let god = grad_out.data();
        let xh = xhat.data();
        let mut gx = Tensor::zeros(&s);
        for ci in 0..c {
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for idx in base..base + plane {
                    sum_dy += god[idx];
                    sum_dy_xhat += god[idx] * xh[idx];
                }
            }
            self.bgrad.data_mut()[ci] += sum_dy;
            self.ggrad.data_mut()[ci] += sum_dy_xhat;
            let g = self.gamma.data()[ci];
            let is = inv_std[ci];
            let gxd = gx.data_mut();
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for idx in base..base + plane {
                    gxd[idx] = g * is / count * (count * god[idx] - sum_dy - xh[idx] * sum_dy_xhat);
                }
            }
        }
        gx
    }
}

/// Pre-rewrite ReLU: a fresh `Vec<bool>` mask plus a mapped output tensor
/// per forward, and a cloned, branch-per-element zeroing pass per backward.
struct LegacyRelu {
    cache: Option<Vec<bool>>,
}

impl LegacyRelu {
    fn new() -> Self {
        LegacyRelu { cache: None }
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mask: Vec<bool> = x.data().iter().map(|&v| v > 0.0).collect();
        let out = Tensor::from_vec(x.data().iter().map(|&v| v.max(0.0)).collect(), x.shape());
        self.cache = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.cache.take().expect("relu backward before forward");
        let mut g = grad_out.clone();
        for (v, &alive) in g.data_mut().iter_mut().zip(mask.iter()) {
            if !alive {
                *v = 0.0;
            }
        }
        g
    }
}

/// Pre-rewrite 2×2 max pool: the allocating kernel entry points plus a
/// per-call argmax vector and input-shape copy, as the retired layer kept.
struct LegacyPool {
    rt: Runtime,
    cache: Option<(Vec<usize>, Vec<usize>)>,
}

impl LegacyPool {
    fn new() -> Self {
        LegacyPool {
            rt: Runtime::sequential(),
            cache: None,
        }
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        let (out, arg) = ft_tensor::max_pool2x2_rt(&self.rt, x);
        self.cache = Some((arg, x.shape().to_vec()));
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (arg, shape) = self.cache.take().expect("pool backward before forward");
        ft_tensor::max_pool2x2_backward(grad_out, &arg, &shape)
    }
}

/// The SmallCnn profile assembled from the pre-rewrite layer replicas above
/// (conv / BN / ReLU / max pool); global average pooling and the classifier
/// head run through the allocating kernel entry points the retired layers
/// wrapped. Together they reproduce the committed pre-rewrite engine —
/// per-sample conv data path, per-call activations, and all the per-batch
/// allocations — so the baseline stays meaningful as the shared kernels
/// keep improving.
struct LegacyCnn {
    c1: LegacyConv,
    bn1: LegacyBn,
    r1: LegacyRelu,
    p1: LegacyPool,
    c2: LegacyConv,
    bn2: LegacyBn,
    r2: LegacyRelu,
    p2: LegacyPool,
    c3: LegacyConv,
    bn3: LegacyBn,
    r3: LegacyRelu,
    gap_rt: Runtime,
    gap_shape: Vec<usize>,
    fc: Linear,
}

impl LegacyCnn {
    fn new(rng: &mut ChaCha8Rng, width: usize, classes: usize, in_c: usize) -> Self {
        let (c1, c2, c3) = (width, 2 * width, 4 * width);
        LegacyCnn {
            c1: LegacyConv::new(rng, in_c, c1, 3),
            bn1: LegacyBn::new(c1),
            r1: LegacyRelu::new(),
            p1: LegacyPool::new(),
            c2: LegacyConv::new(rng, c1, c2, 3),
            bn2: LegacyBn::new(c2),
            r2: LegacyRelu::new(),
            p2: LegacyPool::new(),
            c3: LegacyConv::new(rng, c2, c3, 3),
            bn3: LegacyBn::new(c3),
            r3: LegacyRelu::new(),
            gap_rt: Runtime::sequential(),
            gap_shape: Vec::new(),
            fc: Linear::new(rng, c3, classes, false, "fc"),
        }
    }

    fn forward(&mut self, x: &Tensor) -> Tensor {
        let h = self.c1.forward(x);
        let h = self.bn1.forward(&h);
        let h = self.r1.forward(&h);
        let h = self.p1.forward(&h);
        let h = self.c2.forward(&h);
        let h = self.bn2.forward(&h);
        let h = self.r2.forward(&h);
        let h = self.p2.forward(&h);
        let h = self.c3.forward(&h);
        let h = self.bn3.forward(&h);
        let h = self.r3.forward(&h);
        self.gap_shape = h.shape().to_vec();
        let h = ft_tensor::avg_pool_global_rt(&self.gap_rt, &h);
        self.fc.forward(&h, Mode::Train)
    }

    fn backward(&mut self, grad: &Tensor) {
        let g = self.fc.backward(grad);
        let g = ft_tensor::avg_pool_global_backward(&g, &self.gap_shape);
        let g = self.r3.backward(&g);
        let g = self.bn3.backward(&g);
        let g = self.c3.backward(&g);
        let g = self.p2.backward(&g);
        let g = self.r2.backward(&g);
        let g = self.bn2.backward(&g);
        let g = self.c2.backward(&g);
        let g = self.p1.backward(&g);
        let g = self.r1.backward(&g);
        let g = self.bn1.backward(&g);
        let _ = self.c1.backward(&g);
    }

    fn step(&mut self, lr: f32) {
        for conv in [&mut self.c1, &mut self.c2, &mut self.c3] {
            for (w, g) in conv.w.data_mut().iter_mut().zip(conv.grad_w.data().iter()) {
                *w -= lr * g;
            }
            conv.grad_w.fill_zero();
        }
        for bn in [&mut self.bn1, &mut self.bn2, &mut self.bn3] {
            for (w, g) in bn.gamma.data_mut().iter_mut().zip(bn.ggrad.data().iter()) {
                *w -= lr * g;
            }
            for (w, g) in bn.beta.data_mut().iter_mut().zip(bn.bgrad.data().iter()) {
                *w -= lr * g;
            }
            bn.ggrad.fill_zero();
            bn.bgrad.fill_zero();
        }
        for p in [&mut self.fc.w, &mut self.fc.b] {
            for (w, g) in p.data.data_mut().iter_mut().zip(p.grad.data().iter()) {
                *w -= lr * g;
            }
            p.zero_grad();
        }
    }
}

/// Measures the training engine end to end and records `train_step` (the
/// batched alloc-free engine) and `train_step_legacy` (the per-sample
/// replica above) at one worker thread: median ns per epoch, realized
/// GFLOP/s, and — under the counting allocator — allocator traffic per
/// epoch. `bench_check` pins `train_step` to zero bytes per round and to a
/// throughput floor over the committed baseline (the replica's numbers).
fn train_step_records(report: &mut BenchReport) {
    let (n_samples, batch, width, classes, in_c, side) =
        (256usize, 32usize, 8usize, 10usize, 3usize, 16usize);
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let images: Vec<f32> = (0..n_samples * in_c * side * side)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    let labels: Vec<usize> = (0..n_samples).map(|i| i % classes).collect();
    let data = Dataset::new(images, labels, in_c, side, side, classes);
    let shape = format!("b{batch}x{in_c}x{side}x{side}");
    let alloc_rounds = 4u64;

    // -- The batched engine, driven exactly like a device round ------------
    let mut model = SmallCnn::new(
        &mut ChaCha8Rng::seed_from_u64(22),
        width,
        classes,
        in_c,
        side,
    );
    model.set_runtime(Runtime::sequential());
    let mut sgd = Sgd::new(SgdConfig::default());
    let mut scratch = TrainScratch::default();
    let mut train_rng = ChaCha8Rng::seed_from_u64(23);
    let epoch =
        |model: &mut SmallCnn, sgd: &mut Sgd, scratch: &mut TrainScratch, rng: &mut ChaCha8Rng| {
            local_train_scratch(model, &data, None, 1, batch, sgd, rng, 0.0, scratch);
        };
    // Realized MAC FLOPs of one epoch (identical math in both engines).
    model.reset_realized_flops();
    epoch(&mut model, &mut sgd, &mut scratch, &mut train_rng);
    let flops_per_epoch = model.realized_flops();
    // Steady-state allocation traffic: warm further, then count.
    epoch(&mut model, &mut sgd, &mut scratch, &mut train_rng);
    let before = allocated_bytes();
    for _ in 0..alloc_rounds {
        epoch(&mut model, &mut sgd, &mut scratch, &mut train_rng);
    }
    let new_alloc = (allocated_bytes() - before) as f64 / alloc_rounds as f64;

    // -- The legacy per-sample replica -------------------------------------
    let mut legacy = LegacyCnn::new(&mut ChaCha8Rng::seed_from_u64(22), width, classes, in_c);
    let mut legacy_rng = ChaCha8Rng::seed_from_u64(23);
    let legacy_epoch = |m: &mut LegacyCnn, rng: &mut ChaCha8Rng| {
        for (x, y) in data.iter_batches(rng, batch) {
            let logits = m.forward(&x);
            let (_, grad) = softmax_cross_entropy(&logits, &y);
            m.backward(&grad);
            m.step(0.05);
        }
    };
    legacy_epoch(&mut legacy, &mut legacy_rng);
    legacy_epoch(&mut legacy, &mut legacy_rng);
    let before = allocated_bytes();
    for _ in 0..alloc_rounds {
        legacy_epoch(&mut legacy, &mut legacy_rng);
    }
    let legacy_alloc = (allocated_bytes() - before) as f64 / alloc_rounds as f64;

    // -- Interleaved A/B timing --------------------------------------------
    // The two engines alternate epoch by epoch so slow frequency / thermal
    // drift hits both equally; a block design (all of one engine, then all
    // of the other) lets a few percent of drift masquerade as a speedup
    // change. Medians over the interleaved reps are directly comparable.
    let reps = if ft_bench::quick_mode() { 9usize } else { 21 };
    let mut new_times = Vec::with_capacity(reps);
    let mut legacy_times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = std::time::Instant::now();
        epoch(&mut model, &mut sgd, &mut scratch, &mut train_rng);
        black_box(&model);
        new_times.push(t.elapsed().as_nanos() as f64);
        let t = std::time::Instant::now();
        legacy_epoch(&mut legacy, &mut legacy_rng);
        black_box(&legacy);
        legacy_times.push(t.elapsed().as_nanos() as f64);
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        v[v.len() / 2]
    };
    let new_ns = median(&mut new_times);
    let legacy_ns = median(&mut legacy_times);

    report.push("train_step", &shape, 1.0, 1, 1, new_ns, flops_per_epoch);
    report
        .records
        .last_mut()
        .expect("just pushed")
        .alloc_bytes_per_round = new_alloc;
    report.push(
        "train_step_legacy",
        &shape,
        1.0,
        1,
        1,
        legacy_ns,
        flops_per_epoch,
    );
    report
        .records
        .last_mut()
        .expect("just pushed")
        .alloc_bytes_per_round = legacy_alloc;

    println!(
        "train_step: {:.0} ns/epoch, {:.1} B/epoch | legacy: {:.0} ns/epoch, {:.1} B/epoch | speedup {:.2}x",
        new_ns,
        new_alloc,
        legacy_ns,
        legacy_alloc,
        legacy_ns / new_ns.max(1.0)
    );
}

/// The persisted perf trajectory (`BENCH_micro_ops.json`): dense matmul,
/// CSR spmm, and sddmm at 1 / 2 / 4 worker threads, with warmup strictly
/// separated from measurement (see `ft_bench::trajectory`). The table rows
/// are printed alongside, mirroring the criterion output above.
fn trajectory_benches(_c: &mut Criterion) {
    let mut report = BenchReport::new("micro_ops");
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let threads_grid = [1usize, 2, 4];
    println!(
        "\n{:<10} {:>12} {:>8} {:>9} {:>14} {:>10}",
        "op", "shape", "density", "req/eff", "ns/iter", "GFLOP/s"
    );
    let emit = |report: &mut BenchReport,
                op: &str,
                shape: &str,
                density: f64,
                rt: &Runtime,
                ns: f64,
                flops: f64| {
        report.push(op, shape, density, rt.requested(), rt.threads(), ns, flops);
        let r = report.records.last().expect("just pushed");
        println!(
            "{:<10} {:>12} {:>8.2} {:>5}/{:<3} {:>14.0} {:>10.2}",
            op,
            shape,
            density,
            rt.requested(),
            rt.threads(),
            ns,
            r.gflops
        );
    };

    // Dense matmul at the shapes the CI gate reads (≥256², plus the 512²
    // acceptance shape).
    for &dim in &[256usize, 512] {
        let a = rand_dense(&mut rng, dim, dim);
        let b = rand_dense(&mut rng, dim, dim);
        let shape = format!("{dim}x{dim}x{dim}");
        let flops = 2.0 * (dim * dim * dim) as f64;
        for &t in &threads_grid {
            let rt = Runtime::new(t);
            let mut out = Tensor::zeros(&[dim, dim]);
            let ns = measure_ns(|| {
                out.data_mut().fill(0.0);
                matmul_into_rt(&rt, &a, &b, &mut out);
                black_box(&out);
            });
            emit(&mut report, "matmul", &shape, 1.0, &rt, ns, flops);
        }
    }

    // CSR spmm on 512² structures at the engine's typical densities.
    for &density in &[0.2f64, 0.05] {
        let dim = 512usize;
        let csr = rand_csr(&mut rng, dim, dim, density);
        let b = rand_dense(&mut rng, dim, dim);
        let shape = format!("{dim}x{dim}x{dim}");
        let flops = 2.0 * (csr.nnz() * dim) as f64;
        for &t in &threads_grid {
            let rt = Runtime::new(t);
            let mut out = Tensor::zeros(&[dim, dim]);
            let ns = measure_ns(|| {
                out.data_mut().fill(0.0);
                spmm_into_rt(&rt, csr.view(), &b, &mut out);
                black_box(&out);
            });
            emit(&mut report, "spmm", &shape, density, &rt, ns, flops);
        }
    }

    // Sampled dense–dense product (the masked weight gradient).
    {
        let (dim, inner, density) = (512usize, 64usize, 0.05f64);
        let csr = rand_csr(&mut rng, dim, dim, density);
        let a = rand_dense(&mut rng, dim, inner);
        let b = rand_dense(&mut rng, dim, inner);
        let shape = format!("{dim}x{dim}x{inner}");
        let flops = 2.0 * (csr.nnz() * inner) as f64;
        for &t in &threads_grid {
            let rt = Runtime::new(t);
            let mut vals = vec![0.0f32; csr.nnz()];
            let ns = measure_ns(|| {
                vals.fill(0.0);
                sddmm_nt_into_rt(&rt, csr.view(), &a, &b, &mut vals);
                black_box(&vals);
            });
            emit(&mut report, "sddmm_nt", &shape, density, &rt, ns, flops);
        }
    }

    train_step_records(&mut report);

    let path = report.write();
    println!(
        "trajectory: {} records -> {} (host_threads={}, quick={})",
        report.records.len(),
        path.display(),
        report.host_threads,
        report.quick
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = conv_benches, topk_benches, sgd_benches, bn_adapt_benches, mask_benches,
        spmm_benches, sparse_epoch_benches, trajectory_benches
}
criterion_main!(benches);
