//! Criterion micro-benchmarks for the numerical substrate: convolution
//! forward/backward, the `O(k)` top-k buffer vs a full sort, masked SGD
//! steps, and BN-adaptation forward passes. These back the DESIGN.md
//! ablation "top-k buffer vs full sort".

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ft_bench::{measure_ns, BenchReport};
use ft_nn::models::SmallCnn;
use ft_nn::optim::{Sgd, SgdConfig};
use ft_nn::{apply_mask, sparse_layout, Mode, Model};
use ft_runtime::Runtime;
use ft_sparse::{
    magnitude_mask, uniform_density_vector, CsrMatrix, Mask, SparseLayout, TopKBuffer,
};
use ft_tensor::{matmul_into, matmul_into_rt, sddmm_nt_into_rt, spmm_into, spmm_into_rt, Tensor};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn conv_benches(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut model = SmallCnn::new(&mut rng, 8, 10, 3, 16);
    let x = ft_tensor::normal(&mut rng, &[8, 3, 16, 16], 0.0, 1.0);
    c.bench_function("small_cnn_forward_b8", |b| {
        b.iter(|| black_box(model.forward(&x, Mode::Train)))
    });
    c.bench_function("small_cnn_forward_backward_b8", |b| {
        b.iter(|| {
            let y = model.forward(&x, Mode::Train);
            model.backward(&Tensor::ones(y.shape()));
            model.zero_grad();
        })
    });
}

fn topk_benches(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let values: Vec<f32> = (0..100_000).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let k = 512;
    c.bench_function("topk_buffer_100k_k512", |b| {
        b.iter(|| {
            let mut buf = TopKBuffer::new(k);
            buf.extend_from_slice(black_box(&values));
            black_box(buf.into_sorted())
        })
    });
    c.bench_function("full_sort_100k_k512", |b| {
        b.iter_batched(
            || values.iter().cloned().enumerate().collect::<Vec<_>>(),
            |mut all| {
                all.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite"));
                all.truncate(k);
                black_box(all)
            },
            BatchSize::LargeInput,
        )
    });
}

fn sgd_benches(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut model = SmallCnn::new(&mut rng, 8, 10, 3, 16);
    let layout = ft_nn::sparse_layout(&model);
    let mut mask = Mask::ones(&layout);
    for l in 0..layout.num_layers() {
        for i in (0..layout.layer(l).len).step_by(2) {
            mask.set(l, i, false);
        }
    }
    let mut sgd = Sgd::new(SgdConfig::default());
    c.bench_function("masked_sgd_step", |b| {
        b.iter(|| sgd.step(black_box(&mut model), Some(&mask)))
    });
}

fn bn_adapt_benches(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut model = SmallCnn::new(&mut rng, 8, 10, 3, 16);
    model.set_bn_momentum(1.0);
    let x = ft_tensor::normal(&mut rng, &[32, 3, 16, 16], 0.0, 1.0);
    c.bench_function("bn_adaptation_pass_b32", |b| {
        b.iter(|| black_box(model.forward(&x, Mode::Train)))
    });
}

fn mask_benches(c: &mut Criterion) {
    let layout = SparseLayout::new(vec![("w".into(), 1_000_000)]);
    let mask = Mask::ones(&layout);
    c.bench_function("mask_density_1m", |b| b.iter(|| black_box(mask.density())));
}

/// Raw kernel comparison: dense GEMM vs CSR spmm on the same masked matrix.
fn spmm_benches(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let (m, k, n) = (256, 256, 128);
    for density in [0.5f64, 0.2, 0.05] {
        let mut dense = Tensor::zeros(&[m, k]);
        let mut mask = vec![false; m * k];
        for (v, bit) in dense.data_mut().iter_mut().zip(mask.iter_mut()) {
            if rng.gen_range(0.0f64..1.0) < density {
                *v = rng.gen_range(-1.0f32..1.0);
                *bit = true;
            }
        }
        let csr = CsrMatrix::from_mask_values(&mask, dense.data(), m, k);
        let b_mat: Tensor = {
            let data = (0..k * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            Tensor::from_vec(data, &[k, n])
        };
        c.bench_function(&format!("matmul_256x256x128_d{density}"), |b| {
            b.iter(|| {
                let mut out = Tensor::zeros(&[m, n]);
                matmul_into(&dense, &b_mat, &mut out);
                black_box(out)
            })
        });
        c.bench_function(&format!("spmm_256x256x128_d{density}"), |b| {
            b.iter(|| {
                let mut out = Tensor::zeros(&[m, n]);
                spmm_into(csr.view(), &b_mat, &mut out);
                black_box(out)
            })
        });
    }
}

/// The acceptance check for the sparse execution engine: a full training
/// epoch (forward + backward + masked SGD) through the SmallCnn profile,
/// dense path vs sparse path, at and below the default crossover.
fn sparse_epoch_benches(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let x = ft_tensor::normal(&mut rng, &[16, 3, 16, 16], 0.0, 1.0);
    let labels: Vec<usize> = (0..16).map(|i| i % 10).collect();

    for density in [1.0f32, 0.5, 0.2, 0.05] {
        let mut model = SmallCnn::new(&mut ChaCha8Rng::seed_from_u64(6), 8, 10, 3, 16);
        let layout = sparse_layout(&model);
        let weights: Vec<&[f32]> = model
            .params()
            .into_iter()
            .filter(|p| p.prunable)
            .map(|p| p.data.data())
            .collect();
        let mask = magnitude_mask(&layout, &weights, &uniform_density_vector(&layout, density));
        drop(weights);
        apply_mask(&mut model, &mask);

        for (path, crossover) in [("dense", 0.0f32), ("sparse", 1.0)] {
            if density == 1.0 && path == "sparse" {
                continue; // identical to dense by construction
            }
            let mut m = model.clone();
            m.set_sparse_crossover(crossover);
            let mut sgd = Sgd::new(SgdConfig::default());
            c.bench_function(&format!("small_cnn_epoch_{path}_d{density}"), |b| {
                b.iter(|| {
                    let logits = m.forward(&x, Mode::Train);
                    let (_, grad) = ft_nn::loss::softmax_cross_entropy(&logits, &labels);
                    m.backward(&grad);
                    sgd.step(&mut m, Some(&mask));
                    m.zero_grad();
                })
            });
        }
    }
    println!("acceptance: at density <= 0.2 the sparse epoch must be measurably faster than dense");
}

/// A random `[rows, cols]` dense tensor.
fn rand_dense(rng: &mut ChaCha8Rng, rows: usize, cols: usize) -> Tensor {
    Tensor::from_vec(
        (0..rows * cols)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect(),
        &[rows, cols],
    )
}

/// A random CSR matrix at `density` plus its mask-alive count.
fn rand_csr(rng: &mut ChaCha8Rng, rows: usize, cols: usize, density: f64) -> CsrMatrix {
    let mut mask = vec![false; rows * cols];
    let mut vals = vec![0.0f32; rows * cols];
    for (bit, v) in mask.iter_mut().zip(vals.iter_mut()) {
        if rng.gen_range(0.0f64..1.0) < density {
            *bit = true;
            *v = rng.gen_range(-1.0f32..1.0);
        }
    }
    CsrMatrix::from_mask_values(&mask, &vals, rows, cols)
}

/// The persisted perf trajectory (`BENCH_micro_ops.json`): dense matmul,
/// CSR spmm, and sddmm at 1 / 2 / 4 worker threads, with warmup strictly
/// separated from measurement (see `ft_bench::trajectory`). The table rows
/// are printed alongside, mirroring the criterion output above.
fn trajectory_benches(_c: &mut Criterion) {
    let mut report = BenchReport::new("micro_ops");
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let threads_grid = [1usize, 2, 4];
    println!(
        "\n{:<10} {:>12} {:>8} {:>9} {:>14} {:>10}",
        "op", "shape", "density", "req/eff", "ns/iter", "GFLOP/s"
    );
    let emit = |report: &mut BenchReport,
                op: &str,
                shape: &str,
                density: f64,
                rt: &Runtime,
                ns: f64,
                flops: f64| {
        report.push(op, shape, density, rt.requested(), rt.threads(), ns, flops);
        let r = report.records.last().expect("just pushed");
        println!(
            "{:<10} {:>12} {:>8.2} {:>5}/{:<3} {:>14.0} {:>10.2}",
            op,
            shape,
            density,
            rt.requested(),
            rt.threads(),
            ns,
            r.gflops
        );
    };

    // Dense matmul at the shapes the CI gate reads (≥256², plus the 512²
    // acceptance shape).
    for &dim in &[256usize, 512] {
        let a = rand_dense(&mut rng, dim, dim);
        let b = rand_dense(&mut rng, dim, dim);
        let shape = format!("{dim}x{dim}x{dim}");
        let flops = 2.0 * (dim * dim * dim) as f64;
        for &t in &threads_grid {
            let rt = Runtime::new(t);
            let mut out = Tensor::zeros(&[dim, dim]);
            let ns = measure_ns(|| {
                out.data_mut().fill(0.0);
                matmul_into_rt(&rt, &a, &b, &mut out);
                black_box(&out);
            });
            emit(&mut report, "matmul", &shape, 1.0, &rt, ns, flops);
        }
    }

    // CSR spmm on 512² structures at the engine's typical densities.
    for &density in &[0.2f64, 0.05] {
        let dim = 512usize;
        let csr = rand_csr(&mut rng, dim, dim, density);
        let b = rand_dense(&mut rng, dim, dim);
        let shape = format!("{dim}x{dim}x{dim}");
        let flops = 2.0 * (csr.nnz() * dim) as f64;
        for &t in &threads_grid {
            let rt = Runtime::new(t);
            let mut out = Tensor::zeros(&[dim, dim]);
            let ns = measure_ns(|| {
                out.data_mut().fill(0.0);
                spmm_into_rt(&rt, csr.view(), &b, &mut out);
                black_box(&out);
            });
            emit(&mut report, "spmm", &shape, density, &rt, ns, flops);
        }
    }

    // Sampled dense–dense product (the masked weight gradient).
    {
        let (dim, inner, density) = (512usize, 64usize, 0.05f64);
        let csr = rand_csr(&mut rng, dim, dim, density);
        let a = rand_dense(&mut rng, dim, inner);
        let b = rand_dense(&mut rng, dim, inner);
        let shape = format!("{dim}x{dim}x{inner}");
        let flops = 2.0 * (csr.nnz() * inner) as f64;
        for &t in &threads_grid {
            let rt = Runtime::new(t);
            let mut vals = vec![0.0f32; csr.nnz()];
            let ns = measure_ns(|| {
                vals.fill(0.0);
                sddmm_nt_into_rt(&rt, csr.view(), &a, &b, &mut vals);
                black_box(&vals);
            });
            emit(&mut report, "sddmm_nt", &shape, density, &rt, ns, flops);
        }
    }

    let path = report.write();
    println!(
        "trajectory: {} records -> {} (host_threads={}, quick={})",
        report.records.len(),
        path.display(),
        report.host_threads,
        report.quick
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = conv_benches, topk_benches, sgd_benches, bn_adapt_benches, mask_benches,
        spmm_benches, sparse_epoch_benches, trajectory_benches
}
criterion_main!(benches);
