//! Criterion micro-benchmarks for the numerical substrate: convolution
//! forward/backward, the `O(k)` top-k buffer vs a full sort, masked SGD
//! steps, and BN-adaptation forward passes. These back the DESIGN.md
//! ablation "top-k buffer vs full sort".

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ft_nn::models::SmallCnn;
use ft_nn::optim::{Sgd, SgdConfig};
use ft_nn::{Mode, Model};
use ft_sparse::{Mask, SparseLayout, TopKBuffer};
use ft_tensor::Tensor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn conv_benches(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut model = SmallCnn::new(&mut rng, 8, 10, 3, 16);
    let x = ft_tensor::normal(&mut rng, &[8, 3, 16, 16], 0.0, 1.0);
    c.bench_function("small_cnn_forward_b8", |b| {
        b.iter(|| black_box(model.forward(&x, Mode::Train)))
    });
    c.bench_function("small_cnn_forward_backward_b8", |b| {
        b.iter(|| {
            let y = model.forward(&x, Mode::Train);
            model.backward(&Tensor::ones(y.shape()));
            model.zero_grad();
        })
    });
}

fn topk_benches(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let values: Vec<f32> = (0..100_000).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let k = 512;
    c.bench_function("topk_buffer_100k_k512", |b| {
        b.iter(|| {
            let mut buf = TopKBuffer::new(k);
            buf.extend_from_slice(black_box(&values));
            black_box(buf.into_sorted())
        })
    });
    c.bench_function("full_sort_100k_k512", |b| {
        b.iter_batched(
            || values.iter().cloned().enumerate().collect::<Vec<_>>(),
            |mut all| {
                all.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite"));
                all.truncate(k);
                black_box(all)
            },
            BatchSize::LargeInput,
        )
    });
}

fn sgd_benches(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut model = SmallCnn::new(&mut rng, 8, 10, 3, 16);
    let layout = ft_nn::sparse_layout(&model);
    let mut mask = Mask::ones(&layout);
    for l in 0..layout.num_layers() {
        for i in (0..layout.layer(l).len).step_by(2) {
            mask.set(l, i, false);
        }
    }
    let mut sgd = Sgd::new(SgdConfig::default());
    c.bench_function("masked_sgd_step", |b| {
        b.iter(|| sgd.step(black_box(&mut model), Some(&mask)))
    });
}

fn bn_adapt_benches(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut model = SmallCnn::new(&mut rng, 8, 10, 3, 16);
    model.set_bn_momentum(1.0);
    let x = ft_tensor::normal(&mut rng, &[32, 3, 16, 16], 0.0, 1.0);
    c.bench_function("bn_adaptation_pass_b32", |b| {
        b.iter(|| black_box(model.forward(&x, Mode::Train)))
    });
}

fn mask_benches(c: &mut Criterion) {
    let layout = SparseLayout::new(vec![("w".into(), 1_000_000)]);
    let mask = Mask::ones(&layout);
    c.bench_function("mask_density_1m", |b| b.iter(|| black_box(mask.density())));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = conv_benches, topk_benches, sgd_benches, bn_adapt_benches, mask_benches
}
criterion_main!(benches);
