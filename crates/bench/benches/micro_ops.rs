//! Criterion micro-benchmarks for the numerical substrate: convolution
//! forward/backward, the `O(k)` top-k buffer vs a full sort, masked SGD
//! steps, and BN-adaptation forward passes. These back the DESIGN.md
//! ablation "top-k buffer vs full sort".

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ft_nn::models::SmallCnn;
use ft_nn::optim::{Sgd, SgdConfig};
use ft_nn::{apply_mask, sparse_layout, Mode, Model};
use ft_sparse::{magnitude_mask, uniform_density_vector, CsrMatrix, Mask, SparseLayout, TopKBuffer};
use ft_tensor::{matmul_into, spmm_into, Tensor};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn conv_benches(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut model = SmallCnn::new(&mut rng, 8, 10, 3, 16);
    let x = ft_tensor::normal(&mut rng, &[8, 3, 16, 16], 0.0, 1.0);
    c.bench_function("small_cnn_forward_b8", |b| {
        b.iter(|| black_box(model.forward(&x, Mode::Train)))
    });
    c.bench_function("small_cnn_forward_backward_b8", |b| {
        b.iter(|| {
            let y = model.forward(&x, Mode::Train);
            model.backward(&Tensor::ones(y.shape()));
            model.zero_grad();
        })
    });
}

fn topk_benches(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let values: Vec<f32> = (0..100_000).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let k = 512;
    c.bench_function("topk_buffer_100k_k512", |b| {
        b.iter(|| {
            let mut buf = TopKBuffer::new(k);
            buf.extend_from_slice(black_box(&values));
            black_box(buf.into_sorted())
        })
    });
    c.bench_function("full_sort_100k_k512", |b| {
        b.iter_batched(
            || values.iter().cloned().enumerate().collect::<Vec<_>>(),
            |mut all| {
                all.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite"));
                all.truncate(k);
                black_box(all)
            },
            BatchSize::LargeInput,
        )
    });
}

fn sgd_benches(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut model = SmallCnn::new(&mut rng, 8, 10, 3, 16);
    let layout = ft_nn::sparse_layout(&model);
    let mut mask = Mask::ones(&layout);
    for l in 0..layout.num_layers() {
        for i in (0..layout.layer(l).len).step_by(2) {
            mask.set(l, i, false);
        }
    }
    let mut sgd = Sgd::new(SgdConfig::default());
    c.bench_function("masked_sgd_step", |b| {
        b.iter(|| sgd.step(black_box(&mut model), Some(&mask)))
    });
}

fn bn_adapt_benches(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut model = SmallCnn::new(&mut rng, 8, 10, 3, 16);
    model.set_bn_momentum(1.0);
    let x = ft_tensor::normal(&mut rng, &[32, 3, 16, 16], 0.0, 1.0);
    c.bench_function("bn_adaptation_pass_b32", |b| {
        b.iter(|| black_box(model.forward(&x, Mode::Train)))
    });
}

fn mask_benches(c: &mut Criterion) {
    let layout = SparseLayout::new(vec![("w".into(), 1_000_000)]);
    let mask = Mask::ones(&layout);
    c.bench_function("mask_density_1m", |b| b.iter(|| black_box(mask.density())));
}

/// Raw kernel comparison: dense GEMM vs CSR spmm on the same masked matrix.
fn spmm_benches(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let (m, k, n) = (256, 256, 128);
    for density in [0.5f64, 0.2, 0.05] {
        let mut dense = Tensor::zeros(&[m, k]);
        let mut mask = vec![false; m * k];
        for (v, bit) in dense.data_mut().iter_mut().zip(mask.iter_mut()) {
            if rng.gen_range(0.0f64..1.0) < density {
                *v = rng.gen_range(-1.0f32..1.0);
                *bit = true;
            }
        }
        let csr = CsrMatrix::from_mask_values(&mask, dense.data(), m, k);
        let b_mat: Tensor = {
            let data = (0..k * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            Tensor::from_vec(data, &[k, n])
        };
        c.bench_function(&format!("matmul_256x256x128_d{density}"), |b| {
            b.iter(|| {
                let mut out = Tensor::zeros(&[m, n]);
                matmul_into(&dense, &b_mat, &mut out);
                black_box(out)
            })
        });
        c.bench_function(&format!("spmm_256x256x128_d{density}"), |b| {
            b.iter(|| {
                let mut out = Tensor::zeros(&[m, n]);
                spmm_into(csr.view(), &b_mat, &mut out);
                black_box(out)
            })
        });
    }
}

/// The acceptance check for the sparse execution engine: a full training
/// epoch (forward + backward + masked SGD) through the SmallCnn profile,
/// dense path vs sparse path, at and below the default crossover.
fn sparse_epoch_benches(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let x = ft_tensor::normal(&mut rng, &[16, 3, 16, 16], 0.0, 1.0);
    let labels: Vec<usize> = (0..16).map(|i| i % 10).collect();

    for density in [1.0f32, 0.5, 0.2, 0.05] {
        let mut model = SmallCnn::new(&mut ChaCha8Rng::seed_from_u64(6), 8, 10, 3, 16);
        let layout = sparse_layout(&model);
        let weights: Vec<&[f32]> = model
            .params()
            .into_iter()
            .filter(|p| p.prunable)
            .map(|p| p.data.data())
            .collect();
        let mask = magnitude_mask(&layout, &weights, &uniform_density_vector(&layout, density));
        drop(weights);
        apply_mask(&mut model, &mask);

        for (path, crossover) in [("dense", 0.0f32), ("sparse", 1.0)] {
            if density == 1.0 && path == "sparse" {
                continue; // identical to dense by construction
            }
            let mut m = model.clone();
            m.set_sparse_crossover(crossover);
            let mut sgd = Sgd::new(SgdConfig::default());
            c.bench_function(&format!("small_cnn_epoch_{path}_d{density}"), |b| {
                b.iter(|| {
                    let logits = m.forward(&x, Mode::Train);
                    let (_, grad) = ft_nn::loss::softmax_cross_entropy(&logits, &labels);
                    m.backward(&grad);
                    sgd.step(&mut m, Some(&mask));
                    m.zero_grad();
                })
            });
        }
    }
    println!(
        "acceptance: at density <= 0.2 the sparse epoch must be measurably faster than dense"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = conv_benches, topk_benches, sgd_benches, bn_adapt_benches, mask_benches,
        spmm_benches, sparse_epoch_benches
}
criterion_main!(benches);
