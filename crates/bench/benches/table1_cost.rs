//! Table I: top-1 accuracy, max per-round training FLOPs (as a multiple of
//! dense), and device memory footprint for every method on ResNet18 and
//! VGG11 (CIFAR-10 profile).
//!
//! Paper rows to reproduce in shape: FedTiny matches the cheapest methods'
//! FLOPs/memory while beating every baseline's accuracy; PruneFL pays ~0.34×
//! FLOPs and ~0.5× memory; LotteryFL pays full dense cost.

use ft_bench::table::{acc, factor, mb};
use ft_bench::{run_method, Method, Scale, Table};
use ft_data::DatasetProfile;
use ft_pruning::BaselineMethod;

fn main() {
    let scale = Scale::from_env();
    let env = scale.env(DatasetProfile::Cifar10, 4);

    for (model_name, spec) in [("ResNet18", scale.resnet()), ("VGG11", scale.vgg())] {
        let mut table = Table::new(
            &format!("Table I — accuracy and training cost ({model_name}, CIFAR-10)"),
            &["density", "method", "top1", "max_flops", "memory"],
        );
        // Dense FedAvg reference first (density 1 row of the paper).
        let dense = run_method(
            &env,
            &spec,
            Method::Baseline(BaselineMethod::FedAvgDense),
            1.0,
        );
        table.row(vec![
            "1".into(),
            "fedavg".into(),
            acc(dense.accuracy),
            format!("1x({:.2e})", dense.max_round_flops),
            mb(dense.memory_bytes),
        ]);
        let methods: Vec<Method> = BaselineMethod::all()
            .into_iter()
            .filter(|m| *m != BaselineMethod::FedAvgDense)
            .map(Method::Baseline)
            .chain([Method::FedTiny])
            .collect();
        for &d in &scale.table_densities() {
            for &m in &methods {
                let r = run_method(&env, &spec, m, d);
                table.row(vec![
                    format!("{d}"),
                    m.name(),
                    acc(r.accuracy),
                    factor(r.max_round_flops, dense.max_round_flops),
                    mb(r.memory_bytes),
                ]);
            }
        }
        table.print();
    }
    println!(
        "\npaper shape @d=0.01 (ResNet18): FedTiny 0.8523 @ 0.014x/2.79MB; best baseline \
         (PruneFL) 0.8262 @ 0.34x/46.58MB; LotteryFL 1x/90.91MB."
    );
}
