//! Table II: extra FLOPs spent in the adaptive BN selection module at the
//! optimal pool size `C* = 0.1/d`, compared to the training FLOPs of one
//! round.
//!
//! Paper shape: the one-off selection overhead is below (or around) one
//! round of sparse training — negligible across hundreds of rounds.

use fedtiny::{adaptive_bn_selection, generate_candidate_pool, SelectionConfig};
use ft_bench::table::flops;
use ft_bench::{Scale, Table};
use ft_data::DatasetProfile;
use ft_metrics::{densities_from_mask, training_flops};

fn main() {
    let scale = Scale::from_env();
    let env = scale.env(DatasetProfile::Cifar10, 7);
    let spec = scale.vgg();

    let mut table = Table::new(
        "Table II — extra FLOPs in adaptive BN selection (VGG11, CIFAR-10)",
        &[
            "density",
            "pool(C*)",
            "extra_flops_selection",
            "train_flops_one_round",
            "ratio",
        ],
    );
    for &d in &scale.table_densities() {
        let pool_size = SelectionConfig::optimal_pool_size(d).clamp(2, 64);
        let global = env.build_model(&spec);
        let sel = SelectionConfig {
            d_target: d,
            pool_size,
            noise_spread: 0.5,
            seed: env.cfg.seed,
        };
        let pool = generate_candidate_pool(global.as_ref(), &sel);
        let outcome = adaptive_bn_selection(global.as_ref(), &env, &pool);
        let densities = densities_from_mask(&outcome.mask);
        let max_samples = env.parts.iter().map(|p| p.len()).max().unwrap_or(0) as f64;
        let round =
            training_flops(&global.arch(), &densities) * max_samples * env.cfg.local_epochs as f64;
        table.row(vec![
            format!("{d}"),
            format!("{pool_size}"),
            flops(outcome.extra_flops),
            flops(round),
            format!("{:.2}", outcome.extra_flops / round),
        ]);
    }
    table.print();
    println!(
        "\npaper reference (VGG11): d=0.01/C=10 → 9.15e10 vs 6.86e11; d=0.005/C=20 → 1.3e11 \
         vs 4.92e11; d=0.001/C=100 → 3.42e11 vs 3.56e11 (ratio rises toward ~1 as C* grows)."
    );
}
