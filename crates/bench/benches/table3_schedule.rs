//! Table III: pruning-schedule ablation — granularity (layer / block /
//! entire model), unit ordering (forward vs backward), and frequency
//! (ΔR / R_stop) on VGG11, CIFAR-10.
//!
//! Paper shape: block granularity in backward order wins; layer granularity
//! converges too slowly; whole-model adjustment is competitive but costs
//! the most per round.

use fedtiny::{run_fedtiny, Granularity, ProgressiveConfig};
use ft_bench::methods::fedtiny_config;
use ft_bench::table::acc;
use ft_bench::{Scale, Table};
use ft_data::DatasetProfile;
use ft_sparse::PruneSchedule;

fn main() {
    let scale = Scale::from_env();
    let env = scale.env(DatasetProfile::Cifar10, 8);
    let spec = scale.vgg();
    let densities = scale.table_densities();

    // (label, granularity, backward, ΔR divisor, R_stop divisor) — the
    // divisors scale the paper's ΔR/R_stop pairs to this run's round count.
    let rows: &[(&str, Granularity, bool, usize, usize)] = &[
        ("layer 5/100", Granularity::Layer, false, 60, 3),
        ("layer(b) 5/100", Granularity::Layer, true, 60, 3),
        ("block 10/100", Granularity::Block, false, 30, 3),
        ("block(b) 10/100", Granularity::Block, true, 30, 3),
        ("block(b) 5/50", Granularity::Block, true, 60, 6),
        ("entire 50/100", Granularity::Entire, false, 6, 3),
        ("entire 25/50", Granularity::Entire, false, 12, 6),
    ];

    let mut header = vec!["schedule".to_string()];
    header.extend(densities.iter().map(|d| format!("d={d}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Table III — pruning scheduling strategies (VGG11, CIFAR-10)",
        &header_refs,
    );

    for &(label, granularity, backward, dr_div, rs_div) in rows {
        let mut cells = vec![label.to_string()];
        for &d in &densities {
            let mut cfg = fedtiny_config(&env, &spec, d);
            cfg.progressive = Some(ProgressiveConfig {
                schedule: PruneSchedule {
                    delta_r: (env.cfg.rounds / dr_div).max(1),
                    r_stop: (env.cfg.rounds / rs_div).max(1),
                    local_iters: env.cfg.local_epochs,
                },
                granularity,
                backward_order: backward,
                start_round: (env.cfg.rounds / dr_div).max(1),
            });
            let r = run_fedtiny(&env, &cfg);
            cells.push(acc(r.accuracy));
        }
        table.row(cells);
    }
    table.print();
    println!(
        "\npaper shape: block(b) 10/100 best overall (0.7883/0.7534/0.6311); backward order \
         beats forward at every granularity; layer-wise without ordering is worst."
    );
}
