//! Table IV: pruned ResNet18 (1% density at paper scale) versus a dense
//! small 3-conv model with a comparable parameter count, across all four
//! dataset profiles.
//!
//! Paper shape: the small dense model is competitive with the at-init
//! baselines but FedTiny's pruned ResNet18 beats it on every dataset.

use ft_bench::table::acc;
use ft_bench::{run_method, Method, Scale, Table};
use ft_data::DatasetProfile;
use ft_pruning::BaselineMethod;

fn main() {
    let scale = Scale::from_env();
    let spec = scale.resnet();
    let d = match scale.kind {
        ft_bench::ScaleKind::Paper => 0.01,
        _ => *scale.table_densities().last().expect("nonempty"),
    };
    let methods = [
        Method::Baseline(BaselineMethod::SynFlow),
        Method::Baseline(BaselineMethod::PruneFl),
        Method::SmallModel,
        Method::FedTiny,
    ];
    let profiles = [
        DatasetProfile::Cifar10,
        DatasetProfile::Cinic10,
        DatasetProfile::Svhn,
        DatasetProfile::Cifar100,
    ];

    let mut header = vec!["method".to_string()];
    header.extend(profiles.iter().map(|p| p.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        &format!("Table IV — ResNet18 at d={d} vs small dense model"),
        &header_refs,
    );
    for &m in &methods {
        let mut row = vec![m.name()];
        for &p in &profiles {
            let env = scale.env(p, 10);
            let r = run_method(&env, &spec, m, d);
            row.push(acc(r.accuracy));
        }
        table.row(row);
    }
    table.print();
    println!(
        "\npaper reference: FedTiny 0.8523/0.6712/0.8826/0.4865 beats the small model \
         0.8019/0.5578/0.8395/0.4277 on every dataset."
    );
}
