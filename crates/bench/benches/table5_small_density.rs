//! Table V: pruned ResNet18 across densities versus the dense small model
//! on CIFAR-10.
//!
//! Paper shape: the small model's accuracy is density-independent, so it
//! overtakes weak pruning methods in the extreme-sparsity regime (it beats
//! SynFlow/PruneFL at d = 0.001) while FedTiny stays ahead or close.

use ft_bench::table::acc;
use ft_bench::{run_method, Method, Scale, Table};
use ft_data::DatasetProfile;
use ft_pruning::BaselineMethod;

fn main() {
    let scale = Scale::from_env();
    let env = scale.env(DatasetProfile::Cifar10, 11);
    let spec = scale.resnet();
    let densities = match scale.kind {
        ft_bench::ScaleKind::Paper => vec![0.01, 0.005, 0.003, 0.001],
        _ => scale.density_grid(),
    };
    let methods = [
        Method::Baseline(BaselineMethod::SynFlow),
        Method::Baseline(BaselineMethod::PruneFl),
        Method::SmallModel,
        Method::FedTiny,
    ];

    let mut header = vec!["method".to_string()];
    header.extend(densities.iter().map(|d| format!("d={d}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Table V — ResNet18 vs small model across densities (CIFAR-10)",
        &header_refs,
    );
    for &m in &methods {
        let mut row = vec![m.name()];
        for &d in &densities {
            let r = run_method(&env, &spec, m, d);
            row.push(acc(r.accuracy));
        }
        table.row(row);
    }
    table.print();
    println!(
        "\npaper reference: SynFlow/PruneFL fall off a cliff at d=0.001 (0.286/0.296) where \
         the small model holds 0.6158; FedTiny reaches 0.6311 at d=0.001 and wins above it."
    );
}
