//! A counting global allocator for allocation-budget benches.
//!
//! The event-driven Collect dataplane claims a steady-state round allocates
//! *nothing*: frame buffers are pooled, [`ft_sparse::PayloadView`] decodes
//! out of the receive buffer, and the sharded aggregation scratch is
//! recycled. Claims like that rot silently — the only durable proof is a
//! counter under the allocator. A bench binary installs [`CountingAlloc`]
//! as its `#[global_allocator]`, brackets the measured loop with
//! [`allocated_bytes`] snapshots, and pins the delta per round in its
//! `BENCH_*.json` report, where `bench_check` gates it.
//!
//! The counter tracks *allocation traffic* (bytes requested from the
//! system allocator), not live bytes: a `Vec` that grows once and is
//! reused forever counts its growth once, which is exactly the
//! steady-state question. `realloc` counts only the growth beyond the old
//! size. Frees are not subtracted — an alloc/free churn loop must show up,
//! not cancel out.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

/// Cumulative bytes requested from the allocator by this process (all
/// threads) since startup. Meaningful only when [`CountingAlloc`] is
/// installed as the `#[global_allocator]`; otherwise it stays 0.
pub fn allocated_bytes() -> u64 {
    ALLOCATED.load(Ordering::Relaxed)
}

/// A [`System`]-backed allocator that counts every requested byte.
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: ft_bench::CountingAlloc = ft_bench::CountingAlloc;
/// ```
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let grown = new_size.saturating_sub(layout.size()) as u64;
        ALLOCATED.fetch_add(grown, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}
