//! CI gate over `BENCH_micro_ops.json`: fails when the kernels stop
//! delivering their wins, so a PR cannot silently regress them.
//!
//! Two families of gates:
//!
//! - **Single-thread floor** (always evaluated, any host): the current
//!   report's 1-thread GFLOP/s must stay above a required ratio of the
//!   *committed baseline* (`BENCH_baseline_micro_ops.json`, measured before
//!   the blocked/packed kernel rewrite). Missing records are a hard
//!   failure — this family cannot be skipped, so the check can never pass
//!   vacuously.
//! - **Parallel speedup** (scaled to what the measuring host can physically
//!   show): multi-thread records must beat the 1-thread record of the same
//!   shape. Records are paired by `requested_threads` (what the bench asked
//!   for), not the post-clamp effective count. A host with fewer cores than
//!   a gate's thread count skips that gate with a visible notice — speedup
//!   cannot exist without cores.
//!
//! A third family gates the Collect dataplane's allocation budget from
//! `BENCH_fleet.json`: the `collect_alloc_steady` record (pooled frames +
//! zero-copy decode + recycled aggregation scratch) must allocate **zero**
//! bytes per round, or at worst 10% of the `collect_alloc_naive` record
//! measured in the same run. Both records missing or unmeasured is a hard
//! failure — the alloc-free claim may not silently rot out of the report.
//!
//! A fourth family gates the batched training engine from
//! `BENCH_micro_ops.json`: the `train_step` record must show exactly zero
//! allocator bytes per steady-state epoch and at least a 1.4x
//! single-thread epoch-throughput floor over the `train_step_legacy`
//! replica of the retired per-sample engine, measured interleaved in the
//! same run (the committed baseline carries the same record so the floor
//! stays documented). Missing records are hard failures.
//!
//! If *zero* gates end up evaluated the check fails loudly: a gate file
//! that checks nothing is indistinguishable from a regression.
//!
//! ```bash
//! cargo run --release -p ft-bench --bin bench_check \
//!     [path/to/BENCH_micro_ops.json [path/to/BENCH_baseline_micro_ops.json \
//!     [path/to/BENCH_fleet.json]]]
//! ```

use ft_bench::trajectory::{BenchRecord, BenchReport};
use std::path::Path;
use std::process::ExitCode;

/// Minimum square dimension a "dense matmul ≥ 256²" record must have.
const MIN_GATED_DIM: usize = 256;

/// One parallel-speedup requirement against the report.
struct SpeedupGate {
    op: &'static str,
    min_dim: usize,
    dense_only: bool,
    threads: usize,
    min_speedup: f64,
}

/// One single-thread throughput-ratio requirement against the baseline.
struct FloorGate {
    op: &'static str,
    shape: &'static str,
    density: f64,
    min_ratio: f64,
}

/// Leading dimension of a `AxBxC` shape tag (0 when unparsable).
fn lead_dim(shape: &str) -> usize {
    shape
        .split('x')
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn find<'a>(
    records: &'a [BenchRecord],
    op: &str,
    shape: &str,
    density: f64,
    requested_threads: usize,
) -> Option<&'a BenchRecord> {
    records.iter().find(|r| {
        r.op == op
            && r.shape == shape
            && r.density == density
            && r.requested_threads == requested_threads
    })
}

fn load_report(path: &str) -> Result<BenchReport, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchReport::from_json(&json).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let mut args = std::env::args().skip(1);
    let path = args.next().unwrap_or_else(|| {
        root.join("BENCH_micro_ops.json")
            .to_string_lossy()
            .into_owned()
    });
    let baseline_path = args.next().unwrap_or_else(|| {
        root.join("BENCH_baseline_micro_ops.json")
            .to_string_lossy()
            .into_owned()
    });
    let fleet_path = args
        .next()
        .unwrap_or_else(|| root.join("BENCH_fleet.json").to_string_lossy().into_owned());
    let report = match load_report(&path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_check: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match load_report(&baseline_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_check: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "bench_check: {path} ({} records, host_threads={}, quick={}) vs baseline {baseline_path}",
        report.records.len(),
        report.host_threads,
        report.quick
    );

    let mut evaluated = 0usize;
    let mut failed = false;

    // -- Single-thread floors vs the committed baseline (never skipped) ----
    let floor_gates = [
        FloorGate {
            op: "matmul",
            shape: "512x512x512",
            density: 1.0,
            min_ratio: 3.0,
        },
        FloorGate {
            op: "spmm",
            shape: "512x512x512",
            density: 0.2,
            min_ratio: 1.5,
        },
    ];
    for gate in &floor_gates {
        let cur = find(&report.records, gate.op, gate.shape, gate.density, 1);
        let base = find(&baseline.records, gate.op, gate.shape, gate.density, 1);
        let (Some(cur), Some(base)) = (cur, base) else {
            eprintln!(
                "  FAIL {} {} d={:.2} @1t: record missing from {} — this gate cannot be skipped",
                gate.op,
                gate.shape,
                gate.density,
                if cur.is_none() { "report" } else { "baseline" },
            );
            failed = true;
            continue;
        };
        evaluated += 1;
        let ratio = cur.gflops / base.gflops.max(1e-9);
        let verdict = if ratio >= gate.min_ratio {
            "ok"
        } else {
            failed = true;
            "FAIL"
        };
        println!(
            "  {verdict:>4} {} {} d={:.2} @1t: {:.2} GFLOP/s vs baseline {:.2} = {ratio:.2}x (need >= {:.1}x)",
            gate.op, gate.shape, gate.density, cur.gflops, base.gflops, gate.min_ratio
        );
    }

    // -- Parallel speedups within the current report -----------------------
    let speedup_gates = [
        SpeedupGate {
            op: "matmul",
            min_dim: MIN_GATED_DIM,
            dense_only: true,
            threads: 2,
            min_speedup: 1.2,
        },
        SpeedupGate {
            op: "matmul",
            min_dim: 512,
            dense_only: true,
            threads: 4,
            min_speedup: 1.5,
        },
        SpeedupGate {
            op: "spmm",
            min_dim: 512,
            dense_only: false,
            threads: 4,
            min_speedup: 1.3,
        },
    ];
    for gate in &speedup_gates {
        if report.host_threads < gate.threads {
            println!(
                "  SKIP {} @{}t >= {:.1}x: host has {} core(s); a speedup needs at least {}",
                gate.op, gate.threads, gate.min_speedup, report.host_threads, gate.threads
            );
            continue;
        }
        // Every (shape, density) pair of this op that has both a 1-thread
        // and a gate.threads-thread record is checked.
        let mut checked = 0usize;
        for base in report.records.iter().filter(|r| {
            r.op == gate.op
                && r.requested_threads == 1
                && lead_dim(&r.shape) >= gate.min_dim
                && (!gate.dense_only || r.density == 1.0)
        }) {
            let Some(par) = find(
                &report.records,
                gate.op,
                &base.shape,
                base.density,
                gate.threads,
            ) else {
                continue;
            };
            checked += 1;
            evaluated += 1;
            let speedup = base.ns_per_iter / par.ns_per_iter.max(1.0);
            let verdict = if speedup >= gate.min_speedup {
                "ok"
            } else {
                failed = true;
                "FAIL"
            };
            println!(
                "  {verdict:>4} {} {} d={:.2} @{}t: {speedup:.2}x (need >= {:.1}x)",
                gate.op, base.shape, base.density, gate.threads, gate.min_speedup
            );
        }
        if checked == 0 {
            eprintln!(
                "  FAIL {} @{}t: no measurable (1t, {}t) record pair in the report",
                gate.op, gate.threads, gate.threads
            );
            failed = true;
        }
    }

    // -- Collect dataplane allocation budget (BENCH_fleet.json) ------------
    match load_report(&fleet_path) {
        Err(e) => {
            eprintln!("  FAIL collect_alloc: {e} — the allocation gate cannot be skipped");
            failed = true;
        }
        Ok(fleet) => {
            let rec = |op: &str| fleet.records.iter().find(|r| r.op == op);
            match (rec("collect_alloc_steady"), rec("collect_alloc_naive")) {
                (Some(steady), Some(naive))
                    if steady.alloc_bytes_per_round >= 0.0
                        && naive.alloc_bytes_per_round >= 0.0 =>
                {
                    evaluated += 1;
                    let budget = 0.1 * naive.alloc_bytes_per_round;
                    let ok = steady.alloc_bytes_per_round == 0.0
                        || steady.alloc_bytes_per_round <= budget;
                    let verdict = if ok {
                        "ok"
                    } else {
                        failed = true;
                        "FAIL"
                    };
                    println!(
                        "  {verdict:>4} collect_alloc: steady {:.1} B/round vs naive {:.1} \
                         (need 0 or <= {budget:.1})",
                        steady.alloc_bytes_per_round, naive.alloc_bytes_per_round
                    );
                }
                (steady, naive) => {
                    let missing = match (steady, naive) {
                        (None, _) => "collect_alloc_steady record missing",
                        (_, None) => "collect_alloc_naive record missing",
                        _ => "alloc_bytes_per_round not measured",
                    };
                    eprintln!(
                        "  FAIL collect_alloc: {missing} from {fleet_path} — \
                         this gate cannot be skipped"
                    );
                    failed = true;
                }
            }
        }
    }

    // -- Training-engine floors (train_step) -------------------------------
    // The batched alloc-free engine must (a) allocate zero bytes per epoch
    // at steady state and (b) hold a 1.4x single-thread epoch-throughput
    // floor over the committed pre-rewrite baseline. The in-run
    // `train_step_legacy` replica re-measures the retired engine on the
    // same host in the same interleaved run, so the ratio is host-fair;
    // the committed baseline record documents the floor the replica must
    // itself stay honest against. Any missing record is a hard failure.
    {
        let cur = report
            .records
            .iter()
            .find(|r| r.op == "train_step" && r.requested_threads == 1);
        let legacy = report
            .records
            .iter()
            .find(|r| r.op == "train_step_legacy" && r.requested_threads == 1);
        let base = baseline
            .records
            .iter()
            .find(|r| r.op == "train_step" && r.requested_threads == 1);
        match (cur, legacy, base) {
            (Some(cur), Some(legacy), Some(base)) => {
                if cur.shape != legacy.shape || cur.shape != base.shape {
                    eprintln!(
                        "  FAIL train_step: geometry mismatch (report {}, legacy {}, baseline {})",
                        cur.shape, legacy.shape, base.shape
                    );
                    failed = true;
                } else {
                    evaluated += 1;
                    let alloc_ok = cur.alloc_bytes_per_round == 0.0;
                    if !alloc_ok {
                        failed = true;
                    }
                    println!(
                        "  {:>4} train_step {} alloc: {:.1} B/epoch (need exactly 0)",
                        if alloc_ok { "ok" } else { "FAIL" },
                        cur.shape,
                        cur.alloc_bytes_per_round
                    );
                    evaluated += 1;
                    let speedup = legacy.ns_per_iter / cur.ns_per_iter.max(1.0);
                    let floor_ok = speedup >= 1.4;
                    if !floor_ok {
                        failed = true;
                    }
                    println!(
                        "  {:>4} train_step {} @1t: {speedup:.2}x vs in-run legacy replica \
                         (need >= 1.4x; committed baseline {:.0} ns/epoch)",
                        if floor_ok { "ok" } else { "FAIL" },
                        cur.shape,
                        base.ns_per_iter
                    );
                }
            }
            (cur, legacy, base) => {
                let missing = if cur.is_none() {
                    "train_step record missing from report"
                } else if legacy.is_none() {
                    "train_step_legacy record missing from report"
                } else {
                    debug_assert!(base.is_none());
                    "train_step record missing from baseline"
                };
                eprintln!("  FAIL train_step: {missing} — this gate cannot be skipped");
                failed = true;
            }
        }
    }

    if evaluated == 0 {
        eprintln!("bench_check: ZERO gates evaluated — refusing to pass vacuously");
        failed = true;
    }
    if failed {
        eprintln!("bench_check: throughput gate FAILED ({evaluated} gate(s) evaluated)");
        ExitCode::FAILURE
    } else {
        println!("bench_check: all gates passed ({evaluated} evaluated)");
        ExitCode::SUCCESS
    }
}
