//! CI gate over `BENCH_micro_ops.json`: fails when the parallel kernels
//! stop delivering their speedups, so a PR cannot silently regress the
//! runtime's wins.
//!
//! Checks (scaled to what the measuring host can physically show):
//!
//! - `host_threads >= 2`: dense matmul on shapes ≥ 256² must run ≥ 1.2x
//!   faster at 2 threads than at 1 (hard failure below).
//! - `host_threads >= 4`: dense matmul on 512² must reach ≥ 1.5x and spmm
//!   on 512² ≥ 1.3x at 4 threads (hard failure below).
//! - A single-core host (or a missing thread pair) skips the corresponding
//!   check with a visible notice — speedup cannot exist without cores.
//!
//! ```bash
//! cargo run --release -p ft-bench --bin bench_check [path/to/BENCH_micro_ops.json]
//! ```

use ft_bench::trajectory::{BenchRecord, BenchReport};
use std::process::ExitCode;

/// Minimum square dimension a "dense matmul ≥ 256²" record must have.
const MIN_GATED_DIM: usize = 256;

/// One speedup requirement against the report.
struct Gate {
    op: &'static str,
    min_dim: usize,
    dense_only: bool,
    threads: usize,
    min_speedup: f64,
}

/// Leading dimension of a `AxBxC` shape tag (0 when unparsable).
fn lead_dim(shape: &str) -> usize {
    shape
        .split('x')
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn find<'a>(
    records: &'a [BenchRecord],
    op: &str,
    shape: &str,
    density: f64,
    threads: usize,
) -> Option<&'a BenchRecord> {
    records
        .iter()
        .find(|r| r.op == op && r.shape == shape && r.density == density && r.threads == threads)
}

fn main() -> ExitCode {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .join("BENCH_micro_ops.json")
            .to_string_lossy()
            .into_owned()
    });
    let json = match std::fs::read_to_string(&path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match BenchReport::from_json(&json) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_check: cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "bench_check: {path} ({} records, host_threads={}, quick={})",
        report.records.len(),
        report.host_threads,
        report.quick
    );

    let gates = [
        Gate {
            op: "matmul",
            min_dim: MIN_GATED_DIM,
            dense_only: true,
            threads: 2,
            min_speedup: 1.2,
        },
        Gate {
            op: "matmul",
            min_dim: 512,
            dense_only: true,
            threads: 4,
            min_speedup: 1.5,
        },
        Gate {
            op: "spmm",
            min_dim: 512,
            dense_only: false,
            threads: 4,
            min_speedup: 1.3,
        },
    ];

    let mut failed = false;
    for gate in &gates {
        if report.host_threads < gate.threads {
            println!(
                "  SKIP {} @{}t >= {:.1}x: host has {} core(s); a speedup needs at least {}",
                gate.op, gate.threads, gate.min_speedup, report.host_threads, gate.threads
            );
            continue;
        }
        // Every (shape, density) pair of this op that has both a 1-thread
        // and a gate.threads-thread record is checked.
        let mut checked = 0usize;
        for base in report.records.iter().filter(|r| {
            r.op == gate.op
                && r.threads == 1
                && lead_dim(&r.shape) >= gate.min_dim
                && (!gate.dense_only || r.density == 1.0)
        }) {
            let Some(par) = find(
                &report.records,
                gate.op,
                &base.shape,
                base.density,
                gate.threads,
            ) else {
                continue;
            };
            checked += 1;
            let speedup = base.ns_per_iter / par.ns_per_iter.max(1.0);
            let verdict = if speedup >= gate.min_speedup {
                "ok"
            } else {
                failed = true;
                "FAIL"
            };
            println!(
                "  {verdict:>4} {} {} d={:.2} @{}t: {speedup:.2}x (need >= {:.1}x)",
                gate.op, base.shape, base.density, gate.threads, gate.min_speedup
            );
        }
        if checked == 0 {
            eprintln!(
                "  FAIL {} @{}t: no measurable (1t, {}t) record pair in the report",
                gate.op, gate.threads, gate.threads
            );
            failed = true;
        }
    }

    if failed {
        eprintln!("bench_check: parallel-throughput gate FAILED");
        ExitCode::FAILURE
    } else {
        println!("bench_check: all gates passed");
        ExitCode::SUCCESS
    }
}
