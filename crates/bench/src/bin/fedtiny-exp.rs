//! `fedtiny-exp` — run any single federated pruning experiment from the
//! command line and print the result as JSON.
//!
//! ```bash
//! cargo run --release -p ft-bench --bin fedtiny-exp -- \
//!     --method fedtiny --dataset cifar10 --model resnet18 \
//!     --density 0.05 --scale lab --seed 0
//! ```
//!
//! Methods: `fedtiny`, `vanilla`, `adaptive_bn`, `vanilla+prog`,
//! `small_model`, `fedavg`, `flpqsu`, `snip`, `synflow`, `grasp`,
//! `prunefl`, `feddst`, `lotteryfl`.

use ft_bench::{run_method, Method, Scale, ScaleKind};
use ft_data::DatasetProfile;
use ft_pruning::BaselineMethod;
use std::process::ExitCode;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
struct Options {
    method: Method,
    dataset: DatasetProfile,
    model: String,
    density: f32,
    scale: ScaleKind,
    seed: u64,
    alpha: Option<f64>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            return ExitCode::FAILURE;
        }
    };

    let scale = Scale::new(opts.scale);
    let env = match opts.alpha {
        Some(a) => scale.env_with_alpha(opts.dataset, a, opts.seed),
        None => scale.env(opts.dataset, opts.seed),
    };
    let spec = match opts.model.as_str() {
        "resnet18" => scale.resnet(),
        "vgg11" => scale.vgg(),
        "small_cnn" => scale.small_cnn(),
        other => {
            eprintln!("error: unknown model '{other}' (resnet18 | vgg11 | small_cnn)");
            return ExitCode::FAILURE;
        }
    };
    let result = run_method(&env, &spec, opts.method, opts.density);
    match serde_json::to_string_pretty(&result) {
        Ok(json) => {
            println!("{json}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error serializing result: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut method = None;
    let mut dataset = DatasetProfile::Cifar10;
    let mut model = "resnet18".to_string();
    let mut density = 0.05f32;
    let mut scale = ScaleKind::from_env();
    let mut seed = 0u64;
    let mut alpha = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || -> Result<&String, String> {
            it.next()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--method" => method = Some(parse_method(value()?)?),
            "--dataset" => dataset = parse_dataset(value()?)?,
            "--model" => model = value()?.clone(),
            "--density" => {
                density = value()?.parse().map_err(|e| format!("bad density: {e}"))?;
                if !(0.0..=1.0).contains(&density) || density == 0.0 {
                    return Err(format!("density must be in (0, 1], got {density}"));
                }
            }
            "--scale" => {
                scale = match value()?.as_str() {
                    "smoke" => ScaleKind::Smoke,
                    "lab" => ScaleKind::Lab,
                    "paper" => ScaleKind::Paper,
                    other => return Err(format!("unknown scale '{other}'")),
                }
            }
            "--seed" => seed = value()?.parse().map_err(|e| format!("bad seed: {e}"))?,
            "--alpha" => alpha = Some(value()?.parse().map_err(|e| format!("bad alpha: {e}"))?),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(Options {
        method: method.ok_or("--method is required")?,
        dataset,
        model,
        density,
        scale,
        seed,
        alpha,
    })
}

fn parse_method(name: &str) -> Result<Method, String> {
    Ok(match name {
        "fedtiny" => Method::FedTiny,
        "vanilla" => Method::Vanilla,
        "adaptive_bn" => Method::AdaptiveBnOnly,
        "vanilla+prog" => Method::VanillaProgressive,
        "small_model" => Method::SmallModel,
        "fedavg" => Method::Baseline(BaselineMethod::FedAvgDense),
        "flpqsu" => Method::Baseline(BaselineMethod::FlPqsu),
        "snip" => Method::Baseline(BaselineMethod::Snip),
        "synflow" => Method::Baseline(BaselineMethod::SynFlow),
        "grasp" => Method::Baseline(BaselineMethod::Grasp),
        "prunefl" => Method::Baseline(BaselineMethod::PruneFl),
        "feddst" => Method::Baseline(BaselineMethod::FedDst),
        "lotteryfl" => Method::Baseline(BaselineMethod::LotteryFl),
        other => return Err(format!("unknown method '{other}'")),
    })
}

fn parse_dataset(name: &str) -> Result<DatasetProfile, String> {
    Ok(match name {
        "cifar10" => DatasetProfile::Cifar10,
        "cifar100" => DatasetProfile::Cifar100,
        "cinic10" => DatasetProfile::Cinic10,
        "svhn" => DatasetProfile::Svhn,
        other => return Err(format!("unknown dataset '{other}'")),
    })
}

fn print_usage() {
    eprintln!(
        "usage: fedtiny-exp --method <name> [--dataset cifar10|cifar100|cinic10|svhn]\n\
         \x20                [--model resnet18|vgg11|small_cnn] [--density 0.05]\n\
         \x20                [--scale smoke|lab|paper] [--seed 0] [--alpha 0.5]\n\
         methods: fedtiny vanilla adaptive_bn vanilla+prog small_model fedavg\n\
         \x20        flpqsu snip synflow grasp prunefl feddst lotteryfl"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_full_command() {
        let o = parse(&s(&[
            "--method",
            "fedtiny",
            "--dataset",
            "svhn",
            "--model",
            "vgg11",
            "--density",
            "0.01",
            "--scale",
            "smoke",
            "--seed",
            "7",
            "--alpha",
            "0.3",
        ]))
        .expect("valid");
        assert_eq!(o.method, Method::FedTiny);
        assert_eq!(o.dataset, DatasetProfile::Svhn);
        assert_eq!(o.model, "vgg11");
        assert_eq!(o.seed, 7);
        assert_eq!(o.alpha, Some(0.3));
    }

    #[test]
    fn method_is_required() {
        assert!(parse(&s(&["--density", "0.1"])).is_err());
    }

    #[test]
    fn rejects_bad_density() {
        assert!(parse(&s(&["--method", "snip", "--density", "0"])).is_err());
        assert!(parse(&s(&["--method", "snip", "--density", "1.5"])).is_err());
    }

    #[test]
    fn rejects_unknown_flags_and_values() {
        assert!(parse(&s(&["--method", "nope"])).is_err());
        assert!(parse(&s(&["--bogus", "1"])).is_err());
        assert!(parse(&s(&["--method", "snip", "--dataset", "imagenet"])).is_err());
    }

    #[test]
    fn every_documented_method_parses() {
        for m in [
            "fedtiny",
            "vanilla",
            "adaptive_bn",
            "vanilla+prog",
            "small_model",
            "fedavg",
            "flpqsu",
            "snip",
            "synflow",
            "grasp",
            "prunefl",
            "feddst",
            "lotteryfl",
        ] {
            assert!(parse_method(m).is_ok(), "{m}");
        }
    }
}
