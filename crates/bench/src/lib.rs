//! Shared harness support for the experiment benches in `benches/`.
//!
//! Every table and figure of the paper has a `harness = false` bench target
//! that runs the corresponding experiment at a configurable scale and prints
//! the paper-style rows. The scale is chosen via the `FT_SCALE` environment
//! variable:
//!
//! - `FT_SCALE=smoke` — seconds; sanity-checks the wiring.
//! - `FT_SCALE=lab` (default) — minutes; laptop-scale reproduction whose
//!   *orderings and crossovers* mirror the paper.
//! - `FT_SCALE=paper` — the paper's settings (K = 10, 300 rounds, width 1.0,
//!   32 px); hours to days on a CPU, provided for completeness.

pub mod alloc_count;
pub mod methods;
pub mod scale;
pub mod table;
pub mod trajectory;

pub use alloc_count::{allocated_bytes, CountingAlloc};
pub use methods::{run_method, Method};
pub use scale::{Scale, ScaleKind};
pub use table::Table;
pub use trajectory::{measure_ns, quick_mode, BenchRecord, BenchReport};
