//! One uniform entry point over FedTiny, its ablations, every baseline, and
//! the small dense model.

use fedtiny::{run_fedtiny, FedTinyConfig, ProgressiveConfig, SelectionMode};
use ft_fl::{ExperimentEnv, ModelSpec, RunResult};
use ft_metrics::ExtraMemory;
use ft_pruning::{run_baseline, run_with_fixed_mask, BaselineMethod};
use ft_sparse::{Mask, PruneSchedule};

/// Everything the experiment benches can run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Method {
    /// Full FedTiny (adaptive BN selection + progressive pruning).
    FedTiny,
    /// Fig. 4 arm: vanilla selection only.
    Vanilla,
    /// Fig. 4 arm: adaptive BN selection only (no progressive pruning).
    AdaptiveBnOnly,
    /// Fig. 4 arm: vanilla selection + progressive pruning.
    VanillaProgressive,
    /// One of the paper's baselines.
    Baseline(BaselineMethod),
    /// The dense small 3-conv model of Tables IV/V (density ignored).
    SmallModel,
}

impl Method {
    /// Stable report name.
    pub fn name(&self) -> String {
        match self {
            Method::FedTiny => "fedtiny".into(),
            Method::Vanilla => "vanilla".into(),
            Method::AdaptiveBnOnly => "adaptive_bn".into(),
            Method::VanillaProgressive => "vanilla+prog".into(),
            Method::Baseline(b) => b.name().into(),
            Method::SmallModel => "small_model".into(),
        }
    }

    /// The method set of Fig. 3 / Table I (baselines + FedTiny).
    pub fn figure3_set() -> Vec<Method> {
        let mut v: Vec<Method> = BaselineMethod::figure3_set()
            .into_iter()
            .map(Method::Baseline)
            .collect();
        v.push(Method::FedTiny);
        v
    }

    /// The four ablation arms of Fig. 4.
    pub fn ablation_set() -> [Method; 4] {
        [
            Method::Vanilla,
            Method::AdaptiveBnOnly,
            Method::VanillaProgressive,
            Method::FedTiny,
        ]
    }
}

/// Builds the FedTiny config a bench run uses: schedule scaled to the
/// environment, pool size `C* = 0.1/d` (capped for tiny pools), paper noise.
pub fn fedtiny_config(env: &ExperimentEnv, spec: &ModelSpec, d_target: f32) -> FedTinyConfig {
    let schedule = PruneSchedule::scaled_for(env.cfg.rounds, env.cfg.local_epochs);
    FedTinyConfig {
        model: *spec,
        d_target,
        pool_size: fedtiny::SelectionConfig::optimal_pool_size(d_target).clamp(4, 32),
        noise_spread: 0.5,
        selection: SelectionMode::AdaptiveBn,
        progressive: Some(ProgressiveConfig {
            schedule,
            granularity: fedtiny::Granularity::Block,
            backward_order: true,
            start_round: schedule.delta_r,
        }),
        codec: ft_fl::Codec::MaskCsr,
        eval_every: (env.cfg.rounds / 5).max(1),
    }
}

/// Runs `method` on `env` at the target density and returns the uniform
/// result record.
pub fn run_method(
    env: &ExperimentEnv,
    spec: &ModelSpec,
    method: Method,
    d_target: f32,
) -> RunResult {
    let eval_every = (env.cfg.rounds / 5).max(1);
    match method {
        Method::FedTiny => run_fedtiny(env, &fedtiny_config(env, spec, d_target)),
        Method::Vanilla => {
            let mut cfg = fedtiny_config(env, spec, d_target);
            cfg.selection = SelectionMode::Vanilla;
            cfg.progressive = None;
            run_fedtiny(env, &cfg)
        }
        Method::AdaptiveBnOnly => {
            let mut cfg = fedtiny_config(env, spec, d_target);
            cfg.progressive = None;
            run_fedtiny(env, &cfg)
        }
        Method::VanillaProgressive => {
            let mut cfg = fedtiny_config(env, spec, d_target);
            cfg.selection = SelectionMode::Vanilla;
            run_fedtiny(env, &cfg)
        }
        Method::Baseline(b) => run_baseline(env, spec, b, d_target, eval_every),
        Method::SmallModel => {
            let small = small_spec_for(spec);
            let model = env.build_model(&small);
            let mask = Mask::ones(&ft_nn::sparse_layout(model.as_ref()));
            let mut r = run_with_fixed_mask(
                env,
                &small,
                &mask,
                "small_model",
                ExtraMemory::None,
                eval_every,
            );
            // A dense model stores no indices.
            r.memory_bytes = 8.0 * ft_metrics::total_params(&model.arch()) as f64;
            r
        }
    }
}

/// Chooses a SmallCnn whose parameter count roughly matches 1% of the given
/// spec (Sec. IV-G sizes the small model to ResNet18 at 1% density).
pub fn small_spec_for(spec: &ModelSpec) -> ModelSpec {
    let input = spec.input_size();
    let width = match spec {
        ModelSpec::ResNet18 { width, .. } | ModelSpec::Vgg11 { width, .. } => {
            // Full ResNet18 at 1% ≈ 112k params; SmallCnn(width w) has
            // ≈ 8.3k·(w/4)² params at lab scale — width 8·w_spec lands near.
            ((64.0 * width) as usize).max(2)
        }
        ModelSpec::SmallCnn { width, .. } => *width,
    };
    ModelSpec::SmallCnn { width, input }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::{Scale, ScaleKind};
    use ft_data::DatasetProfile;

    #[test]
    fn every_method_runs_at_smoke_scale() {
        let s = Scale::new(ScaleKind::Smoke);
        let env = s.env(DatasetProfile::Cifar10, 0);
        let spec = s.resnet();
        for m in [
            Method::FedTiny,
            Method::Vanilla,
            Method::SmallModel,
            Method::Baseline(BaselineMethod::SynFlow),
        ] {
            let r = run_method(&env, &spec, m, 0.2);
            assert!((0.0..=1.0).contains(&r.accuracy), "{m:?}");
        }
    }

    #[test]
    fn figure3_set_has_six_methods() {
        assert_eq!(Method::figure3_set().len(), 6);
    }

    #[test]
    fn ablation_names_are_distinct() {
        let names: std::collections::HashSet<String> =
            Method::ablation_set().iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 4);
    }
}
