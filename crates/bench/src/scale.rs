//! Experiment scale presets.

use ft_data::{DatasetProfile, SynthConfig};
use ft_fl::{ExperimentEnv, FlConfig, ModelSpec};
use ft_nn::optim::SgdConfig;

/// How big the experiment runs are.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleKind {
    /// Seconds — wiring check.
    Smoke,
    /// Minutes — laptop-scale reproduction (default).
    Lab,
    /// The paper's full settings (hours+ on CPU).
    Paper,
}

impl ScaleKind {
    /// Reads `FT_SCALE` (`smoke` / `lab` / `paper`), defaulting to `Lab`.
    pub fn from_env() -> Self {
        match std::env::var("FT_SCALE").unwrap_or_default().as_str() {
            "smoke" => ScaleKind::Smoke,
            "paper" => ScaleKind::Paper,
            _ => ScaleKind::Lab,
        }
    }
}

/// All scale-dependent experiment parameters in one place.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Which preset this is.
    pub kind: ScaleKind,
    /// Image side length.
    pub resolution: usize,
    /// Model width multiplier.
    pub width: f32,
    /// Training samples per class (before dataset-profile size factors).
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Devices `K`.
    pub devices: usize,
    /// FL rounds.
    pub rounds: usize,
    /// Local epochs `E`.
    pub local_epochs: usize,
}

impl Scale {
    /// Builds the scale preset.
    pub fn new(kind: ScaleKind) -> Self {
        match kind {
            ScaleKind::Smoke => Scale {
                kind,
                resolution: 8,
                width: 0.125,
                train_per_class: 6,
                test_per_class: 4,
                devices: 3,
                rounds: 3,
                local_epochs: 1,
            },
            ScaleKind::Lab => Scale {
                kind,
                resolution: 8,
                width: 0.125,
                train_per_class: 20,
                test_per_class: 20,
                devices: 4,
                rounds: 24,
                local_epochs: 1,
            },
            ScaleKind::Paper => Scale {
                kind,
                resolution: 32,
                width: 1.0,
                train_per_class: 500,
                test_per_class: 100,
                devices: 10,
                rounds: 300,
                local_epochs: 5,
            },
        }
    }

    /// The preset selected by `FT_SCALE`.
    pub fn from_env() -> Self {
        Self::new(ScaleKind::from_env())
    }

    /// Federated-learning configuration at this scale.
    pub fn fl_config(&self, seed: u64) -> FlConfig {
        FlConfig {
            devices: self.devices,
            rounds: self.rounds,
            local_epochs: self.local_epochs,
            batch_size: 32,
            sgd: SgdConfig {
                lr: 0.05,
                momentum: 0.0,
                weight_decay: 0.0,
                clip_norm: 2.0,
            },
            alpha: 0.5,
            dev_fraction: 0.25,
            participation: 1.0,
            prox_mu: 0.0,
            lr_decay: 1.0,
            parallel: true,
            threads: 0,
            codec: ft_fl::Codec::Dense,
            aggregator: ft_fl::Aggregator::FedAvg,
            collect_timeout_secs: 30.0,
            seed,
        }
    }

    /// Synthetic-data configuration for a dataset profile.
    ///
    /// Per-class counts shrink with the class count so the *total* corpus
    /// size stays comparable across profiles — exactly like the real
    /// datasets (CIFAR-100 has 10x fewer images per class than CIFAR-10 at
    /// the same total size).
    pub fn synth(&self, profile: DatasetProfile, seed: u64) -> SynthConfig {
        let class_factor = (profile.classes() / 10).max(1);
        SynthConfig {
            profile,
            train_per_class: (self.train_per_class / class_factor).max(2),
            test_per_class: (self.test_per_class / class_factor).max(2),
            resolution: self.resolution,
            channels: 3,
            seed,
        }
    }

    /// A prepared environment for a profile.
    pub fn env(&self, profile: DatasetProfile, seed: u64) -> ExperimentEnv {
        ExperimentEnv::new(self.synth(profile, seed), self.fl_config(seed))
    }

    /// Environment with a Dirichlet α override (Fig. 6).
    pub fn env_with_alpha(&self, profile: DatasetProfile, alpha: f64, seed: u64) -> ExperimentEnv {
        let mut cfg = self.fl_config(seed);
        cfg.alpha = alpha;
        ExperimentEnv::new(self.synth(profile, seed), cfg)
    }

    /// ResNet18 spec at this scale.
    pub fn resnet(&self) -> ModelSpec {
        ModelSpec::ResNet18 {
            width: self.width,
            input: self.resolution,
        }
    }

    /// VGG11 spec at this scale.
    pub fn vgg(&self) -> ModelSpec {
        ModelSpec::Vgg11 {
            width: self.width,
            input: self.resolution,
        }
    }

    /// SmallCnn spec sized for Tables IV/V at this scale.
    pub fn small_cnn(&self) -> ModelSpec {
        let width = ((8.0 * self.width * 8.0) as usize).max(2); // 8 at lab scale, 64 at paper scale
        ModelSpec::SmallCnn {
            width,
            input: self.resolution,
        }
    }

    /// The density sweep used by the figure benches, scaled to keep at
    /// least a handful of weights per layer at this model size.
    pub fn density_grid(&self) -> Vec<f32> {
        match self.kind {
            ScaleKind::Smoke => vec![0.3, 0.05],
            ScaleKind::Lab => vec![0.2, 0.1, 0.05, 0.02],
            ScaleKind::Paper => vec![0.5, 0.1, 0.01, 0.005, 0.001],
        }
    }

    /// The Table I/III density triple at this scale.
    pub fn table_densities(&self) -> Vec<f32> {
        match self.kind {
            ScaleKind::Smoke => vec![0.1, 0.05],
            ScaleKind::Lab => vec![0.1, 0.05, 0.02],
            ScaleKind::Paper => vec![0.01, 0.005, 0.001],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_monotonically() {
        let smoke = Scale::new(ScaleKind::Smoke);
        let lab = Scale::new(ScaleKind::Lab);
        let paper = Scale::new(ScaleKind::Paper);
        assert!(smoke.rounds < lab.rounds && lab.rounds < paper.rounds);
        assert!(smoke.train_per_class <= lab.train_per_class);
        assert_eq!(paper.devices, 10);
        assert_eq!(paper.rounds, 300);
    }

    #[test]
    fn env_builds_at_smoke_scale() {
        let s = Scale::new(ScaleKind::Smoke);
        let env = s.env(DatasetProfile::Cifar10, 0);
        assert_eq!(env.num_devices(), 3);
        let m = env.build_model(&s.resnet());
        assert_eq!(m.arch().input, [3, 8, 8]);
    }

    #[test]
    fn density_grids_are_descending() {
        for kind in [ScaleKind::Smoke, ScaleKind::Lab, ScaleKind::Paper] {
            let g = Scale::new(kind).density_grid();
            assert!(g.windows(2).all(|w| w[0] > w[1]));
        }
    }
}
