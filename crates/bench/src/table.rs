//! Minimal aligned-table printer for the experiment harnesses.

/// Accumulates rows and prints them as an aligned text table, plus an
/// optional JSON dump for EXPERIMENTS.md bookkeeping.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = format!("\n== {} ==\n", self.title);
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats an accuracy as the paper does (4 decimal places).
pub fn acc(a: f32) -> String {
    format!("{a:.4}")
}

/// Formats a cost factor relative to a dense reference (e.g. `0.014x`).
pub fn factor(value: f64, dense: f64) -> String {
    if dense <= 0.0 {
        return "n/a".into();
    }
    format!("{:.3}x", value / dense)
}

/// Formats bytes as MB with two decimals.
pub fn mb(bytes: f64) -> String {
    format!("{:.2}MB", bytes / 1e6)
}

/// Formats FLOPs in scientific notation like the paper's Table II.
pub fn flops(f: f64) -> String {
    format!("{f:.2e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["method", "acc"]);
        t.row(vec!["fedtiny".into(), "0.8523".into()]);
        t.row(vec!["snip".into(), "0.72".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("fedtiny"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(acc(0.85234), "0.8523");
        assert_eq!(factor(14.0, 1000.0), "0.014x");
        assert_eq!(factor(1.0, 0.0), "n/a");
        assert_eq!(mb(2_790_000.0), "2.79MB");
        assert!(flops(9.15e10).contains("e10"));
    }
}
