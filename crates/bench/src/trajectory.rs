//! Machine-readable benchmark trajectory artifacts (`BENCH_*.json`).
//!
//! The table benches print human-readable rows; this module persists the
//! numbers CI tracks over time: one JSON report per suite with `(op, shape,
//! density, threads, ns/iter, realized GFLOP/s)` records. The `bench-smoke`
//! CI job uploads these files as artifacts and `bench_check` gates on them,
//! so a PR that silently regresses the parallel kernels fails loudly.
//!
//! ## Warmup vs measurement
//!
//! [`measure_ns`] strictly separates *warmup* from *measurement*: the first
//! calls of a kernel pay one-time setup (CSR plan builds, allocator warmup,
//! page faults) that used to leak into wall-clock numbers and made them
//! unstable run-to-run. Warmup iterations are discarded, then the median of
//! several timed samples is reported — in CI quick mode the numbers stay
//! within ~10% across runs.

use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Environment variable: when set (to anything non-empty), benches run in
/// quick mode — fewer/shorter samples, same shapes — for CI smoke jobs.
pub const QUICK_ENV: &str = "FT_BENCH_QUICK";

/// Environment variable overriding the directory `BENCH_*.json` files are
/// written to (default: the workspace root).
pub const DIR_ENV: &str = "FT_BENCH_DIR";

/// Whether quick mode is on (see [`QUICK_ENV`]).
pub fn quick_mode() -> bool {
    std::env::var(QUICK_ENV)
        .map(|v| !v.is_empty())
        .unwrap_or(false)
}

/// One measured configuration of one operation.
#[derive(Clone, Debug, Serialize)]
pub struct BenchRecord {
    /// Operation name (`"matmul"`, `"spmm"`, `"fleet_synchronous"`, ...).
    pub op: String,
    /// Shape tag, e.g. `"512x512x512"` for GEMMs or `"K6xR8"` for fleet
    /// runs.
    pub shape: String,
    /// Operand density (1.0 = dense).
    pub density: f64,
    /// Worker threads the bench *asked* for. Gates pair records across
    /// reports by this tag — it is stable across hosts, while `threads` is
    /// what the oversubscription clamp let through.
    pub requested_threads: usize,
    /// Effective worker threads the runtime fanned out over (after the
    /// oversubscription clamp).
    pub threads: usize,
    /// Median wall time of one iteration, in nanoseconds (warmup excluded).
    pub ns_per_iter: f64,
    /// Realized throughput: executed FLOPs / second / 1e9.
    pub gflops: f64,
    /// Allocator traffic per iteration in bytes, for records measured
    /// under the counting allocator ([`crate::CountingAlloc`]); `-1.0`
    /// means "not measured" (throughput-only records and legacy reports).
    pub alloc_bytes_per_round: f64,
}

// Hand-written so reports from before the `requested_threads` and
// `alloc_bytes_per_round` fields (e.g. the committed baseline) still
// parse: `requested_threads` defaults to `threads` (exactly what those
// reports measured), `alloc_bytes_per_round` to the -1.0 "not measured"
// sentinel. The derive shim has no per-field defaults.
impl Deserialize for BenchRecord {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let threads: usize = Deserialize::from_value(v.field("threads")?)?;
        let requested_threads = match v.field("requested_threads") {
            Ok(f) => Deserialize::from_value(f)?,
            Err(_) => threads,
        };
        let alloc_bytes_per_round = match v.field("alloc_bytes_per_round") {
            Ok(f) => Deserialize::from_value(f)?,
            Err(_) => -1.0,
        };
        Ok(BenchRecord {
            op: Deserialize::from_value(v.field("op")?)?,
            shape: Deserialize::from_value(v.field("shape")?)?,
            density: Deserialize::from_value(v.field("density")?)?,
            requested_threads,
            threads,
            ns_per_iter: Deserialize::from_value(v.field("ns_per_iter")?)?,
            gflops: Deserialize::from_value(v.field("gflops")?)?,
            alloc_bytes_per_round,
        })
    }
}

/// A suite's full report: host facts plus the measured records.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchReport {
    /// Suite name; the file is written as `BENCH_{suite}.json`.
    pub suite: String,
    /// Available parallelism of the measuring host — consumers must not
    /// expect speedups beyond this (a 1-core runner can't go faster with 2
    /// threads).
    pub host_threads: usize,
    /// Whether the numbers come from a quick (CI smoke) run.
    pub quick: bool,
    /// The measurements.
    pub records: Vec<BenchRecord>,
}

impl BenchReport {
    /// An empty report for `suite` stamped with this host's parallelism.
    pub fn new(suite: &str) -> Self {
        BenchReport {
            suite: suite.to_string(),
            host_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            quick: quick_mode(),
            records: Vec::new(),
        }
    }

    /// Appends one record, deriving GFLOP/s from `flops_per_iter`.
    /// `requested_threads` is the pool size the bench asked for; `threads`
    /// the effective size after the runtime's oversubscription clamp.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        op: &str,
        shape: &str,
        density: f64,
        requested_threads: usize,
        threads: usize,
        ns_per_iter: f64,
        flops_per_iter: f64,
    ) {
        let gflops = if ns_per_iter > 0.0 {
            flops_per_iter / ns_per_iter // FLOPs/ns == GFLOP/s
        } else {
            0.0
        };
        self.records.push(BenchRecord {
            op: op.to_string(),
            shape: shape.to_string(),
            density,
            requested_threads,
            threads,
            ns_per_iter,
            gflops,
            alloc_bytes_per_round: -1.0,
        });
    }

    /// Appends one allocation-budget record: `alloc_bytes_per_round` is
    /// allocator traffic per iteration measured under the counting
    /// allocator (throughput fields are left at "not applicable").
    pub fn push_alloc(
        &mut self,
        op: &str,
        shape: &str,
        threads: usize,
        ns_per_iter: f64,
        alloc_bytes_per_round: f64,
    ) {
        self.records.push(BenchRecord {
            op: op.to_string(),
            shape: shape.to_string(),
            density: 1.0,
            requested_threads: threads,
            threads,
            ns_per_iter,
            gflops: 0.0,
            alloc_bytes_per_round,
        });
    }

    /// Writes `BENCH_{suite}.json` into [`DIR_ENV`] (default: the workspace
    /// root) and returns the path.
    ///
    /// # Panics
    ///
    /// Panics if the report cannot be serialized or written — a bench that
    /// silently fails to persist its trajectory is worse than a loud one.
    pub fn write(&self) -> PathBuf {
        let dir = std::env::var(DIR_ENV)
            .map(PathBuf::from)
            .unwrap_or_else(|_| workspace_root());
        let path = dir.join(format!("BENCH_{}.json", self.suite));
        let json = serde_json::to_string_pretty(self).expect("bench report serializes");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        path
    }

    /// Parses a report back from JSON (what `bench_check` consumes).
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error message.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("{e:?}"))
    }
}

/// The workspace root, derived from this crate's manifest directory
/// (`crates/bench` → two levels up).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels under the workspace root")
        .to_path_buf()
}

/// Times `f` with warmup strictly separated from measurement and returns
/// the median nanoseconds per iteration.
///
/// Warmup: `f` runs until it has consumed ~the sample budget once (at least
/// one full call), absorbing one-time setup. Measurement: several samples of
/// auto-calibrated iteration counts; the median is robust against scheduler
/// noise. Quick mode (see [`quick_mode`]) shrinks the budgets but keeps the
/// protocol.
pub fn measure_ns<F: FnMut()>(mut f: F) -> f64 {
    let (samples, min_sample_ns) = if quick_mode() {
        (3usize, 25_000_000u128)
    } else {
        (7usize, 100_000_000u128)
    };
    // Warmup (discarded): at least one call, and enough repeats to touch
    // caches/allocations for fast kernels.
    let t = Instant::now();
    f();
    let first_ns = t.elapsed().as_nanos().max(1);
    let mut warm = first_ns;
    while warm < min_sample_ns / 2 {
        let t = Instant::now();
        f();
        warm += t.elapsed().as_nanos().max(1);
    }
    // Calibrate from a *warmed* call, not the cold first one — the first
    // call can be dominated by one-time setup, which would shrink every
    // sample far below the budget and leave the median at timer noise.
    let t = Instant::now();
    f();
    let warmed_ns = t.elapsed().as_nanos().max(1);
    // Calibrated measurement: each sample batches enough iterations to last
    // ~min_sample_ns, so timer granularity is negligible.
    let iters = (min_sample_ns / warmed_ns).clamp(1, 1 << 20) as u64;
    let mut medians: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    medians.sort_by(|a, b| a.total_cmp(b));
    medians[medians.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_json() {
        let mut r = BenchReport::new("unit_test");
        r.push("matmul", "8x8x8", 1.0, 4, 2, 1000.0, 1024.0);
        let json = serde_json::to_string(&r).expect("serializes");
        let back = BenchReport::from_json(&json).expect("parses");
        assert_eq!(back.suite, "unit_test");
        assert_eq!(back.records.len(), 1);
        assert_eq!(back.records[0].requested_threads, 4);
        assert_eq!(back.records[0].threads, 2);
        // 1024 FLOPs in 1000ns ≈ 1.024 GFLOP/s.
        assert!((back.records[0].gflops - 1.024).abs() < 1e-9);
    }

    /// Reports written before the `requested_threads` field still parse;
    /// the field defaults to the effective thread count.
    #[test]
    fn legacy_records_without_requested_threads_parse() {
        let json = r#"{
            "suite": "micro_ops",
            "host_threads": 1,
            "quick": true,
            "records": [{
                "op": "matmul", "shape": "8x8x8", "density": 1.0,
                "threads": 2, "ns_per_iter": 1000.0, "gflops": 1.024
            }]
        }"#;
        let back = BenchReport::from_json(json).expect("legacy report parses");
        assert_eq!(back.records[0].requested_threads, 2);
        assert_eq!(back.records[0].threads, 2);
        assert_eq!(back.records[0].alloc_bytes_per_round, -1.0);
    }

    /// Allocation records round-trip and throughput records carry the
    /// "not measured" sentinel.
    #[test]
    fn alloc_records_roundtrip() {
        let mut r = BenchReport::new("unit_test");
        r.push("matmul", "8x8x8", 1.0, 1, 1, 1000.0, 1024.0);
        r.push_alloc("collect_alloc_steady", "K6", 1, 500.0, 0.0);
        let json = serde_json::to_string(&r).expect("serializes");
        let back = BenchReport::from_json(&json).expect("parses");
        assert_eq!(back.records[0].alloc_bytes_per_round, -1.0);
        assert_eq!(back.records[1].op, "collect_alloc_steady");
        assert_eq!(back.records[1].alloc_bytes_per_round, 0.0);
    }

    #[test]
    fn measure_returns_positive_time() {
        let mut acc = 0u64;
        let ns = measure_ns(|| {
            acc = acc.wrapping_add(std::hint::black_box(17));
        });
        assert!(ns > 0.0);
        assert!(acc > 0);
    }
}
