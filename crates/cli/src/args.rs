//! Hand-rolled flag parsing shared by every `ft` subcommand.
//!
//! The grammar is deliberately tiny: `--flag`, `--flag value`, repeated
//! `--flag value` occurrences, and bare positionals. Anything fancier
//! (grouping, `=`-joined values, abbreviations) would buy nothing here and
//! cost a dependency or a parser to maintain.

use std::str::FromStr;

/// One subcommand's argument list.
pub struct Args<'a> {
    argv: &'a [String],
}

impl<'a> Args<'a> {
    pub fn new(argv: &'a [String]) -> Self {
        Args { argv }
    }

    /// Whether the bare flag appears anywhere.
    pub fn has(&self, flag: &str) -> bool {
        self.argv.iter().any(|a| a == flag)
    }

    /// The value following the flag's first occurrence.
    pub fn get(&self, flag: &str) -> Option<&'a str> {
        self.argv
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.argv.get(i + 1))
            .map(String::as_str)
    }

    /// Parses the flag's value, dying with a usage error on malformed
    /// input (a typo'd number must not silently become a default).
    pub fn get_parse<T: FromStr>(&self, flag: &str) -> Option<T> {
        let raw = self.get(flag)?;
        match raw.parse() {
            Ok(v) => Some(v),
            Err(_) => die(&format!("{flag} got unparseable value {raw:?}")),
        }
    }

    /// Every value of a repeatable flag, in order.
    pub fn get_all(&self, flag: &str) -> Vec<&'a str> {
        self.argv
            .iter()
            .enumerate()
            .filter(|(_, a)| a.as_str() == flag)
            .filter_map(|(i, _)| self.argv.get(i + 1))
            .map(String::as_str)
            .collect()
    }

    /// Arguments that are not flags and not flag values — the positional
    /// tail (e.g. checkpoint paths for `ft ckpt diff a b`).
    pub fn positionals(&self) -> Vec<&'a str> {
        let mut out = Vec::new();
        let mut skip_next = false;
        for (i, a) in self.argv.iter().enumerate() {
            if skip_next {
                skip_next = false;
                continue;
            }
            if a.starts_with("--") {
                // A flag consumes the next token as its value unless that
                // token is itself a flag (covers bare boolean flags).
                skip_next = self
                    .argv
                    .get(i + 1)
                    .map(|n| !n.starts_with("--"))
                    .unwrap_or(false);
                continue;
            }
            out.push(a.as_str());
        }
        out
    }
}

/// Prints a usage error and exits with the conventional usage status.
pub fn die(msg: &str) -> ! {
    eprintln!("ft: {msg}");
    std::process::exit(2);
}
