//! `ft bench` — drive the trajectory benches and the regression gate.
//!
//! A thin orchestration layer over the existing harness: `cargo bench -p
//! ft-bench` for the measurement binaries (they write `BENCH_*.json`
//! reports) and `cargo run -p ft-bench --bin bench_check` for the gate
//! that compares those reports against the committed baselines.

use crate::args::Args;
use std::process::Command;

/// The default bench set: the kernel micro-benchmarks and the end-to-end
/// fleet trajectory (the two the CI bench-smoke job runs).
const DEFAULT_BENCHES: [&str; 2] = ["micro_ops", "fleet_trajectory"];

pub fn cmd_bench(argv: &[String]) -> i32 {
    let a = Args::new(argv);
    let quick = a.has("--quick");
    let check_only = a.has("--check-only");
    let selected = a.get_all("--bench");
    let benches: Vec<&str> = if selected.is_empty() {
        DEFAULT_BENCHES.to_vec()
    } else {
        selected
    };

    if !check_only {
        for bench in &benches {
            let code = run_cargo(&["bench", "-p", "ft-bench", "--bench", bench], quick);
            if code != 0 {
                eprintln!("ft: bench {bench} failed (exit {code})");
                return code;
            }
        }
    }
    let code = run_cargo(
        &["run", "--release", "-p", "ft-bench", "--bin", "bench_check"],
        quick,
    );
    if code != 0 {
        eprintln!("ft: bench_check failed (exit {code})");
    }
    code
}

fn run_cargo(args: &[&str], quick: bool) -> i32 {
    let mut cmd = Command::new("cargo");
    cmd.args(args);
    if quick {
        cmd.env("FT_BENCH_QUICK", "1");
    }
    println!("ft: cargo {}", args.join(" "));
    match cmd.status() {
        Ok(status) => status.code().unwrap_or(1),
        Err(e) => {
            eprintln!("ft: failed to spawn cargo: {e}");
            1
        }
    }
}
