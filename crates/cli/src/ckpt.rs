//! `ft ckpt` — list, inspect and diff checkpoint files.
//!
//! `inspect` prints only host-independent state, so its output for a
//! seeded run is byte-stable across machines and thread counts and is
//! pinned by a committed golden file in CI.

use crate::args::{die, Args};
use ft_fl::{Checkpoint, CheckpointSummary};
use std::path::Path;

pub fn cmd_ckpt(argv: &[String]) -> i32 {
    let a = Args::new(argv);
    let positionals = a.positionals();
    let Some((&action, paths)) = positionals.split_first() else {
        die("ft ckpt requires an action: list | inspect | diff");
    };
    match action {
        "list" => cmd_list(paths),
        "inspect" => cmd_inspect(paths),
        "diff" => cmd_diff(paths),
        other => die(&format!(
            "unknown ckpt action {other:?}; expected list | inspect | diff"
        )),
    }
}

fn load(path: &str) -> Checkpoint {
    Checkpoint::load(Path::new(path)).unwrap_or_else(|e| die(&format!("{path}: {e}")))
}

/// One summary line per checkpoint — enough to tell files apart at a
/// glance without the full inspect dump.
fn cmd_list(paths: &[&str]) -> i32 {
    if paths.is_empty() {
        die("ft ckpt list requires at least one path");
    }
    for path in paths {
        let s = load(path).summary();
        println!(
            "{path}: {} round {}/{} | scheduler {} | codec {} | seed {} | epoch {} | sim {:.1}s",
            s.kind,
            s.rounds_done,
            s.total_rounds,
            s.scheduler,
            s.codec,
            s.seed,
            s.mask_epoch,
            s.sim_now_secs,
        );
    }
    0
}

fn cmd_inspect(paths: &[&str]) -> i32 {
    let [path] = paths else {
        die("ft ckpt inspect requires exactly one path");
    };
    print!("{}", format_inspect(&load(path).summary()));
    0
}

/// Field-level diff; exits 0 when the checkpoints describe identical run
/// state, 1 when they differ (mirrors `diff`'s convention).
fn cmd_diff(paths: &[&str]) -> i32 {
    let [a, b] = paths else {
        die("ft ckpt diff requires exactly two paths");
    };
    let lines = load(a).diff(&load(b));
    if lines.is_empty() {
        println!("checkpoints are identical");
        return 0;
    }
    for line in &lines {
        println!("{line}");
    }
    1
}

/// The deterministic `ft ckpt inspect` rendering. Pinned by an
/// integration test against a committed golden file — formatting changes
/// here must update the golden.
pub fn format_inspect(s: &CheckpointSummary) -> String {
    let mut out = String::new();
    let mut line = |k: &str, v: String| out.push_str(&format!("{k:<24} {v}\n"));
    line("format_version", s.format_version.to_string());
    line("kind", s.kind.to_string());
    line("seed", s.seed.to_string());
    line("devices", s.devices.to_string());
    line(
        "rounds_done",
        format!("{}/{}", s.rounds_done, s.total_rounds),
    );
    line("scheduler", s.scheduler.clone());
    line("codec", s.codec.clone());
    line("eval_every", s.eval_every.to_string());
    line("mask_epoch", s.mask_epoch.to_string());
    line("sim_now_secs", format!("{:?}", s.sim_now_secs));
    line(
        "history",
        format!(
            "{} evals{}",
            s.history.len(),
            s.history
                .last()
                .map(|v| format!(", last {v:.4}"))
                .unwrap_or_default()
        ),
    );
    line("params", s.params.to_string());
    line("mask_density", format!("{:.4}", s.mask_density));
    line(
        "applied_mask_density",
        format!("{:.4}", s.applied_mask_density),
    );
    line("residual_devices", s.residual_devices.to_string());
    line("timeline_events", s.timeline_events.to_string());
    line("zero_progress_rounds", s.zero_progress_rounds.to_string());
    line("payload_down_bytes", format!("{:?}", s.payload_down_bytes));
    line("payload_up_bytes", format!("{:?}", s.payload_up_bytes));
    line(
        "analytic_comm_bytes",
        format!("{:?}", s.analytic_comm_bytes),
    );
    line("max_round_flops", format!("{:?}", s.max_round_flops));
    line(
        "faults",
        format!(
            "malformed {} | replays {} | disconnects {} | inflated {} | clipped {} | \
             rejected_handshakes {}",
            s.faults.malformed_frames,
            s.faults.replays,
            s.faults.disconnects,
            s.faults.inflated_samples,
            s.faults.clipped_updates,
            s.faults.rejected_handshakes,
        ),
    );
    line("in_flight_tasks", s.in_flight_tasks.to_string());
    line("hook_state_bytes", s.hook_state_bytes.to_string());
    line("config_fingerprint", s.config_fingerprint.clone());
    out
}
