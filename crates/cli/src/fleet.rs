//! Fleet commands: `ft run`, `ft serve`, `ft device`, `ft resume`.
//!
//! These absorb what the `tcp_fleet` and `straggler_fleet` examples used to
//! do: the same seeds, the same environments, the same reference-twin
//! bit-identity assertions — one knob surface instead of two. The examples
//! remain as thin wrappers that translate their legacy flags onto these
//! subcommands.

use crate::args::{die, Args};
use ft_data::{DatasetProfile, SynthConfig};
use ft_fl::{
    fleet_spread_deadline, no_hook, resolve_threads, run_byzantine_tcp_device,
    run_federated_rounds, run_tcp_device, run_with, AdversarialTransport, Aggregator, Behavior,
    CheckpointSpec, Codec, CostLedger, DeviceProfile, ExperimentEnv, FlConfig, InProcess,
    MetricsEndpoint, MetricsHub, ModelSpec, RunOptions, RunResult, Scheduler, TimelineEvent,
};
use ft_metrics::{device_memory_bytes, ExtraMemory};
use ft_nn::{flat_params, sparse_layout};
use ft_sparse::Mask;
use std::net::TcpListener;
use std::sync::Arc;

/// Seed of the demo/serve/device environments — shared with the in-process
/// reference twin so the bit-identity assertion is meaningful.
const DEMO_SEED: u64 = 23;
/// Seed of the straggler preset's heterogeneous fleet.
const STRAGGLER_SEED: u64 = 17;
/// Seed of the lab preset (matches the benchmark harness).
const LAB_SEED: u64 = 0;
/// Seed of the adversary's corruption streams — shared by TCP clients and
/// the in-process twin so both produce identical hostile bytes.
const ADV_SEED: u64 = 4242;

#[derive(Clone, Copy, PartialEq)]
enum Preset {
    Demo,
    Straggler,
    Lab,
}

impl Preset {
    fn name(self) -> &'static str {
        match self {
            Preset::Demo => "demo",
            Preset::Straggler => "straggler",
            Preset::Lab => "lab",
        }
    }
}

/// The knob surface shared by every fleet command.
struct FleetOptions {
    preset: Preset,
    devices: usize,
    rounds: usize,
    codec: Codec,
    aggregator: Aggregator,
    byzantine: Vec<(usize, Behavior)>,
    threads: usize,
    checkpoint: Option<String>,
    resume: bool,
    halt_after: Option<usize>,
    metrics: Option<String>,
    no_verify: bool,
}

impl FleetOptions {
    /// Parses the shared flags. `tcp` selects the TCP codec policy: `top_k`
    /// defaults to error feedback ON, but error-feedback residuals live on
    /// the device and cannot be rolled back over a remote transport (the
    /// server refuses the combination) — TCP ends therefore run the
    /// stateless variant.
    fn parse(a: &Args<'_>, tcp: bool) -> FleetOptions {
        let preset = match a.get("--preset") {
            None => Preset::Demo,
            Some("demo") => Preset::Demo,
            Some("straggler") => Preset::Straggler,
            Some("lab") => Preset::Lab,
            Some(other) => die(&format!(
                "unknown preset {other:?}; expected demo | straggler | lab"
            )),
        };
        let devices = match preset {
            Preset::Straggler => 6,
            Preset::Lab => ft_bench::Scale::new(ft_bench::ScaleKind::Lab).devices,
            Preset::Demo => a.get_parse("--devices").unwrap_or(4),
        };
        let default_rounds = match preset {
            Preset::Straggler => 8,
            Preset::Lab => ft_bench::Scale::new(ft_bench::ScaleKind::Lab).rounds,
            Preset::Demo => 6,
        };
        let codec = match a.get("--codec") {
            None => Codec::Dense,
            Some(name) => match Codec::from_name(name) {
                Some(Codec::TopK { k_frac, .. }) if tcp => Codec::TopK {
                    k_frac,
                    error_feedback: false,
                },
                Some(codec) => codec,
                None => die(&format!(
                    "unknown codec {name:?}; expected dense | mask_csr | quant_int8 | top_k"
                )),
            },
        };
        let aggregator = match a.get("--aggregator") {
            None => Aggregator::FedAvg,
            Some(name) => Aggregator::from_name(name).unwrap_or_else(|| {
                die(&format!(
                    "unknown aggregator {name:?}; expected fedavg | trimmed_mean[:beta] | \
                     median | norm_clipped[:tau]"
                ))
            }),
        };
        let byzantine: Vec<(usize, Behavior)> = a
            .get_all("--byzantine")
            .iter()
            .map(|spec| {
                let parsed = spec.split_once(':').and_then(|(dev, behavior)| {
                    Some((dev.parse::<usize>().ok()?, Behavior::from_name(behavior)?))
                });
                match parsed {
                    Some((device, _)) if device >= devices => die(&format!(
                        "--byzantine device {device} out of range (fleet has {devices})"
                    )),
                    Some(pair) => pair,
                    None => die(&format!(
                        "bad --byzantine spec {spec:?}; expected device:behavior, e.g. \
                         1:sign_flip:8, 3:garbage, 2:replay, 0:handshake_drop"
                    )),
                }
            })
            .collect();
        FleetOptions {
            preset,
            devices,
            rounds: a.get_parse("--rounds").unwrap_or(default_rounds),
            codec,
            aggregator,
            byzantine,
            threads: a.get_parse("--threads").unwrap_or(0),
            checkpoint: a.get("--checkpoint").map(String::from),
            resume: a.has("--resume"),
            halt_after: a.get_parse("--halt-after"),
            metrics: a.get("--metrics").map(String::from),
            no_verify: a.has("--no-verify"),
        }
    }

    /// Per-device behavior table (`Honest` default, overridden by
    /// `--byzantine device:behavior` entries).
    fn behaviors(&self) -> Vec<Behavior> {
        let mut table = vec![Behavior::Honest; self.devices];
        for &(device, behavior) in &self.byzantine {
            table[device] = behavior;
        }
        table
    }

    fn hostile(&self) -> bool {
        !self.byzantine.is_empty()
    }

    /// The environment every end of this fleet derives from the preset's
    /// seed — synthetic datasets are pure functions of it, so no training
    /// data ever crosses a wire, only snapshots and update deltas.
    fn build_env(&self, scheduler: Option<Scheduler>) -> ExperimentEnv {
        let (synth, mut cfg) = match self.preset {
            Preset::Lab => {
                let scale = ft_bench::Scale::new(ft_bench::ScaleKind::Lab);
                (
                    scale.synth(DatasetProfile::Cifar10, LAB_SEED),
                    scale.fl_config(LAB_SEED),
                )
            }
            preset => {
                let seed = if preset == Preset::Straggler {
                    STRAGGLER_SEED
                } else {
                    DEMO_SEED
                };
                let synth = SynthConfig {
                    profile: DatasetProfile::Cifar10,
                    train_per_class: 12,
                    test_per_class: 8,
                    resolution: 8,
                    channels: 3,
                    seed,
                };
                let mut cfg = FlConfig::bench_default();
                cfg.local_epochs = 1;
                cfg.seed = seed;
                (synth, cfg)
            }
        };
        cfg.devices = self.devices;
        cfg.rounds = self.rounds;
        cfg.codec = self.codec;
        cfg.aggregator = self.aggregator;
        cfg.threads = self.threads;
        let env = ExperimentEnv::new(synth, cfg);
        let env = match self.preset {
            Preset::Straggler => env.with_fleet(DeviceProfile::fleet_mixed(self.devices)),
            _ => env,
        };
        match scheduler {
            Some(s) => env.with_scheduler(s),
            None => env,
        }
    }

    fn model_spec(&self) -> ModelSpec {
        match self.preset {
            Preset::Lab => ft_bench::Scale::new(ft_bench::ScaleKind::Lab).small_cnn(),
            _ => ModelSpec::SmallCnn { width: 4, input: 8 },
        }
    }

    /// Self-describing run header (transport, codec, aggregator,
    /// adversaries, checkpoint path) — same shape the examples printed.
    fn print_header(&self, transport: &str) {
        let byzantine = if self.byzantine.is_empty() {
            "-".to_string()
        } else {
            self.byzantine
                .iter()
                .map(|(d, b)| format!("{d}:{}", b.name()))
                .collect::<Vec<_>>()
                .join(",")
        };
        println!(
            "transport: {transport} | codec: {} | aggregator: {} | byzantine: {byzantine} | \
             devices: {} | rounds: {} | checkpoint: {}{}",
            self.codec.name(),
            self.aggregator.name(),
            self.devices,
            self.rounds,
            self.checkpoint.as_deref().unwrap_or("-"),
            if self.resume { " (resume)" } else { "" },
        );
    }
}

/// Starts the metrics endpoint when `--metrics <addr>` was given. The
/// returned endpoint owns the listener thread; dropping it stops serving.
fn start_metrics(opts: &FleetOptions) -> Option<(Arc<MetricsHub>, MetricsEndpoint)> {
    let addr = opts.metrics.as_deref()?;
    let hub = MetricsHub::new();
    match hub.serve(addr) {
        Ok(endpoint) => {
            println!("metrics: serving on {}", endpoint.local_addr());
            Some((hub, endpoint))
        }
        Err(e) => die(&format!("--metrics {addr}: {e}")),
    }
}

/// Publishes the process's allocation traffic per completed round. Only
/// meaningful in the `ft` binary (which installs the counting allocator);
/// in other hosts the counter stays 0 and the gauge stays "unmeasured".
fn publish_alloc(hub: Option<&Arc<MetricsHub>>, alloc_before: u64, rounds: usize) {
    let Some(hub) = hub else { return };
    let delta = ft_bench::allocated_bytes().saturating_sub(alloc_before);
    if delta > 0 && rounds > 0 {
        hub.set_alloc_bytes_per_round(delta as f64 / rounds as f64);
    }
}

/// One machine-readable line of the server's fault ledger — the CI
/// hostile-fleet job collects these as its quarantine-stats artifact.
fn print_quarantine_stats(aggregator: Aggregator, ledger: &CostLedger) {
    let f = ledger.faults();
    println!(
        "quarantine_stats: {{\"aggregator\":\"{}\",\"malformed_frames\":{},\"replays\":{},\
         \"disconnects\":{},\"inflated_samples\":{},\"clipped_updates\":{},\
         \"rejected_handshakes\":{},\"quarantined\":{}}}",
        aggregator.name(),
        f.malformed_frames,
        f.replays,
        f.disconnects,
        f.inflated_samples,
        f.clipped_updates,
        f.rejected_handshakes,
        ledger.quarantined_updates(),
    );
}

/// `ft run`: an in-process fleet. The straggler preset compares the three
/// round schedulers; demo and lab run once and print the shared summary.
pub fn cmd_run(argv: &[String]) -> i32 {
    let a = Args::new(argv);
    let opts = FleetOptions::parse(&a, false);
    let metrics = start_metrics(&opts);
    let hub = metrics.as_ref().map(|(h, _)| h);
    match opts.preset {
        Preset::Straggler => run_straggler(&opts, hub),
        _ => run_single(&opts, hub),
    }
}

/// `ft resume`: shorthand for `ft run --resume`; the checkpoint is
/// mandatory (resuming without one would silently start fresh).
pub fn cmd_resume(argv: &[String]) -> i32 {
    let a = Args::new(argv);
    let mut opts = FleetOptions::parse(&a, false);
    if opts.checkpoint.is_none() {
        die("ft resume requires --checkpoint <path>");
    }
    opts.resume = true;
    let metrics = start_metrics(&opts);
    let hub = metrics.as_ref().map(|(h, _)| h);
    match opts.preset {
        Preset::Straggler => run_straggler(&opts, hub),
        _ => run_single(&opts, hub),
    }
}

/// One in-process run on the preset's environment; prints the uniform
/// run summary every method in the workspace reports.
fn run_single(opts: &FleetOptions, hub: Option<&Arc<MetricsHub>>) -> i32 {
    opts.print_header("in_process");
    let env = opts.build_env(None);
    let spec = opts.model_spec();
    let mut model = env.build_model(&spec);
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let hostile = opts.hostile();
    let mut plain = InProcess;
    let mut adversarial = AdversarialTransport::new(InProcess, opts.behaviors(), ADV_SEED);
    let alloc_before = ft_bench::allocated_bytes();
    let history = run_with(
        model.as_mut(),
        &mut mask,
        &env,
        0,
        &mut ledger,
        &mut no_hook(),
        RunOptions {
            transport: if hostile {
                &mut adversarial
            } else {
                &mut plain
            },
            checkpoint: opts.checkpoint.as_ref().map(CheckpointSpec::every_round),
            resume: opts.resume,
            halt_after: opts.halt_after,
            hook_save: None,
            hook_load: None,
            presence: None,
            metrics: hub.cloned(),
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("ft: run failed: {e}");
        std::process::exit(1);
    });
    if hostile {
        ledger.record_handshake_faults(adversarial.handshake_faults());
    }
    publish_alloc(hub, alloc_before, opts.rounds);
    let arch = model.arch();
    let densities = ft_metrics::densities_from_mask(&mask);
    let result = RunResult::from_ledger(
        format!("run:{}", opts.preset.name()),
        history,
        mask.density(),
        device_memory_bytes(&arch, &densities, ExtraMemory::None),
        env.cfg.codec.name(),
        &ledger,
    );
    println!("{}", result.format_summary());
    if hostile {
        print_quarantine_stats(opts.aggregator, &ledger);
    }
    if let Some(halted) = opts.halt_after {
        println!("halted after {halted} rounds — checkpoint saved");
    }
    0
}

/// The straggler comparison: the same fleet under the synchronous,
/// deadline and buffered schedulers, plus the buffered timeline excerpt
/// and the host-parallelism report (ports the `straggler_fleet` example).
fn run_straggler(opts: &FleetOptions, hub: Option<&Arc<MetricsHub>>) -> i32 {
    let resolved = resolve_threads(opts.threads);
    let deadline_secs = {
        let env = opts.build_env(Some(Scheduler::Synchronous));
        let model = env.build_model(&opts.model_spec());
        let densities = vec![1.0f32; sparse_layout(model.as_ref()).num_layers()];
        fleet_spread_deadline(&env, &model.arch(), &densities)
    };
    let policies = [
        Scheduler::Synchronous,
        Scheduler::Deadline { deadline_secs },
        Scheduler::Buffered { buffer_k: 3 },
    ];
    let byzantine_label = if opts.byzantine.is_empty() {
        "-".to_string()
    } else {
        opts.byzantine
            .iter()
            .map(|(d, b)| format!("{d}:{}", b.name()))
            .collect::<Vec<_>>()
            .join(",")
    };
    println!(
        "transport: in_process | wire codec: {} | aggregator: {} | byzantine: {byzantine_label} | \
         worker threads: {resolved} | checkpoint: {}{}",
        opts.codec.name(),
        opts.aggregator.name(),
        opts.checkpoint
            .as_deref()
            .map(|p| format!("{p}.<scheduler>"))
            .unwrap_or_else(|| "-".into()),
        if opts.resume { " (resume)" } else { "" },
    );
    println!(
        "{:>12}  {:>6}  {:>14}  {:>10}  {:>8}  {:>7}  {:>10}",
        "scheduler", "top1", "sim_makespan_s", "zero_prog", "dropped", "stale", "upload_kb"
    );
    let mut buffered_timeline: Vec<TimelineEvent> = Vec::new();
    let mut sync_wall = None;
    let alloc_before = ft_bench::allocated_bytes();
    for policy in policies {
        let (top1, ledger, wall) = straggler_run(opts, policy, opts.threads, true, hub);
        if matches!(policy, Scheduler::Synchronous) {
            sync_wall = Some((wall, ledger.sim_makespan_secs()));
        }
        let max_stale = ledger
            .timeline()
            .iter()
            .map(|e| e.staleness)
            .max()
            .unwrap_or(0);
        println!(
            "{:>12}  {top1:>6.4}  {:>14.1}  {:>10}  {:>8}  {max_stale:>7}  {:>10.1}",
            policy.name(),
            ledger.sim_makespan_secs(),
            ledger.zero_progress_rounds(),
            ledger.dropped_updates(),
            ledger.total_payload_upload_bytes() / 1e3,
        );
        if opts.hostile() {
            let f = ledger.faults();
            println!(
                "{:>12}  quarantined {} (malformed {} | replays {} | disconnects {} | \
                 inflated {}), clipped {}, rejected handshakes {}",
                "", // aligns under the scheduler column
                ledger.quarantined_updates(),
                f.malformed_frames,
                f.replays,
                f.disconnects,
                f.inflated_samples,
                f.clipped_updates,
                f.rejected_handshakes,
            );
        }
        if matches!(policy, Scheduler::Buffered { .. }) {
            buffered_timeline = ledger.timeline().to_vec();
        }
    }
    publish_alloc(hub, alloc_before, opts.rounds * policies.len());

    println!("\nbuffered timeline (first 12 arrivals):");
    println!(
        "{:>7}  {:>6}  {:>9}  {:>10}  {:>7}  {:>5}",
        "device", "round", "start_s", "arrive_s", "applied", "stale"
    );
    for e in buffered_timeline.iter().take(12) {
        println!(
            "{:>7}  {:>6}  {:>9.1}  {:>10.1}  {:>7}  {:>5}",
            e.device, e.round, e.start_secs, e.finish_secs, e.applied, e.staleness
        );
    }
    println!(
        "\nexpected shape: the synchronous barrier pays the slow tier's time every round;\n\
         the deadline bounds each round at {deadline_secs:.1} simulated seconds by cutting\n\
         stragglers; buffered aggregation keeps fast devices busy (smallest makespan)\n\
         and absorbs slow devices' updates later, staleness-discounted."
    );

    // Host-parallelism report: rerun the synchronous fleet single-threaded
    // and compare wall clocks. The *simulated* makespan must be identical
    // bit-for-bit — the runtime only changes how fast the host computes it.
    if resolved > 1 {
        let (wall_n, sim_n) = sync_wall.expect("synchronous policy ran");
        // The thread-count rerun never touches the checkpoint files: a
        // resumed run would skip the rounds this comparison measures.
        let (_, ledger_1, wall_1) = straggler_run(opts, Scheduler::Synchronous, 1, false, None);
        assert_eq!(
            ledger_1.sim_makespan_secs().to_bits(),
            sim_n.to_bits(),
            "simulated makespan drifted across thread counts"
        );
        println!(
            "\nhost speedup (synchronous round loop): {:.2}x at {resolved} threads \
             ({:.0} ms -> {:.0} ms; sim makespan identical at {:.1}s)",
            wall_1 / wall_n.max(f64::MIN_POSITIVE),
            wall_1 * 1e3,
            wall_n * 1e3,
            sim_n,
        );
    }
    0
}

/// One scheduler's run for the straggler comparison; returns the final
/// accuracy, the ledger, and the host wall-clock of the round loop.
fn straggler_run(
    opts: &FleetOptions,
    scheduler: Scheduler,
    threads: usize,
    durable: bool,
    hub: Option<&Arc<MetricsHub>>,
) -> (f32, CostLedger, f64) {
    let mut sub = FleetOptions {
        preset: opts.preset,
        devices: opts.devices,
        rounds: opts.rounds,
        codec: opts.codec,
        aggregator: opts.aggregator,
        byzantine: opts.byzantine.clone(),
        threads,
        checkpoint: None,
        resume: opts.resume,
        halt_after: None,
        metrics: None,
        no_verify: opts.no_verify,
    };
    if durable {
        sub.checkpoint = opts.checkpoint.clone();
    }
    let env = sub.build_env(Some(scheduler));
    let mut model = env.build_model(&sub.model_spec());
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let started = std::time::Instant::now();
    let hostile = sub.hostile();
    let mut plain = InProcess;
    let mut adversarial = AdversarialTransport::new(InProcess, sub.behaviors(), ADV_SEED);
    let history = run_with(
        model.as_mut(),
        &mut mask,
        &env,
        0,
        &mut ledger,
        &mut no_hook(),
        RunOptions {
            transport: if hostile {
                &mut adversarial
            } else {
                &mut plain
            },
            // Each policy saves to its own `<path>.<scheduler>` file so
            // the three runs never collide.
            checkpoint: sub
                .checkpoint
                .as_deref()
                .map(|p| CheckpointSpec::every_round(format!("{p}.{}", scheduler.name()))),
            resume: sub.resume,
            halt_after: None,
            hook_save: None,
            hook_load: None,
            presence: None,
            metrics: hub.cloned(),
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("ft: run failed: {e}");
        std::process::exit(1);
    });
    if hostile {
        ledger.record_handshake_faults(adversarial.handshake_faults());
    }
    let wall = started.elapsed().as_secs_f64();
    (*history.last().expect("nonempty history"), ledger, wall)
}

/// `ft serve`: the federation server end of a TCP fleet, either accepting
/// real devices (`--listen addr`) or spinning up a loopback demo fleet of
/// client threads. By default the final model is asserted bit-identical to
/// the in-process reference run of the same seed (`--no-verify` skips it).
pub fn cmd_serve(argv: &[String]) -> i32 {
    let a = Args::new(argv);
    let opts = FleetOptions::parse(&a, true);
    if opts.preset != Preset::Demo {
        die("ft serve runs the demo environment; --preset is not accepted here");
    }
    let metrics = start_metrics(&opts);
    let hub = metrics.as_ref().map(|(h, _)| h);
    match a.get("--listen") {
        Some(addr) => {
            opts.print_header("tcp (server)");
            println!(
                "listening on {addr}, waiting for {} devices...",
                opts.devices
            );
            // A hostile fleet needs the tolerant accept loop (handshake
            // screening); a clean one keeps the strict listener.
            let mut transport = if opts.byzantine.is_empty() {
                ft_fl::TcpTransport::listen(addr, opts.devices)
                    .unwrap_or_else(|e| die(&format!("listen failed: {e}")))
            } else {
                let listener =
                    TcpListener::bind(addr).unwrap_or_else(|e| die(&format!("listen failed: {e}")));
                ft_fl::TcpTransport::accept_fleet_tolerant(listener, opts.devices)
                    .unwrap_or_else(|e| die(&format!("accept failed: {e}")))
            };
            let mut tcp = run_server(&mut transport, &opts, hub);
            tcp.2.record_handshake_faults(transport.handshake_faults());
            assert_matches_reference(&tcp, &opts);
            0
        }
        None => {
            opts.print_header("tcp (demo: server + client threads)");
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
            let addr = listener.local_addr().expect("local addr");
            println!("loopback fleet on {addr}");
            let behaviors = opts.behaviors();
            let clients: Vec<_> = (0..opts.devices)
                .map(|k| {
                    let behavior = behaviors[k];
                    let env = opts.build_env(None);
                    let spec = opts.model_spec();
                    std::thread::spawn(move || {
                        match behavior {
                            Behavior::Honest => run_tcp_device(addr, k, &env, &spec),
                            hostile => {
                                run_byzantine_tcp_device(addr, k, &env, &spec, hostile, ADV_SEED)
                            }
                        }
                        .unwrap_or_else(|e| panic!("device {k} failed: {e}"));
                    })
                })
                .collect();
            let mut transport = if opts.byzantine.is_empty() {
                ft_fl::TcpTransport::accept_fleet(&listener, opts.devices)
                    .unwrap_or_else(|e| die(&format!("accept failed: {e}")))
            } else {
                ft_fl::TcpTransport::accept_fleet_tolerant(listener, opts.devices)
                    .unwrap_or_else(|e| die(&format!("accept failed: {e}")))
            };
            let mut tcp = run_server(&mut transport, &opts, hub);
            tcp.2.record_handshake_faults(transport.handshake_faults());
            for c in clients {
                c.join().expect("client thread");
            }
            assert_matches_reference(&tcp, &opts);
            0
        }
    }
}

/// `ft device`: one TCP device (honest or, when listed in `--byzantine`,
/// misbehaving) against a server started with `ft serve --listen`.
pub fn cmd_device(argv: &[String]) -> i32 {
    let a = Args::new(argv);
    let opts = FleetOptions::parse(&a, true);
    let Some(addr) = a.get("--connect") else {
        die("ft device requires --connect <addr>");
    };
    let Some(device) = a.get_parse::<usize>("--device") else {
        die("ft device requires --device <k>");
    };
    opts.print_header("tcp (device)");
    let env = opts.build_env(None);
    let behavior = opts
        .byzantine
        .iter()
        .find(|(d, _)| *d == device)
        .map(|(_, b)| *b)
        .unwrap_or(Behavior::Honest);
    let result = match behavior {
        Behavior::Honest => run_tcp_device(addr, device, &env, &opts.model_spec()),
        hostile => {
            run_byzantine_tcp_device(addr, device, &env, &opts.model_spec(), hostile, ADV_SEED)
        }
    };
    if let Err(e) = result {
        eprintln!("ft: device {device} failed: {e}");
        return 1;
    }
    println!("device {device}: done ({})", behavior.name());
    0
}

/// Runs the server rounds over an accepted TCP fleet and returns
/// `(final accuracy, final params, ledger)`.
fn run_server(
    transport: &mut ft_fl::TcpTransport,
    opts: &FleetOptions,
    hub: Option<&Arc<MetricsHub>>,
) -> (f32, Vec<f32>, CostLedger) {
    let env = opts.build_env(None);
    let mut model = env.build_model(&opts.model_spec());
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let alloc_before = ft_bench::allocated_bytes();
    let history = run_with(
        model.as_mut(),
        &mut mask,
        &env,
        0,
        &mut ledger,
        &mut no_hook(),
        RunOptions {
            transport,
            checkpoint: opts.checkpoint.as_ref().map(CheckpointSpec::every_round),
            resume: opts.resume,
            halt_after: opts.halt_after,
            hook_save: None,
            hook_load: None,
            presence: None,
            metrics: hub.cloned(),
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("ft: server run failed: {e}");
        std::process::exit(1);
    });
    publish_alloc(hub, alloc_before, opts.rounds);
    let acc = history.last().copied().unwrap_or(f32::NAN);
    (acc, flat_params(model.as_ref()), ledger)
}

/// The in-process reference run of the same seed. A clean fleet takes the
/// classic `run_federated_rounds` path; a hostile one replays the same
/// adversary schedule through [`AdversarialTransport`], so the reference
/// quarantines the identical bytes the TCP server saw.
fn run_reference(opts: &FleetOptions) -> (f32, Vec<f32>, CostLedger) {
    let env = opts.build_env(None);
    let mut model = env.build_model(&opts.model_spec());
    let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
    let mut ledger = CostLedger::new();
    let history = if opts.byzantine.is_empty() {
        run_federated_rounds(
            model.as_mut(),
            &mut mask,
            &env,
            0,
            &mut ledger,
            &mut no_hook(),
        )
    } else {
        let mut transport = AdversarialTransport::new(InProcess, opts.behaviors(), ADV_SEED);
        let history = run_with(
            model.as_mut(),
            &mut mask,
            &env,
            0,
            &mut ledger,
            &mut no_hook(),
            RunOptions::new(&mut transport),
        )
        .unwrap_or_else(|e| {
            eprintln!("ft: reference run failed: {e}");
            std::process::exit(1);
        });
        ledger.record_handshake_faults(transport.handshake_faults());
        history
    };
    let acc = history.last().copied().unwrap_or(f32::NAN);
    (acc, flat_params(model.as_ref()), ledger)
}

/// Compares the TCP run against the in-process reference and exits
/// non-zero on any drift. Skipped for halted (checkpoint-partial) runs
/// and under `--no-verify`.
fn assert_matches_reference(tcp: &(f32, Vec<f32>, CostLedger), opts: &FleetOptions) {
    if let Some(halted) = opts.halt_after {
        println!("halted after {halted} rounds — checkpoint saved, reference comparison skipped");
        return;
    }
    if opts.no_verify {
        println!(
            "tcp top1 {:.4} ({:.1} simulated seconds, {:.1} KB measured uploads; \
             reference comparison skipped by --no-verify)",
            tcp.0,
            tcp.2.sim_makespan_secs(),
            tcp.2.total_payload_upload_bytes() / 1e3,
        );
        if opts.hostile() {
            print_quarantine_stats(opts.aggregator, &tcp.2);
        }
        return;
    }
    let reference = run_reference(opts);
    let drifted = tcp
        .1
        .iter()
        .zip(reference.1.iter())
        .filter(|(a, b)| a.to_bits() != b.to_bits())
        .count();
    println!(
        "tcp top1 {:.4} | in_process top1 {:.4} | parameter drift: {drifted}/{} coordinates",
        tcp.0,
        reference.0,
        reference.1.len(),
    );
    assert_eq!(
        drifted, 0,
        "TCP run diverged from the in-process run — the byte boundary changed the math"
    );
    assert_eq!(tcp.0.to_bits(), reference.0.to_bits(), "accuracy drifted");
    if opts.hostile() {
        assert_eq!(
            tcp.2.faults(),
            reference.2.faults(),
            "TCP quarantine counters diverged from the in-process adversary twin"
        );
        print_quarantine_stats(opts.aggregator, &tcp.2);
    }
    println!(
        "ok: final aggregated model is bit-identical across the TCP byte boundary \
         ({:.1} simulated seconds, {:.1} KB measured uploads)",
        tcp.2.sim_makespan_secs(),
        tcp.2.total_payload_upload_bytes() / 1e3,
    );
}
