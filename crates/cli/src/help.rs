//! Help text for `ft` and every subcommand.
//!
//! These strings are part of the CLI's contract: an integration test pins
//! them, and the CI lint job runs every `--help` and expects exit 0. Edit
//! deliberately.

pub const TOP: &str = "\
ft — operate a federated-pruning fleet

USAGE:
    ft <command> [options]

COMMANDS:
    run      Run a fleet in-process (presets: demo | straggler | lab)
    serve    Run the federation server over TCP (or a loopback demo fleet)
    device   Run one TCP device against a listening server
    resume   Continue a checkpointed run (shorthand for run --resume)
    ckpt     Inspect checkpoints: list | inspect | diff
    watch    Tail the live trace-frame stream of a --metrics endpoint
    bench    Run the trajectory benches and the regression gate
    help     Show this message, or `ft help <command>`

Every command accepts --help. Fleet commands accept
--metrics <addr> to serve live Prometheus-style metrics and the
`ft watch` trace stream from the same listener.";

pub const RUN: &str = "\
ft run — run a fleet in-process

USAGE:
    ft run [--preset demo|straggler|lab] [options]

PRESETS:
    demo       4 devices x 6 rounds, dense wire, synchronous (default)
    straggler  6-device fast/balanced/slow fleet compared across the
               synchronous, deadline and buffered schedulers
    lab        the CI lab scale: 4 devices x 24 rounds

OPTIONS:
    --devices <n>          Fleet size (demo preset only)
    --rounds <n>           Round count override
    --codec <name>         dense | mask_csr | quant_int8 | top_k
    --aggregator <name>    fedavg | trimmed_mean[:beta] | median | norm_clipped[:tau]
    --byzantine <d:b>      Hostile device (repeatable), e.g. 1:sign_flip:8
    --threads <n>          Worker threads (0 = auto via FT_THREADS)
    --checkpoint <path>    Save a checkpoint every round
    --resume               Resume from --checkpoint if the file exists
    --halt-after <n>       Stop after n rounds (kill emulation)
    --metrics <addr>       Serve live metrics + trace stream, e.g. 127.0.0.1:9090";

pub const SERVE: &str = "\
ft serve — run the federation server over TCP

USAGE:
    ft serve [--listen <addr> | --demo] [options]

MODES:
    --listen <addr>   Accept real devices on addr (run them with `ft device`)
    --demo            Loopback fleet: server + client threads in one process
                      on an ephemeral port (the default)

OPTIONS:
    --devices <n>          Fleet size (default 4)
    --rounds <n>           Round count (default 6)
    --codec <name>         dense | mask_csr | quant_int8 | top_k
                           (top_k runs without error feedback over TCP)
    --aggregator <name>    fedavg | trimmed_mean[:beta] | median | norm_clipped[:tau]
    --byzantine <d:b>      Hostile device (repeatable), e.g. 3:garbage
    --checkpoint <path>    Save a checkpoint every round
    --resume               Resume from --checkpoint if the file exists
    --halt-after <n>       Stop after n rounds (kill emulation)
    --metrics <addr>       Serve live metrics + trace stream
    --no-verify            Skip the bit-identity check against the
                           in-process reference run";

pub const DEVICE: &str = "\
ft device — run one TCP device against a listening server

USAGE:
    ft device --connect <addr> --device <k> [options]

OPTIONS:
    --devices <n>          Fleet size the server expects (default 4)
    --rounds <n>           Round count (must match the server)
    --codec <name>         Wire codec (must match the server)
    --aggregator <name>    Aggregation rule (must match the server)
    --byzantine <d:b>      Behavior table; if this device is listed it
                           runs the misbehaving client";

pub const RESUME: &str = "\
ft resume — continue a checkpointed run

USAGE:
    ft resume --checkpoint <path> [run options]

Shorthand for `ft run --resume --checkpoint <path>`: same presets and
options as `ft run`; the checkpoint must have been written by a run with
the same preset and knobs (the config fingerprint is validated).";

pub const CKPT: &str = "\
ft ckpt — inspect checkpoint files

USAGE:
    ft ckpt list <path>...          One summary line per checkpoint
    ft ckpt inspect <path>          Deterministic field-by-field digest
    ft ckpt diff <a> <b>            Field-level diff; exit 1 when they differ

`inspect` prints only host-independent state (config fingerprint, round,
mask epoch, fault counters, ...), so its output is stable across machines
and thread counts.";

pub const WATCH: &str = "\
ft watch — tail the live trace-frame stream

USAGE:
    ft watch <addr> [--limit <n>]

Connects to the --metrics endpoint of a running fleet and prints one line
per device-round trace frame as it arrives. --limit exits after n frames
(useful in scripts); otherwise watch runs until the server closes.";

pub const BENCH: &str = "\
ft bench — run the trajectory benches and the regression gate

USAGE:
    ft bench [--quick] [--bench <name>] [--check-only]

OPTIONS:
    --quick          Set FT_BENCH_QUICK=1 (the CI smoke configuration)
    --bench <name>   Run one bench target (repeatable); default:
                     micro_ops and fleet_trajectory
    --check-only     Skip the benches, only run the bench_check gate

Wraps `cargo bench -p ft-bench` and `cargo run -p ft-bench --bin
bench_check`, so it must run from the workspace root.";

/// Help text for `ft help <topic>`; unknown topics fall back to the
/// top-level summary.
pub fn for_topic(topic: Option<&str>) -> &'static str {
    match topic {
        Some("run") => RUN,
        Some("serve") => SERVE,
        Some("device") => DEVICE,
        Some("resume") => RESUME,
        Some("ckpt") => CKPT,
        Some("watch") => WATCH,
        Some("bench") => BENCH,
        _ => TOP,
    }
}
