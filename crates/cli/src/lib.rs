//! The `ft` operator CLI.
//!
//! One binary for everything an operator does with a fleet: run it
//! (in-process or across real TCP sockets), watch it live (Prometheus-style
//! metrics endpoint plus a length-prefixed trace-frame stream), checkpoint
//! it, inspect and diff the checkpoints, and drive the benchmark harness.
//!
//! ```bash
//! ft run --preset lab --metrics 127.0.0.1:9090   # in-process fleet + metrics
//! ft serve --demo --devices 4                    # TCP server + client threads
//! ft serve --listen 127.0.0.1:7070               # TCP server, real processes
//! ft device --connect 127.0.0.1:7070 --device 0  # one TCP device
//! ft resume --checkpoint /tmp/fleet.ckpt         # continue a halted run
//! ft ckpt inspect /tmp/fleet.ckpt                # deterministic digest
//! ft ckpt diff a.ckpt b.ckpt                     # field-level comparison
//! ft watch 127.0.0.1:9090                        # tail the live trace stream
//! ft bench --quick                               # trajectory benches + gate
//! ```
//!
//! Everything is hand-rolled over `std` — no argument-parsing or HTTP
//! dependencies — and the metrics plumbing is strictly observational: a run
//! with `--metrics` is bit-identical to the same run without it.

pub mod args;
pub mod bench;
pub mod ckpt;
pub mod fleet;
pub mod help;
pub mod watch;

/// Runs one CLI invocation (argv without the program name) and returns the
/// process exit code. Split from `main` so integration tests can drive the
/// exact command surface in-process.
pub fn dispatch(argv: &[String]) -> i32 {
    let Some(cmd) = argv.first().map(String::as_str) else {
        println!("{}", help::TOP);
        return 0;
    };
    let rest = &argv[1..];
    match cmd {
        "-h" | "--help" | "help" => {
            println!("{}", help::for_topic(rest.first().map(String::as_str)));
            0
        }
        "run" => with_help(rest, help::RUN, fleet::cmd_run),
        "serve" => with_help(rest, help::SERVE, fleet::cmd_serve),
        "device" => with_help(rest, help::DEVICE, fleet::cmd_device),
        "resume" => with_help(rest, help::RESUME, fleet::cmd_resume),
        "ckpt" => with_help(rest, help::CKPT, ckpt::cmd_ckpt),
        "watch" => with_help(rest, help::WATCH, watch::cmd_watch),
        "bench" => with_help(rest, help::BENCH, bench::cmd_bench),
        other => {
            eprintln!("ft: unknown command {other:?}\n");
            eprintln!("{}", help::TOP);
            2
        }
    }
}

fn with_help(rest: &[String], help_text: &str, run: fn(&[String]) -> i32) -> i32 {
    if rest.iter().any(|a| a == "-h" || a == "--help") {
        println!("{help_text}");
        return 0;
    }
    run(rest)
}
