//! The `ft` binary: a thin shell around [`ft_cli::dispatch`].
//!
//! The counting allocator is installed here (not in the library) so the
//! `--metrics` endpoint can report real allocation traffic per round while
//! library consumers and tests keep the plain system allocator.

#[global_allocator]
static ALLOC: ft_bench::CountingAlloc = ft_bench::CountingAlloc;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(ft_cli::dispatch(&argv));
}
