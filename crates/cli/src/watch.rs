//! `ft watch` — tail the live trace-frame stream of a running fleet.
//!
//! Speaks the `WATCH` side of the metrics listener: one request line, then
//! a sequence of length-prefixed [`ft_fl::TraceEvent`] frames until the run
//! ends. Decoding goes through the shared [`ft_fl::read_trace_frame`]
//! reader, so a truncated or corrupt stream surfaces as a typed error and
//! an exit code — never a panic.

use crate::args::{die, Args};
use ft_fl::{read_trace_frame, TraceEvent, TraceStreamError};
use std::io::Write;
use std::net::TcpStream;

pub fn cmd_watch(argv: &[String]) -> i32 {
    let a = Args::new(argv);
    let positionals = a.positionals();
    let [addr] = positionals.as_slice() else {
        die("ft watch requires exactly one <addr>, e.g. 127.0.0.1:9090");
    };
    let limit: Option<usize> = a.get_parse("--limit");
    let mut stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ft: connect {addr}: {e}");
            return 1;
        }
    };
    if let Err(e) = stream.write_all(b"WATCH\r\n") {
        eprintln!("ft: handshake with {addr}: {e}");
        return 1;
    }
    watch_stream(&mut stream, limit, &mut std::io::stdout())
}

/// Reads frames until EOF, error, or `limit`; split from the socket setup
/// so tests can drive it with an in-memory reader.
pub fn watch_stream<R: std::io::Read, W: Write>(
    reader: &mut R,
    limit: Option<usize>,
    out: &mut W,
) -> i32 {
    let mut seen = 0usize;
    loop {
        if limit.is_some_and(|n| seen >= n) {
            return 0;
        }
        match read_trace_frame(reader) {
            // Clean EOF at a frame boundary: the run finished.
            Ok(None) => return 0,
            Ok(Some(ev)) => {
                seen += 1;
                let _ = writeln!(out, "{}", format_event(&ev));
            }
            Err(TraceStreamError::Io(e)) => {
                eprintln!("ft: trace stream i/o error: {e}");
                return 1;
            }
            Err(TraceStreamError::Decode(e)) => {
                eprintln!("ft: trace stream corrupt: {e}");
                return 1;
            }
        }
    }
}

/// One RTT-style line per device-round arrival.
pub fn format_event(ev: &TraceEvent) -> String {
    format!(
        "round {:>4}  device {:>4}  {:>8.1}s -> {:>8.1}s  {}  stale {}",
        ev.round,
        ev.device,
        ev.start_secs,
        ev.finish_secs,
        if ev.applied { "applied" } else { "dropped" },
        ev.staleness,
    )
}
