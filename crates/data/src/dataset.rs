//! In-memory labelled image datasets and batching.

use ft_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A labelled image dataset stored as one flat `f32` buffer.
///
/// Images use `[c, h, w]` layout per sample; batches come out as
/// `[n, c, h, w]` tensors ready for the models in `ft-nn`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    images: Vec<f32>,
    labels: Vec<usize>,
    channels: usize,
    height: usize,
    width: usize,
    classes: usize,
}

impl Dataset {
    /// Wraps raw buffers.
    ///
    /// # Panics
    ///
    /// Panics if buffer sizes are inconsistent or any label is out of range.
    pub fn new(
        images: Vec<f32>,
        labels: Vec<usize>,
        channels: usize,
        height: usize,
        width: usize,
        classes: usize,
    ) -> Self {
        let sample = channels * height * width;
        assert!(sample > 0, "sample size must be positive");
        assert_eq!(
            images.len(),
            labels.len() * sample,
            "images/labels size mismatch"
        );
        assert!(labels.iter().all(|&y| y < classes), "label out of range");
        Dataset {
            images,
            labels,
            channels,
            height,
            width,
            classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// `[channels, height, width]` of each sample.
    pub fn sample_shape(&self) -> [usize; 3] {
        [self.channels, self.height, self.width]
    }

    /// Labels slice.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Assembles the samples at `indices` into a `[n, c, h, w]` batch.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let mut buf = BatchBuf::default();
        self.batch_into(indices, &mut buf);
        (buf.images, buf.labels)
    }

    /// [`Dataset::batch`] writing into a caller-owned [`BatchBuf`], reusing
    /// its buffers: repeated batching (the training loop, the eval cadence)
    /// allocates nothing at steady state.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn batch_into(&self, indices: &[usize], buf: &mut BatchBuf) {
        let sample = self.channels * self.height * self.width;
        buf.images
            .resize_for_overwrite(&[indices.len(), self.channels, self.height, self.width]);
        let data = buf.images.data_mut();
        buf.labels.clear();
        for (slot, &i) in indices.iter().enumerate() {
            assert!(i < self.len(), "sample index {i} out of range");
            data[slot * sample..(slot + 1) * sample]
                .copy_from_slice(&self.images[i * sample..(i + 1) * sample]);
            buf.labels.push(self.labels[i]);
        }
    }

    /// Batches the contiguous index range `start..end` without an index
    /// vector — the shape of every sequential eval sweep.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > len()`.
    pub fn batch_range_into(&self, start: usize, end: usize, buf: &mut BatchBuf) {
        assert!(
            start <= end && end <= self.len(),
            "bad range {start}..{end}"
        );
        let sample = self.channels * self.height * self.width;
        let n = end - start;
        buf.images
            .resize_for_overwrite(&[n, self.channels, self.height, self.width]);
        buf.images
            .data_mut()
            .copy_from_slice(&self.images[start * sample..end * sample]);
        buf.labels.clear();
        buf.labels.extend_from_slice(&self.labels[start..end]);
    }

    /// The whole dataset as one batch.
    pub fn full_batch(&self) -> (Tensor, Vec<usize>) {
        let mut buf = BatchBuf::default();
        self.batch_range_into(0, self.len(), &mut buf);
        (buf.images, buf.labels)
    }

    /// A new dataset containing only the samples at `indices`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let sample = self.channels * self.height * self.width;
        let mut images = Vec::with_capacity(indices.len() * sample);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "sample index {i} out of range");
            images.extend_from_slice(&self.images[i * sample..(i + 1) * sample]);
            labels.push(self.labels[i]);
        }
        Dataset {
            images,
            labels,
            channels: self.channels,
            height: self.height,
            width: self.width,
            classes: self.classes,
        }
    }

    /// Samples a development split of `ceil(frac · len)` examples without
    /// replacement — the `D̂_k ⊂ D_k` of Alg. 1 (ratio 0.1 in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `frac` is not in `(0, 1]`.
    pub fn dev_split<R: Rng + ?Sized>(&self, rng: &mut R, frac: f32) -> Dataset {
        assert!(
            frac > 0.0 && frac <= 1.0,
            "dev fraction must be in (0,1], got {frac}"
        );
        let n = ((self.len() as f32 * frac).ceil() as usize).clamp(1.min(self.len()), self.len());
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        idx.truncate(n);
        self.subset(&idx)
    }

    /// Iterates shuffled mini-batches of size `batch_size`.
    pub fn iter_batches<'a, R: Rng + ?Sized>(
        &'a self,
        rng: &mut R,
        batch_size: usize,
    ) -> BatchIter<'a> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        BatchIter {
            dataset: self,
            order: idx,
            batch_size: batch_size.max(1),
            pos: 0,
        }
    }

    /// Per-class sample counts (length = `classes`).
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.classes];
        for &y in &self.labels {
            h[y] += 1;
        }
        h
    }
}

/// Reusable batch assembly buffers for [`Dataset::batch_into`] /
/// [`Dataset::batch_range_into`].
///
/// Holds the `[n, c, h, w]` image tensor and the label vector; both are
/// resized in place, so one `BatchBuf` per training/eval loop amortizes all
/// batching allocations away.
#[derive(Clone, Debug, Default)]
pub struct BatchBuf {
    /// Batch images, `[n, c, h, w]`.
    pub images: Tensor,
    /// Batch labels, length `n`.
    pub labels: Vec<usize>,
}

/// Iterator over shuffled mini-batches of a [`Dataset`].
pub struct BatchIter<'a> {
    dataset: &'a Dataset,
    order: Vec<usize>,
    batch_size: usize,
    pos: usize,
}

impl Iterator for BatchIter<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.order.len() {
            return None;
        }
        let end = (self.pos + self.batch_size).min(self.order.len());
        let batch = self.dataset.batch(&self.order[self.pos..end]);
        self.pos = end;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ds() -> Dataset {
        // 4 samples of 1x2x2, labels 0..=3 over 4 classes.
        let images: Vec<f32> = (0..16).map(|v| v as f32).collect();
        Dataset::new(images, vec![0, 1, 2, 3], 1, 2, 2, 4)
    }

    #[test]
    fn batch_layout() {
        let d = ds();
        let (x, y) = d.batch(&[1, 3]);
        assert_eq!(x.shape(), &[2, 1, 2, 2]);
        assert_eq!(y, vec![1, 3]);
        assert_eq!(x.data()[0], 4.0); // first pixel of sample 1
    }

    #[test]
    fn batch_into_reuses_buffers_and_matches_batch() {
        let d = ds();
        let mut buf = BatchBuf::default();
        d.batch_into(&[1, 3], &mut buf);
        let (x, y) = d.batch(&[1, 3]);
        assert_eq!(buf.images.shape(), x.shape());
        assert_eq!(buf.images.data(), x.data());
        assert_eq!(buf.labels, y);
        // Refill with a different geometry: no stale contents.
        d.batch_into(&[0], &mut buf);
        assert_eq!(buf.images.shape(), &[1, 1, 2, 2]);
        assert_eq!(buf.labels, &[0]);
        assert_eq!(buf.images.data()[0], 0.0);
    }

    #[test]
    fn batch_range_matches_indexed_batch() {
        let d = ds();
        let mut buf = BatchBuf::default();
        d.batch_range_into(1, 3, &mut buf);
        let (x, y) = d.batch(&[1, 2]);
        assert_eq!(buf.images.data(), x.data());
        assert_eq!(buf.labels, y);
        // Full range equals full_batch.
        d.batch_range_into(0, d.len(), &mut buf);
        let (fx, fy) = d.full_batch();
        assert_eq!(buf.images.data(), fx.data());
        assert_eq!(buf.labels, fy);
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn batch_range_rejects_overrun() {
        let d = ds();
        let mut buf = BatchBuf::default();
        d.batch_range_into(2, 5, &mut buf);
    }

    #[test]
    fn subset_preserves_meta() {
        let d = ds().subset(&[0, 2]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.classes(), 4);
        assert_eq!(d.labels(), &[0, 2]);
    }

    #[test]
    fn dev_split_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let d = ds();
        let dev = d.dev_split(&mut rng, 0.5);
        assert_eq!(dev.len(), 2);
        let dev_small = d.dev_split(&mut rng, 0.1);
        assert_eq!(dev_small.len(), 1); // ceil + floor at 1
    }

    #[test]
    fn batches_cover_all_samples_once() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let d = ds();
        let mut seen = 0;
        for (x, y) in d.iter_batches(&mut rng, 3) {
            assert_eq!(x.shape()[0], y.len());
            seen += y.len();
        }
        assert_eq!(seen, 4);
    }

    #[test]
    fn histogram_counts() {
        let d = Dataset::new(vec![0.0; 3 * 4], vec![1, 1, 2], 1, 2, 2, 3);
        assert_eq!(d.class_histogram(), vec![0, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn rejects_inconsistent_buffers() {
        let _ = Dataset::new(vec![0.0; 5], vec![0], 1, 2, 2, 1);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let _ = Dataset::new(vec![0.0; 4], vec![7], 1, 2, 2, 2);
    }
}
