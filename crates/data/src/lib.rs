//! Synthetic dataset profiles and non-iid partitioning.
//!
//! The paper evaluates on CIFAR-10, CIFAR-100, CINIC-10 and SVHN. Real image
//! corpora are not available in this environment, so this crate generates
//! *class-conditional synthetic images*: each class has a smooth random
//! prototype pattern; samples are `signal · prototype + noise · N(0, 1)`.
//! Per-dataset profiles mirror the relative difficulty and size of the real
//! datasets (SVHN easiest, CINIC-10 hardest and largest, CIFAR-100 has 100
//! classes). See DESIGN.md §2 for why this substitution preserves the
//! behaviour the paper measures.
//!
//! Non-iid federated splits use the standard Dirichlet(α) partition over
//! class proportions (Sec. IV-A1 of the paper, following Luo et al.).
//!
//! # Examples
//!
//! ```
//! use ft_data::{DatasetProfile, SynthConfig};
//!
//! let cfg = SynthConfig::tiny_for_tests(DatasetProfile::Cifar10, 0);
//! let (train, test) = cfg.generate();
//! assert_eq!(train.classes(), 10);
//! assert!(train.len() > 0 && test.len() > 0);
//! ```

mod dataset;
mod partition;
mod synth;

pub use dataset::{BatchBuf, BatchIter, Dataset};
pub use partition::dirichlet_partition;
pub use synth::{DatasetProfile, SynthConfig};
