//! Dirichlet non-iid partitioning of a dataset across devices.

use rand::Rng;

/// Splits sample indices across `k` devices with class proportions drawn
/// from `Dirichlet(α)` per class (the standard label-skew protocol the paper
/// uses with α = 0.5; lower α = more heterogeneous).
///
/// Every device is guaranteed at least one sample: after the draw, empty
/// devices steal one sample from the largest device (rare for reasonable α
/// and dataset sizes, but the simulator requires nonempty local datasets).
///
/// # Panics
///
/// Panics if `k == 0`, `alpha <= 0`, or there are fewer samples than
/// devices.
pub fn dirichlet_partition<R: Rng + ?Sized>(
    rng: &mut R,
    labels: &[usize],
    classes: usize,
    k: usize,
    alpha: f64,
) -> Vec<Vec<usize>> {
    assert!(k > 0, "need at least one device");
    assert!(alpha > 0.0, "Dirichlet alpha must be positive, got {alpha}");
    assert!(
        labels.len() >= k,
        "fewer samples ({}) than devices ({k})",
        labels.len()
    );
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); classes];
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < classes, "label {y} out of range");
        per_class[y].push(i);
    }

    let mut devices: Vec<Vec<usize>> = vec![Vec::new(); k];
    for idxs in per_class.iter().filter(|v| !v.is_empty()) {
        let props = dirichlet(rng, alpha, k);
        // Convert proportions to cut points over this class's samples.
        let n = idxs.len();
        let mut cuts = Vec::with_capacity(k);
        let mut acc = 0.0f64;
        for &p in &props {
            acc += p;
            cuts.push(((acc * n as f64).round() as usize).min(n));
        }
        let mut start = 0usize;
        for (d, &end) in cuts.iter().enumerate() {
            for &sample in &idxs[start..end.max(start)] {
                devices[d].push(sample);
            }
            start = end.max(start);
        }
    }

    // Re-balance: no device may be empty.
    for d in 0..k {
        if devices[d].is_empty() {
            let donor = (0..k).max_by_key(|&j| devices[j].len()).expect("k > 0");
            assert!(
                devices[donor].len() > 1,
                "not enough samples to cover all devices"
            );
            let moved = devices[donor].pop().expect("donor nonempty");
            devices[d].push(moved);
        }
    }
    devices
}

/// Samples a `Dirichlet(α, …, α)` vector of length `k` via normalized
/// Gamma(α, 1) draws.
fn dirichlet<R: Rng + ?Sized>(rng: &mut R, alpha: f64, k: usize) -> Vec<f64> {
    let draws: Vec<f64> = (0..k).map(|_| gamma_sample(rng, alpha)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= 0.0 {
        // Numerically degenerate (extremely small alpha): put all mass on a
        // random device.
        let mut v = vec![0.0; k];
        v[rng.gen_range(0..k)] = 1.0;
        return v;
    }
    draws.into_iter().map(|d| d / sum).collect()
}

/// Marsaglia–Tsang Gamma(shape, 1) sampler; handles shape < 1 by boosting.
fn gamma_sample<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    if shape < 1.0 {
        // Gamma(a) = Gamma(a + 1) * U^{1/a}
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return gamma_sample(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal64(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

fn normal64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0f64..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn labels(classes: usize, per_class: usize) -> Vec<usize> {
        (0..classes)
            .flat_map(|c| std::iter::repeat_n(c, per_class))
            .collect()
    }

    #[test]
    fn covers_every_sample_exactly_once() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let y = labels(10, 20);
        let parts = dirichlet_partition(&mut rng, &y, 10, 5, 0.5);
        let mut all: Vec<usize> = parts.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn no_empty_devices() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for alpha in [0.1, 0.5, 10.0] {
            let y = labels(10, 10);
            let parts = dirichlet_partition(&mut rng, &y, 10, 8, alpha);
            assert!(parts.iter().all(|p| !p.is_empty()), "alpha={alpha}");
        }
    }

    #[test]
    fn low_alpha_is_more_skewed_than_high_alpha() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let y = labels(10, 100);
        let skew = |parts: &[Vec<usize>], y: &[usize]| -> f64 {
            // Mean per-device entropy of class distribution (lower = more skew).
            let mut total = 0.0;
            for p in parts {
                let mut h = [0usize; 10];
                for &i in p {
                    h[y[i]] += 1;
                }
                let n: usize = h.iter().sum();
                let ent: f64 = h
                    .iter()
                    .filter(|&&c| c > 0)
                    .map(|&c| {
                        let q = c as f64 / n as f64;
                        -q * q.ln()
                    })
                    .sum();
                total += ent;
            }
            total / parts.len() as f64
        };
        let skewed = dirichlet_partition(&mut rng, &y, 10, 10, 0.1);
        let uniform = dirichlet_partition(&mut rng, &y, 10, 10, 100.0);
        assert!(
            skew(&skewed, &y) < skew(&uniform, &y),
            "entropy ordering violated"
        );
    }

    #[test]
    fn gamma_sampler_mean_is_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for shape in [0.5, 1.0, 4.0] {
            let n = 4000;
            let mean: f64 = (0..n).map(|_| gamma_sample(&mut rng, shape)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.15 * shape.max(1.0),
                "shape {shape}: mean {mean}"
            );
        }
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let v = dirichlet(&mut rng, 0.5, 7);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(v.iter().all(|&p| p >= 0.0));
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn rejects_bad_alpha() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let _ = dirichlet_partition(&mut rng, &[0, 1], 2, 2, 0.0);
    }
}
