//! Class-conditional synthetic image generation.

use crate::Dataset;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Which real dataset a synthetic corpus stands in for.
///
/// The profiles reproduce the *relative* properties the paper's evaluation
/// depends on: class count, corpus size, and difficulty (signal-to-noise).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetProfile {
    /// 10 classes, medium difficulty (baseline).
    Cifar10,
    /// 100 classes, hardest per-class discrimination.
    Cifar100,
    /// 10 classes, larger corpus, noisier than CIFAR-10.
    Cinic10,
    /// 10 classes, easiest (digit-like regularity), larger train set.
    Svhn,
}

impl DatasetProfile {
    /// Number of classes.
    pub fn classes(self) -> usize {
        match self {
            DatasetProfile::Cifar100 => 100,
            _ => 10,
        }
    }

    /// Noise standard deviation relative to the prototype signal: smaller is
    /// easier. Tuned so accuracy ordering matches the paper
    /// (SVHN > CIFAR-10 > CINIC-10 > CIFAR-100).
    pub fn noise_sigma(self) -> f32 {
        match self {
            DatasetProfile::Svhn => 0.6,
            DatasetProfile::Cifar10 => 1.0,
            DatasetProfile::Cinic10 => 1.4,
            DatasetProfile::Cifar100 => 1.1,
        }
    }

    /// Relative corpus-size multiplier (CINIC-10 is ~3.6× CIFAR; SVHN ~1.5×).
    pub fn size_factor(self) -> f32 {
        match self {
            DatasetProfile::Cinic10 => 1.8,
            DatasetProfile::Svhn => 1.4,
            _ => 1.0,
        }
    }

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            DatasetProfile::Cifar10 => "cifar10",
            DatasetProfile::Cifar100 => "cifar100",
            DatasetProfile::Cinic10 => "cinic10",
            DatasetProfile::Svhn => "svhn",
        }
    }
}

/// Configuration of a synthetic corpus.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Which dataset to imitate.
    pub profile: DatasetProfile,
    /// Training samples per class *before* the profile size factor.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Square image side.
    pub resolution: usize,
    /// Image channels (3 for all paper datasets).
    pub channels: usize,
    /// Seed controlling prototypes and sampling.
    pub seed: u64,
}

impl SynthConfig {
    /// A tiny corpus for unit tests (renders in milliseconds).
    pub fn tiny_for_tests(profile: DatasetProfile, seed: u64) -> Self {
        SynthConfig {
            profile,
            train_per_class: 8,
            test_per_class: 4,
            resolution: 8,
            channels: 3,
            seed,
        }
    }

    /// The default experiment scale used by the bench harnesses.
    pub fn bench_default(profile: DatasetProfile, seed: u64) -> Self {
        SynthConfig {
            profile,
            train_per_class: 40,
            test_per_class: 20,
            resolution: 16,
            channels: 3,
            seed,
        }
    }

    /// Generates `(train, test)` datasets.
    ///
    /// Prototypes are smooth random fields (sums of a few random sinusoids)
    /// per class and channel, so nearby pixels correlate — convolutions have
    /// real structure to learn, and per-class feature statistics differ,
    /// which is what makes BN statistics informative under non-iid splits.
    pub fn generate(&self) -> (Dataset, Dataset) {
        let classes = self.profile.classes();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x5eed_f00d);
        let protos = Prototypes::new(&mut rng, classes, self.channels, self.resolution);
        let train_n =
            ((self.train_per_class as f32 * self.profile.size_factor()).round() as usize).max(1);
        let train = self.render(&protos, &mut rng, train_n);
        let test = self.render(&protos, &mut rng, self.test_per_class.max(1));
        (train, test)
    }

    fn render<R: Rng + ?Sized>(
        &self,
        protos: &Prototypes,
        rng: &mut R,
        per_class: usize,
    ) -> Dataset {
        let classes = self.profile.classes();
        let sample = self.channels * self.resolution * self.resolution;
        let noise = self.profile.noise_sigma();
        let mut images = Vec::with_capacity(classes * per_class * sample);
        let mut labels = Vec::with_capacity(classes * per_class);
        for class in 0..classes {
            for _ in 0..per_class {
                let proto = protos.class(class);
                for &p in proto {
                    let n: f32 = standard_normal(rng);
                    images.push(p + noise * n);
                }
                labels.push(class);
            }
        }
        // Shuffle so batches are class-mixed even without external shuffling.
        let mut order: Vec<usize> = (0..labels.len()).collect();
        use rand::seq::SliceRandom;
        order.shuffle(rng);
        let mut s_images = Vec::with_capacity(images.len());
        let mut s_labels = Vec::with_capacity(labels.len());
        for &i in &order {
            s_images.extend_from_slice(&images[i * sample..(i + 1) * sample]);
            s_labels.push(labels[i]);
        }
        Dataset::new(
            s_images,
            s_labels,
            self.channels,
            self.resolution,
            self.resolution,
            classes,
        )
    }
}

/// Per-class smooth prototype patterns.
struct Prototypes {
    data: Vec<f32>, // [classes, channels, res, res]
    sample: usize,
}

impl Prototypes {
    fn new<R: Rng + ?Sized>(rng: &mut R, classes: usize, channels: usize, res: usize) -> Self {
        let sample = channels * res * res;
        let mut data = Vec::with_capacity(classes * sample);
        for _class in 0..classes {
            for _c in 0..channels {
                // Sum of 3 random low-frequency sinusoids + channel offset.
                let offset: f32 = rng.gen_range(-0.5..0.5);
                let waves: Vec<(f32, f32, f32, f32)> = (0..3)
                    .map(|_| {
                        (
                            rng.gen_range(0.5..2.0),                   // amplitude
                            rng.gen_range(0.3..1.5),                   // freq x
                            rng.gen_range(0.3..1.5),                   // freq y
                            rng.gen_range(0.0..std::f32::consts::TAU), // phase
                        )
                    })
                    .collect();
                for y in 0..res {
                    for x in 0..res {
                        let (xf, yf) = (x as f32 / res as f32, y as f32 / res as f32);
                        let mut v = offset;
                        for &(a, fx, fy, ph) in &waves {
                            v += a * (std::f32::consts::TAU * (fx * xf + fy * yf) + ph).sin();
                        }
                        data.push(v);
                    }
                }
            }
        }
        Prototypes { data, sample }
    }

    fn class(&self, c: usize) -> &[f32] {
        &self.data[c * self.sample..(c + 1) * self.sample]
    }
}

fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0f32..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_expected_classes() {
        assert_eq!(DatasetProfile::Cifar10.classes(), 10);
        assert_eq!(DatasetProfile::Cifar100.classes(), 100);
        assert_eq!(DatasetProfile::Svhn.classes(), 10);
        assert_eq!(DatasetProfile::Cinic10.classes(), 10);
    }

    #[test]
    fn difficulty_ordering() {
        assert!(DatasetProfile::Svhn.noise_sigma() < DatasetProfile::Cifar10.noise_sigma());
        assert!(DatasetProfile::Cifar10.noise_sigma() < DatasetProfile::Cinic10.noise_sigma());
    }

    #[test]
    fn generate_shapes_and_balance() {
        let cfg = SynthConfig::tiny_for_tests(DatasetProfile::Cifar10, 3);
        let (train, test) = cfg.generate();
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 40);
        assert_eq!(train.sample_shape(), [3, 8, 8]);
        // Balanced classes.
        assert!(train.class_histogram().iter().all(|&c| c == 8));
    }

    #[test]
    fn cinic_is_larger() {
        let (train, _) = SynthConfig::tiny_for_tests(DatasetProfile::Cinic10, 0).generate();
        let (base, _) = SynthConfig::tiny_for_tests(DatasetProfile::Cifar10, 0).generate();
        assert!(train.len() > base.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SynthConfig::tiny_for_tests(DatasetProfile::Svhn, 9)
            .generate()
            .0;
        let b = SynthConfig::tiny_for_tests(DatasetProfile::Svhn, 9)
            .generate()
            .0;
        assert_eq!(a.labels(), b.labels());
        let (xa, _) = a.batch(&[0]);
        let (xb, _) = b.batch(&[0]);
        assert_eq!(xa, xb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthConfig::tiny_for_tests(DatasetProfile::Svhn, 1)
            .generate()
            .0;
        let b = SynthConfig::tiny_for_tests(DatasetProfile::Svhn, 2)
            .generate()
            .0;
        let (xa, _) = a.batch(&[0]);
        let (xb, _) = b.batch(&[0]);
        assert_ne!(xa, xb);
    }

    #[test]
    fn classes_are_separable_by_prototype_distance() {
        // Mean image of a class should be closer to its own prototype mean
        // than to other classes' — sanity that the task is learnable.
        let cfg = SynthConfig {
            profile: DatasetProfile::Svhn,
            train_per_class: 30,
            test_per_class: 4,
            resolution: 8,
            channels: 3,
            seed: 4,
        };
        let (train, _) = cfg.generate();
        let sample: usize = 3 * 8 * 8;
        let mut means = vec![vec![0.0f32; sample]; 10];
        let mut counts = [0usize; 10];
        for i in 0..train.len() {
            let (x, y) = train.batch(&[i]);
            for (j, &v) in x.data().iter().enumerate() {
                means[y[0]][j] += v;
            }
            counts[y[0]] += 1;
        }
        for (m, &c) in means.iter_mut().zip(counts.iter()) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        // Distance between class means should exceed within-class noise/√n.
        let d01: f32 = means[0]
            .iter()
            .zip(means[1].iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(d01 > 1.0, "class means too close: {d01}");
    }
}
