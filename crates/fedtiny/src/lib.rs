//! FedTiny: distributed pruning towards tiny neural networks in federated
//! learning (Huang et al., ICDCS 2023).
//!
//! The two modules of the paper, built on the `ft-fl` simulator:
//!
//! - [`selection`] — **adaptive batch-normalization selection** (Alg. 1):
//!   the server magnitude-prunes a pool of candidate subnetworks with
//!   noisy layer-wise densities; devices re-estimate BN statistics on local
//!   development splits; the server aggregates the statistics, devices score
//!   the recalibrated candidates by local loss, and the candidate with the
//!   lowest weighted loss becomes the coarse-pruned model. The module also
//!   implements *vanilla selection* (no BN recalibration) for the Fig. 4
//!   ablation.
//! - [`progressive`] — **progressive pruning** (Alg. 2): sparse FedAvg
//!   fine-tuning interleaved with RigL-style grow/prune adjustments, one
//!   layer *block* at a time (backward order), with devices uploading only
//!   the top-`a_t^l` gradient magnitudes of pruned coordinates through an
//!   `O(a)` buffer.
//!
//! [`run_fedtiny`] wires both together into the end-to-end pipeline and
//! returns the same [`ft_fl::RunResult`] the baselines produce.
//!
//! # Examples
//!
//! ```
//! use fedtiny::{FedTinyConfig, run_fedtiny};
//! use ft_fl::ExperimentEnv;
//!
//! let env = ExperimentEnv::tiny_for_tests(0);
//! let cfg = FedTinyConfig::tiny_for_tests(0.2);
//! let result = run_fedtiny(&env, &cfg);
//! assert!(result.final_density <= 0.21);
//! ```

pub mod progressive;
pub mod selection;

mod runner;

pub use progressive::{Granularity, ProgressiveConfig};
pub use runner::{run_fedtiny, run_fedtiny_with, FedTinyConfig, FedTinyRunOptions, SelectionMode};
pub use selection::{
    adaptive_bn_selection, generate_candidate_pool, vanilla_selection, SelectionConfig,
    SelectionOutcome,
};
