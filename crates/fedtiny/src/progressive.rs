//! Progressive pruning (Algorithm 2): grow/prune adjustments with `O(a)`
//! device memory.

use ft_fl::ExperimentEnv;
use ft_metrics::{densities_from_mask, forward_flops, layer_forward_flops};
use ft_nn::loss::softmax_cross_entropy;
use ft_nn::{prunable_param_indices, LayerArch, Mode, Model};
use ft_sparse::{Mask, PruneSchedule, TopKBuffer};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How much of the model one adjustment round touches (Table III).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Granularity {
    /// One prunable layer per adjustment.
    Layer,
    /// One Fig. 2 block per adjustment (the paper's choice).
    Block,
    /// Every prunable layer every adjustment.
    Entire,
}

/// Progressive-pruning configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProgressiveConfig {
    /// When adjustments happen and how large they are.
    pub schedule: PruneSchedule,
    /// Adjustment granularity.
    pub granularity: Granularity,
    /// Iterate units from the output toward the input (`(b)` rows of
    /// Table III; the paper's best setting).
    pub backward_order: bool,
    /// First round at which adjustments may fire. Algorithm 2 adjusts at
    /// `t = 0` (untrained weights), which is harmless over the paper's 300
    /// rounds but destructive in short runs where magnitude-based dropping
    /// has no signal yet; scaled runs set this to `ΔR`.
    pub start_round: usize,
}

impl ProgressiveConfig {
    /// The paper's defaults: block granularity, backward order,
    /// `ΔR = 10`, `R_stop = 100`.
    pub fn paper_default(local_iters: usize) -> Self {
        ProgressiveConfig {
            schedule: PruneSchedule::paper_default(local_iters),
            granularity: Granularity::Block,
            backward_order: true,
            start_round: 0,
        }
    }

    /// Fast schedule for unit tests (adjusts every round, stops early).
    pub fn tiny_for_tests() -> Self {
        ProgressiveConfig {
            schedule: PruneSchedule {
                delta_r: 1,
                r_stop: 3,
                local_iters: 1,
            },
            granularity: Granularity::Block,
            backward_order: true,
            start_round: 0,
        }
    }

    /// The sequence of *units* (groups of prunable-layer indices) that
    /// adjustments rotate through, already ordered according to
    /// `backward_order`.
    pub fn units(&self, model: &dyn Model, num_prunable: usize) -> Vec<Vec<usize>> {
        let mut units = match self.granularity {
            Granularity::Layer => (0..num_prunable).map(|l| vec![l]).collect(),
            Granularity::Block => model.block_partition(),
            Granularity::Entire => vec![(0..num_prunable).collect()],
        };
        if self.backward_order {
            units.reverse();
        }
        units
    }
}

/// One grow/prune adjustment's bookkeeping.
#[derive(Clone, Debug, Default)]
pub struct AdjustmentReport {
    /// Per adjusted layer: `(layer, a_t)` counts actually applied.
    pub adjusted: Vec<(usize, usize)>,
    /// *Analytic* upload volume in bytes (top-k gradients, all devices).
    pub comm_bytes: f64,
    /// *Measured* upload volume: the exact wire size of every device's
    /// `(index, gradient)` pair payload.
    pub payload_bytes: f64,
    /// Extra per-device FLOPs for the dense-gradient batch.
    pub extra_flops: f64,
    /// Largest buffer capacity any device needed (`O(a)` bound).
    pub max_buffer: usize,
}

/// Performs one adjustment (Alg. 2 lines 10–26) on the layers of `unit`.
///
/// Device side: each device runs one forward/backward batch on the sparse
/// model, streams the gradients of *pruned* coordinates of each target layer
/// through a [`TopKBuffer`] of capacity `a_t^l`, and uploads the surviving
/// `(index, gradient)` pairs. Server side: gradients are aggregated weighted
/// by `|D_k|` (Eq. 7), the top `a_t^l` pruned coordinates by aggregated
/// magnitude are grown, and the same number of surviving coordinates with
/// the smallest weight magnitude (excluding the just-grown ones) are
/// dropped. The mask is updated in place; grown weights start at zero.
///
/// # Panics
///
/// Panics if `mask` does not match the model's prunable layout.
pub fn progressive_adjust(
    global: &mut dyn Model,
    mask: &mut Mask,
    env: &ExperimentEnv,
    cfg: &ProgressiveConfig,
    unit: &[usize],
    round: usize,
) -> AdjustmentReport {
    let mut report = AdjustmentReport::default();
    // a_t^l per target layer, from the cosine schedule over *alive* counts.
    let counts: Vec<(usize, usize)> = unit
        .iter()
        .map(|&l| {
            let alive = mask.layer_ones(l);
            let pruned = mask.layer(l).len() - alive;
            let a = cfg.schedule.count_at(round, alive).min(pruned).min(alive);
            (l, a)
        })
        .filter(|&(_, a)| a > 0)
        .collect();
    if counts.is_empty() {
        return report;
    }

    // --- Device side: top-a gradients of pruned coordinates (Eq. 6).
    let collect_one = |k: usize| -> Vec<Vec<(usize, f32)>> {
        let mut model = global.clone_model();
        // The grow step scores gradients of *pruned* coordinates, which the
        // sparse execution path does not compute — force this probe batch
        // onto the dense path. Its cost is already accounted below as the
        // dense-minus-sparse backward share.
        model.set_sparse_crossover(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(
            env.cfg.seed ^ 0x9d0f ^ ((round as u64) << 20) ^ ((k as u64) << 44),
        );
        let data = &env.parts[k];
        let bs = env.cfg.batch_size.min(data.len());
        let mut idx: Vec<usize> = (0..data.len()).collect();
        idx.shuffle(&mut rng);
        idx.truncate(bs);
        let (x, y) = data.batch(&idx);
        let logits = model.forward(&x, Mode::Train);
        let (_, grad) = softmax_cross_entropy(&logits, &y);
        model.backward(&grad);
        let prunable_pos = prunable_param_indices(model.as_ref());
        let params = model.params();
        counts
            .iter()
            .map(|&(l, a)| {
                let g = params[prunable_pos[l]].grad.data();
                let mut buf = TopKBuffer::new(a);
                for (i, alive) in mask.layer(l).iter().enumerate() {
                    if !alive {
                        buf.push(i, g[i]);
                    }
                }
                buf.into_sorted()
            })
            .collect()
    };

    let rt = env.cfg.runtime();
    let device_grads: Vec<Vec<Vec<(usize, f32)>>> =
        if env.cfg.parallel && env.parts.len() > 1 && rt.is_parallel() {
            // Devices draw on the run's bounded worker pool instead of one
            // unbounded OS thread each.
            type DeviceGrads = Vec<Vec<(usize, f32)>>;
            let mut out: Vec<Option<DeviceGrads>> = vec![None; env.parts.len()];
            let jobs: Vec<_> = out.iter_mut().enumerate().collect();
            rt.scatter(jobs, |(k, slot)| *slot = Some(collect_one(k)));
            out.into_iter()
                .map(|o| o.expect("gradient job completed"))
                .collect()
        } else {
            (0..env.parts.len()).map(collect_one).collect()
        };

    // --- Server side: Eq. 7 aggregation, then grow / drop.
    let weights = env.device_weights();
    let prunable_pos = prunable_param_indices(global);
    for (ui, &(l, a)) in counts.iter().enumerate() {
        let mut agg: HashMap<usize, f64> = HashMap::new();
        for (k, grads) in device_grads.iter().enumerate() {
            for &(i, g) in &grads[ui] {
                *agg.entry(i).or_insert(0.0) += weights[k] * g as f64;
            }
            report.comm_bytes += grads[ui].len() as f64 * 8.0;
            report.payload_bytes += ft_sparse::topk_pairs_encoded_len(grads[ui].len()) as f64;
        }
        // Grow: top-a pruned indices by |aggregated gradient|.
        let mut grow_buf = TopKBuffer::new(a);
        for (&i, &g) in &agg {
            grow_buf.push(i, g as f32);
        }
        let grow: Vec<usize> = grow_buf.into_sorted().into_iter().map(|(i, _)| i).collect();

        // Drop: a surviving coordinates with smallest |weight|, excluding
        // the just-grown ones (they are zero and would be dropped at once).
        let wdata = {
            let params = global.params();
            params[prunable_pos[l]].data.data().to_vec()
        };
        let mut alive: Vec<usize> = mask.alive_indices(l);
        alive.sort_by(|&x, &y| {
            wdata[x]
                .abs()
                .partial_cmp(&wdata[y].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(x.cmp(&y))
        });
        let drop_n = grow.len();
        let dropped: Vec<usize> = alive.into_iter().take(drop_n).collect();

        for &i in &grow {
            mask.set(l, i, true);
        }
        for &i in &dropped {
            mask.set(l, i, false);
        }
        // Zero the dropped weights; grown weights are already zero.
        {
            let mut params = global.params_mut();
            let w = params[prunable_pos[l]].data.data_mut();
            for &i in &dropped {
                w[i] = 0.0;
            }
        }
        report.adjusted.push((l, grow.len()));
        report.max_buffer = report.max_buffer.max(a);
    }

    // --- Cost accounting: one extra batch with dense gradients for the
    // target layers. Training the batch costs 3× forward at current
    // density; computing dense weight gradients for the unit layers adds
    // the dense-minus-sparse backward share of those layers.
    let arch = global.arch();
    let densities = densities_from_mask(mask);
    let bs = env
        .parts
        .iter()
        .map(|p| env.cfg.batch_size.min(p.len()))
        .max()
        .unwrap_or(0) as f64;
    let mut extra = 3.0 * forward_flops(&arch, &densities);
    for layer in &arch.layers {
        let pi = match layer {
            LayerArch::Conv {
                prunable_idx: Some(i),
                ..
            }
            | LayerArch::Linear {
                prunable_idx: Some(i),
                ..
            } => *i,
            _ => continue,
        };
        if counts.iter().any(|&(l, _)| l == pi) {
            let dense = layer_forward_flops(layer, 1.0);
            let sparse = layer_forward_flops(layer, densities[pi]);
            extra += dense - sparse; // dense weight-gradient GEMM share
        }
    }
    report.extra_flops = extra * bs;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_fl::ModelSpec;
    use ft_nn::{apply_mask, sparse_layout};
    use ft_sparse::uniform_density_vector;

    fn setup(density: f32) -> (ExperimentEnv, Box<dyn Model>, Mask) {
        let env = ExperimentEnv::tiny_for_tests(2);
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let layout = sparse_layout(model.as_ref());
        let weights: Vec<&[f32]> = model
            .params()
            .into_iter()
            .filter(|p| p.prunable)
            .map(|p| p.data.data())
            .collect();
        let mask =
            ft_sparse::magnitude_mask(&layout, &weights, &uniform_density_vector(&layout, density));
        drop(weights);
        apply_mask(model.as_mut(), &mask);
        (env, model, mask)
    }

    #[test]
    fn adjustment_preserves_density() {
        let (env, mut model, mut mask) = setup(0.3);
        let before = mask.ones_count();
        let cfg = ProgressiveConfig::tiny_for_tests();
        let unit: Vec<usize> = (0..mask.num_layers()).collect();
        let report = progressive_adjust(model.as_mut(), &mut mask, &env, &cfg, &unit, 0);
        assert!(!report.adjusted.is_empty(), "no adjustment happened");
        assert_eq!(mask.ones_count(), before, "density drifted");
    }

    #[test]
    fn adjustment_changes_mask() {
        let (env, mut model, mut mask) = setup(0.3);
        let before = mask.clone();
        let cfg = ProgressiveConfig::tiny_for_tests();
        let unit: Vec<usize> = (0..mask.num_layers()).collect();
        let _ = progressive_adjust(model.as_mut(), &mut mask, &env, &cfg, &unit, 0);
        assert_ne!(mask, before, "mask unchanged by adjustment");
    }

    #[test]
    fn pruned_weights_stay_zero_after_adjustment() {
        let (env, mut model, mut mask) = setup(0.4);
        let cfg = ProgressiveConfig::tiny_for_tests();
        let unit: Vec<usize> = (0..mask.num_layers()).collect();
        let _ = progressive_adjust(model.as_mut(), &mut mask, &env, &cfg, &unit, 0);
        let prunable_pos = prunable_param_indices(model.as_ref());
        let params = model.params();
        for l in 0..mask.num_layers() {
            let w = params[prunable_pos[l]].data.data();
            for (i, alive) in mask.layer(l).iter().enumerate() {
                if !alive {
                    assert_eq!(w[i], 0.0, "layer {l} weight {i} nonzero while pruned");
                }
            }
        }
    }

    #[test]
    fn beyond_rstop_is_noop() {
        let (env, mut model, mut mask) = setup(0.3);
        let before = mask.clone();
        let cfg = ProgressiveConfig::tiny_for_tests(); // r_stop = 3
        let unit: Vec<usize> = (0..mask.num_layers()).collect();
        let report = progressive_adjust(model.as_mut(), &mut mask, &env, &cfg, &unit, 10);
        assert!(report.adjusted.is_empty());
        assert_eq!(mask, before);
    }

    #[test]
    fn units_rotation_orders() {
        let (_, model, _) = setup(0.5);
        let layer_cfg = ProgressiveConfig {
            granularity: Granularity::Layer,
            backward_order: true,
            ..ProgressiveConfig::tiny_for_tests()
        };
        let units = layer_cfg.units(model.as_ref(), 2);
        assert_eq!(units, vec![vec![1], vec![0]]); // backward: output first
        let entire = ProgressiveConfig {
            granularity: Granularity::Entire,
            backward_order: false,
            ..ProgressiveConfig::tiny_for_tests()
        };
        assert_eq!(entire.units(model.as_ref(), 2), vec![vec![0, 1]]);
    }

    #[test]
    fn buffer_capacity_respects_schedule() {
        let (env, mut model, mut mask) = setup(0.3);
        let cfg = ProgressiveConfig::tiny_for_tests();
        let unit: Vec<usize> = (0..mask.num_layers()).collect();
        let report = progressive_adjust(model.as_mut(), &mut mask, &env, &cfg, &unit, 0);
        // At t=0 the cosine gives 0.30 · alive; buffers must not exceed that.
        let max_alive = (0..mask.num_layers())
            .map(|l| mask.layer_ones(l))
            .max()
            .unwrap();
        assert!(report.max_buffer <= (0.31 * max_alive as f32) as usize + 1);
        assert!(report.comm_bytes > 0.0);
        assert!(report.extra_flops > 0.0);
    }
}
