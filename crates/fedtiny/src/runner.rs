//! End-to-end FedTiny pipeline and its ablation variants.

use crate::progressive::{progressive_adjust, ProgressiveConfig};
use crate::selection::{
    adaptive_bn_selection, generate_candidate_pool, vanilla_selection, SelectionConfig,
};
use ft_fl::{
    run_with, CheckpointSpec, Codec, CostLedger, ExperimentEnv, InProcess, ModelSpec, RunOptions,
    RunResult, ServerError, Transport,
};
use ft_metrics::{densities_from_mask, device_memory_bytes, ExtraMemory};
use ft_nn::{apply_mask, Model};
use ft_sparse::Mask;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Which coarse-pruning selection the pipeline uses (Fig. 4 ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionMode {
    /// Algorithm 1 (BN recalibration before scoring) — FedTiny's default.
    AdaptiveBn,
    /// Score candidates without BN recalibration.
    Vanilla,
}

/// Full FedTiny configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FedTinyConfig {
    /// Architecture to train.
    pub model: ModelSpec,
    /// Target overall density `d_target`.
    pub d_target: f32,
    /// Candidate pool size `C`.
    pub pool_size: usize,
    /// Uniform-noise half-width for candidate densities.
    pub noise_spread: f32,
    /// Coarse-pruning selection variant.
    pub selection: SelectionMode,
    /// Progressive pruning; `None` fine-tunes the coarse-pruned model only
    /// (the "selection only" ablation arms).
    pub progressive: Option<ProgressiveConfig>,
    /// Wire codec for the update exchange. FedTiny's point is a *sparse*
    /// model, so the default is `MaskCsr` — uploads carry only mask-alive
    /// values and the communication savings are measured on the wire.
    pub codec: Codec,
    /// Evaluate the global model every this many rounds (plus the final
    /// round).
    pub eval_every: usize,
}

impl FedTinyConfig {
    /// Paper defaults at a target density (pool `C* = 0.1/d`, adaptive BN,
    /// block-backward progressive pruning, `ΔR = 10`, `R_stop = 100`).
    pub fn paper_default(model: ModelSpec, d_target: f32, local_epochs: usize) -> Self {
        FedTinyConfig {
            model,
            d_target,
            pool_size: SelectionConfig::optimal_pool_size(d_target),
            noise_spread: 0.5,
            selection: SelectionMode::AdaptiveBn,
            progressive: Some(ProgressiveConfig::paper_default(local_epochs)),
            codec: Codec::MaskCsr,
            eval_every: 10,
        }
    }

    /// Millisecond-scale config for unit tests.
    pub fn tiny_for_tests(d_target: f32) -> Self {
        FedTinyConfig {
            model: ModelSpec::small_cnn_test(),
            d_target,
            pool_size: 3,
            noise_spread: 0.5,
            selection: SelectionMode::AdaptiveBn,
            progressive: Some(ProgressiveConfig::tiny_for_tests()),
            codec: Codec::MaskCsr,
            eval_every: 2,
        }
    }
}

impl Default for FedTinyConfig {
    fn default() -> Self {
        Self::paper_default(
            ModelSpec::ResNet18 {
                width: 1.0,
                input: 32,
            },
            0.01,
            5,
        )
    }
}

/// Durable-run knobs for [`run_fedtiny_with`]: which transport the update
/// exchange crosses, and checkpoint/resume plumbing for the fine-tuning
/// rounds (module 2). The coarse-pruning selection (module 1) is
/// deterministic and cheap, so a resumed run simply recomputes it — the
/// checkpoint then overwrites model, mask, ledger, and the progressive
/// hook's counters with the persisted state.
pub struct FedTinyRunOptions<'a> {
    /// Transport for the federated fine-tuning rounds.
    pub transport: &'a mut dyn Transport,
    /// Save a checkpoint here at round boundaries.
    pub checkpoint: Option<CheckpointSpec>,
    /// Resume from an existing checkpoint at that path (missing file =
    /// fresh start).
    pub resume: bool,
    /// Kill-emulation hook: stop after this many completed rounds.
    pub halt_after: Option<usize>,
    /// Optional live-metrics hub, forwarded to the round loop. Strictly
    /// observational; `None` and `Some` runs are bit-identical.
    pub metrics: Option<std::sync::Arc<ft_fl::MetricsHub>>,
}

impl<'a> FedTinyRunOptions<'a> {
    /// Plain options: run on `transport`, no checkpointing.
    pub fn new(transport: &'a mut dyn Transport) -> Self {
        FedTinyRunOptions {
            transport,
            checkpoint: None,
            resume: false,
            halt_after: None,
            metrics: None,
        }
    }
}

/// Runs the full FedTiny pipeline on an environment: coarse-pruning
/// selection, then sparse federated fine-tuning with (optional) progressive
/// grow/prune adjustments.
///
/// Returns the uniform [`RunResult`] used by every method in the workspace.
pub fn run_fedtiny(env: &ExperimentEnv, cfg: &FedTinyConfig) -> RunResult {
    let mut transport = InProcess;
    run_fedtiny_with(env, cfg, FedTinyRunOptions::new(&mut transport))
        .unwrap_or_else(|e| panic!("fedtiny run failed: {e}"))
}

/// [`run_fedtiny`] over an explicit transport, with checkpoint/resume: the
/// fine-tuning rounds (including the progressive-adjustment counters, which
/// ride in the checkpoint's hook-state blob) can be killed at a round
/// boundary and resumed to the byte-identical final trace.
pub fn run_fedtiny_with(
    env: &ExperimentEnv,
    cfg: &FedTinyConfig,
    opts: FedTinyRunOptions<'_>,
) -> Result<RunResult, ServerError> {
    let env = &*env.codec_view(cfg.codec);
    let mut global = env.build_model(&cfg.model);
    let sel_cfg = SelectionConfig {
        d_target: cfg.d_target,
        pool_size: cfg.pool_size,
        noise_spread: cfg.noise_spread,
        seed: env.cfg.seed,
    };

    // --- Module 1: coarse pruning by candidate selection.
    let pool = generate_candidate_pool(global.as_ref(), &sel_cfg);
    let outcome = match cfg.selection {
        SelectionMode::AdaptiveBn => adaptive_bn_selection(global.as_ref(), env, &pool),
        SelectionMode::Vanilla => vanilla_selection(global.as_ref(), env, &pool),
    };
    let mut mask = outcome.mask.clone();
    apply_mask(global.as_mut(), &mask);

    let mut ledger = CostLedger::new();
    ledger.add_extra_flops(outcome.extra_flops);
    ledger.add_comm(outcome.comm_bytes);
    ledger.add_payload_comm(outcome.payload_bytes);

    // --- Module 2: sparse FedAvg + progressive pruning.
    let (history, max_buffer) = run_sparse_rounds_with(
        global.as_mut(),
        &mut mask,
        env,
        cfg.progressive.as_ref(),
        cfg.eval_every,
        &mut ledger,
        opts,
    )?;

    // A run halted before its first evaluation point has an empty history
    // (the checkpoint carries the real state); `from_ledger` reports NaN
    // rather than panicking out of a Result-returning API.
    let arch = global.arch();
    let densities = densities_from_mask(&mask);
    Ok(RunResult::from_ledger(
        method_name(cfg),
        history,
        mask.density(),
        device_memory_bytes(&arch, &densities, ExtraMemory::TopKBuffer(max_buffer)),
        cfg.codec.name(),
        &ledger,
    ))
}

/// Progressive-adjustment hook state that must survive a checkpoint: the
/// round-robin unit counter and the largest top-k buffer seen. Serialized
/// as two little-endian `u64`s in the checkpoint's hook-state blob.
#[derive(Clone, Copy, Debug, Default)]
struct ProgState {
    adjustment_counter: usize,
    max_buffer: usize,
}

impl ProgState {
    fn to_bytes(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&(self.adjustment_counter as u64).to_le_bytes());
        out.extend_from_slice(&(self.max_buffer as u64).to_le_bytes());
        out
    }

    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 16 {
            return None;
        }
        Some(ProgState {
            adjustment_counter: u64::from_le_bytes(bytes[..8].try_into().ok()?) as usize,
            max_buffer: u64::from_le_bytes(bytes[8..].try_into().ok()?) as usize,
        })
    }
}

/// The shared sparse-FedAvg round loop (also used by ablations): trains,
/// aggregates, optionally adjusts the mask, and evaluates periodically on
/// the given transport, with optional checkpoint/resume. Returns the
/// accuracy history and the largest top-k buffer used.
pub(crate) fn run_sparse_rounds_with(
    global: &mut dyn Model,
    mask: &mut Mask,
    env: &ExperimentEnv,
    progressive: Option<&ProgressiveConfig>,
    eval_every: usize,
    ledger: &mut CostLedger,
    opts: FedTinyRunOptions<'_>,
) -> Result<(Vec<f32>, usize), ServerError> {
    // Interior mutability lets the round hook, the checkpoint saver, and
    // the checkpoint loader share the counters without aliasing conflicts.
    let state = RefCell::new(ProgState::default());
    let units = progressive.map(|p| p.units(global, mask.num_layers()));

    let history = {
        let mut hook = |model: &mut dyn Model,
                        mask: &mut Mask,
                        round: usize,
                        ledger: &mut CostLedger|
         -> f64 {
            // Progressive adjustment (Alg. 2 lines 10–26).
            let (Some(pcfg), Some(units)) = (progressive, units.as_ref()) else {
                return 0.0;
            };
            if round < pcfg.start_round || !pcfg.schedule.adjusts_at(round) {
                return 0.0;
            }
            let mut st = state.borrow_mut();
            let unit = &units[st.adjustment_counter % units.len()];
            let report = progressive_adjust(model, mask, env, pcfg, unit, round);
            if report.adjusted.is_empty() {
                return 0.0;
            }
            st.adjustment_counter += 1;
            st.max_buffer = st.max_buffer.max(report.max_buffer);
            ledger.add_comm(report.comm_bytes);
            ledger.add_payload_comm(report.payload_bytes);
            report.extra_flops
        };
        let hook_save = || state.borrow().to_bytes();
        let hook_load = |bytes: &[u8]| {
            if let Some(st) = ProgState::from_bytes(bytes) {
                *state.borrow_mut() = st;
            }
        };
        run_with(
            global,
            mask,
            env,
            eval_every,
            ledger,
            &mut hook,
            RunOptions {
                transport: opts.transport,
                checkpoint: opts.checkpoint,
                resume: opts.resume,
                halt_after: opts.halt_after,
                hook_save: Some(&hook_save),
                hook_load: Some(&hook_load),
                presence: None,
                metrics: opts.metrics.clone(),
            },
        )?
    };
    let max_buffer = state.borrow().max_buffer;
    Ok((history, max_buffer))
}

fn method_name(cfg: &FedTinyConfig) -> String {
    match (cfg.selection, cfg.progressive.is_some()) {
        (SelectionMode::AdaptiveBn, true) => "fedtiny".into(),
        (SelectionMode::AdaptiveBn, false) => "adaptive_bn_selection".into(),
        (SelectionMode::Vanilla, true) => "vanilla+progressive".into(),
        (SelectionMode::Vanilla, false) => "vanilla".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fedtiny_end_to_end() {
        let env = ExperimentEnv::tiny_for_tests(0);
        let cfg = FedTinyConfig::tiny_for_tests(0.3);
        let result = run_fedtiny(&env, &cfg);
        assert_eq!(result.method, "fedtiny");
        assert!(
            result.final_density <= 0.31,
            "density {}",
            result.final_density
        );
        assert!((0.0..=1.0).contains(&result.accuracy));
        assert!(!result.history.is_empty());
        assert!(result.max_round_flops > 0.0);
        assert!(result.memory_bytes > 0.0);
        assert!(result.comm_bytes > 0.0);
        assert!(result.extra_flops > 0.0);
    }

    #[test]
    fn ablation_arms_have_distinct_names() {
        let mut cfg = FedTinyConfig::tiny_for_tests(0.3);
        cfg.selection = SelectionMode::Vanilla;
        cfg.progressive = None;
        let env = ExperimentEnv::tiny_for_tests(1);
        let result = run_fedtiny(&env, &cfg);
        assert_eq!(result.method, "vanilla");
        assert!(result.final_density <= 0.31);
    }

    #[test]
    fn no_progressive_keeps_selected_mask() {
        let env = ExperimentEnv::tiny_for_tests(2);
        let mut cfg = FedTinyConfig::tiny_for_tests(0.4);
        cfg.progressive = None;
        let result = run_fedtiny(&env, &cfg);
        // Density unchanged by fine-tuning alone.
        assert!(
            result.final_density <= 0.41,
            "density {}",
            result.final_density
        ); // ceil rounding adds <1 weight/layer
        assert_eq!(result.method, "adaptive_bn_selection");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = FedTinyConfig::tiny_for_tests(0.3);
        let a = run_fedtiny(&ExperimentEnv::tiny_for_tests(5), &cfg);
        let b = run_fedtiny(&ExperimentEnv::tiny_for_tests(5), &cfg);
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.history, b.history);
        assert_eq!(a.final_density, b.final_density);
    }

    #[test]
    fn every_granularity_trains() {
        // Table III coverage in unit form: all granularity x order combos
        // run end-to-end and keep the density budget.
        use crate::progressive::Granularity;
        let env = ExperimentEnv::tiny_for_tests(7);
        for granularity in [Granularity::Layer, Granularity::Block, Granularity::Entire] {
            for backward in [true, false] {
                let mut cfg = FedTinyConfig::tiny_for_tests(0.3);
                if let Some(p) = &mut cfg.progressive {
                    p.granularity = granularity;
                    p.backward_order = backward;
                }
                let r = run_fedtiny(&env, &cfg);
                assert!(
                    r.final_density <= 0.31,
                    "{granularity:?}/{backward}: density {}",
                    r.final_density
                );
            }
        }
    }

    #[test]
    fn start_round_delays_first_adjustment() {
        // With start_round beyond R_stop no adjustment ever fires, so the
        // selected mask survives unchanged (same as progressive = None).
        let env = ExperimentEnv::tiny_for_tests(8);
        let mut delayed = FedTinyConfig::tiny_for_tests(0.3);
        if let Some(p) = &mut delayed.progressive {
            p.start_round = 100;
        }
        let mut none = delayed;
        none.progressive = None;
        let a = run_fedtiny(&env, &delayed);
        let b = run_fedtiny(&env, &none);
        assert_eq!(a.final_density, b.final_density);
        assert_eq!(a.accuracy, b.accuracy);
    }

    #[test]
    fn paper_default_wiring() {
        let cfg = FedTinyConfig::default();
        assert_eq!(cfg.pool_size, 10); // C* = 0.1 / 0.01
        assert!(matches!(cfg.selection, SelectionMode::AdaptiveBn));
        assert!(cfg.progressive.is_some());
    }
}
