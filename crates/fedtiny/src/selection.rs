//! Adaptive batch-normalization selection (Algorithm 1) and the vanilla
//! selection ablation.

use ft_data::Dataset;
use ft_fl::{aggregate_bn_stats, eval_loss, ExperimentEnv};
use ft_metrics::{bn_stats_bytes, densities_from_mask, forward_flops, sparse_model_bytes};
use ft_nn::{apply_mask, bn_stats_encoded_len, sparse_layout, Mode, Model};
use ft_sparse::{magnitude_mask, noisy_density_vector, Mask};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Candidate-pool generation knobs (Sec. IV-A2, "Uniform Noise strategy").
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SelectionConfig {
    /// Target overall density `d_target`.
    pub d_target: f32,
    /// Pool size `C` (paper default 50; optimal `C* = 0.1 / d_target`).
    pub pool_size: usize,
    /// Relative half-width of the uniform noise `e_l` added to each layer's
    /// density (`e_l ~ U(±spread · d_target)`).
    pub noise_spread: f32,
    /// Seed for candidate generation.
    pub seed: u64,
}

impl SelectionConfig {
    /// The paper's optimal pool size `C* = 0.1 / d_target`, capped to at
    /// least 1.
    pub fn optimal_pool_size(d_target: f32) -> usize {
        ((0.1 / d_target.max(1e-6)).round() as usize).max(1)
    }

    /// Paper-style config at a target density with `C = C*`.
    pub fn paper_default(d_target: f32, seed: u64) -> Self {
        SelectionConfig {
            d_target,
            pool_size: Self::optimal_pool_size(d_target),
            noise_spread: 0.5,
            seed,
        }
    }
}

/// Result of a selection pass.
#[derive(Clone, Debug)]
pub struct SelectionOutcome {
    /// The selected coarse-pruned mask `m_0`.
    pub mask: Mask,
    /// Index of the winning candidate.
    pub selected: usize,
    /// Weighted average loss of each candidate (lower = better).
    pub candidate_losses: Vec<f32>,
    /// Extra per-device FLOPs spent on the selection passes (Table II).
    pub extra_flops: f64,
    /// Per-device *analytic* communication volume in bytes (Fig. 5 right).
    pub comm_bytes: f64,
    /// Per-device *measured* wire bytes: the encoded candidate downloads
    /// plus the BN-stat exchanges at their exact encoded sizes.
    pub payload_bytes: f64,
}

/// Generates the candidate pool: `C` magnitude-pruned masks with layer-wise
/// densities `d_l = d_target + e_l`, each accepted only if its overall
/// density stays within `d_target`.
///
/// The first candidate always uses the exact uniform density vector (zero
/// noise) so the pool contains the "obvious" baseline the noise perturbs.
pub fn generate_candidate_pool(model: &dyn Model, cfg: &SelectionConfig) -> Vec<Mask> {
    let layout = sparse_layout(model);
    let params = model.params();
    let weights: Vec<&[f32]> = params
        .iter()
        .filter(|p| p.prunable)
        .map(|p| p.data.data())
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xca41_d1da);
    (0..cfg.pool_size.max(1))
        .map(|i| {
            let densities = if i == 0 {
                ft_sparse::uniform_density_vector(&layout, cfg.d_target)
            } else {
                noisy_density_vector(&mut rng, &layout, cfg.d_target, cfg.noise_spread)
            };
            magnitude_mask(&layout, &weights, &densities)
        })
        .collect()
}

/// Algorithm 1: adaptive batch-normalization selection.
///
/// Devices recalibrate each candidate's BN statistics on their development
/// split (forward passes with frozen parameters), the server aggregates the
/// statistics weighted by `|D̂_k|` (Eq. 4), devices score the recalibrated
/// candidates by local evaluation loss, and the server returns the candidate
/// with the lowest weighted loss.
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn adaptive_bn_selection(
    global: &dyn Model,
    env: &ExperimentEnv,
    candidates: &[Mask],
) -> SelectionOutcome {
    select(global, env, candidates, true)
}

/// Vanilla selection (the Fig. 4 ablation): devices score candidates with
/// the *unadapted* global BN statistics; no recalibration round happens.
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn vanilla_selection(
    global: &dyn Model,
    env: &ExperimentEnv,
    candidates: &[Mask],
) -> SelectionOutcome {
    select(global, env, candidates, false)
}

fn select(
    global: &dyn Model,
    env: &ExperimentEnv,
    candidates: &[Mask],
    adapt_bn: bool,
) -> SelectionOutcome {
    assert!(!candidates.is_empty(), "candidate pool is empty");
    let dev_sets = device_dev_splits(env);
    let arch = global.arch();

    let score_one = |mask: &Mask| -> f32 {
        // --- Device side, pass 1: BN recalibration (skipped for vanilla).
        let global_stats = if adapt_bn {
            let mut updates = Vec::with_capacity(dev_sets.len());
            for dev in &dev_sets {
                let mut m = global.clone_model();
                apply_mask(m.as_mut(), mask);
                // Momentum 1.0: one forward pass replaces the running stats
                // with this development split's batch statistics.
                m.set_bn_momentum(1.0);
                let (x, _) = dev.full_batch();
                let _ = m.forward(&x, Mode::Train);
                let stats: Vec<_> = m.bn_stats().into_iter().cloned().collect();
                updates.push((stats, dev.len() as f64));
            }
            // --- Server side: Eq. 4 weighted aggregation.
            Some(aggregate_bn_stats(&updates))
        } else {
            None
        };

        // --- Device side, pass 2: score the candidate by local loss.
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for dev in &dev_sets {
            let mut m = global.clone_model();
            apply_mask(m.as_mut(), mask);
            if let Some(stats) = &global_stats {
                for (dst, src) in m.bn_stats_mut().into_iter().zip(stats.iter()) {
                    *dst = src.clone();
                }
            }
            let loss = eval_loss(m.as_mut(), dev);
            num += loss as f64 * dev.len() as f64;
            den += dev.len() as f64;
        }
        (num / den) as f32
    };

    let rt = env.cfg.runtime();
    let losses: Vec<f32> = if env.cfg.parallel && candidates.len() > 1 && rt.is_parallel() {
        // Candidates draw on the run's bounded worker pool instead of one
        // unbounded OS thread each.
        let mut out: Vec<Option<f32>> = vec![None; candidates.len()];
        let jobs: Vec<_> = candidates.iter().zip(out.iter_mut()).collect();
        rt.scatter(jobs, |(mask, slot)| *slot = Some(score_one(mask)));
        out.into_iter()
            .map(|o| o.expect("selection job completed"))
            .collect()
    } else {
        candidates.iter().map(score_one).collect()
    };

    let selected = losses
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .expect("nonempty pool");

    // --- Cost accounting (per device, Table II / Fig. 5 conventions):
    // the analytic formulas next to the measured encoded sizes.
    let max_dev = dev_sets.iter().map(Dataset::len).max().unwrap_or(0) as f64;
    let passes = if adapt_bn { 2.0 } else { 1.0 };
    let bn_wire = bn_stats_encoded_len(&global.bn_stats()) as f64;
    let mut extra_flops = 0.0;
    let mut comm = 0.0;
    let mut payload = 0.0;
    for mask in candidates {
        let d = densities_from_mask(mask);
        extra_flops += passes * max_dev * forward_flops(&arch, &d);
        // Download the sparse candidate; exchange BN stats both ways when
        // adapting; upload one loss scalar.
        comm += sparse_model_bytes(&arch, &d);
        // Measured: the candidate travels as an indexed MaskCsr payload
        // (the device does not hold the candidate mask yet).
        payload += candidate_payload_len(global, mask) as f64;
        if adapt_bn {
            comm += 3.0 * bn_stats_bytes(&arch); // up, aggregated down — and a refresh up
            payload += 3.0 * bn_wire;
        }
        comm += 4.0;
        payload += 4.0;
    }

    SelectionOutcome {
        mask: candidates[selected].clone(),
        selected,
        candidate_losses: losses,
        extra_flops,
        comm_bytes: comm,
        payload_bytes: payload,
    }
}

/// Measured wire size of one coarse-pruning candidate download: the global
/// model under the candidate mask as an *indexed* `MaskCsr` payload (the
/// receiving device has never seen this mask, so offsets must travel).
fn candidate_payload_len(global: &dyn Model, mask: &Mask) -> usize {
    let ctx = ft_nn::wire_ctx(global, mask, 1);
    // `encoded_len_for` is closed-form and exact; epoch 1 vs peer 0 forces
    // the indexed form.
    ft_sparse::Codec::MaskCsr.encoded_len_for(&ctx, false)
}

/// The per-device development splits `D̂_k ⊂ D_k` (ratio `cfg.dev_fraction`),
/// seeded so every selection pass sees the same splits.
fn device_dev_splits(env: &ExperimentEnv) -> Vec<Dataset> {
    env.parts
        .iter()
        .enumerate()
        .map(|(k, part)| {
            let mut rng = ChaCha8Rng::seed_from_u64(env.cfg.seed ^ 0xde5 ^ ((k as u64) << 16));
            part.dev_split(&mut rng, env.cfg.dev_fraction)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_fl::ModelSpec;

    fn setup() -> (ExperimentEnv, Box<dyn Model>) {
        let env = ExperimentEnv::tiny_for_tests(1);
        let model = env.build_model(&ModelSpec::small_cnn_test());
        (env, model)
    }

    #[test]
    fn pool_respects_density_budget() {
        let (_, model) = setup();
        let cfg = SelectionConfig {
            d_target: 0.3,
            pool_size: 6,
            noise_spread: 0.5,
            seed: 0,
        };
        let pool = generate_candidate_pool(model.as_ref(), &cfg);
        assert_eq!(pool.len(), 6);
        for mask in &pool {
            assert!(mask.density() <= 0.3 + 0.02, "density {}", mask.density());
        }
        // Candidates differ from one another.
        assert!(pool.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn first_candidate_is_uniform() {
        let (_, model) = setup();
        let cfg = SelectionConfig {
            d_target: 0.5,
            pool_size: 3,
            noise_spread: 0.9,
            seed: 2,
        };
        let pool = generate_candidate_pool(model.as_ref(), &cfg);
        let layout = sparse_layout(model.as_ref());
        for l in 0..layout.num_layers() {
            let expect =
                ((0.5f64 * layout.layer(l).len as f64).ceil() as usize).min(layout.layer(l).len);
            assert_eq!(pool[0].layer_ones(l), expect);
        }
    }

    #[test]
    fn adaptive_selection_returns_valid_outcome() {
        let (env, model) = setup();
        let cfg = SelectionConfig {
            d_target: 0.3,
            pool_size: 4,
            noise_spread: 0.5,
            seed: 3,
        };
        let pool = generate_candidate_pool(model.as_ref(), &cfg);
        let out = adaptive_bn_selection(model.as_ref(), &env, &pool);
        assert_eq!(out.candidate_losses.len(), 4);
        assert!(out.selected < 4);
        assert_eq!(out.mask, pool[out.selected]);
        // Selected candidate has the minimal loss.
        let min = out
            .candidate_losses
            .iter()
            .cloned()
            .fold(f32::INFINITY, f32::min);
        assert_eq!(out.candidate_losses[out.selected], min);
        assert!(out.extra_flops > 0.0);
        assert!(out.comm_bytes > 0.0);
    }

    #[test]
    fn vanilla_is_cheaper_than_adaptive() {
        let (env, model) = setup();
        let cfg = SelectionConfig {
            d_target: 0.3,
            pool_size: 3,
            noise_spread: 0.5,
            seed: 4,
        };
        let pool = generate_candidate_pool(model.as_ref(), &cfg);
        let adaptive = adaptive_bn_selection(model.as_ref(), &env, &pool);
        let vanilla = vanilla_selection(model.as_ref(), &env, &pool);
        assert!(vanilla.extra_flops < adaptive.extra_flops);
        assert!(vanilla.comm_bytes < adaptive.comm_bytes);
    }

    #[test]
    fn adaptation_changes_scores() {
        // BN recalibration must actually change candidate losses relative to
        // vanilla scoring (this is the entire point of Alg. 1).
        let (env, model) = setup();
        let cfg = SelectionConfig {
            d_target: 0.3,
            pool_size: 4,
            noise_spread: 0.5,
            seed: 5,
        };
        let pool = generate_candidate_pool(model.as_ref(), &cfg);
        let adaptive = adaptive_bn_selection(model.as_ref(), &env, &pool);
        let vanilla = vanilla_selection(model.as_ref(), &env, &pool);
        let diff: f32 = adaptive
            .candidate_losses
            .iter()
            .zip(vanilla.candidate_losses.iter())
            .map(|(a, v)| (a - v).abs())
            .sum();
        assert!(diff > 1e-4, "BN adaptation had no effect on losses");
    }

    #[test]
    fn bn_recalibration_lowers_candidate_losses() {
        // Recalibrated BN statistics match the evaluation data, so the
        // average candidate loss after adaptation should not exceed the
        // stale-statistics (vanilla) loss by more than noise.
        let (env, model) = setup();
        let cfg = SelectionConfig {
            d_target: 0.3,
            pool_size: 4,
            noise_spread: 0.5,
            seed: 8,
        };
        let pool = generate_candidate_pool(model.as_ref(), &cfg);
        let adaptive = adaptive_bn_selection(model.as_ref(), &env, &pool);
        let vanilla = vanilla_selection(model.as_ref(), &env, &pool);
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(
            mean(&adaptive.candidate_losses) <= mean(&vanilla.candidate_losses) + 0.05,
            "adaptation should not hurt average loss: {:?} vs {:?}",
            adaptive.candidate_losses,
            vanilla.candidate_losses
        );
    }

    #[test]
    fn selection_scales_with_pool_size() {
        let (env, model) = setup();
        for pool_size in [1usize, 2, 8] {
            let cfg = SelectionConfig {
                d_target: 0.4,
                pool_size,
                noise_spread: 0.5,
                seed: 9,
            };
            let pool = generate_candidate_pool(model.as_ref(), &cfg);
            assert_eq!(pool.len(), pool_size);
            let out = adaptive_bn_selection(model.as_ref(), &env, &pool);
            assert_eq!(out.candidate_losses.len(), pool_size);
        }
    }

    #[test]
    fn comm_grows_linearly_with_pool() {
        // Fig. 5 right: selection communication is linear in the pool size.
        let (env, model) = setup();
        let mk = |c: usize| {
            let cfg = SelectionConfig {
                d_target: 0.3,
                pool_size: c,
                noise_spread: 0.0,
                seed: 1,
            };
            let pool = generate_candidate_pool(model.as_ref(), &cfg);
            adaptive_bn_selection(model.as_ref(), &env, &pool).comm_bytes
        };
        let c2 = mk(2);
        let c4 = mk(4);
        assert!((c4 / c2 - 2.0).abs() < 0.05, "comm {c2} -> {c4} not linear");
    }

    #[test]
    fn optimal_pool_size_formula() {
        assert_eq!(SelectionConfig::optimal_pool_size(0.01), 10);
        assert_eq!(SelectionConfig::optimal_pool_size(0.005), 20);
        assert_eq!(SelectionConfig::optimal_pool_size(0.001), 100);
        assert_eq!(SelectionConfig::optimal_pool_size(1.0), 1);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let (mut env, model) = setup();
        let cfg = SelectionConfig {
            d_target: 0.4,
            pool_size: 3,
            noise_spread: 0.5,
            seed: 6,
        };
        let pool = generate_candidate_pool(model.as_ref(), &cfg);
        env.cfg.parallel = false;
        let seq = adaptive_bn_selection(model.as_ref(), &env, &pool);
        env.cfg.parallel = true;
        let par = adaptive_bn_selection(model.as_ref(), &env, &pool);
        assert_eq!(seq.selected, par.selected);
        assert_eq!(seq.candidate_losses, par.candidate_losses);
    }
}
