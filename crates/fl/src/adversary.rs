//! The hostile-fleet harness: misbehaving devices for fault-injection
//! tests, over both real sockets and the in-process transports.
//!
//! A [`Behavior`] describes *how* one device misbehaves — poisoned
//! gradients, inflated sample counts, garbage or truncated frames, replayed
//! wire epochs, or an abandoned handshake. The same behavior runs two ways:
//!
//! - [`run_byzantine_tcp_device`] — a TCP client that trains honestly and
//!   then corrupts its UPDATE frame (or its handshake) on the wire, against
//!   a tolerant [`crate::TcpTransport`].
//! - [`AdversarialTransport`] — a wrapper around any local transport that
//!   applies the *same byte-level corruption* to the same honest updates
//!   and pushes them through the same screen
//!   ([`crate::transport::screen_update_frame`]).
//!
//! Because the corrupted frame bytes are a pure function of `(seed, round,
//! device)` and both paths share one corruption routine
//! ([`Behavior::corrupt_update_body`]), a TCP byzantine run and its
//! in-process twin quarantine the identical members with the identical
//! [`FaultKind`]s — which is what lets golden adversarial traces pin the
//! whole hostile pipeline byte for byte.

use crate::train::{train_one_device, DeviceUpdate, WireSpec};
use crate::transport::decode_round_frame;
#[cfg(test)]
use crate::transport::FaultKind;
use crate::transport::{
    connect_with_retry, encode_update_frame, read_frame, screen_update_frame, write_frame,
    Delivery, RoundRequest, Transport, TransportError, FRAME_DONE, FRAME_HELLO, FRAME_ROUND,
    FRAME_UPDATE,
};
use ft_nn::{apply_mask, restore_snapshot, wire_ctx};
use ft_sparse::{Codec, WireCtx};
use std::io::Write;
use std::net::ToSocketAddrs;

/// How one device misbehaves. Every variant is deterministic: the bytes it
/// puts on the wire are a pure function of `(seed, round, device)` and its
/// honestly trained update.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Behavior {
    /// The baseline: the device follows the protocol exactly.
    Honest,
    /// Model poisoning: the trained delta is multiplied by `-scale` before
    /// encoding. The frame is structurally valid and passes every screen —
    /// only a robust aggregation rule defends against it.
    SignFlip {
        /// Magnitude multiplier of the flipped delta.
        scale: f32,
    },
    /// Weight inflation: the update claims `factor`× its true sample count
    /// to dominate sample-weighted averaging. Caught by the sample-cap
    /// screen as [`FaultKind::InflatedSamples`].
    InflateSamples {
        /// Multiplier on the claimed sample count.
        factor: usize,
    },
    /// The UPDATE body is seed-derived garbage (framing stays intact, so
    /// the stream survives). Quarantined as [`FaultKind::MalformedFrame`].
    GarbageFrames,
    /// The honest UPDATE body truncated at a seed-derived offset.
    /// Quarantined as [`FaultKind::MalformedFrame`].
    TruncatedFrames,
    /// From round 1 on, the update is stamped with the previous round —
    /// a replayed capture. Quarantined as [`FaultKind::Replay`]; behaves
    /// honestly at round 0 (there is nothing to replay yet).
    EpochReplay,
    /// Alternates garbage bodies (even rounds) with replays (odd rounds),
    /// so the device is hostile from round 0 onward.
    GarbageOrReplay,
    /// Opens a connection, abandons the HELLO mid-frame, hangs up, then
    /// reconnects and behaves honestly — exercising the tolerant accept's
    /// handshake screening.
    MidHandshakeDisconnect,
}

impl Behavior {
    /// Stable lowercase name (the `--byzantine` CLI spelling).
    pub fn name(&self) -> &'static str {
        match self {
            Behavior::Honest => "honest",
            Behavior::SignFlip { .. } => "sign_flip",
            Behavior::InflateSamples { .. } => "inflate",
            Behavior::GarbageFrames => "garbage",
            Behavior::TruncatedFrames => "truncate",
            Behavior::EpochReplay => "replay",
            Behavior::GarbageOrReplay => "garbage_or_replay",
            Behavior::MidHandshakeDisconnect => "handshake_drop",
        }
    }

    /// Parses `"name"` or `"name:param"` (e.g. `sign_flip:8`, `inflate:40`).
    pub fn from_name(s: &str) -> Option<Behavior> {
        let (name, param) = match s.split_once(':') {
            Some((n, p)) => (n, Some(p)),
            None => (s, None),
        };
        Some(match name {
            "honest" => Behavior::Honest,
            "sign_flip" => Behavior::SignFlip {
                scale: match param {
                    Some(p) => p.parse().ok()?,
                    None => 8.0,
                },
            },
            "inflate" => Behavior::InflateSamples {
                factor: match param {
                    Some(p) => p.parse().ok()?,
                    None => 1000,
                },
            },
            "garbage" => Behavior::GarbageFrames,
            "truncate" => Behavior::TruncatedFrames,
            "replay" => Behavior::EpochReplay,
            "garbage_or_replay" => Behavior::GarbageOrReplay,
            "handshake_drop" => Behavior::MidHandshakeDisconnect,
            _ => return None,
        })
    }

    /// Whether this behavior ever corrupts its UPDATE bodies (handshake
    /// attackers and honest devices never do, so they skip the re-encode).
    fn corrupts_updates(&self) -> bool {
        !matches!(self, Behavior::Honest | Behavior::MidHandshakeDisconnect)
    }

    /// Builds the UPDATE frame body this behavior sends for `round` /
    /// `epoch`, from the device's honestly trained update. Shared verbatim
    /// by the TCP client and [`AdversarialTransport`]: identical inputs
    /// produce identical bytes on both paths.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn corrupt_update_body(
        &self,
        device: usize,
        round: u64,
        epoch: u64,
        update: &DeviceUpdate,
        ctx: &WireCtx,
        codec: Codec,
        seed: u64,
    ) -> Vec<u8> {
        match self {
            Behavior::Honest | Behavior::MidHandshakeDisconnect => {
                encode_update_frame(device, round, epoch, update, ctx)
            }
            Behavior::SignFlip { scale } => {
                let poisoned = poison_update(update, ctx, codec, epoch, *scale);
                encode_update_frame(device, round, epoch, &poisoned, ctx)
            }
            Behavior::InflateSamples { factor } => {
                let mut inflated = update.clone();
                inflated.samples = update.samples.saturating_mul((*factor).max(1));
                encode_update_frame(device, round, epoch, &inflated, ctx)
            }
            Behavior::GarbageFrames => garbage_body(seed, round, device),
            Behavior::TruncatedFrames => {
                let honest = encode_update_frame(device, round, epoch, update, ctx);
                let cut = 1 + (mix(seed, round, device as u64) as usize) % (honest.len() - 1);
                honest[..cut].to_vec()
            }
            Behavior::EpochReplay => {
                // Nothing to replay at round 0: behave honestly once.
                let stamp = if round == 0 { round } else { round - 1 };
                encode_update_frame(device, stamp, epoch, update, ctx)
            }
            Behavior::GarbageOrReplay => {
                if round.is_multiple_of(2) {
                    garbage_body(seed, round, device)
                } else {
                    encode_update_frame(device, round - 1, epoch, update, ctx)
                }
            }
        }
    }
}

/// One step of splitmix64 over the `(seed, round, device)` stream — the
/// same construction the fleet simulation uses, so adversarial bytes are
/// reproducible without any shared RNG state.
fn mix(seed: u64, round: u64, device: u64) -> u64 {
    let mut z = seed
        .wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(device.wrapping_mul(0xD1B5_4A32_D192_ED03))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed-derived garbage UPDATE body: 16–63 bytes of splitmix output. Short
/// enough to always fail structural decoding, varied enough to exercise
/// different decode paths round over round.
fn garbage_body(seed: u64, round: u64, device: usize) -> Vec<u8> {
    let r0 = mix(seed, round, device as u64);
    let len = 16 + (r0 % 48) as usize;
    let mut out = Vec::with_capacity(len);
    let mut word = r0;
    while out.len() < len {
        word = mix(word, round, device as u64);
        out.extend_from_slice(&word.to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Sign-flips and scales the trained delta: decode under the round's wire
/// context, multiply by `-scale`, re-encode under the same codec. BN stats
/// and the sample count stay honest — the attack lives in the parameters.
fn poison_update(
    update: &DeviceUpdate,
    ctx: &WireCtx,
    codec: Codec,
    epoch: u64,
    scale: f32,
) -> DeviceUpdate {
    let mut delta = update.payload.decode(ctx);
    for v in &mut delta {
        *v *= -scale;
    }
    DeviceUpdate {
        payload: codec.encode(&delta, ctx, epoch, None),
        ..update.clone()
    }
}

// ---------------------------------------------------------------------------
// In-process adversarial transport
// ---------------------------------------------------------------------------

/// Wraps a local transport and corrupts the configured devices' updates at
/// the byte level, exactly as their TCP twins would on the wire: the honest
/// update is framed through [`Behavior::corrupt_update_body`] and screened
/// through the shared update screen, so the resulting [`Delivery`]s —
/// survivors and quarantined faults alike — are identical to a tolerant
/// TCP run with the same behaviors and seed.
///
/// `behaviors` is indexed by *global device id*; devices beyond its length
/// are honest. Barrier schedulers only (like every corruption here, the
/// buffered event loop's [`Transport::deliver_update`] path passes updates
/// through unchanged).
pub struct AdversarialTransport<T: Transport> {
    inner: T,
    behaviors: Vec<Behavior>,
    seed: u64,
    handshake_faults: usize,
}

impl<T: Transport> AdversarialTransport<T> {
    /// Wraps `inner`; `behaviors[k]` is device `k`'s behavior.
    pub fn new(inner: T, behaviors: Vec<Behavior>, seed: u64) -> Self {
        // A handshake attacker botches exactly one connection attempt
        // before reconnecting honestly — mirror the count the tolerant
        // TCP accept would have recorded.
        let handshake_faults = behaviors
            .iter()
            .filter(|b| matches!(b, Behavior::MidHandshakeDisconnect))
            .count();
        AdversarialTransport {
            inner,
            behaviors,
            seed,
            handshake_faults,
        }
    }

    /// Connection attempts a tolerant TCP accept would have refused.
    pub fn handshake_faults(&self) -> usize {
        self.handshake_faults
    }
}

impl<T: Transport> Transport for AdversarialTransport<T> {
    fn name(&self) -> &'static str {
        "adversarial"
    }

    fn is_local(&self) -> bool {
        self.inner.is_local()
    }

    fn exchange_round(
        &mut self,
        req: &mut RoundRequest<'_>,
    ) -> Result<Vec<Delivery>, TransportError> {
        let (round, epoch, codec) = (req.round as u64, req.epoch, req.cfg.codec);
        let deliveries = self.inner.exchange_round(req)?;
        Ok(deliveries
            .into_iter()
            .enumerate()
            .map(|(pos, d)| {
                let k = req.cohort[pos];
                let behavior = self.behaviors.get(k).copied().unwrap_or(Behavior::Honest);
                match d {
                    Delivery::Update(u) if behavior.corrupts_updates() => {
                        let body = behavior
                            .corrupt_update_body(k, round, epoch, &u, req.ctx, codec, self.seed);
                        let cap = req.sample_caps.get(pos).map(|&c| c as u64);
                        match screen_update_frame(&body, req.ctx, k, round, epoch, cap) {
                            Ok(update) => Delivery::Update(update),
                            Err(fault) => Delivery::Faulted(fault),
                        }
                    }
                    other => other,
                }
            })
            .collect())
    }

    fn deliver_update(&mut self, update: DeviceUpdate, ctx: &WireCtx) -> DeviceUpdate {
        self.inner.deliver_update(update, ctx)
    }

    fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}

// ---------------------------------------------------------------------------
// TCP clients: byzantine and churning devices
// ---------------------------------------------------------------------------

/// Runs one misbehaving device against a (tolerant) TCP server: connect
/// and identify (after a botched handshake for
/// [`Behavior::MidHandshakeDisconnect`]), then for every ROUND frame train
/// honestly — same RNG streams and kernels as [`crate::run_tcp_device`] —
/// and reply with the behavior's corrupted UPDATE body. Deterministic for
/// a fixed `(env, behavior, seed)`.
pub fn run_byzantine_tcp_device(
    addr: impl ToSocketAddrs + Clone,
    device: usize,
    env: &crate::ExperimentEnv,
    spec: &crate::ModelSpec,
    behavior: Behavior,
    seed: u64,
) -> Result<(), TransportError> {
    if matches!(behavior, Behavior::MidHandshakeDisconnect) {
        botched_handshake(addr.clone())?;
    }
    let mut stream = connect_with_retry(addr)?;
    let mut hello = Vec::new();
    crate::bytes::put_u32(&mut hello, device as u32);
    write_frame(&mut stream, FRAME_HELLO, &hello)?;

    let mut model = env.build_model(spec);
    let rt = env.cfg.runtime();
    model.set_runtime(rt);
    let data = env.parts.get(device).ok_or_else(|| {
        TransportError::Frame(format!("device {device} has no partition in this env"))
    })?;

    loop {
        let (kind, body) = read_frame(&mut stream)?;
        match kind {
            FRAME_DONE => return Ok(()),
            FRAME_ROUND => {
                let (cohort_pos, round, epoch, snapshot, mask) = decode_round_frame(&body)?;
                restore_snapshot(model.as_mut(), &snapshot);
                apply_mask(model.as_mut(), &mask);
                let ctx = wire_ctx(model.as_ref(), &mask, epoch);
                let wire = WireSpec {
                    codec: env.cfg.codec,
                    ctx: &ctx,
                    peer_epoch: epoch,
                };
                let update = train_one_device(
                    model.as_ref(),
                    data,
                    Some(&mask),
                    &env.cfg,
                    round,
                    cohort_pos,
                    0,
                    &wire,
                    None,
                    &rt,
                );
                let frame = behavior.corrupt_update_body(
                    device,
                    round as u64,
                    epoch,
                    &update,
                    &ctx,
                    env.cfg.codec,
                    seed,
                );
                write_frame(&mut stream, FRAME_UPDATE, &frame)?;
            }
            other => {
                return Err(TransportError::Frame(format!(
                    "unexpected frame kind {other} from server"
                )))
            }
        }
    }
}

/// Opens a connection whose HELLO length prefix promises a body that never
/// arrives, then hangs up — the tolerant accept counts one refused
/// handshake and keeps waiting for the real fleet.
fn botched_handshake(addr: impl ToSocketAddrs + Clone) -> Result<(), TransportError> {
    let mut stream = connect_with_retry(addr)?;
    stream.write_all(&4u32.to_le_bytes())?;
    stream.write_all(&[FRAME_HELLO])?;
    // Dropping the stream here closes it mid-frame.
    Ok(())
}

/// Runs one honest device that *leaves the fleet* after replying to round
/// `leave_after` (closing its connection), as churn tests need. The server
/// must mark the device absent from round `leave_after + 1` via its
/// [`crate::PresenceSchedule`]; a later rejoin is simply a fresh
/// [`crate::run_tcp_device`] client, re-accepted at the scheduled round.
pub fn run_churn_tcp_device(
    addr: impl ToSocketAddrs + Clone,
    device: usize,
    env: &crate::ExperimentEnv,
    spec: &crate::ModelSpec,
    leave_after: usize,
) -> Result<(), TransportError> {
    let mut stream = connect_with_retry(addr)?;
    let mut hello = Vec::new();
    crate::bytes::put_u32(&mut hello, device as u32);
    write_frame(&mut stream, FRAME_HELLO, &hello)?;

    let mut model = env.build_model(spec);
    let rt = env.cfg.runtime();
    model.set_runtime(rt);
    let data = env.parts.get(device).ok_or_else(|| {
        TransportError::Frame(format!("device {device} has no partition in this env"))
    })?;

    loop {
        let (kind, body) = read_frame(&mut stream)?;
        match kind {
            FRAME_DONE => return Ok(()),
            FRAME_ROUND => {
                let (cohort_pos, round, epoch, snapshot, mask) = decode_round_frame(&body)?;
                restore_snapshot(model.as_mut(), &snapshot);
                apply_mask(model.as_mut(), &mask);
                let ctx = wire_ctx(model.as_ref(), &mask, epoch);
                let wire = WireSpec {
                    codec: env.cfg.codec,
                    ctx: &ctx,
                    peer_epoch: epoch,
                };
                let update = train_one_device(
                    model.as_ref(),
                    data,
                    Some(&mask),
                    &env.cfg,
                    round,
                    cohort_pos,
                    0,
                    &wire,
                    None,
                    &rt,
                );
                let frame = encode_update_frame(device, round as u64, epoch, &update, &ctx);
                write_frame(&mut stream, FRAME_UPDATE, &frame)?;
                if round >= leave_after {
                    return Ok(());
                }
            }
            other => {
                return Err(TransportError::Frame(format!(
                    "unexpected frame kind {other} from server"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelSpec;
    use crate::ExperimentEnv;
    use ft_nn::sparse_layout;
    use ft_sparse::Mask;

    fn fixture() -> (DeviceUpdate, WireCtx) {
        let env = ExperimentEnv::tiny_for_tests(9);
        let model = env.build_model(&ModelSpec::small_cnn_test());
        let mask = Mask::ones(&sparse_layout(model.as_ref()));
        let ctx = wire_ctx(model.as_ref(), &mask, 0);
        let delta: Vec<f32> = (0..ctx.len()).map(|i| (i as f32 * 0.1).cos()).collect();
        let update = DeviceUpdate {
            payload: Codec::Dense.encode(&delta, &ctx, 0, None),
            bn: Vec::new(),
            samples: 20,
            realized_flops: 1.0,
            wall_secs: 0.1,
        };
        (update, ctx)
    }

    #[test]
    fn behavior_names_roundtrip() {
        for b in [
            Behavior::Honest,
            Behavior::SignFlip { scale: 8.0 },
            Behavior::InflateSamples { factor: 1000 },
            Behavior::GarbageFrames,
            Behavior::TruncatedFrames,
            Behavior::EpochReplay,
            Behavior::GarbageOrReplay,
            Behavior::MidHandshakeDisconnect,
        ] {
            assert_eq!(Behavior::from_name(b.name()), Some(b), "{}", b.name());
        }
        assert_eq!(
            Behavior::from_name("sign_flip:2.5"),
            Some(Behavior::SignFlip { scale: 2.5 })
        );
        assert_eq!(
            Behavior::from_name("inflate:7"),
            Some(Behavior::InflateSamples { factor: 7 })
        );
        assert_eq!(Behavior::from_name("nonsense"), None);
        assert_eq!(Behavior::from_name("sign_flip:xyz"), None);
    }

    #[test]
    fn corruption_is_deterministic_and_screens_to_typed_faults() {
        let (update, ctx) = fixture();
        let cap = Some(64u64);
        for behavior in [
            Behavior::GarbageFrames,
            Behavior::TruncatedFrames,
            Behavior::EpochReplay,
            Behavior::GarbageOrReplay,
            Behavior::InflateSamples { factor: 1000 },
        ] {
            for round in [1u64, 2] {
                let a = behavior.corrupt_update_body(3, round, 0, &update, &ctx, Codec::Dense, 42);
                let b = behavior.corrupt_update_body(3, round, 0, &update, &ctx, Codec::Dense, 42);
                assert_eq!(a, b, "{behavior:?} must be reproducible");
                let fault = screen_update_frame(&a, &ctx, 3, round, 0, cap)
                    .expect_err("corruption must be quarantined, not accepted");
                match behavior {
                    Behavior::GarbageFrames | Behavior::TruncatedFrames => {
                        assert!(matches!(fault, FaultKind::MalformedFrame(_)), "{fault:?}")
                    }
                    Behavior::EpochReplay => {
                        assert!(matches!(fault, FaultKind::Replay { .. }), "{fault:?}")
                    }
                    Behavior::InflateSamples { .. } => {
                        assert!(
                            matches!(fault, FaultKind::InflatedSamples { .. }),
                            "{fault:?}"
                        )
                    }
                    Behavior::GarbageOrReplay => assert!(
                        matches!(
                            &fault,
                            FaultKind::MalformedFrame(_) | FaultKind::Replay { .. }
                        ),
                        "{fault:?}"
                    ),
                    _ => unreachable!(),
                }
            }
        }
    }

    #[test]
    fn sign_flip_passes_screening_with_flipped_values() {
        let (update, ctx) = fixture();
        let behavior = Behavior::SignFlip { scale: 4.0 };
        let body = behavior.corrupt_update_body(1, 2, 0, &update, &ctx, Codec::Dense, 7);
        let screened =
            screen_update_frame(&body, &ctx, 1, 2, 0, Some(64)).expect("valid poisoned frame");
        let honest = update.payload.decode(&ctx);
        let poisoned = screened.payload.decode(&ctx);
        for (h, p) in honest.iter().zip(poisoned.iter()) {
            assert_eq!(p.to_bits(), (h * -4.0).to_bits());
        }
    }

    #[test]
    fn replay_is_honest_only_at_round_zero() {
        let (update, ctx) = fixture();
        let body =
            Behavior::EpochReplay.corrupt_update_body(0, 0, 0, &update, &ctx, Codec::Dense, 7);
        assert!(screen_update_frame(&body, &ctx, 0, 0, 0, None).is_ok());
        let body =
            Behavior::EpochReplay.corrupt_update_body(0, 3, 0, &update, &ctx, Codec::Dense, 7);
        assert!(matches!(
            screen_update_frame(&body, &ctx, 0, 3, 0, None),
            Err(FaultKind::Replay {
                got_round: 2,
                want_round: 3,
                ..
            })
        ));
    }
}
