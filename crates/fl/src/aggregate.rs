//! Server-side aggregation: FedAvg over flat parameters and BN statistics,
//! plus the payload-native variants that decode-and-accumulate encoded
//! update deltas without ever materializing a per-device dense vector.

use ft_nn::BnStats;
use ft_sparse::{Payload, WireCtx};

/// Weighted average of flat parameter vectors (FedAvg).
///
/// Weights are normalized internally, so callers may pass raw dataset sizes.
///
/// # Panics
///
/// Panics if `updates` is empty, lengths differ, or the weight sum is zero.
pub fn fedavg(updates: &[(Vec<f32>, f64)]) -> Vec<f32> {
    assert!(!updates.is_empty(), "fedavg needs at least one update");
    let total_w: f64 = updates.iter().map(|(_, w)| *w).sum();
    assert!(total_w > 0.0, "fedavg weights sum to zero");
    try_fedavg(updates).expect("nonempty updates with positive weight")
}

/// [`fedavg`] without the degenerate-cohort panics: returns `None` when
/// `updates` is empty or the weight sum is not strictly positive (all-zero
/// weights, a fully dropped cohort). This is the division-hazard-free
/// primitive the schedulers build on — a `None` means "keep the previous
/// global" rather than silently producing NaN-filled parameters.
///
/// # Panics
///
/// Still panics on ragged parameter lengths — that is a caller bug, not a
/// degenerate-but-possible fleet state.
pub fn try_fedavg(updates: &[(Vec<f32>, f64)]) -> Option<Vec<f32>> {
    let total_w: f64 = updates.iter().map(|(_, w)| *w).sum();
    if updates.is_empty() || !total_w.is_finite() || total_w <= 0.0 {
        return None;
    }
    let n = updates[0].0.len();
    let mut out = vec![0.0f64; n];
    for (params, w) in updates {
        assert_eq!(params.len(), n, "fedavg parameter length mismatch");
        let wn = *w / total_w;
        for (o, &p) in out.iter_mut().zip(params.iter()) {
            *o += wn * p as f64;
        }
    }
    Some(out.into_iter().map(|v| v as f32).collect())
}

/// Weighted average that degrades gracefully: an empty or zero-weight
/// cohort returns a copy of `previous` (the current global) instead of
/// panicking or emitting NaNs.
///
/// # Panics
///
/// Panics if an update's length differs from `previous`.
///
/// # Examples
///
/// ```
/// use ft_fl::fedavg_or_previous;
///
/// let global = vec![1.0, 2.0];
/// // Empty surviving cohort: the round makes no progress.
/// assert_eq!(fedavg_or_previous(&[], &global), global);
/// // All-zero weights are equally degenerate.
/// let degenerate = vec![(vec![9.0, 9.0], 0.0)];
/// assert_eq!(fedavg_or_previous(&degenerate, &global), global);
/// ```
pub fn fedavg_or_previous(updates: &[(Vec<f32>, f64)], previous: &[f32]) -> Vec<f32> {
    for (params, _) in updates {
        assert_eq!(
            params.len(),
            previous.len(),
            "update length differs from the global model"
        );
    }
    try_fedavg(updates).unwrap_or_else(|| previous.to_vec())
}

/// Weighted-average FedAvg over *encoded update deltas*: each payload is an
/// encoded `θ_k − anchor`, and the new global is
/// `anchor + Σ_k (w_k / Σw) · decode(payload_k)`.
///
/// Sparse payloads (`MaskCsr`, `TopK`) are accumulated coordinate-by-
/// coordinate straight out of their wire representation — no per-device
/// dense vector is ever materialized. With `Codec::Dense` payloads whose
/// anchor is the current global this is exactly classic [`fedavg`] (up to
/// `f32`/`f64` accumulation order).
///
/// Returns `None` when `updates` is empty or the weight sum is not
/// strictly positive, so schedulers can keep the previous global.
///
/// # Panics
///
/// Panics if a payload's decoded length differs from `anchor`, or if a
/// values-only `MaskCsr` payload was encoded under a different mask epoch
/// than `ctx` (see `ft_sparse::Payload`).
pub fn try_fedavg_payloads(
    updates: &[(&Payload, f64)],
    anchor: &[f32],
    ctx: &WireCtx,
) -> Option<Vec<f32>> {
    let total_w: f64 = updates.iter().map(|(_, w)| *w).sum();
    if updates.is_empty() || !total_w.is_finite() || total_w <= 0.0 {
        return None;
    }
    let mut acc = vec![0.0f64; anchor.len()];
    for (payload, w) in updates {
        assert_eq!(
            payload.len(),
            anchor.len(),
            "payload length differs from the global model"
        );
        payload.accumulate_into(*w / total_w, &mut acc, ctx);
    }
    Some(
        anchor
            .iter()
            .zip(acc.iter())
            .map(|(&a, &d)| (a as f64 + d) as f32)
            .collect(),
    )
}

/// [`try_fedavg_payloads`] that panics on a degenerate cohort, mirroring
/// [`fedavg`].
///
/// # Panics
///
/// Panics if `updates` is empty, the weight sum is zero, or any payload is
/// inconsistent with `anchor`/`ctx`.
pub fn fedavg_payloads(updates: &[(&Payload, f64)], anchor: &[f32], ctx: &WireCtx) -> Vec<f32> {
    assert!(!updates.is_empty(), "fedavg needs at least one update");
    try_fedavg_payloads(updates, anchor, ctx).expect("nonempty updates with positive weight")
}

/// Staleness-weighted payload aggregation over `(payload, sample_weight,
/// staleness)` triples: the new global is `current + Σ_k wn_k ·
/// decode(payload_k)` with `wn_k ∝ w_k / sqrt(1 + s_k)` (the FedBuff
/// discount of [`staleness_weight`]). Deltas are applied to the *current*
/// global even when they were computed against an older anchor — the
/// standard buffered-aggregation semantics. A degenerate cohort returns
/// `current` unchanged.
///
/// # Panics
///
/// Panics if a payload's decoded length differs from `current`, or on a
/// mask-epoch mismatch (see [`try_fedavg_payloads`]).
pub fn staleness_fedavg_payloads(
    updates: &[(&Payload, f64, usize)],
    current: &[f32],
    ctx: &WireCtx,
) -> Vec<f32> {
    let total_w: f64 = updates
        .iter()
        .map(|(_, w, s)| w * staleness_weight(*s))
        .sum();
    if updates.is_empty() || !total_w.is_finite() || total_w <= 0.0 {
        return current.to_vec();
    }
    let mut acc = vec![0.0f64; current.len()];
    for (payload, w, s) in updates {
        assert_eq!(
            payload.len(),
            current.len(),
            "payload length differs from the global model"
        );
        payload.accumulate_into(w * staleness_weight(*s) / total_w, &mut acc, ctx);
    }
    current
        .iter()
        .zip(acc.iter())
        .map(|(&c, &d)| (c as f64 + d) as f32)
        .collect()
}

/// FedBuff-style staleness discount: an update computed `staleness` server
/// versions ago is weighted by `1 / sqrt(1 + staleness)` (Nguyen et al.,
/// "Federated Learning with Buffered Asynchronous Aggregation").
pub fn staleness_weight(staleness: usize) -> f64 {
    1.0 / (1.0 + staleness as f64).sqrt()
}

/// Staleness-weighted FedAvg over `(params, sample_weight, staleness)`
/// triples: each update's weight is its sample count discounted by
/// [`staleness_weight`]. With all-zero staleness this is exactly plain
/// [`fedavg`]; a degenerate cohort returns `previous` unchanged. Borrows
/// the parameter slices — no per-update copies.
///
/// # Panics
///
/// Panics if an update's length differs from `previous`.
pub fn staleness_fedavg(updates: &[(&[f32], f64, usize)], previous: &[f32]) -> Vec<f32> {
    for (params, _, _) in updates {
        assert_eq!(
            params.len(),
            previous.len(),
            "update length differs from the global model"
        );
    }
    let total_w: f64 = updates
        .iter()
        .map(|(_, w, s)| w * staleness_weight(*s))
        .sum();
    if updates.is_empty() || !total_w.is_finite() || total_w <= 0.0 {
        return previous.to_vec();
    }
    let mut out = vec![0.0f64; previous.len()];
    for (params, w, s) in updates {
        let wn = w * staleness_weight(*s) / total_w;
        for (o, &p) in out.iter_mut().zip(params.iter()) {
            *o += wn * p as f64;
        }
    }
    out.into_iter().map(|v| v as f32).collect()
}

/// Weighted average of per-layer BatchNorm statistics (Eq. 4):
/// `µ = Σ_k (|D̂_k|/Σ|D̂_j|) µ_k` and likewise for `σ²`.
///
/// # Panics
///
/// Panics if `updates` is empty or the layer structures differ.
pub fn aggregate_bn_stats(updates: &[(Vec<BnStats>, f64)]) -> Vec<BnStats> {
    assert!(
        !updates.is_empty(),
        "bn aggregation needs at least one update"
    );
    let total_w: f64 = updates.iter().map(|(_, w)| *w).sum();
    assert!(total_w > 0.0, "bn aggregation weights sum to zero");
    try_aggregate_bn_stats(updates).expect("nonempty updates with positive weight")
}

/// [`aggregate_bn_stats`] without the degenerate-cohort panics: `None` when
/// `updates` is empty or all weights are zero, so schedulers can keep the
/// previous global statistics instead.
pub fn try_aggregate_bn_stats(updates: &[(Vec<BnStats>, f64)]) -> Option<Vec<BnStats>> {
    let total_w: f64 = updates.iter().map(|(_, w)| *w).sum();
    if updates.is_empty() || !total_w.is_finite() || total_w <= 0.0 {
        return None;
    }
    let layers = updates[0].0.len();
    let mut out: Vec<BnStats> = updates[0]
        .0
        .iter()
        .map(|s| BnStats {
            mean: vec![0.0; s.mean.len()],
            var: vec![0.0; s.var.len()],
        })
        .collect();
    for (stats, w) in updates {
        assert_eq!(stats.len(), layers, "bn layer count mismatch");
        let wn = (*w / total_w) as f32;
        for (o, s) in out.iter_mut().zip(stats.iter()) {
            assert_eq!(o.mean.len(), s.mean.len(), "bn channel count mismatch");
            for (om, &sm) in o.mean.iter_mut().zip(s.mean.iter()) {
                *om += wn * sm;
            }
            for (ov, &sv) in o.var.iter_mut().zip(s.var.iter()) {
                *ov += wn * sv;
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fedavg_weighted_mean() {
        let got = fedavg(&[(vec![1.0, 0.0], 1.0), (vec![0.0, 1.0], 3.0)]);
        assert!((got[0] - 0.25).abs() < 1e-6);
        assert!((got[1] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn fedavg_unnormalized_weights_ok() {
        let a = fedavg(&[(vec![2.0], 10.0), (vec![4.0], 30.0)]);
        let b = fedavg(&[(vec![2.0], 0.25), (vec![4.0], 0.75)]);
        assert!((a[0] - b[0]).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fedavg_rejects_ragged() {
        let _ = fedavg(&[(vec![1.0], 1.0), (vec![1.0, 2.0], 1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one update")]
    fn fedavg_rejects_empty() {
        let _ = fedavg(&[]);
    }

    #[test]
    fn bn_aggregation_weighted() {
        let a = vec![BnStats {
            mean: vec![1.0, 2.0],
            var: vec![1.0, 1.0],
        }];
        let b = vec![BnStats {
            mean: vec![3.0, 4.0],
            var: vec![3.0, 3.0],
        }];
        let got = aggregate_bn_stats(&[(a, 1.0), (b, 1.0)]);
        assert_eq!(got[0].mean, vec![2.0, 3.0]);
        assert_eq!(got[0].var, vec![2.0, 2.0]);
    }

    #[test]
    fn bn_aggregation_respects_dataset_sizes() {
        let a = vec![BnStats {
            mean: vec![0.0],
            var: vec![0.0],
        }];
        let b = vec![BnStats {
            mean: vec![10.0],
            var: vec![10.0],
        }];
        let got = aggregate_bn_stats(&[(a, 9.0), (b, 1.0)]);
        assert!((got[0].mean[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sim_empty_cohort_returns_previous_global_not_nan() {
        // The division hazard pinned: an empty surviving cohort or an
        // all-zero weight vector must hand back the previous global intact,
        // never a NaN-filled vector.
        let previous = vec![0.25f32, -1.5, 3.0];
        assert_eq!(try_fedavg(&[]), None);
        assert_eq!(try_fedavg(&[(vec![1.0, 1.0, 1.0], 0.0)]), None);
        assert_eq!(fedavg_or_previous(&[], &previous), previous);
        let got = fedavg_or_previous(&[(vec![9.0, 9.0, 9.0], 0.0)], &previous);
        assert_eq!(got, previous);
        assert!(got.iter().all(|v| v.is_finite()));
        assert_eq!(try_aggregate_bn_stats(&[]), None);
    }

    #[test]
    fn sim_staleness_weight_decays_from_one() {
        assert_eq!(staleness_weight(0), 1.0);
        assert!(staleness_weight(1) < 1.0);
        assert!(staleness_weight(8) < staleness_weight(3));
        assert!((staleness_weight(3) - 0.5).abs() < 1e-12); // 1/sqrt(4)
    }

    #[test]
    fn payload_fedavg_degenerate_cohorts_return_none_or_current() {
        let ctx = ft_sparse::WireCtx::dense(3);
        let anchor = vec![1.0f32, -2.0, 0.5];
        assert_eq!(try_fedavg_payloads(&[], &anchor, &ctx), None);
        let p = Payload::Dense {
            values: vec![9.0, 9.0, 9.0],
        };
        assert_eq!(try_fedavg_payloads(&[(&p, 0.0)], &anchor, &ctx), None);
        assert_eq!(
            staleness_fedavg_payloads(&[], &anchor, &ctx),
            anchor.clone()
        );
        assert_eq!(
            staleness_fedavg_payloads(&[(&p, 0.0, 3)], &anchor, &ctx),
            anchor
        );
    }

    mod props {
        use super::super::*;
        use ft_sparse::Codec;
        use proptest::prelude::*;

        /// Builds delta payloads for `params` against `anchor` under
        /// `codec` and aggregates them, returning the payload-pipeline
        /// global.
        fn roundtrip_fedavg(raw: &[(Vec<f32>, f64)], anchor: &[f32], codec: Codec) -> Vec<f32> {
            let ctx = WireCtx::dense(anchor.len());
            let payloads: Vec<Payload> = raw
                .iter()
                .map(|(p, _)| {
                    let delta: Vec<f32> = p.iter().zip(anchor.iter()).map(|(x, a)| x - a).collect();
                    codec.encode(&delta, &ctx, ctx.epoch, None)
                })
                .collect();
            let updates: Vec<(&Payload, f64)> = payloads
                .iter()
                .zip(raw.iter())
                .map(|(p, (_, w))| (p, *w))
                .collect();
            fedavg_payloads(&updates, anchor, &ctx)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Dense payload aggregation agrees with classic fedavg on the
            /// decoded parameters to numerical tolerance.
            #[test]
            fn payload_dense_fedavg_matches_classic(
                raw in proptest::collection::vec(
                    (proptest::collection::vec(-2.0f32..2.0, 6), 1.0f64..40.0),
                    1..6,
                ),
                anchor in proptest::collection::vec(-2.0f32..2.0, 6),
            ) {
                let classic = fedavg(&raw);
                let via_payloads = roundtrip_fedavg(&raw, &anchor, Codec::Dense);
                for (&a, &b) in classic.iter().zip(via_payloads.iter()) {
                    prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
                }
            }

            /// Quantized (int8) payload aggregation stays within the
            /// accumulated quantization bound of dense fedavg: each delta's
            /// error is at most half a step of its own range, and fedavg is
            /// a convex combination, so the aggregate error is bounded by
            /// the largest per-device bound.
            #[test]
            fn payload_quantized_fedavg_within_tolerance(
                raw in proptest::collection::vec(
                    (proptest::collection::vec(-2.0f32..2.0, 6), 1.0f64..40.0),
                    1..6,
                ),
                anchor in proptest::collection::vec(-2.0f32..2.0, 6),
            ) {
                let classic = fedavg(&raw);
                let quantized = roundtrip_fedavg(&raw, &anchor, Codec::QuantInt8);
                let worst_bound = raw
                    .iter()
                    .map(|(p, _)| {
                        let deltas: Vec<f32> =
                            p.iter().zip(anchor.iter()).map(|(x, a)| x - a).collect();
                        let lo = deltas.iter().cloned().fold(f32::INFINITY, f32::min);
                        let hi = deltas.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                        (hi - lo) / 510.0
                    })
                    .fold(0.0f32, f32::max);
                for (&a, &b) in classic.iter().zip(quantized.iter()) {
                    prop_assert!(
                        (a - b).abs() <= worst_bound + 1e-5,
                        "{a} vs {b} beyond {worst_bound}"
                    );
                }
            }

            /// All-zero staleness makes staleness_fedavg exactly plain
            /// fedavg, bit for bit.
            #[test]
            fn sim_zero_staleness_is_plain_fedavg(
                raw in proptest::collection::vec(
                    (proptest::collection::vec(-2.0f32..2.0, 5), 1.0f64..40.0),
                    1..6,
                ),
            ) {
                let stale: Vec<(&[f32], f64, usize)> = raw
                    .iter()
                    .map(|(p, w)| (p.as_slice(), *w, 0usize))
                    .collect();
                let previous = vec![7.0f32; 5];
                prop_assert_eq!(staleness_fedavg(&stale, &previous), fedavg(&raw));
            }

            /// Positive staleness never increases an update's weight, and
            /// the result stays a convex combination (bounded by the
            /// per-coordinate min/max of the inputs).
            #[test]
            fn sim_staleness_result_is_convex_combination(
                raw in proptest::collection::vec(
                    (proptest::collection::vec(-2.0f32..2.0, 4), 1.0f64..40.0, 0usize..10),
                    1..6,
                ),
            ) {
                let previous = vec![0.0f32; 4];
                let views: Vec<(&[f32], f64, usize)> = raw
                    .iter()
                    .map(|(p, w, s)| (p.as_slice(), *w, *s))
                    .collect();
                let got = staleness_fedavg(&views, &previous);
                for i in 0..4 {
                    let lo = raw.iter().map(|(p, _, _)| p[i]).fold(f32::INFINITY, f32::min);
                    let hi = raw.iter().map(|(p, _, _)| p[i]).fold(f32::NEG_INFINITY, f32::max);
                    prop_assert!(got[i] >= lo - 1e-5 && got[i] <= hi + 1e-5,
                        "coord {} = {} outside [{}, {}]", i, got[i], lo, hi);
                }
            }
        }
    }
}
