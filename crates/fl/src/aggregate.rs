//! Server-side aggregation: FedAvg over flat parameters and BN statistics,
//! plus the payload-native variants that decode-and-accumulate encoded
//! update deltas without ever materializing a per-device dense vector.
//!
//! The [`Aggregator`] enum layers the robust rules of the trimmed-mean /
//! median family (Yin et al., ICML'18) and norm-bounded clipping on top of
//! the same payload pipeline, so a hostile cohort member's poisoned delta
//! is bounded or outvoted instead of averaged in.

use crate::config::ConfigError;
use ft_nn::BnStats;
use ft_runtime::Runtime;
use ft_sparse::{Payload, PayloadView, ShardPlan, WireCtx};
use serde::{Deserialize, Serialize};

/// Weighted average of flat parameter vectors (FedAvg).
///
/// Weights are normalized internally, so callers may pass raw dataset sizes.
///
/// # Panics
///
/// Panics if `updates` is empty, lengths differ, or the weight sum is zero.
pub fn fedavg(updates: &[(Vec<f32>, f64)]) -> Vec<f32> {
    assert!(!updates.is_empty(), "fedavg needs at least one update");
    let total_w: f64 = updates.iter().map(|(_, w)| *w).sum();
    assert!(total_w > 0.0, "fedavg weights sum to zero");
    try_fedavg(updates).expect("nonempty updates with positive weight")
}

/// [`fedavg`] without the degenerate-cohort panics: returns `None` when
/// `updates` is empty or the weight sum is not strictly positive (all-zero
/// weights, a fully dropped cohort). This is the division-hazard-free
/// primitive the schedulers build on — a `None` means "keep the previous
/// global" rather than silently producing NaN-filled parameters.
///
/// # Panics
///
/// Still panics on ragged parameter lengths — that is a caller bug, not a
/// degenerate-but-possible fleet state.
pub fn try_fedavg(updates: &[(Vec<f32>, f64)]) -> Option<Vec<f32>> {
    let total_w: f64 = updates.iter().map(|(_, w)| *w).sum();
    if updates.is_empty() || !total_w.is_finite() || total_w <= 0.0 {
        return None;
    }
    let n = updates[0].0.len();
    let mut out = vec![0.0f64; n];
    for (params, w) in updates {
        assert_eq!(params.len(), n, "fedavg parameter length mismatch");
        let wn = *w / total_w;
        for (o, &p) in out.iter_mut().zip(params.iter()) {
            *o += wn * p as f64;
        }
    }
    Some(out.into_iter().map(|v| v as f32).collect())
}

/// Weighted average that degrades gracefully: an empty or zero-weight
/// cohort returns a copy of `previous` (the current global) instead of
/// panicking or emitting NaNs.
///
/// # Panics
///
/// Panics if an update's length differs from `previous`.
///
/// # Examples
///
/// ```
/// use ft_fl::fedavg_or_previous;
///
/// let global = vec![1.0, 2.0];
/// // Empty surviving cohort: the round makes no progress.
/// assert_eq!(fedavg_or_previous(&[], &global), global);
/// // All-zero weights are equally degenerate.
/// let degenerate = vec![(vec![9.0, 9.0], 0.0)];
/// assert_eq!(fedavg_or_previous(&degenerate, &global), global);
/// ```
pub fn fedavg_or_previous(updates: &[(Vec<f32>, f64)], previous: &[f32]) -> Vec<f32> {
    for (params, _) in updates {
        assert_eq!(
            params.len(),
            previous.len(),
            "update length differs from the global model"
        );
    }
    try_fedavg(updates).unwrap_or_else(|| previous.to_vec())
}

/// Weighted-average FedAvg over *encoded update deltas*: each payload is an
/// encoded `θ_k − anchor`, and the new global is
/// `anchor + Σ_k (w_k / Σw) · decode(payload_k)`.
///
/// Sparse payloads (`MaskCsr`, `TopK`) are accumulated coordinate-by-
/// coordinate straight out of their wire representation — no per-device
/// dense vector is ever materialized. With `Codec::Dense` payloads whose
/// anchor is the current global this is exactly classic [`fedavg`] (up to
/// `f32`/`f64` accumulation order).
///
/// Returns `None` when `updates` is empty or the weight sum is not
/// strictly positive, so schedulers can keep the previous global.
///
/// # Panics
///
/// Panics if a payload's decoded length differs from `anchor`, or if a
/// values-only `MaskCsr` payload was encoded under a different mask epoch
/// than `ctx` (see `ft_sparse::Payload`).
pub fn try_fedavg_payloads(
    updates: &[(&Payload, f64)],
    anchor: &[f32],
    ctx: &WireCtx,
) -> Option<Vec<f32>> {
    let total_w: f64 = updates.iter().map(|(_, w)| *w).sum();
    if updates.is_empty() || !total_w.is_finite() || total_w <= 0.0 {
        return None;
    }
    let mut acc = vec![0.0f64; anchor.len()];
    for (payload, w) in updates {
        assert_eq!(
            payload.len(),
            anchor.len(),
            "payload length differs from the global model"
        );
        payload.accumulate_into(*w / total_w, &mut acc, ctx);
    }
    Some(
        anchor
            .iter()
            .zip(acc.iter())
            .map(|(&a, &d)| (a as f64 + d) as f32)
            .collect(),
    )
}

/// [`try_fedavg_payloads`] that panics on a degenerate cohort, mirroring
/// [`fedavg`].
///
/// # Panics
///
/// Panics if `updates` is empty, the weight sum is zero, or any payload is
/// inconsistent with `anchor`/`ctx`.
pub fn fedavg_payloads(updates: &[(&Payload, f64)], anchor: &[f32], ctx: &WireCtx) -> Vec<f32> {
    assert!(!updates.is_empty(), "fedavg needs at least one update");
    try_fedavg_payloads(updates, anchor, ctx).expect("nonempty updates with positive weight")
}

/// Staleness-weighted payload aggregation over `(payload, sample_weight,
/// staleness)` triples: the new global is `current + Σ_k wn_k ·
/// decode(payload_k)` with `wn_k ∝ w_k / sqrt(1 + s_k)` (the FedBuff
/// discount of [`staleness_weight`]). Deltas are applied to the *current*
/// global even when they were computed against an older anchor — the
/// standard buffered-aggregation semantics.
///
/// Routes through [`try_staleness_fedavg_payloads`] with the
/// [`fedavg_or_previous`] fallback: a degenerate cohort — empty, entirely
/// quarantined mid-round, or carrying only unusable weights — returns
/// `current` unchanged instead of dividing by a zero (or non-finite)
/// survivor weight sum.
///
/// # Panics
///
/// Panics if a payload's decoded length differs from `current`, or on a
/// mask-epoch mismatch (see [`try_fedavg_payloads`]).
pub fn staleness_fedavg_payloads(
    updates: &[(&Payload, f64, usize)],
    current: &[f32],
    ctx: &WireCtx,
) -> Vec<f32> {
    try_staleness_fedavg_payloads(updates, current, ctx).unwrap_or_else(|| current.to_vec())
}

/// [`staleness_fedavg_payloads`] without the silent-voiding hazard: each
/// update's *effective* weight `w_k / sqrt(1 + s_k)` is screened before the
/// normalizing sum, so one quarantine-worthy weight (NaN, infinite, zero,
/// or negative — e.g. an adversarial `num_samples` that overflowed a cast)
/// cannot poison the total and void the honest survivors' round. Returns
/// `None` only when *no* update carries usable weight — the caller keeps
/// the current global (route through the [`fedavg_or_previous`] idiom).
///
/// With every weight finite and positive this is bit-identical to the
/// unscreened sum: the same updates enter the total in the same order.
///
/// # Panics
///
/// Panics if a payload's decoded length differs from `current`, or on a
/// mask-epoch mismatch (see [`try_fedavg_payloads`]).
pub fn try_staleness_fedavg_payloads(
    updates: &[(&Payload, f64, usize)],
    current: &[f32],
    ctx: &WireCtx,
) -> Option<Vec<f32>> {
    let usable: Vec<(&Payload, f64)> = updates
        .iter()
        .map(|(p, w, s)| (*p, w * staleness_weight(*s)))
        .filter(|(_, ew)| ew.is_finite() && *ew > 0.0)
        .collect();
    let total_w: f64 = usable.iter().map(|(_, ew)| *ew).sum();
    if usable.is_empty() || !total_w.is_finite() || total_w <= 0.0 {
        return None;
    }
    let mut acc = vec![0.0f64; current.len()];
    for (payload, ew) in &usable {
        assert_eq!(
            payload.len(),
            current.len(),
            "payload length differs from the global model"
        );
        payload.accumulate_into(*ew / total_w, &mut acc, ctx);
    }
    Some(
        current
            .iter()
            .zip(acc.iter())
            .map(|(&c, &d)| (c as f64 + d) as f32)
            .collect(),
    )
}

/// FedBuff-style staleness discount: an update computed `staleness` server
/// versions ago is weighted by `1 / sqrt(1 + staleness)` (Nguyen et al.,
/// "Federated Learning with Buffered Asynchronous Aggregation").
pub fn staleness_weight(staleness: usize) -> f64 {
    1.0 / (1.0 + staleness as f64).sqrt()
}

/// Staleness-weighted FedAvg over `(params, sample_weight, staleness)`
/// triples: each update's weight is its sample count discounted by
/// [`staleness_weight`]. With all-zero staleness this is exactly plain
/// [`fedavg`]; a degenerate cohort returns `previous` unchanged. Borrows
/// the parameter slices — no per-update copies.
///
/// # Panics
///
/// Panics if an update's length differs from `previous`.
pub fn staleness_fedavg(updates: &[(&[f32], f64, usize)], previous: &[f32]) -> Vec<f32> {
    for (params, _, _) in updates {
        assert_eq!(
            params.len(),
            previous.len(),
            "update length differs from the global model"
        );
    }
    let total_w: f64 = updates
        .iter()
        .map(|(_, w, s)| w * staleness_weight(*s))
        .sum();
    if updates.is_empty() || !total_w.is_finite() || total_w <= 0.0 {
        return previous.to_vec();
    }
    let mut out = vec![0.0f64; previous.len()];
    for (params, w, s) in updates {
        let wn = w * staleness_weight(*s) / total_w;
        for (o, &p) in out.iter_mut().zip(params.iter()) {
            *o += wn * p as f64;
        }
    }
    out.into_iter().map(|v| v as f32).collect()
}

/// Weighted average of per-layer BatchNorm statistics (Eq. 4):
/// `µ = Σ_k (|D̂_k|/Σ|D̂_j|) µ_k` and likewise for `σ²`.
///
/// # Panics
///
/// Panics if `updates` is empty or the layer structures differ.
pub fn aggregate_bn_stats(updates: &[(Vec<BnStats>, f64)]) -> Vec<BnStats> {
    assert!(
        !updates.is_empty(),
        "bn aggregation needs at least one update"
    );
    let total_w: f64 = updates.iter().map(|(_, w)| *w).sum();
    assert!(total_w > 0.0, "bn aggregation weights sum to zero");
    try_aggregate_bn_stats(updates).expect("nonempty updates with positive weight")
}

/// [`aggregate_bn_stats`] without the degenerate-cohort panics: `None` when
/// `updates` is empty or all weights are zero, so schedulers can keep the
/// previous global statistics instead.
pub fn try_aggregate_bn_stats(updates: &[(Vec<BnStats>, f64)]) -> Option<Vec<BnStats>> {
    let total_w: f64 = updates.iter().map(|(_, w)| *w).sum();
    if updates.is_empty() || !total_w.is_finite() || total_w <= 0.0 {
        return None;
    }
    let layers = updates[0].0.len();
    let mut out: Vec<BnStats> = updates[0]
        .0
        .iter()
        .map(|s| BnStats {
            mean: vec![0.0; s.mean.len()],
            var: vec![0.0; s.var.len()],
        })
        .collect();
    for (stats, w) in updates {
        assert_eq!(stats.len(), layers, "bn layer count mismatch");
        let wn = (*w / total_w) as f32;
        for (o, s) in out.iter_mut().zip(stats.iter()) {
            assert_eq!(o.mean.len(), s.mean.len(), "bn channel count mismatch");
            for (om, &sm) in o.mean.iter_mut().zip(s.mean.iter()) {
                *om += wn * sm;
            }
            for (ov, &sv) in o.var.iter_mut().zip(s.var.iter()) {
                *ov += wn * sv;
            }
        }
    }
    Some(out)
}

/// Server aggregation rule: how one round's accepted payloads become the
/// next global model. `FedAvg` is the throughput default; the other rules
/// trade compute (each payload is decoded to a dense delta) for robustness
/// against poisoned cohort members, per the standard Byzantine-tolerant
/// aggregation families.
///
/// Selected via `FlConfig.aggregator` and validated by
/// `FlConfig::validate`; works under both scheduler loops (the synchronous
/// barrier applies the rule against the round's anchor, the buffered event
/// loop against the current global).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum Aggregator {
    /// Sample-weighted averaging of payload deltas — exactly
    /// [`try_fedavg_payloads`] / [`staleness_fedavg_payloads`], bit for bit.
    #[default]
    FedAvg,
    /// Coordinate-wise β-trimmed mean: per coordinate, drop the
    /// `t = min(⌊β·n⌋, (n−1)/2)` largest and smallest delta values and
    /// average the rest, unweighted. Tolerates up to `t` arbitrary
    /// (sign-flipped, scaled, NaN) cohort members per coordinate.
    TrimmedMean {
        /// Trim fraction per tail, in `[0, 0.5)`.
        beta: f64,
    },
    /// Coordinate-wise median of the delta values (mean of the two middle
    /// order statistics for even cohorts) — the β→0.5 limit of trimming.
    CoordinateMedian,
    /// FedAvg over norm-bounded deltas: each decoded delta is scaled by
    /// `min(1, τ / ‖δ‖₂)` before the weighted average, bounding any single
    /// device's pull on the global (the norm-clipping defense against
    /// model poisoning).
    NormClipped {
        /// L2 clipping threshold, finite and positive.
        tau: f64,
    },
}

/// What an [`Aggregator`] produced for one round.
#[derive(Clone, Debug, PartialEq)]
pub struct AggregateOutcome {
    /// The new global parameters, or `None` when the cohort was degenerate
    /// (empty, fully quarantined, or without usable weight) and the caller
    /// should keep the previous global.
    pub params: Option<Vec<f32>>,
    /// How many accepted updates were norm-clipped (always 0 for the
    /// rank-based rules and `FedAvg`).
    pub clipped: usize,
}

impl AggregateOutcome {
    fn keep_previous() -> Self {
        AggregateOutcome {
            params: None,
            clipped: 0,
        }
    }
}

impl Aggregator {
    /// Stable CLI / display name (`fedavg`, `trimmed_mean`, `median`,
    /// `norm_clipped`).
    pub fn name(&self) -> &'static str {
        match self {
            Aggregator::FedAvg => "fedavg",
            Aggregator::TrimmedMean { .. } => "trimmed_mean",
            Aggregator::CoordinateMedian => "median",
            Aggregator::NormClipped { .. } => "norm_clipped",
        }
    }

    /// Parses `name` or `name:param` (`trimmed_mean:0.25`,
    /// `norm_clipped:2.0`); parameterized rules fall back to `β = 0.2` /
    /// `τ = 1.0` when the parameter is omitted. Returns `None` for unknown
    /// names or unparseable parameters — validity of the *value* is
    /// [`validate`](Self::validate)'s job.
    pub fn from_name(s: &str) -> Option<Aggregator> {
        let (name, param) = match s.split_once(':') {
            Some((n, p)) => (n, Some(p)),
            None => (s, None),
        };
        let parsed = match param {
            Some(p) => Some(p.parse::<f64>().ok()?),
            None => None,
        };
        match name {
            "fedavg" => Some(Aggregator::FedAvg),
            "trimmed_mean" => Some(Aggregator::TrimmedMean {
                beta: parsed.unwrap_or(0.2),
            }),
            "median" | "coordinate_median" => Some(Aggregator::CoordinateMedian),
            "norm_clipped" => Some(Aggregator::NormClipped {
                tau: parsed.unwrap_or(1.0),
            }),
            _ => None,
        }
    }

    /// Checks the rule's parameter: `β` must be finite in `[0, 0.5)`, `τ`
    /// finite and strictly positive.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match *self {
            Aggregator::FedAvg | Aggregator::CoordinateMedian => Ok(()),
            Aggregator::TrimmedMean { beta } => {
                if beta.is_finite() && (0.0..0.5).contains(&beta) {
                    Ok(())
                } else {
                    Err(ConfigError::BadTrimFraction { beta })
                }
            }
            Aggregator::NormClipped { tau } => {
                if tau.is_finite() && tau > 0.0 {
                    Ok(())
                } else {
                    Err(ConfigError::BadClipNorm { tau })
                }
            }
        }
    }

    /// Barrier-loop aggregation: combines the surviving `(payload, sample
    /// weight)` pairs against the round's `anchor`. `params: None` means
    /// "keep the previous global" (degenerate cohort), mirroring
    /// [`try_fedavg_payloads`].
    ///
    /// # Panics
    ///
    /// Panics if a payload is inconsistent with `anchor`/`ctx` (caller
    /// bug — hostile payloads are screened before they reach this).
    pub fn aggregate(
        &self,
        updates: &[(&Payload, f64)],
        anchor: &[f32],
        ctx: &WireCtx,
    ) -> AggregateOutcome {
        match *self {
            Aggregator::FedAvg => AggregateOutcome {
                params: try_fedavg_payloads(updates, anchor, ctx),
                clipped: 0,
            },
            Aggregator::TrimmedMean { beta } => {
                let deltas = decode_deltas(updates.iter().map(|(p, _)| *p), anchor.len(), ctx);
                AggregateOutcome {
                    params: trimmed_mean_apply(&deltas, anchor, beta),
                    clipped: 0,
                }
            }
            Aggregator::CoordinateMedian => {
                let deltas = decode_deltas(updates.iter().map(|(p, _)| *p), anchor.len(), ctx);
                AggregateOutcome {
                    params: median_apply(&deltas, anchor),
                    clipped: 0,
                }
            }
            Aggregator::NormClipped { tau } => {
                norm_clipped_apply(updates.iter().map(|&(p, w)| (p, w)), anchor, tau, ctx)
            }
        }
    }

    /// Buffered-loop aggregation over `(payload, sample weight, staleness)`
    /// triples against the *current* global. The rank-based rules are
    /// weight- and staleness-oblivious by construction (order statistics
    /// have no weights); `NormClipped` discounts weights by
    /// [`staleness_weight`] exactly like FedBuff. `params: None` again
    /// means "keep the current global".
    ///
    /// # Panics
    ///
    /// Panics if a payload is inconsistent with `current`/`ctx`.
    pub fn aggregate_stale(
        &self,
        updates: &[(&Payload, f64, usize)],
        current: &[f32],
        ctx: &WireCtx,
    ) -> AggregateOutcome {
        match *self {
            Aggregator::FedAvg => AggregateOutcome {
                params: try_staleness_fedavg_payloads(updates, current, ctx),
                clipped: 0,
            },
            Aggregator::TrimmedMean { beta } => {
                let deltas = decode_deltas(updates.iter().map(|(p, _, _)| *p), current.len(), ctx);
                AggregateOutcome {
                    params: trimmed_mean_apply(&deltas, current, beta),
                    clipped: 0,
                }
            }
            Aggregator::CoordinateMedian => {
                let deltas = decode_deltas(updates.iter().map(|(p, _, _)| *p), current.len(), ctx);
                AggregateOutcome {
                    params: median_apply(&deltas, current),
                    clipped: 0,
                }
            }
            Aggregator::NormClipped { tau } => norm_clipped_apply(
                updates
                    .iter()
                    .map(|&(p, w, s)| (p, w * staleness_weight(s))),
                current,
                tau,
                ctx,
            ),
        }
    }
}

/// Decodes every payload to a dense delta vector, checking lengths.
fn decode_deltas<'a>(
    payloads: impl Iterator<Item = &'a Payload>,
    expect_len: usize,
    ctx: &WireCtx,
) -> Vec<Vec<f32>> {
    payloads
        .map(|p| {
            assert_eq!(
                p.len(),
                expect_len,
                "payload length differs from the global model"
            );
            p.decode(ctx)
        })
        .collect()
}

/// `base + coordinate-wise β-trimmed mean of deltas`, or `None` for an
/// empty cohort. Sorting uses `total_cmp`, so adversarial NaNs land at the
/// tails where the trim removes them first.
fn trimmed_mean_apply(deltas: &[Vec<f32>], base: &[f32], beta: f64) -> Option<Vec<f32>> {
    let n = deltas.len();
    if n == 0 {
        return None;
    }
    let t = ((beta * n as f64).floor() as usize).min(n.saturating_sub(1) / 2);
    Some(rank_apply(deltas, base, |col| {
        let kept = &col[t..n - t];
        kept.iter().map(|&v| v as f64).sum::<f64>() / kept.len() as f64
    }))
}

/// `base + coordinate-wise median of deltas` (mean of the two middle order
/// statistics for even `n`), or `None` for an empty cohort.
fn median_apply(deltas: &[Vec<f32>], base: &[f32]) -> Option<Vec<f32>> {
    let n = deltas.len();
    if n == 0 {
        return None;
    }
    Some(rank_apply(deltas, base, |col| {
        if n % 2 == 1 {
            col[n / 2] as f64
        } else {
            (col[n / 2 - 1] as f64 + col[n / 2] as f64) / 2.0
        }
    }))
}

/// Shared column machinery for the rank-based rules: per coordinate,
/// gathers the cohort's delta values, sorts them totally, and applies
/// `reduce` to the sorted column.
fn rank_apply(deltas: &[Vec<f32>], base: &[f32], reduce: impl Fn(&[f32]) -> f64) -> Vec<f32> {
    let mut col = vec![0.0f32; deltas.len()];
    let mut out = Vec::with_capacity(base.len());
    for (i, &b) in base.iter().enumerate() {
        for (c, d) in col.iter_mut().zip(deltas.iter()) {
            *c = d[i];
        }
        col.sort_unstable_by(|a, b| a.total_cmp(b));
        out.push((b as f64 + reduce(&col)) as f32);
    }
    out
}

/// Weighted FedAvg over norm-clipped decoded deltas: each delta is scaled
/// by `min(1, τ / ‖δ‖₂)` (a zero or non-finite norm leaves the delta
/// unscaled — clipping cannot repair NaNs, only bound magnitudes), then
/// averaged under screened weights. Degenerate weight totals return
/// `keep_previous`.
fn norm_clipped_apply<'a>(
    updates: impl Iterator<Item = (&'a Payload, f64)>,
    base: &[f32],
    tau: f64,
    ctx: &WireCtx,
) -> AggregateOutcome {
    let mut clipped = 0usize;
    let usable: Vec<(Vec<f32>, f64)> = updates
        .filter(|(_, w)| w.is_finite() && *w > 0.0)
        .map(|(p, w)| {
            assert_eq!(
                p.len(),
                base.len(),
                "payload length differs from the global model"
            );
            (p.decode(ctx), w)
        })
        .collect();
    let total_w: f64 = usable.iter().map(|(_, w)| *w).sum();
    if usable.is_empty() || !total_w.is_finite() || total_w <= 0.0 {
        return AggregateOutcome::keep_previous();
    }
    let mut acc = vec![0.0f64; base.len()];
    for (delta, w) in &usable {
        let norm = delta
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt();
        let scale = if norm.is_finite() && norm > tau {
            clipped += 1;
            tau / norm
        } else {
            1.0
        };
        let wn = (*w / total_w) * scale;
        for (a, &d) in acc.iter_mut().zip(delta.iter()) {
            *a += wn * d as f64;
        }
    }
    AggregateOutcome {
        params: Some(
            base.iter()
                .zip(acc.iter())
                .map(|(&b, &d)| (b as f64 + d) as f32)
                .collect(),
        ),
        clipped,
    }
}

/// An encoded update the sharded aggregation engine can drain: the owned
/// [`Payload`] (the barrier loop's buffered updates) and the borrowed
/// [`PayloadView`] (the zero-copy receive path) answer the same three
/// questions, so [`Aggregator::aggregate_into`] serves both without a copy.
pub trait ShardAccumulate: Sync {
    /// Decoded flat length.
    fn vec_len(&self) -> usize;
    /// Adds `weight · value` for the coordinates of `plan`'s shard `s` into
    /// the shard's accumulator slice (see [`Payload::accumulate_shard_into`]).
    fn shard_accumulate(
        &self,
        weight: f64,
        acc: &mut [f64],
        ctx: &WireCtx,
        plan: &ShardPlan,
        s: usize,
    );
    /// Dense decode into a caller-owned buffer (zero-filled first).
    fn dense_decode_into(&self, out: &mut [f32], ctx: &WireCtx);
}

impl ShardAccumulate for Payload {
    fn vec_len(&self) -> usize {
        self.len()
    }
    fn shard_accumulate(
        &self,
        weight: f64,
        acc: &mut [f64],
        ctx: &WireCtx,
        plan: &ShardPlan,
        s: usize,
    ) {
        self.accumulate_shard_into(weight, acc, ctx, plan, s);
    }
    fn dense_decode_into(&self, out: &mut [f32], ctx: &WireCtx) {
        self.decode_into(out, ctx);
    }
}

impl ShardAccumulate for PayloadView<'_> {
    fn vec_len(&self) -> usize {
        self.len()
    }
    fn shard_accumulate(
        &self,
        weight: f64,
        acc: &mut [f64],
        ctx: &WireCtx,
        plan: &ShardPlan,
        s: usize,
    ) {
        self.accumulate_shard_into(weight, acc, ctx, plan, s);
    }
    fn dense_decode_into(&self, out: &mut [f32], ctx: &WireCtx) {
        self.decode_into(out, ctx);
    }
}

/// Round-persistent scratch for [`Aggregator::aggregate_into`]: every buffer
/// the sharded engine touches lives here and is recycled round over round,
/// so a steady-state round (same mask epoch, same cohort size) allocates
/// nothing. The shard plan is the reuse key — it is rebuilt only when the
/// mask epoch, model length, or shard count changes
/// ([`ShardPlan::matches`]).
#[derive(Debug, Default)]
pub struct AggScratch {
    /// `f64` delta accumulator, one slot per coordinate.
    acc: Vec<f64>,
    /// The produced global parameters (what [`AggregateRef::params`]
    /// borrows).
    params: Vec<f32>,
    /// Decoded dense deltas for the robust rules, one per accepted update.
    deltas: Vec<Vec<f32>>,
    /// Screened normalized weights (`NormClipped`), aligned with `deltas`.
    weights: Vec<f64>,
    /// Per-worker sort columns for the rank-based rules.
    cols: Vec<Vec<f32>>,
    /// Cached shard plan, rebuilt on `(epoch, len, shard count)` change.
    plan: Option<ShardPlan>,
}

impl AggScratch {
    /// Empty scratch; buffers grow to steady-state sizes on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached shard plan for `ctx` under `rt`'s deterministic coordinate
    /// chunking, rebuilding it only when the reuse key changed.
    fn plan(&mut self, ctx: &WireCtx, rt: &Runtime) -> &ShardPlan {
        // `chunk_ranges(n, t)` produces min(t, n) ranges (none for n == 0);
        // computed directly so the steady-state check allocates nothing.
        let num_shards = rt.threads().min(ctx.len());
        let stale = match &self.plan {
            Some(p) => !p.matches(ctx, num_shards),
            None => true,
        };
        if stale {
            self.plan = Some(ShardPlan::build(ctx, rt.ranges(ctx.len())));
        }
        self.plan.as_ref().expect("plan was just ensured")
    }
}

/// What [`Aggregator::aggregate_into`] produced for one round — the borrowed
/// sibling of [`AggregateOutcome`]: `params` points into the caller's
/// [`AggScratch`] instead of a fresh allocation.
#[derive(Debug, PartialEq)]
pub struct AggregateRef<'a> {
    /// The new global parameters, or `None` to keep the previous global
    /// (degenerate cohort), exactly as [`AggregateOutcome::params`].
    pub params: Option<&'a [f32]>,
    /// How many accepted updates were norm-clipped.
    pub clipped: usize,
}

/// Element offset where shard `s` starts (`s == num_shards` → the end).
fn shard_offset(plan: &ShardPlan, s: usize) -> usize {
    if s == plan.num_shards() {
        plan.len()
    } else {
        plan.range(s).start
    }
}

/// Runs `f(s, shard slice)` for every shard of `plan` over `buf`, fanning
/// shards out on `rt`. Shards are disjoint output ranges, so any schedule
/// is race-free; with one shard (the sequential runtime) `f` runs inline on
/// the calling thread with no spawn and no allocation.
fn for_each_shard<T: Send>(
    rt: &Runtime,
    plan: &ShardPlan,
    buf: &mut [T],
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert_eq!(buf.len(), plan.len(), "shard buffer length mismatch");
    match plan.num_shards() {
        0 => {}
        1 => f(0, buf),
        n => {
            let jobs = rt.split_at_offsets_mut(buf, n, |s| shard_offset(plan, s));
            rt.scatter(
                jobs,
                |(shards, slice): (std::ops::Range<usize>, &mut [T])| {
                    let base = shard_offset(plan, shards.start);
                    let mut rest = slice;
                    let mut consumed = base;
                    for s in shards {
                        let end = shard_offset(plan, s + 1);
                        let (head, tail) = rest.split_at_mut(end - consumed);
                        consumed = end;
                        rest = tail;
                        f(s, head);
                    }
                },
            );
        }
    }
}

impl Aggregator {
    /// The allocation-free sharded engine behind [`aggregate`](Self::aggregate):
    /// combines the surviving `(update, sample weight)` pairs against
    /// `anchor`, decoding-and-accumulating each update shard-by-shard on
    /// `rt`'s pool and reusing every buffer in `scratch` across rounds.
    /// Accepts owned [`Payload`]s and borrowed [`PayloadView`]s alike
    /// (anything [`ShardAccumulate`]).
    ///
    /// Bit-identical to [`aggregate`](Self::aggregate) for every rule and
    /// any shard count: shards partition the *output coordinates*, so per
    /// coordinate the same values are added in the same (cohort) order as
    /// one sequential pass.
    ///
    /// # Panics
    ///
    /// Same conditions as [`aggregate`](Self::aggregate).
    pub fn aggregate_into<'s, P: ShardAccumulate>(
        &self,
        updates: &[(&P, f64)],
        anchor: &[f32],
        ctx: &WireCtx,
        rt: &Runtime,
        scratch: &'s mut AggScratch,
    ) -> AggregateRef<'s> {
        match *self {
            Aggregator::FedAvg => AggregateRef {
                params: fedavg_into(updates, anchor, ctx, rt, scratch),
                clipped: 0,
            },
            Aggregator::TrimmedMean { beta } => {
                let n = updates.len();
                let t = ((beta * n as f64).floor() as usize).min(n.saturating_sub(1) / 2);
                AggregateRef {
                    params: rank_into(updates, anchor, ctx, rt, scratch, move |col| {
                        let kept = &col[t..n - t];
                        kept.iter().map(|&v| v as f64).sum::<f64>() / kept.len() as f64
                    }),
                    clipped: 0,
                }
            }
            Aggregator::CoordinateMedian => {
                let n = updates.len();
                AggregateRef {
                    params: rank_into(updates, anchor, ctx, rt, scratch, move |col| {
                        if n % 2 == 1 {
                            col[n / 2] as f64
                        } else {
                            (col[n / 2 - 1] as f64 + col[n / 2] as f64) / 2.0
                        }
                    }),
                    clipped: 0,
                }
            }
            Aggregator::NormClipped { tau } => {
                norm_clipped_into(updates, anchor, tau, ctx, rt, scratch)
            }
        }
    }
}

/// Sharded [`try_fedavg_payloads`]: same screening, same asserts, same
/// per-coordinate arithmetic — the accumulator is just filled shard-by-shard
/// on the pool and recycled from `scratch`.
fn fedavg_into<'s, P: ShardAccumulate>(
    updates: &[(&P, f64)],
    anchor: &[f32],
    ctx: &WireCtx,
    rt: &Runtime,
    scratch: &'s mut AggScratch,
) -> Option<&'s [f32]> {
    let total_w: f64 = updates.iter().map(|(_, w)| *w).sum();
    if updates.is_empty() || !total_w.is_finite() || total_w <= 0.0 {
        return None;
    }
    for (p, _) in updates {
        assert_eq!(
            p.vec_len(),
            anchor.len(),
            "payload length differs from the global model"
        );
    }
    scratch.plan(ctx, rt);
    let AggScratch {
        acc, params, plan, ..
    } = scratch;
    let plan = plan.as_ref().expect("plan ensured above");
    acc.resize(anchor.len(), 0.0);
    acc.fill(0.0);
    for_each_shard(rt, plan, acc, |s, acc_s| {
        for (p, w) in updates {
            p.shard_accumulate(*w / total_w, acc_s, ctx, plan, s);
        }
    });
    params.resize(anchor.len(), 0.0);
    for_each_shard(rt, plan, params, |s, out| {
        let start = plan.range(s).start;
        for (k, o) in out.iter_mut().enumerate() {
            let i = start + k;
            *o = (anchor[i] as f64 + acc[i]) as f32;
        }
    });
    Some(params)
}

/// Sharded [`rank_apply`] over recycled delta buffers: decodes every update
/// into `scratch.deltas` (fanned out per update), then reduces sorted
/// per-coordinate columns shard-parallel. Per coordinate the column is
/// gathered in cohort order and sorted with `total_cmp` exactly as the
/// sequential path does.
fn rank_into<'s, P: ShardAccumulate>(
    updates: &[(&P, f64)],
    anchor: &[f32],
    ctx: &WireCtx,
    rt: &Runtime,
    scratch: &'s mut AggScratch,
    reduce: impl Fn(&[f32]) -> f64 + Sync,
) -> Option<&'s [f32]> {
    let n = updates.len();
    if n == 0 {
        return None;
    }
    scratch.plan(ctx, rt);
    let AggScratch {
        params,
        deltas,
        cols,
        plan,
        ..
    } = scratch;
    let plan = plan.as_ref().expect("plan ensured above");
    deltas.resize_with(n, Vec::new);
    for d in deltas.iter_mut() {
        d.resize(anchor.len(), 0.0);
    }
    let decode_jobs: Vec<(&P, &mut Vec<f32>)> = updates
        .iter()
        .map(|(p, _)| *p)
        .zip(deltas.iter_mut())
        .collect();
    rt.scatter(decode_jobs, |(p, d)| {
        assert_eq!(
            p.vec_len(),
            anchor.len(),
            "payload length differs from the global model"
        );
        p.dense_decode_into(d, ctx);
    });
    let deltas = &deltas[..n];
    cols.resize_with(plan.num_shards().max(1), Vec::new);
    for col in cols.iter_mut() {
        col.resize(n, 0.0);
    }
    params.resize(anchor.len(), 0.0);
    // One sort column per shard: shards are disjoint output ranges, and the
    // scatter below hands shard `s` exactly `cols[s]`.
    let col_slots: Vec<std::sync::Mutex<&mut Vec<f32>>> =
        cols.iter_mut().map(std::sync::Mutex::new).collect();
    for_each_shard(rt, plan, params, |s, out| {
        let mut col = col_slots[s].lock().expect("column mutex poisoned");
        let start = plan.range(s).start;
        for (k, o) in out.iter_mut().enumerate() {
            let i = start + k;
            for (c, d) in col.iter_mut().zip(deltas.iter()) {
                *c = d[i];
            }
            col.sort_unstable_by(|a, b| a.total_cmp(b));
            *o = (anchor[i] as f64 + reduce(col.as_slice())) as f32;
        }
    });
    Some(params)
}

/// Sharded [`norm_clipped_apply`] over recycled buffers: weights are
/// screened before decode, norms are computed sequentially per delta (one
/// full-vector `f64` sum each, exactly the sequential order), and only the
/// final weighted accumulation + anchor add fan out shard-parallel.
fn norm_clipped_into<'s, P: ShardAccumulate>(
    updates: &[(&P, f64)],
    anchor: &[f32],
    tau: f64,
    ctx: &WireCtx,
    rt: &Runtime,
    scratch: &'s mut AggScratch,
) -> AggregateRef<'s> {
    scratch.plan(ctx, rt);
    let AggScratch {
        acc,
        params,
        deltas,
        weights,
        plan,
        ..
    } = scratch;
    let plan = plan.as_ref().expect("plan ensured above");
    let usable: Vec<(&P, f64)> = updates
        .iter()
        .filter(|(_, w)| w.is_finite() && *w > 0.0)
        .map(|&(p, w)| (p, w))
        .collect();
    let total_w: f64 = usable.iter().map(|(_, w)| *w).sum();
    if usable.is_empty() || !total_w.is_finite() || total_w <= 0.0 {
        return AggregateRef {
            params: None,
            clipped: 0,
        };
    }
    let m = usable.len();
    deltas.resize_with(m, Vec::new);
    for d in deltas.iter_mut() {
        d.resize(anchor.len(), 0.0);
    }
    let decode_jobs: Vec<(&P, &mut Vec<f32>)> = usable
        .iter()
        .map(|(p, _)| *p)
        .zip(deltas.iter_mut())
        .collect();
    rt.scatter(decode_jobs, |(p, d)| {
        assert_eq!(
            p.vec_len(),
            anchor.len(),
            "payload length differs from the global model"
        );
        p.dense_decode_into(d, ctx);
    });
    let deltas = &deltas[..m];
    let mut clipped = 0usize;
    weights.clear();
    for ((_, w), delta) in usable.iter().zip(deltas.iter()) {
        let norm = delta
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt();
        let scale = if norm.is_finite() && norm > tau {
            clipped += 1;
            tau / norm
        } else {
            1.0
        };
        weights.push((*w / total_w) * scale);
    }
    acc.resize(anchor.len(), 0.0);
    acc.fill(0.0);
    for_each_shard(rt, plan, acc, |s, acc_s| {
        let r = plan.range(s);
        for (delta, &wn) in deltas.iter().zip(weights.iter()) {
            for (a, &d) in acc_s.iter_mut().zip(delta[r.clone()].iter()) {
                *a += wn * d as f64;
            }
        }
    });
    params.resize(anchor.len(), 0.0);
    for_each_shard(rt, plan, params, |s, out| {
        let start = plan.range(s).start;
        for (k, o) in out.iter_mut().enumerate() {
            let i = start + k;
            *o = (anchor[i] as f64 + acc[i]) as f32;
        }
    });
    AggregateRef {
        params: Some(params),
        clipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fedavg_weighted_mean() {
        let got = fedavg(&[(vec![1.0, 0.0], 1.0), (vec![0.0, 1.0], 3.0)]);
        assert!((got[0] - 0.25).abs() < 1e-6);
        assert!((got[1] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn fedavg_unnormalized_weights_ok() {
        let a = fedavg(&[(vec![2.0], 10.0), (vec![4.0], 30.0)]);
        let b = fedavg(&[(vec![2.0], 0.25), (vec![4.0], 0.75)]);
        assert!((a[0] - b[0]).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fedavg_rejects_ragged() {
        let _ = fedavg(&[(vec![1.0], 1.0), (vec![1.0, 2.0], 1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one update")]
    fn fedavg_rejects_empty() {
        let _ = fedavg(&[]);
    }

    #[test]
    fn bn_aggregation_weighted() {
        let a = vec![BnStats {
            mean: vec![1.0, 2.0],
            var: vec![1.0, 1.0],
        }];
        let b = vec![BnStats {
            mean: vec![3.0, 4.0],
            var: vec![3.0, 3.0],
        }];
        let got = aggregate_bn_stats(&[(a, 1.0), (b, 1.0)]);
        assert_eq!(got[0].mean, vec![2.0, 3.0]);
        assert_eq!(got[0].var, vec![2.0, 2.0]);
    }

    #[test]
    fn bn_aggregation_respects_dataset_sizes() {
        let a = vec![BnStats {
            mean: vec![0.0],
            var: vec![0.0],
        }];
        let b = vec![BnStats {
            mean: vec![10.0],
            var: vec![10.0],
        }];
        let got = aggregate_bn_stats(&[(a, 9.0), (b, 1.0)]);
        assert!((got[0].mean[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sim_empty_cohort_returns_previous_global_not_nan() {
        // The division hazard pinned: an empty surviving cohort or an
        // all-zero weight vector must hand back the previous global intact,
        // never a NaN-filled vector.
        let previous = vec![0.25f32, -1.5, 3.0];
        assert_eq!(try_fedavg(&[]), None);
        assert_eq!(try_fedavg(&[(vec![1.0, 1.0, 1.0], 0.0)]), None);
        assert_eq!(fedavg_or_previous(&[], &previous), previous);
        let got = fedavg_or_previous(&[(vec![9.0, 9.0, 9.0], 0.0)], &previous);
        assert_eq!(got, previous);
        assert!(got.iter().all(|v| v.is_finite()));
        assert_eq!(try_aggregate_bn_stats(&[]), None);
    }

    #[test]
    fn sim_staleness_weight_decays_from_one() {
        assert_eq!(staleness_weight(0), 1.0);
        assert!(staleness_weight(1) < 1.0);
        assert!(staleness_weight(8) < staleness_weight(3));
        assert!((staleness_weight(3) - 0.5).abs() < 1e-12); // 1/sqrt(4)
    }

    #[test]
    fn payload_fedavg_degenerate_cohorts_return_none_or_current() {
        let ctx = ft_sparse::WireCtx::dense(3);
        let anchor = vec![1.0f32, -2.0, 0.5];
        assert_eq!(try_fedavg_payloads(&[], &anchor, &ctx), None);
        let p = Payload::Dense {
            values: vec![9.0, 9.0, 9.0],
        };
        assert_eq!(try_fedavg_payloads(&[(&p, 0.0)], &anchor, &ctx), None);
        assert_eq!(
            staleness_fedavg_payloads(&[], &anchor, &ctx),
            anchor.clone()
        );
        assert_eq!(
            staleness_fedavg_payloads(&[(&p, 0.0, 3)], &anchor, &ctx),
            anchor
        );
    }

    fn dense(values: &[f32]) -> Payload {
        Payload::Dense {
            values: values.to_vec(),
        }
    }

    #[test]
    fn sim_staleness_nan_weight_does_not_void_honest_survivors() {
        // The fixed hazard: one NaN-weighted (or inf-weighted) update used
        // to make the *total* non-finite and silently void the whole
        // buffer, returning `current` as if nobody had trained. Screened
        // weights keep the honest survivors' round intact.
        let ctx = ft_sparse::WireCtx::dense(2);
        let current = vec![0.0f32, 0.0];
        let honest = dense(&[1.0, 1.0]);
        let hostile = dense(&[9.0, 9.0]);
        for bad_w in [f64::NAN, f64::INFINITY, -4.0, 0.0] {
            let got = staleness_fedavg_payloads(
                &[(&honest, 5.0, 0), (&hostile, bad_w, 0)],
                &current,
                &ctx,
            );
            assert_eq!(got, vec![1.0, 1.0], "bad weight {bad_w} voided the round");
        }
    }

    #[test]
    fn sim_fully_quarantined_buffer_keeps_current_global() {
        // Every buffered update carries an unusable weight (the whole
        // cohort was quarantined mid-round): the fedavg_or_previous route
        // hands back the current global, never a division by zero.
        let ctx = ft_sparse::WireCtx::dense(2);
        let current = vec![3.0f32, -1.0];
        let p = dense(&[9.0, 9.0]);
        assert_eq!(
            try_staleness_fedavg_payloads(&[(&p, 0.0, 1), (&p, f64::NAN, 0)], &current, &ctx),
            None
        );
        assert_eq!(
            staleness_fedavg_payloads(&[(&p, 0.0, 1), (&p, f64::NAN, 0)], &current, &ctx),
            current
        );
    }

    #[test]
    fn payload_trimmed_mean_outvotes_sign_flipped_outlier() {
        // Five honest devices push +1 per coordinate; one poisoned device
        // pushes a scaled sign-flip. One trim level removes it entirely.
        let ctx = ft_sparse::WireCtx::dense(2);
        let anchor = vec![0.0f32, 0.0];
        let honest = dense(&[1.0, 1.0]);
        let poison = dense(&[-80.0, -80.0]);
        let updates: Vec<(&Payload, f64)> = vec![
            (&honest, 1.0),
            (&honest, 1.0),
            (&honest, 1.0),
            (&honest, 1.0),
            (&honest, 1.0),
            (&poison, 50.0), // inflated weight is irrelevant: rank-based
        ];
        let agg = Aggregator::TrimmedMean { beta: 0.2 };
        let got = agg.aggregate(&updates, &anchor, &ctx).params.unwrap();
        assert_eq!(got, vec![1.0, 1.0]);
        // Plain FedAvg on the same cohort is dragged far negative.
        let avg = Aggregator::FedAvg
            .aggregate(&updates, &anchor, &ctx)
            .params
            .unwrap();
        assert!(avg[0] < -70.0, "fedavg should be poisoned, got {}", avg[0]);
    }

    #[test]
    fn payload_trimmed_mean_survives_adversarial_nans() {
        let ctx = ft_sparse::WireCtx::dense(1);
        let anchor = vec![0.0f32];
        let honest = dense(&[2.0]);
        let nan = dense(&[f32::NAN]);
        let updates: Vec<(&Payload, f64)> =
            vec![(&honest, 1.0), (&honest, 1.0), (&honest, 1.0), (&nan, 1.0)];
        let got = Aggregator::TrimmedMean { beta: 0.25 }
            .aggregate(&updates, &anchor, &ctx)
            .params
            .unwrap();
        assert_eq!(got, vec![2.0], "NaN must be trimmed at the tail");
    }

    #[test]
    fn payload_median_even_cohort_averages_middles() {
        let ctx = ft_sparse::WireCtx::dense(1);
        let anchor = vec![10.0f32];
        let payloads: Vec<Payload> = [1.0f32, 3.0, 5.0, 100.0]
            .iter()
            .map(|&v| dense(&[v]))
            .collect();
        let updates: Vec<(&Payload, f64)> = payloads.iter().map(|p| (p, 1.0)).collect();
        let got = Aggregator::CoordinateMedian
            .aggregate(&updates, &anchor, &ctx)
            .params
            .unwrap();
        assert_eq!(got, vec![14.0]); // 10 + (3+5)/2
    }

    #[test]
    fn payload_norm_clip_bounds_single_device_pull() {
        let ctx = ft_sparse::WireCtx::dense(2);
        let anchor = vec![0.0f32, 0.0];
        let honest = dense(&[0.5, 0.5]); // norm ~0.707: untouched at tau 1.0
        let poison = dense(&[600.0, 800.0]); // norm 1000: scaled to norm tau
        let updates: Vec<(&Payload, f64)> = vec![(&honest, 1.0), (&poison, 1.0)];
        let out = Aggregator::NormClipped { tau: 1.0 }.aggregate(&updates, &anchor, &ctx);
        assert_eq!(out.clipped, 1);
        let got = out.params.unwrap();
        // Both deltas now have norm <= 1, so the mean has norm <= 1.
        let norm = (got[0] as f64).hypot(got[1] as f64);
        assert!(norm <= 1.0 + 1e-6, "clipped mean norm {norm}");
        // Poison rescales to [0.6, 0.8]; mean with honest [0.5, 0.5].
        assert!((got[0] - 0.55).abs() < 1e-6 && (got[1] - 0.65).abs() < 1e-6);
    }

    #[test]
    fn payload_robust_rules_keep_previous_on_empty_cohort() {
        let ctx = ft_sparse::WireCtx::dense(2);
        let anchor = vec![1.0f32, 2.0];
        for agg in [
            Aggregator::FedAvg,
            Aggregator::TrimmedMean { beta: 0.2 },
            Aggregator::CoordinateMedian,
            Aggregator::NormClipped { tau: 1.0 },
        ] {
            let out = agg.aggregate(&[], &anchor, &ctx);
            assert_eq!(out.params, None, "{}", agg.name());
            assert_eq!(out.clipped, 0);
            let stale = agg.aggregate_stale(&[], &anchor, &ctx);
            assert_eq!(stale.params, None, "{} (stale)", agg.name());
        }
    }

    #[test]
    fn aggregator_names_parse_and_validate() {
        assert_eq!(Aggregator::from_name("fedavg"), Some(Aggregator::FedAvg));
        assert_eq!(
            Aggregator::from_name("trimmed_mean:0.25"),
            Some(Aggregator::TrimmedMean { beta: 0.25 })
        );
        assert_eq!(
            Aggregator::from_name("trimmed_mean"),
            Some(Aggregator::TrimmedMean { beta: 0.2 })
        );
        assert_eq!(
            Aggregator::from_name("median"),
            Some(Aggregator::CoordinateMedian)
        );
        assert_eq!(
            Aggregator::from_name("norm_clipped:2.5"),
            Some(Aggregator::NormClipped { tau: 2.5 })
        );
        assert_eq!(Aggregator::from_name("krum"), None);
        assert_eq!(Aggregator::from_name("trimmed_mean:lots"), None);
        for agg in [
            Aggregator::FedAvg,
            Aggregator::TrimmedMean { beta: 0.0 },
            Aggregator::CoordinateMedian,
            Aggregator::NormClipped { tau: 0.5 },
        ] {
            assert!(agg.validate().is_ok(), "{}", agg.name());
            assert_eq!(
                Aggregator::from_name(agg.name()).map(|a| a.name()),
                Some(agg.name())
            );
        }
        assert!(Aggregator::TrimmedMean { beta: 0.5 }.validate().is_err());
        assert!(Aggregator::TrimmedMean { beta: -0.1 }.validate().is_err());
        assert!(Aggregator::TrimmedMean { beta: f64::NAN }
            .validate()
            .is_err());
        assert!(Aggregator::NormClipped { tau: 0.0 }.validate().is_err());
        assert!(Aggregator::NormClipped { tau: f64::INFINITY }
            .validate()
            .is_err());
    }

    #[test]
    fn sharded_aggregate_into_matches_aggregate_bit_exactly() {
        // The engine the barrier loop now runs must be the exact math it
        // replaced, for every rule, shard count, and codec — golden traces
        // depend on it. Scratch is reused across calls to also exercise the
        // recycled-buffer path (stale contents must not leak through).
        use ft_sparse::Codec;
        let n = 37; // awkward length: uneven shard splits
        let mut ctx = ft_sparse::WireCtx::dense(n);
        ctx.epoch = 5;
        for (i, a) in ctx.alive.iter_mut().enumerate() {
            *a = i % 3 != 1; // sparse mask for the MaskCsr/TopK codecs
        }
        let anchor: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
        let rules = [
            Aggregator::FedAvg,
            Aggregator::TrimmedMean { beta: 0.2 },
            Aggregator::CoordinateMedian,
            Aggregator::NormClipped { tau: 0.5 },
        ];
        for codec in [
            Codec::Dense,
            Codec::MaskCsr,
            Codec::QuantInt8,
            Codec::TopK {
                k_frac: 0.25,
                error_feedback: false,
            },
        ] {
            let payloads: Vec<Payload> = (0..5)
                .map(|d| {
                    let delta: Vec<f32> = (0..n)
                        .map(|i| {
                            let v = ((d * 31 + i) as f32 * 0.11).cos() * (d as f32 - 2.0);
                            if ctx.alive[i] {
                                v
                            } else {
                                0.0
                            }
                        })
                        .collect();
                    codec.encode(&delta, &ctx, ctx.epoch, None)
                })
                .collect();
            let updates: Vec<(&Payload, f64)> = payloads
                .iter()
                .enumerate()
                .map(|(d, p)| (p, 1.0 + d as f64))
                .collect();
            for rule in rules {
                let reference = rule.aggregate(&updates, &anchor, &ctx);
                for threads in [1usize, 3] {
                    let rt = Runtime::exact(threads);
                    let mut scratch = AggScratch::new();
                    for pass in 0..2 {
                        let got = rule.aggregate_into(&updates, &anchor, &ctx, &rt, &mut scratch);
                        assert_eq!(got.clipped, reference.clipped);
                        let got_bits: Option<Vec<u32>> =
                            got.params.map(|p| p.iter().map(|v| v.to_bits()).collect());
                        let ref_bits: Option<Vec<u32>> = reference
                            .params
                            .as_ref()
                            .map(|p| p.iter().map(|v| v.to_bits()).collect());
                        assert_eq!(
                            got_bits,
                            ref_bits,
                            "{} diverged ({codec:?}, {threads} threads, pass {pass})",
                            rule.name()
                        );
                    }
                }
            }
        }
        // Degenerate cohorts keep the previous global through the sharded
        // path too.
        let mut scratch = AggScratch::new();
        let rt = Runtime::sequential();
        for rule in rules {
            let got = rule.aggregate_into::<Payload>(&[], &anchor, &ctx, &rt, &mut scratch);
            assert_eq!(got.params, None, "{}", rule.name());
            assert_eq!(got.clipped, 0);
        }
    }

    #[test]
    fn payload_stale_fedavg_arm_matches_free_function_bit_exactly() {
        // The buffered loop's FedAvg dispatch must be the exact function it
        // replaced — golden traces depend on it.
        let ctx = ft_sparse::WireCtx::dense(3);
        let current = vec![0.5f32, -0.25, 2.0];
        let a = dense(&[1.0, 2.0, 3.0]);
        let b = dense(&[-1.0, 0.5, 0.0]);
        let updates: Vec<(&Payload, f64, usize)> = vec![(&a, 12.0, 0), (&b, 5.0, 2)];
        let via_enum = Aggregator::FedAvg
            .aggregate_stale(&updates, &current, &ctx)
            .params
            .unwrap();
        let direct = staleness_fedavg_payloads(&updates, &current, &ctx);
        assert_eq!(
            via_enum.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            direct.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    mod props {
        use super::super::*;
        use ft_sparse::Codec;
        use proptest::prelude::*;

        /// Builds delta payloads for `params` against `anchor` under
        /// `codec` and aggregates them, returning the payload-pipeline
        /// global.
        fn roundtrip_fedavg(raw: &[(Vec<f32>, f64)], anchor: &[f32], codec: Codec) -> Vec<f32> {
            let ctx = WireCtx::dense(anchor.len());
            let payloads: Vec<Payload> = raw
                .iter()
                .map(|(p, _)| {
                    let delta: Vec<f32> = p.iter().zip(anchor.iter()).map(|(x, a)| x - a).collect();
                    codec.encode(&delta, &ctx, ctx.epoch, None)
                })
                .collect();
            let updates: Vec<(&Payload, f64)> = payloads
                .iter()
                .zip(raw.iter())
                .map(|(p, (_, w))| (p, *w))
                .collect();
            fedavg_payloads(&updates, anchor, &ctx)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Dense payload aggregation agrees with classic fedavg on the
            /// decoded parameters to numerical tolerance.
            #[test]
            fn payload_dense_fedavg_matches_classic(
                raw in proptest::collection::vec(
                    (proptest::collection::vec(-2.0f32..2.0, 6), 1.0f64..40.0),
                    1..6,
                ),
                anchor in proptest::collection::vec(-2.0f32..2.0, 6),
            ) {
                let classic = fedavg(&raw);
                let via_payloads = roundtrip_fedavg(&raw, &anchor, Codec::Dense);
                for (&a, &b) in classic.iter().zip(via_payloads.iter()) {
                    prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
                }
            }

            /// Quantized (int8) payload aggregation stays within the
            /// accumulated quantization bound of dense fedavg: each delta's
            /// error is at most half a step of its own range, and fedavg is
            /// a convex combination, so the aggregate error is bounded by
            /// the largest per-device bound.
            #[test]
            fn payload_quantized_fedavg_within_tolerance(
                raw in proptest::collection::vec(
                    (proptest::collection::vec(-2.0f32..2.0, 6), 1.0f64..40.0),
                    1..6,
                ),
                anchor in proptest::collection::vec(-2.0f32..2.0, 6),
            ) {
                let classic = fedavg(&raw);
                let quantized = roundtrip_fedavg(&raw, &anchor, Codec::QuantInt8);
                let worst_bound = raw
                    .iter()
                    .map(|(p, _)| {
                        let deltas: Vec<f32> =
                            p.iter().zip(anchor.iter()).map(|(x, a)| x - a).collect();
                        let lo = deltas.iter().cloned().fold(f32::INFINITY, f32::min);
                        let hi = deltas.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                        (hi - lo) / 510.0
                    })
                    .fold(0.0f32, f32::max);
                for (&a, &b) in classic.iter().zip(quantized.iter()) {
                    prop_assert!(
                        (a - b).abs() <= worst_bound + 1e-5,
                        "{a} vs {b} beyond {worst_bound}"
                    );
                }
            }

            /// All-zero staleness makes staleness_fedavg exactly plain
            /// fedavg, bit for bit.
            #[test]
            fn sim_zero_staleness_is_plain_fedavg(
                raw in proptest::collection::vec(
                    (proptest::collection::vec(-2.0f32..2.0, 5), 1.0f64..40.0),
                    1..6,
                ),
            ) {
                let stale: Vec<(&[f32], f64, usize)> = raw
                    .iter()
                    .map(|(p, w)| (p.as_slice(), *w, 0usize))
                    .collect();
                let previous = vec![7.0f32; 5];
                prop_assert_eq!(staleness_fedavg(&stale, &previous), fedavg(&raw));
            }

            /// Positive staleness never increases an update's weight, and
            /// the result stays a convex combination (bounded by the
            /// per-coordinate min/max of the inputs).
            #[test]
            fn sim_staleness_result_is_convex_combination(
                raw in proptest::collection::vec(
                    (proptest::collection::vec(-2.0f32..2.0, 4), 1.0f64..40.0, 0usize..10),
                    1..6,
                ),
            ) {
                let previous = vec![0.0f32; 4];
                let views: Vec<(&[f32], f64, usize)> = raw
                    .iter()
                    .map(|(p, w, s)| (p.as_slice(), *w, *s))
                    .collect();
                let got = staleness_fedavg(&views, &previous);
                for i in 0..4 {
                    let lo = raw.iter().map(|(p, _, _)| p[i]).fold(f32::INFINITY, f32::min);
                    let hi = raw.iter().map(|(p, _, _)| p[i]).fold(f32::NEG_INFINITY, f32::max);
                    prop_assert!(got[i] >= lo - 1e-5 && got[i] <= hi + 1e-5,
                        "coord {} = {} outside [{}, {}]", i, got[i], lo, hi);
                }
            }
        }
    }
}
