//! Server-side aggregation: FedAvg over flat parameters and BN statistics.

use ft_nn::BnStats;

/// Weighted average of flat parameter vectors (FedAvg).
///
/// Weights are normalized internally, so callers may pass raw dataset sizes.
///
/// # Panics
///
/// Panics if `updates` is empty, lengths differ, or the weight sum is zero.
pub fn fedavg(updates: &[(Vec<f32>, f64)]) -> Vec<f32> {
    assert!(!updates.is_empty(), "fedavg needs at least one update");
    let n = updates[0].0.len();
    let total_w: f64 = updates.iter().map(|(_, w)| *w).sum();
    assert!(total_w > 0.0, "fedavg weights sum to zero");
    let mut out = vec![0.0f64; n];
    for (params, w) in updates {
        assert_eq!(params.len(), n, "fedavg parameter length mismatch");
        let wn = *w / total_w;
        for (o, &p) in out.iter_mut().zip(params.iter()) {
            *o += wn * p as f64;
        }
    }
    out.into_iter().map(|v| v as f32).collect()
}

/// Weighted average of per-layer BatchNorm statistics (Eq. 4):
/// `µ = Σ_k (|D̂_k|/Σ|D̂_j|) µ_k` and likewise for `σ²`.
///
/// # Panics
///
/// Panics if `updates` is empty or the layer structures differ.
pub fn aggregate_bn_stats(updates: &[(Vec<BnStats>, f64)]) -> Vec<BnStats> {
    assert!(
        !updates.is_empty(),
        "bn aggregation needs at least one update"
    );
    let layers = updates[0].0.len();
    let total_w: f64 = updates.iter().map(|(_, w)| *w).sum();
    assert!(total_w > 0.0, "bn aggregation weights sum to zero");
    let mut out: Vec<BnStats> = updates[0]
        .0
        .iter()
        .map(|s| BnStats {
            mean: vec![0.0; s.mean.len()],
            var: vec![0.0; s.var.len()],
        })
        .collect();
    for (stats, w) in updates {
        assert_eq!(stats.len(), layers, "bn layer count mismatch");
        let wn = (*w / total_w) as f32;
        for (o, s) in out.iter_mut().zip(stats.iter()) {
            assert_eq!(o.mean.len(), s.mean.len(), "bn channel count mismatch");
            for (om, &sm) in o.mean.iter_mut().zip(s.mean.iter()) {
                *om += wn * sm;
            }
            for (ov, &sv) in o.var.iter_mut().zip(s.var.iter()) {
                *ov += wn * sv;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fedavg_weighted_mean() {
        let got = fedavg(&[(vec![1.0, 0.0], 1.0), (vec![0.0, 1.0], 3.0)]);
        assert!((got[0] - 0.25).abs() < 1e-6);
        assert!((got[1] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn fedavg_unnormalized_weights_ok() {
        let a = fedavg(&[(vec![2.0], 10.0), (vec![4.0], 30.0)]);
        let b = fedavg(&[(vec![2.0], 0.25), (vec![4.0], 0.75)]);
        assert!((a[0] - b[0]).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fedavg_rejects_ragged() {
        let _ = fedavg(&[(vec![1.0], 1.0), (vec![1.0, 2.0], 1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one update")]
    fn fedavg_rejects_empty() {
        let _ = fedavg(&[]);
    }

    #[test]
    fn bn_aggregation_weighted() {
        let a = vec![BnStats {
            mean: vec![1.0, 2.0],
            var: vec![1.0, 1.0],
        }];
        let b = vec![BnStats {
            mean: vec![3.0, 4.0],
            var: vec![3.0, 3.0],
        }];
        let got = aggregate_bn_stats(&[(a, 1.0), (b, 1.0)]);
        assert_eq!(got[0].mean, vec![2.0, 3.0]);
        assert_eq!(got[0].var, vec![2.0, 2.0]);
    }

    #[test]
    fn bn_aggregation_respects_dataset_sizes() {
        let a = vec![BnStats {
            mean: vec![0.0],
            var: vec![0.0],
        }];
        let b = vec![BnStats {
            mean: vec![10.0],
            var: vec![10.0],
        }];
        let got = aggregate_bn_stats(&[(a, 9.0), (b, 1.0)]);
        assert!((got[0].mean[0] - 1.0).abs() < 1e-6);
    }
}
