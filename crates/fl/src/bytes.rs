//! Little-endian byte plumbing shared by the transport frames and the
//! checkpoint codec.
//!
//! Floats travel as raw IEEE-754 bits (`to_le_bytes`/`from_le_bytes`), so
//! every round-trip is bit-exact — the property both the golden-trace
//! guarantees and the resume-determinism guarantees rest on. The cursor
//! delegates its bounds checking to [`ft_sparse::WireReader`] — the same
//! cursor the payload codecs parse with, so there is exactly one
//! bounds-checking implementation in the workspace — and layers the
//! richer structured reads (counted vectors, bit vectors, BN statistics)
//! this crate's formats need on top.

use ft_nn::BnStats;
use ft_sparse::{DecodeError, WireReader};

/// Reason a binary blob failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadError {
    /// Input ended before the advertised content.
    Truncated,
    /// A count or tag is inconsistent with the surrounding structure (the
    /// static message names the field).
    Corrupt(&'static str),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Truncated => write!(f, "truncated input"),
            ReadError::Corrupt(what) => write!(f, "corrupt input: {what}"),
        }
    }
}

impl std::error::Error for ReadError {}

/// Maps the shared cursor's decode errors into this module's read errors.
fn cursor_err(e: DecodeError) -> ReadError {
    match e {
        DecodeError::Truncated { .. } => ReadError::Truncated,
        _ => ReadError::Corrupt("count overflow"),
    }
}

/// Bounds-checked little-endian cursor: [`ft_sparse::WireReader`] plus the
/// structured reads the frame and checkpoint formats need.
pub struct ByteReader<'a> {
    inner: WireReader<'a>,
}

impl<'a> ByteReader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader {
            inner: WireReader::new(buf),
        }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.inner.remaining()
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], ReadError> {
        self.inner.take(n).map_err(cursor_err)
    }

    /// Next byte.
    pub fn u8(&mut self) -> Result<u8, ReadError> {
        self.inner.u8().map_err(cursor_err)
    }

    /// Next `u32`.
    pub fn u32(&mut self) -> Result<u32, ReadError> {
        self.inner.u32().map_err(cursor_err)
    }

    /// Next `u64`.
    pub fn u64(&mut self) -> Result<u64, ReadError> {
        self.inner.u64().map_err(cursor_err)
    }

    /// Next `u64` narrowed to `usize`.
    pub fn len_u64(&mut self) -> Result<usize, ReadError> {
        usize::try_from(self.u64()?).map_err(|_| ReadError::Corrupt("length overflows usize"))
    }

    /// Next `f32`, bit-exact.
    pub fn f32(&mut self) -> Result<f32, ReadError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Next `f64`, bit-exact.
    pub fn f64(&mut self) -> Result<f64, ReadError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Next `bool` (strictly 0 or 1).
    pub fn boolean(&mut self) -> Result<bool, ReadError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(ReadError::Corrupt("flag not 0/1")),
        }
    }

    /// A `u32`-counted vector of `f32`s; the byte budget is checked before
    /// any allocation.
    pub fn f32_vec(&mut self) -> Result<Vec<f32>, ReadError> {
        let n = self.u32()? as usize;
        self.inner.f32_vec(n).map_err(cursor_err)
    }

    /// A `u32`-counted vector of `f64`s.
    pub fn f64_vec(&mut self) -> Result<Vec<f64>, ReadError> {
        let n = self.u32()? as usize;
        let bytes = self.take(
            n.checked_mul(8)
                .ok_or(ReadError::Corrupt("count overflow"))?,
        )?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// A `u32`-counted byte blob.
    pub fn blob(&mut self) -> Result<Vec<u8>, ReadError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    /// A `u32`-counted bit vector, packed 8 bools per byte.
    pub fn bitvec(&mut self) -> Result<Vec<bool>, ReadError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n.div_ceil(8))?;
        Ok((0..n).map(|i| bytes[i / 8] >> (i % 8) & 1 == 1).collect())
    }

    /// One set of BatchNorm statistics written by [`put_bn_stats`].
    pub fn bn_stats(&mut self) -> Result<Vec<BnStats>, ReadError> {
        let layers = self.u32()? as usize;
        let mut out = Vec::with_capacity(layers.min(4096));
        for _ in 0..layers {
            let mean = self.f32_vec()?;
            let var = self.f32_vec()?;
            if mean.len() != var.len() {
                return Err(ReadError::Corrupt("bn mean/var length mismatch"));
            }
            out.push(BnStats { mean, var });
        }
        Ok(out)
    }
}

/// Appends a `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f32` as raw bits.
pub fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as raw bits.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `bool` as one byte.
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// Appends a `u32`-counted `f32` vector.
pub fn put_f32_vec(out: &mut Vec<u8>, v: &[f32]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        put_f32(out, x);
    }
}

/// Appends a `u32`-counted `f64` vector.
pub fn put_f64_vec(out: &mut Vec<u8>, v: &[f64]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        put_f64(out, x);
    }
}

/// Appends a `u32`-counted byte blob.
pub fn put_blob(out: &mut Vec<u8>, v: &[u8]) {
    put_u32(out, v.len() as u32);
    out.extend_from_slice(v);
}

/// Appends a `u32`-counted bit vector, packed 8 bools per byte.
pub fn put_bitvec(out: &mut Vec<u8>, bits: &[bool]) {
    put_u32(out, bits.len() as u32);
    let mut packed = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            packed[i / 8] |= 1 << (i % 8);
        }
    }
    out.extend_from_slice(&packed);
}

/// Appends one set of BatchNorm statistics (layer count, then per layer the
/// mean and variance vectors).
pub fn put_bn_stats(out: &mut Vec<u8>, stats: &[BnStats]) {
    put_u32(out, stats.len() as u32);
    for s in stats {
        put_f32_vec(out, &s.mean);
        put_f32_vec(out, &s.var);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips_are_bit_exact() {
        let mut out = Vec::new();
        put_f64(&mut out, f64::from_bits(0x7ff8_dead_beef_0001)); // odd NaN
        put_f32(&mut out, -0.0);
        put_u64(&mut out, u64::MAX);
        put_bool(&mut out, true);
        let mut r = ByteReader::new(&out);
        assert_eq!(r.f64().unwrap().to_bits(), 0x7ff8_dead_beef_0001);
        assert_eq!(r.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert!(r.boolean().unwrap());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn vectors_and_bits_roundtrip() {
        let bits = [true, false, false, true, true, false, true, true, true];
        let mut out = Vec::new();
        put_f32_vec(&mut out, &[1.5, -2.25]);
        put_bitvec(&mut out, &bits);
        put_blob(&mut out, b"frame");
        put_bn_stats(
            &mut out,
            &[BnStats {
                mean: vec![0.5],
                var: vec![2.0],
            }],
        );
        let mut r = ByteReader::new(&out);
        assert_eq!(r.f32_vec().unwrap(), vec![1.5, -2.25]);
        assert_eq!(r.bitvec().unwrap(), bits.to_vec());
        assert_eq!(r.blob().unwrap(), b"frame");
        let bn = r.bn_stats().unwrap();
        assert_eq!(bn[0].mean, vec![0.5]);
        assert_eq!(bn[0].var, vec![2.0]);
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut out = Vec::new();
        put_f32_vec(&mut out, &[1.0, 2.0, 3.0]);
        for cut in 0..out.len() {
            let mut r = ByteReader::new(&out[..cut]);
            assert!(r.f32_vec().is_err(), "prefix of {cut} bytes parsed");
        }
        let mut r = ByteReader::new(&[2u8]);
        assert_eq!(r.boolean(), Err(ReadError::Corrupt("flag not 0/1")));
    }
}
