//! Versioned run checkpoints: stop a federated run at a round boundary and
//! resume it later to the *same final trace, byte for byte*.
//!
//! A [`Checkpoint`] captures everything the remaining rounds depend on:
//!
//! - the global model snapshot (flat parameters + BatchNorm statistics),
//! - the mask and its wire epoch,
//! - every device's error-feedback residual,
//! - the full [`CostLedger`] so far (the resumed ledger *continues*, it
//!   does not restart),
//! - the virtual clock ("RNG state" is implicit: every stochastic draw in
//!   this workspace is a pure function of `(seed, round, device)`, so the
//!   seed plus the round counter *is* the RNG state),
//! - for buffered runs, the whole event-loop state: in-flight device
//!   tasks (with the raw local outcomes and the wire context each task
//!   trained under), per-device task counters, and the event budget.
//!
//! The format is a little-endian binary blob with a magic/version header;
//! floats are stored as raw IEEE-754 bits, which is what makes the
//! resume-determinism guarantee exact rather than approximate. Loading
//! validates a fingerprint of the run configuration (seed, fleet size,
//! rounds, scheduler, codec) and rejects checkpoints from a different run
//! with a typed error instead of silently diverging.

use crate::bytes::{
    put_bitvec, put_blob, put_bn_stats, put_bool, put_f32_vec, put_f64, put_u32, put_u64,
    ByteReader, ReadError,
};
use crate::ledger::CostLedger;
use crate::sched::Scheduler;
use crate::train::LocalOutcome;
use crate::ExperimentEnv;
use ft_nn::ModelSnapshot;
use ft_sparse::Codec;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"FTCK";
// v2: the ledger blob grew fault/quarantine counters.
const VERSION: u32 = 2;

/// Where and how often the server saves checkpoints.
#[derive(Clone, Debug)]
pub struct CheckpointSpec {
    /// Checkpoint file path (written atomically: temp file + rename).
    pub path: PathBuf,
    /// Save every this many completed rounds (0 is treated as 1).
    pub every: usize,
}

impl CheckpointSpec {
    /// A spec that saves to `path` after every completed round.
    pub fn every_round(path: impl Into<PathBuf>) -> Self {
        CheckpointSpec {
            path: path.into(),
            every: 1,
        }
    }

    /// Whether a checkpoint is due after `rounds_done` completed rounds.
    pub(crate) fn due(&self, rounds_done: usize) -> bool {
        rounds_done.is_multiple_of(self.every.max(1))
    }
}

/// Why a checkpoint failed to save, load, or match the resuming run.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckpointError {
    /// Filesystem failure (message carries the `io::Error`).
    Io(String),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The file is structurally broken.
    Corrupt(String),
    /// The checkpoint belongs to a different run (the message names the
    /// mismatching field).
    Mismatch(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "checkpoint format version {v} is not supported")
            }
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            CheckpointError::Mismatch(field) => {
                write!(f, "checkpoint belongs to a different run: {field} differs")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<ReadError> for CheckpointError {
    fn from(e: ReadError) -> Self {
        CheckpointError::Corrupt(e.to_string())
    }
}

/// One in-flight device task of a buffered run, as persisted.
#[derive(Clone, Debug)]
pub(crate) struct TaskState {
    pub(crate) device: usize,
    pub(crate) start_secs: f64,
    pub(crate) finish_secs: f64,
    pub(crate) start_version: usize,
    pub(crate) dropped: bool,
    pub(crate) analytic_flops: f64,
    pub(crate) analytic_bytes: f64,
    pub(crate) download_bytes: f64,
    /// Mask epoch of the wire context the task trained under.
    pub(crate) ctx_epoch: u64,
    /// Aliveness of that context (segments are the model's, stored once).
    pub(crate) ctx_alive: Vec<bool>,
    pub(crate) outcome: LocalOutcome,
}

/// Buffered-scheduler event-loop state, present only in buffered
/// checkpoints (saved at post-aggregation boundaries, where the arrival
/// buffer is empty by construction).
#[derive(Clone, Debug, Default)]
pub(crate) struct BufferedState {
    pub(crate) last_agg_secs: f64,
    pub(crate) events: usize,
    pub(crate) task_counter: Vec<usize>,
    pub(crate) in_flight: Vec<TaskState>,
}

/// A resumable snapshot of a federated run at a round boundary.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Run-identity fingerprint, validated on resume.
    pub(crate) seed: u64,
    pub(crate) devices: usize,
    pub(crate) total_rounds: usize,
    pub(crate) scheduler: Scheduler,
    pub(crate) codec: Codec,
    /// The evaluation cadence the run was started with (changes the
    /// history shape mid-run, so it is part of the fingerprint).
    pub(crate) eval_every: usize,
    /// The *full* `FlConfig` as canonical JSON: any hyperparameter change
    /// (batch size, local epochs, lr schedule, proximal term, …) alters
    /// the remaining rounds' math and must refuse to resume.
    pub(crate) cfg_json: String,
    /// Rounds (or buffered versions) completed so far.
    pub(crate) rounds_done: usize,
    pub(crate) epoch: u64,
    pub(crate) clock_now: f64,
    pub(crate) history: Vec<f32>,
    pub(crate) snapshot: ModelSnapshot,
    pub(crate) mask_layers: Vec<Vec<bool>>,
    /// The mask most recently *applied* to the model (`apply_mask` in the
    /// Aggregate phase). A hook may have moved `mask_layers` past it
    /// without re-applying; the sparse-dispatch state the devices clone
    /// follows the applied mask, so resume must re-arm exactly this one.
    pub(crate) applied_mask_layers: Vec<Vec<bool>>,
    pub(crate) residuals: Vec<Vec<f32>>,
    pub(crate) ledger: CostLedger,
    pub(crate) buffered: Option<BufferedState>,
    /// Opaque method-specific hook state (see
    /// [`crate::server::RunOptions::hook_save`]).
    pub(crate) hook_state: Vec<u8>,
}

/// Deterministic, operator-facing digest of a [`Checkpoint`], produced by
/// [`Checkpoint::summary`]. Everything here round-trips identically across
/// hosts and `FT_THREADS` settings; host wall-clock totals are excluded on
/// purpose so rendered output can be compared against committed goldens.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointSummary {
    pub format_version: u32,
    /// `"barrier"` or `"buffered"` depending on saved scheduler state.
    pub kind: &'static str,
    pub seed: u64,
    pub devices: usize,
    pub total_rounds: usize,
    pub rounds_done: usize,
    pub scheduler: String,
    pub codec: String,
    pub eval_every: usize,
    pub mask_epoch: u64,
    pub sim_now_secs: f64,
    /// Accuracy history at the saved evaluation cadence.
    pub history: Vec<f32>,
    /// Flat parameter count of the saved model snapshot.
    pub params: usize,
    pub mask_density: f32,
    pub applied_mask_density: f32,
    /// Devices with a non-empty error-feedback residual.
    pub residual_devices: usize,
    pub timeline_events: usize,
    pub zero_progress_rounds: usize,
    pub payload_down_bytes: f64,
    pub payload_up_bytes: f64,
    pub analytic_comm_bytes: f64,
    pub max_round_flops: f64,
    pub faults: ft_metrics::FaultCounters,
    /// Buffered-scheduler tasks still in flight (0 for barrier runs).
    pub in_flight_tasks: usize,
    pub hook_state_bytes: usize,
    /// Canonical JSON of the full `FlConfig` the run was started with.
    pub config_fingerprint: String,
}

impl Checkpoint {
    /// Rounds completed when this checkpoint was taken.
    pub fn rounds_done(&self) -> usize {
        self.rounds_done
    }

    /// Simulated seconds elapsed when this checkpoint was taken.
    pub fn sim_now_secs(&self) -> f64 {
        self.clock_now
    }

    /// Operator-facing view of the checkpoint (`ft ckpt inspect`). Every
    /// field is deterministic across hosts and thread counts — host
    /// wall-clock values inside the ledger are deliberately excluded — so
    /// the rendered output can be pinned by a committed golden file.
    pub fn summary(&self) -> CheckpointSummary {
        let density = |layers: &[Vec<bool>]| -> f32 {
            let total: usize = layers.iter().map(|l| l.len()).sum();
            if total == 0 {
                return 1.0;
            }
            let alive: usize = layers
                .iter()
                .map(|l| l.iter().filter(|&&a| a).count())
                .sum();
            alive as f32 / total as f32
        };
        CheckpointSummary {
            format_version: VERSION,
            kind: if self.buffered.is_some() {
                "buffered"
            } else {
                "barrier"
            },
            seed: self.seed,
            devices: self.devices,
            total_rounds: self.total_rounds,
            rounds_done: self.rounds_done,
            scheduler: format!("{:?}", self.scheduler),
            codec: self.codec.name().to_string(),
            eval_every: self.eval_every,
            mask_epoch: self.epoch,
            sim_now_secs: self.clock_now,
            history: self.history.clone(),
            params: self.snapshot.params.len(),
            mask_density: density(&self.mask_layers),
            applied_mask_density: density(&self.applied_mask_layers),
            residual_devices: self.residuals.iter().filter(|r| !r.is_empty()).count(),
            timeline_events: self.ledger.timeline().len(),
            zero_progress_rounds: self.ledger.zero_progress_rounds(),
            payload_down_bytes: self.ledger.payload_down_history().iter().sum(),
            payload_up_bytes: self.ledger.total_payload_upload_bytes(),
            analytic_comm_bytes: self.ledger.total_comm_bytes(),
            max_round_flops: self.ledger.max_round_flops(),
            faults: *self.ledger.faults(),
            in_flight_tasks: self.buffered.as_ref().map_or(0, |b| b.in_flight.len()),
            hook_state_bytes: self.hook_state.len(),
            config_fingerprint: self.cfg_json.clone(),
        }
    }

    /// Field-level diff of two checkpoints (`ft ckpt diff`): one line per
    /// differing field, empty when the checkpoints describe identical run
    /// state. Bulk payloads (parameters, masks, residuals) are summarized
    /// as differing-element counts rather than dumped.
    pub fn diff(&self, other: &Checkpoint) -> Vec<String> {
        let mut out = Vec::new();
        let mut scalar = |field: &str, a: String, b: String| {
            if a != b {
                out.push(format!("{field}: {a} != {b}"));
            }
        };
        scalar("seed", self.seed.to_string(), other.seed.to_string());
        scalar(
            "devices",
            self.devices.to_string(),
            other.devices.to_string(),
        );
        scalar(
            "total_rounds",
            self.total_rounds.to_string(),
            other.total_rounds.to_string(),
        );
        scalar(
            "scheduler",
            format!("{:?}", self.scheduler),
            format!("{:?}", other.scheduler),
        );
        scalar(
            "codec",
            self.codec.name().to_string(),
            other.codec.name().to_string(),
        );
        scalar(
            "eval_every",
            self.eval_every.to_string(),
            other.eval_every.to_string(),
        );
        scalar(
            "config_fingerprint",
            self.cfg_json.clone(),
            other.cfg_json.clone(),
        );
        scalar(
            "rounds_done",
            self.rounds_done.to_string(),
            other.rounds_done.to_string(),
        );
        scalar(
            "mask_epoch",
            self.epoch.to_string(),
            other.epoch.to_string(),
        );
        // Floats compare (and print) as exact bit patterns: the checkpoint
        // format's whole point is bit-exact state.
        scalar(
            "sim_now_secs",
            format!("{:?}", self.clock_now),
            format!("{:?}", other.clock_now),
        );
        if self.history != other.history {
            out.push(format!(
                "history: {} vs {} eval points{}",
                self.history.len(),
                other.history.len(),
                if self.history.len() == other.history.len() {
                    let n = self
                        .history
                        .iter()
                        .zip(&other.history)
                        .filter(|(a, b)| a.to_bits() != b.to_bits())
                        .count();
                    format!(", {n} differ")
                } else {
                    String::new()
                }
            ));
        }
        if self.snapshot.params.len() != other.snapshot.params.len() {
            out.push(format!(
                "params: {} vs {} coordinates",
                self.snapshot.params.len(),
                other.snapshot.params.len()
            ));
        } else {
            let n = self
                .snapshot
                .params
                .iter()
                .zip(&other.snapshot.params)
                .filter(|(a, b)| a.to_bits() != b.to_bits())
                .count();
            if n > 0 {
                out.push(format!(
                    "params: {n}/{} coordinates differ",
                    self.snapshot.params.len()
                ));
            }
        }
        if self.snapshot.bn != other.snapshot.bn {
            out.push("bn_stats: differ".to_string());
        }
        let mask_bits = |a: &[Vec<bool>], b: &[Vec<bool>]| -> Option<usize> {
            if a.len() != b.len() || a.iter().zip(b).any(|(x, y)| x.len() != y.len()) {
                return None;
            }
            Some(
                a.iter()
                    .zip(b)
                    .map(|(x, y)| x.iter().zip(y).filter(|(p, q)| p != q).count())
                    .sum(),
            )
        };
        match mask_bits(&self.mask_layers, &other.mask_layers) {
            None => out.push("mask: layouts differ".to_string()),
            Some(0) => {}
            Some(n) => out.push(format!("mask: {n} bits differ")),
        }
        match mask_bits(&self.applied_mask_layers, &other.applied_mask_layers) {
            None => out.push("applied_mask: layouts differ".to_string()),
            Some(0) => {}
            Some(n) => out.push(format!("applied_mask: {n} bits differ")),
        }
        if self.residuals != other.residuals {
            let n = self
                .residuals
                .iter()
                .zip(&other.residuals)
                .filter(|(a, b)| a != b)
                .count()
                .max(self.residuals.len().abs_diff(other.residuals.len()));
            out.push(format!("residuals: differ for {n} devices"));
        }
        let (sa, sb) = (self.summary(), other.summary());
        let mut ledger_scalar = |field: &str, a: String, b: String| {
            if a != b {
                out.push(format!("ledger.{field}: {a} != {b}"));
            }
        };
        ledger_scalar(
            "timeline_events",
            sa.timeline_events.to_string(),
            sb.timeline_events.to_string(),
        );
        ledger_scalar(
            "zero_progress_rounds",
            sa.zero_progress_rounds.to_string(),
            sb.zero_progress_rounds.to_string(),
        );
        ledger_scalar(
            "payload_down_bytes",
            format!("{:?}", sa.payload_down_bytes),
            format!("{:?}", sb.payload_down_bytes),
        );
        ledger_scalar(
            "payload_up_bytes",
            format!("{:?}", sa.payload_up_bytes),
            format!("{:?}", sb.payload_up_bytes),
        );
        ledger_scalar(
            "analytic_comm_bytes",
            format!("{:?}", sa.analytic_comm_bytes),
            format!("{:?}", sb.analytic_comm_bytes),
        );
        ledger_scalar(
            "faults",
            format!("{:?}", sa.faults),
            format!("{:?}", sb.faults),
        );
        if sa.kind != sb.kind {
            out.push(format!("kind: {} != {}", sa.kind, sb.kind));
        }
        if sa.in_flight_tasks != sb.in_flight_tasks {
            out.push(format!(
                "buffered.in_flight: {} != {}",
                sa.in_flight_tasks, sb.in_flight_tasks
            ));
        }
        if self.hook_state != other.hook_state {
            out.push(format!(
                "hook_state: {} vs {} bytes",
                self.hook_state.len(),
                other.hook_state.len()
            ));
        }
        out
    }

    /// Canonical JSON fingerprint of a run configuration.
    pub(crate) fn cfg_fingerprint(cfg: &crate::FlConfig) -> String {
        serde_json::to_string(cfg).expect("FlConfig serializes")
    }

    /// Rejects a checkpoint that was produced by a different run than
    /// `env` (and its evaluation cadence) describes. The named checks give
    /// readable errors for the common mismatches; the full-config JSON
    /// fingerprint catches every remaining hyperparameter (batch size,
    /// local epochs, lr schedule, participation, …) whose change would
    /// make the resumed rounds silently diverge.
    pub fn validate_against(
        &self,
        env: &ExperimentEnv,
        eval_every: usize,
    ) -> Result<(), CheckpointError> {
        if self.seed != env.cfg.seed {
            return Err(CheckpointError::Mismatch("seed"));
        }
        if self.devices != env.num_devices() {
            return Err(CheckpointError::Mismatch("device count"));
        }
        if self.total_rounds != env.cfg.rounds {
            return Err(CheckpointError::Mismatch("round count"));
        }
        if self.scheduler != env.scheduler {
            return Err(CheckpointError::Mismatch("scheduler"));
        }
        if self.codec != env.cfg.codec {
            return Err(CheckpointError::Mismatch("codec"));
        }
        if self.eval_every != eval_every {
            return Err(CheckpointError::Mismatch("evaluation cadence"));
        }
        if self.cfg_json != Self::cfg_fingerprint(&env.cfg) {
            return Err(CheckpointError::Mismatch("run configuration"));
        }
        Ok(())
    }

    /// Serializes the checkpoint into its binary form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, VERSION);
        put_bool(&mut out, self.buffered.is_some());
        put_u64(&mut out, self.seed);
        put_u64(&mut out, self.devices as u64);
        put_u64(&mut out, self.total_rounds as u64);
        encode_scheduler(&mut out, self.scheduler);
        encode_codec(&mut out, self.codec);
        put_u64(&mut out, self.eval_every as u64);
        put_blob(&mut out, self.cfg_json.as_bytes());
        put_u64(&mut out, self.rounds_done as u64);
        put_u64(&mut out, self.epoch);
        put_f64(&mut out, self.clock_now);
        put_f32_vec(&mut out, &self.history);
        put_f32_vec(&mut out, &self.snapshot.params);
        put_bn_stats(&mut out, &self.snapshot.bn);
        put_u32(&mut out, self.mask_layers.len() as u32);
        for layer in &self.mask_layers {
            put_bitvec(&mut out, layer);
        }
        put_u32(&mut out, self.applied_mask_layers.len() as u32);
        for layer in &self.applied_mask_layers {
            put_bitvec(&mut out, layer);
        }
        put_u32(&mut out, self.residuals.len() as u32);
        for r in &self.residuals {
            put_f32_vec(&mut out, r);
        }
        self.ledger.encode_ckpt(&mut out);
        put_blob(&mut out, &self.hook_state);
        if let Some(b) = &self.buffered {
            put_f64(&mut out, b.last_agg_secs);
            put_u64(&mut out, b.events as u64);
            put_u32(&mut out, b.task_counter.len() as u32);
            for &c in &b.task_counter {
                put_u64(&mut out, c as u64);
            }
            put_u32(&mut out, b.in_flight.len() as u32);
            for t in &b.in_flight {
                put_u64(&mut out, t.device as u64);
                put_f64(&mut out, t.start_secs);
                put_f64(&mut out, t.finish_secs);
                put_u64(&mut out, t.start_version as u64);
                put_bool(&mut out, t.dropped);
                put_f64(&mut out, t.analytic_flops);
                put_f64(&mut out, t.analytic_bytes);
                put_f64(&mut out, t.download_bytes);
                put_u64(&mut out, t.ctx_epoch);
                put_bitvec(&mut out, &t.ctx_alive);
                put_f32_vec(&mut out, &t.outcome.delta);
                put_bn_stats(&mut out, &t.outcome.bn);
                put_u64(&mut out, t.outcome.samples as u64);
                put_f64(&mut out, t.outcome.realized_flops);
                put_f64(&mut out, t.outcome.wall_secs);
            }
        }
        out
    }

    /// Parses a checkpoint from its binary form.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < 8 || &bytes[..4] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let mut r = ByteReader::new(&bytes[4..]);
        let version = r.u32()?;
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let is_buffered = r.boolean()?;
        let seed = r.u64()?;
        let devices = r.len_u64()?;
        let total_rounds = r.len_u64()?;
        let scheduler = decode_scheduler(&mut r)?;
        let codec = decode_codec(&mut r)?;
        let eval_every = r.len_u64()?;
        let cfg_json = String::from_utf8(r.blob()?)
            .map_err(|_| CheckpointError::Corrupt("config fingerprint not UTF-8".into()))?;
        let rounds_done = r.len_u64()?;
        let epoch = r.u64()?;
        let clock_now = r.f64()?;
        let history = r.f32_vec()?;
        let params = r.f32_vec()?;
        let bn = r.bn_stats()?;
        let layers = r.u32()? as usize;
        let mut mask_layers = Vec::with_capacity(layers.min(4096));
        for _ in 0..layers {
            mask_layers.push(r.bitvec()?);
        }
        let applied_layers = r.u32()? as usize;
        let mut applied_mask_layers = Vec::with_capacity(applied_layers.min(4096));
        for _ in 0..applied_layers {
            applied_mask_layers.push(r.bitvec()?);
        }
        let n_res = r.u32()? as usize;
        let mut residuals = Vec::with_capacity(n_res.min(65536));
        for _ in 0..n_res {
            residuals.push(r.f32_vec()?);
        }
        let ledger = CostLedger::decode_ckpt(&mut r)?;
        let hook_state = r.blob()?;
        let buffered = if is_buffered {
            let last_agg_secs = r.f64()?;
            let events = r.len_u64()?;
            let n_counters = r.u32()? as usize;
            let mut task_counter = Vec::with_capacity(n_counters.min(65536));
            for _ in 0..n_counters {
                task_counter.push(r.len_u64()?);
            }
            let n_tasks = r.u32()? as usize;
            let mut in_flight = Vec::with_capacity(n_tasks.min(65536));
            for _ in 0..n_tasks {
                in_flight.push(TaskState {
                    device: r.len_u64()?,
                    start_secs: r.f64()?,
                    finish_secs: r.f64()?,
                    start_version: r.len_u64()?,
                    dropped: r.boolean()?,
                    analytic_flops: r.f64()?,
                    analytic_bytes: r.f64()?,
                    download_bytes: r.f64()?,
                    ctx_epoch: r.u64()?,
                    ctx_alive: r.bitvec()?,
                    outcome: LocalOutcome {
                        delta: r.f32_vec()?,
                        bn: r.bn_stats()?,
                        samples: r.len_u64()?,
                        realized_flops: r.f64()?,
                        wall_secs: r.f64()?,
                    },
                });
            }
            Some(BufferedState {
                last_agg_secs,
                events,
                task_counter,
                in_flight,
            })
        } else {
            None
        };
        if r.remaining() != 0 {
            return Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes",
                r.remaining()
            )));
        }
        Ok(Checkpoint {
            seed,
            devices,
            total_rounds,
            scheduler,
            codec,
            eval_every,
            cfg_json,
            rounds_done,
            epoch,
            clock_now,
            history,
            snapshot: ModelSnapshot { params, bn },
            mask_layers,
            applied_mask_layers,
            residuals,
            ledger,
            buffered,
            hook_state,
        })
    }

    /// Writes the checkpoint to `path` atomically (temp file + rename), so
    /// a crash mid-save can never leave a torn checkpoint behind. The temp
    /// name *appends* `.tmp` to the full file name (rather than replacing
    /// the extension), so sibling checkpoints like `run.synchronous` and
    /// `run.buffered` never collide on one temp file.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut tmp_name = path
            .file_name()
            .ok_or_else(|| CheckpointError::Io("checkpoint path has no file name".into()))?
            .to_os_string();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        std::fs::write(&tmp, self.to_bytes()).map_err(|e| CheckpointError::Io(e.to_string()))?;
        std::fs::rename(&tmp, path).map_err(|e| CheckpointError::Io(e.to_string()))
    }

    /// Loads a checkpoint from `path`.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        Self::from_bytes(&bytes)
    }
}

fn encode_scheduler(out: &mut Vec<u8>, s: Scheduler) {
    match s {
        Scheduler::Synchronous => out.push(0),
        Scheduler::Deadline { deadline_secs } => {
            out.push(1);
            put_f64(out, deadline_secs);
        }
        Scheduler::Buffered { buffer_k } => {
            out.push(2);
            put_u64(out, buffer_k as u64);
        }
    }
}

fn decode_scheduler(r: &mut ByteReader<'_>) -> Result<Scheduler, CheckpointError> {
    match r.u8()? {
        0 => Ok(Scheduler::Synchronous),
        1 => Ok(Scheduler::Deadline {
            deadline_secs: r.f64()?,
        }),
        2 => Ok(Scheduler::Buffered {
            buffer_k: r.len_u64()?,
        }),
        t => Err(CheckpointError::Corrupt(format!("scheduler tag {t}"))),
    }
}

fn encode_codec(out: &mut Vec<u8>, c: Codec) {
    match c {
        Codec::Dense => out.push(0),
        Codec::MaskCsr => out.push(1),
        Codec::QuantInt8 => out.push(2),
        Codec::TopK {
            k_frac,
            error_feedback,
        } => {
            out.push(3);
            crate::bytes::put_f32(out, k_frac);
            put_bool(out, error_feedback);
        }
    }
}

fn decode_codec(r: &mut ByteReader<'_>) -> Result<Codec, CheckpointError> {
    match r.u8()? {
        0 => Ok(Codec::Dense),
        1 => Ok(Codec::MaskCsr),
        2 => Ok(Codec::QuantInt8),
        3 => Ok(Codec::TopK {
            k_frac: r.f32()?,
            error_feedback: r.boolean()?,
        }),
        t => Err(CheckpointError::Corrupt(format!("codec tag {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_nn::BnStats;

    fn sample_checkpoint(buffered: bool) -> Checkpoint {
        Checkpoint {
            seed: 42,
            devices: 3,
            total_rounds: 4,
            scheduler: if buffered {
                Scheduler::Buffered { buffer_k: 2 }
            } else {
                Scheduler::Deadline { deadline_secs: 2.5 }
            },
            codec: Codec::TopK {
                k_frac: 0.1,
                error_feedback: true,
            },
            eval_every: 1,
            cfg_json: "{}".into(),
            rounds_done: 2,
            epoch: 3,
            clock_now: 123.456,
            history: vec![0.25, 0.5],
            snapshot: ModelSnapshot {
                params: vec![1.0, -2.5, 0.0],
                bn: vec![BnStats {
                    mean: vec![0.1],
                    var: vec![0.9],
                }],
            },
            mask_layers: vec![vec![true, false, true]],
            applied_mask_layers: vec![vec![true, true, true]],
            residuals: vec![vec![0.5], Vec::new(), vec![-1.0, 2.0]],
            ledger: {
                let mut l = CostLedger::new();
                l.record_round_flops(1e9);
                l.record_sim_round(5.5);
                l.record_payload_round(100.0, 50.0);
                l.record_realized_round(9e8, 0.1);
                l.add_comm(4096.0);
                l.record_timeline(crate::ledger::TimelineEvent {
                    device: 1,
                    round: 0,
                    start_secs: 0.0,
                    finish_secs: 5.5,
                    applied: true,
                    staleness: 2,
                });
                l
            },
            buffered: buffered.then(|| BufferedState {
                last_agg_secs: 7.5,
                events: 11,
                task_counter: vec![1, 2, 3],
                in_flight: vec![TaskState {
                    device: 2,
                    start_secs: 1.0,
                    finish_secs: 9.0,
                    start_version: 1,
                    dropped: false,
                    analytic_flops: 1e8,
                    analytic_bytes: 2048.0,
                    download_bytes: 1024.0,
                    ctx_epoch: 2,
                    ctx_alive: vec![true, true, false],
                    outcome: LocalOutcome {
                        delta: vec![0.5, -0.5, 0.0],
                        bn: Vec::new(),
                        samples: 8,
                        realized_flops: 9e7,
                        wall_secs: 0.01,
                    },
                }],
            }),
            hook_state: vec![1, 2, 3, 4],
        }
    }

    fn assert_roundtrip(ck: &Checkpoint) {
        let back = Checkpoint::from_bytes(&ck.to_bytes()).expect("roundtrip");
        assert_eq!(back.seed, ck.seed);
        assert_eq!(back.rounds_done, ck.rounds_done);
        assert_eq!(back.scheduler, ck.scheduler);
        assert_eq!(back.codec, ck.codec);
        assert_eq!(back.eval_every, ck.eval_every);
        assert_eq!(back.cfg_json, ck.cfg_json);
        assert_eq!(back.clock_now.to_bits(), ck.clock_now.to_bits());
        assert_eq!(back.history, ck.history);
        assert_eq!(back.snapshot, ck.snapshot);
        assert_eq!(back.mask_layers, ck.mask_layers);
        assert_eq!(back.applied_mask_layers, ck.applied_mask_layers);
        assert_eq!(back.residuals, ck.residuals);
        assert_eq!(back.hook_state, ck.hook_state);
        assert_eq!(back.ledger.sim_secs_history(), ck.ledger.sim_secs_history());
        assert_eq!(back.ledger.timeline(), ck.ledger.timeline());
        assert_eq!(back.buffered.is_some(), ck.buffered.is_some());
        if let (Some(a), Some(b)) = (&back.buffered, &ck.buffered) {
            assert_eq!(a.task_counter, b.task_counter);
            assert_eq!(a.events, b.events);
            assert_eq!(a.in_flight.len(), b.in_flight.len());
            assert_eq!(a.in_flight[0].outcome.delta, b.in_flight[0].outcome.delta);
            assert_eq!(a.in_flight[0].ctx_alive, b.in_flight[0].ctx_alive);
        }
    }

    #[test]
    fn ckpt_roundtrips_barrier_and_buffered() {
        assert_roundtrip(&sample_checkpoint(false));
        assert_roundtrip(&sample_checkpoint(true));
    }

    #[test]
    fn ckpt_rejects_bad_magic_version_and_truncation() {
        let bytes = sample_checkpoint(false).to_bytes();
        assert!(matches!(
            Checkpoint::from_bytes(b"NOPE1234"),
            Err(CheckpointError::BadMagic)
        ));
        let mut wrong_version = bytes.clone();
        wrong_version[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Checkpoint::from_bytes(&wrong_version),
            Err(CheckpointError::UnsupportedVersion(99))
        ));
        for cut in 8..bytes.len() {
            assert!(
                Checkpoint::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes parsed"
            );
        }
        let mut trailing = bytes;
        trailing.push(0);
        assert!(matches!(
            Checkpoint::from_bytes(&trailing),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn ckpt_validates_run_fingerprint() {
        let mut ck = sample_checkpoint(false);
        let mut env = ExperimentEnv::tiny_for_tests(42);
        env.cfg.rounds = 4;
        env.scheduler = Scheduler::Deadline { deadline_secs: 2.5 };
        env.cfg.codec = Codec::TopK {
            k_frac: 0.1,
            error_feedback: true,
        };
        ck.cfg_json = Checkpoint::cfg_fingerprint(&env.cfg);
        assert_eq!(ck.validate_against(&env, 1), Ok(()));
        let mut other = env.clone();
        other.cfg.seed = 43;
        assert_eq!(
            ck.validate_against(&other, 1),
            Err(CheckpointError::Mismatch("seed"))
        );
        let mut other = env.clone();
        other.scheduler = Scheduler::Synchronous;
        assert_eq!(
            ck.validate_against(&other, 1),
            Err(CheckpointError::Mismatch("scheduler"))
        );
        let mut other = env.clone();
        other.cfg.codec = Codec::Dense;
        assert_eq!(
            ck.validate_against(&other, 1),
            Err(CheckpointError::Mismatch("codec"))
        );
        // A different evaluation cadence would change the history shape.
        assert_eq!(
            ck.validate_against(&env, 2),
            Err(CheckpointError::Mismatch("evaluation cadence"))
        );
        // Any other hyperparameter change is caught by the full-config
        // fingerprint: the resumed rounds would silently diverge.
        let mut other = env;
        other.cfg.batch_size += 1;
        assert_eq!(
            ck.validate_against(&other, 1),
            Err(CheckpointError::Mismatch("run configuration"))
        );
    }

    #[test]
    fn ckpt_save_load_via_file() {
        let dir = std::env::temp_dir().join("ft_ckpt_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("run.ckpt");
        let ck = sample_checkpoint(true);
        ck.save(&path).expect("save");
        let back = Checkpoint::load(&path).expect("load");
        assert_eq!(back.rounds_done, ck.rounds_done);
        assert_eq!(back.snapshot, ck.snapshot);
        std::fs::remove_file(&path).ok();
    }
}
