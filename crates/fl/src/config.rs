//! Federated-learning run configuration.

use crate::aggregate::Aggregator;
use ft_nn::optim::SgdConfig;
use ft_sparse::Codec;
use serde::{Deserialize, Serialize};

/// Hard cap on [`FlConfig::threads`]: a worker pool beyond this is always a
/// typo, and actually spawning it would exhaust the host before any kernel
/// runs.
pub const MAX_THREADS: usize = 4096;

/// A structurally invalid run configuration, rejected at construction
/// instead of surfacing as a panic or a hang deep inside the round loop.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// `devices == 0`: there is no fleet to federate over.
    NoDevices,
    /// `batch_size == 0`: local SGD could never form a mini-batch.
    ZeroBatchSize,
    /// `local_epochs == 0`: devices would upload untrained deltas forever.
    ZeroLocalEpochs,
    /// `threads` beyond [`MAX_THREADS`] — spawning such a pool stalls the
    /// host long before any round completes.
    TooManyThreads {
        /// The rejected thread count.
        threads: usize,
    },
    /// `participation` is NaN (a silent empty-cohort generator).
    BadParticipation,
    /// `Scheduler::Buffered { buffer_k: 0 }`: the server would aggregate
    /// nothing, forever.
    ZeroBufferK,
    /// `Scheduler::Deadline` with a negative or non-finite deadline: every
    /// round would be cut before any device can finish.
    BadDeadline {
        /// The rejected deadline, in simulated seconds.
        deadline_secs: f64,
    },
    /// `Aggregator::TrimmedMean` with a trim fraction outside `[0, 0.5)`:
    /// trimming half or more of every column leaves nothing to average.
    BadTrimFraction {
        /// The rejected per-tail trim fraction.
        beta: f64,
    },
    /// `Aggregator::NormClipped` with a non-finite or non-positive clip
    /// threshold: every update would be scaled to nothing (or NaN).
    BadClipNorm {
        /// The rejected L2 threshold.
        tau: f64,
    },
    /// `collect_timeout_secs` is non-finite or non-positive: a tolerant
    /// Collect phase could never (or would instantly) time a silent device
    /// out.
    BadCollectTimeout {
        /// The rejected per-stream quiet timeout, in wall seconds.
        collect_timeout_secs: f64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoDevices => write!(f, "devices must be at least 1"),
            ConfigError::ZeroBatchSize => write!(f, "batch_size must be at least 1"),
            ConfigError::ZeroLocalEpochs => write!(f, "local_epochs must be at least 1"),
            ConfigError::TooManyThreads { threads } => {
                write!(f, "threads = {threads} exceeds the {MAX_THREADS} cap")
            }
            ConfigError::BadParticipation => write!(f, "participation must not be NaN"),
            ConfigError::ZeroBufferK => write!(f, "buffer_k must be at least 1"),
            ConfigError::BadDeadline { deadline_secs } => {
                write!(
                    f,
                    "deadline_secs = {deadline_secs} must be finite and non-negative"
                )
            }
            ConfigError::BadTrimFraction { beta } => {
                write!(f, "trim fraction beta = {beta} must be finite in [0, 0.5)")
            }
            ConfigError::BadClipNorm { tau } => {
                write!(f, "clip norm tau = {tau} must be finite and positive")
            }
            ConfigError::BadCollectTimeout {
                collect_timeout_secs,
            } => {
                write!(
                    f,
                    "collect_timeout_secs = {collect_timeout_secs} must be finite and positive"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Shared federated-learning knobs (Sec. IV-A1 of the paper).
///
/// `Deserialize` is hand-written (the derive shim has no `#[serde(default)]`)
/// so configs serialized before `collect_timeout_secs` existed still load,
/// getting the legacy 30 s constant.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct FlConfig {
    /// Number of participating devices `K` (paper: 10).
    pub devices: usize,
    /// Total FL rounds (paper: 300, or 200 for SVHN).
    pub rounds: usize,
    /// Local epochs per round `E` (paper: 5).
    pub local_epochs: usize,
    /// Mini-batch size (paper: 64).
    pub batch_size: usize,
    /// Local SGD hyperparameters.
    pub sgd: SgdConfig,
    /// Dirichlet concentration for the non-iid split (paper: 0.5).
    pub alpha: f64,
    /// Fraction of local data sampled as the development split `D̂_k`
    /// for BN adaptation (paper: 0.1).
    pub dev_fraction: f32,
    /// Fraction of devices participating per round (1.0 = all devices, the
    /// paper's setting; lower values model realistic partial participation).
    pub participation: f32,
    /// FedProx proximal coefficient µ; 0 disables the proximal term (the
    /// paper uses plain FedAvg). When set, each local step adds
    /// `µ(θ − θ_global)` to the gradient.
    pub prox_mu: f32,
    /// Per-round multiplicative learning-rate decay (1.0 = constant lr).
    pub lr_decay: f32,
    /// Run devices on parallel OS threads.
    pub parallel: bool,
    /// Worker threads of the run's [`ft_runtime::Runtime`] pool: device
    /// fan-out and kernel parallelism both draw from this one budget.
    /// `0` = auto (the `FT_THREADS` environment variable if set, otherwise
    /// all available cores); `1` = the exact legacy sequential path.
    /// Parallel and sequential execution are bit-identical, so this knob
    /// only changes wall-clock.
    pub threads: usize,
    /// Wire codec for the device → server update uploads (and the matching
    /// broadcast format). `Codec::Dense` reproduces the classic full-vector
    /// exchange; method runners typically override this per method.
    pub codec: Codec,
    /// Server aggregation rule. `Aggregator::FedAvg` is the paper's
    /// sample-weighted averaging; the robust rules defend against poisoned
    /// cohort members at extra decode cost.
    pub aggregator: Aggregator,
    /// Per-stream quiet timeout of a *tolerant* Collect phase, in wall
    /// seconds: a device whose stream makes no read progress for this long
    /// is quarantined as disconnected instead of hanging the round. Strict
    /// transports (the bit-identity harness) ignore it and wait
    /// indefinitely. Purely a liveness knob — it never changes what an
    /// on-time fleet computes, so golden traces are unaffected. Large
    /// fleets on slow links should raise it; absent from older configs it
    /// deserializes to the legacy 30 s constant.
    pub collect_timeout_secs: f64,
    /// Master seed for the whole run.
    pub seed: u64,
}

/// The pre-knob hardcoded tolerant-read timeout, kept as the deserialize
/// default so existing configs and checkpoints keep their exact behavior.
fn default_collect_timeout_secs() -> f64 {
    30.0
}

impl Deserialize for FlConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(FlConfig {
            devices: Deserialize::from_value(v.field("devices")?)?,
            rounds: Deserialize::from_value(v.field("rounds")?)?,
            local_epochs: Deserialize::from_value(v.field("local_epochs")?)?,
            batch_size: Deserialize::from_value(v.field("batch_size")?)?,
            sgd: Deserialize::from_value(v.field("sgd")?)?,
            alpha: Deserialize::from_value(v.field("alpha")?)?,
            dev_fraction: Deserialize::from_value(v.field("dev_fraction")?)?,
            participation: Deserialize::from_value(v.field("participation")?)?,
            prox_mu: Deserialize::from_value(v.field("prox_mu")?)?,
            lr_decay: Deserialize::from_value(v.field("lr_decay")?)?,
            parallel: Deserialize::from_value(v.field("parallel")?)?,
            threads: Deserialize::from_value(v.field("threads")?)?,
            codec: Deserialize::from_value(v.field("codec")?)?,
            aggregator: Deserialize::from_value(v.field("aggregator")?)?,
            collect_timeout_secs: match v.get("collect_timeout_secs") {
                Some(t) => Deserialize::from_value(t)?,
                None => default_collect_timeout_secs(),
            },
            seed: Deserialize::from_value(v.field("seed")?)?,
        })
    }
}

impl FlConfig {
    /// Structural validation, run by [`crate::ExperimentEnv::try_new`] and
    /// the server loop before anything expensive happens: rejects configs
    /// that could only panic or hang downstream (`devices == 0`,
    /// `batch_size == 0`, `local_epochs == 0`, NaN participation, or a
    /// worker pool beyond [`MAX_THREADS`]).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.devices == 0 {
            return Err(ConfigError::NoDevices);
        }
        if self.batch_size == 0 {
            return Err(ConfigError::ZeroBatchSize);
        }
        if self.local_epochs == 0 {
            return Err(ConfigError::ZeroLocalEpochs);
        }
        if self.threads > MAX_THREADS {
            return Err(ConfigError::TooManyThreads {
                threads: self.threads,
            });
        }
        if self.participation.is_nan() {
            return Err(ConfigError::BadParticipation);
        }
        if !self.collect_timeout_secs.is_finite() || self.collect_timeout_secs <= 0.0 {
            return Err(ConfigError::BadCollectTimeout {
                collect_timeout_secs: self.collect_timeout_secs,
            });
        }
        self.aggregator.validate()?;
        Ok(())
    }

    /// The run's worker pool: [`threads`](Self::threads) resolved through
    /// [`ft_runtime::resolve_threads`] (explicit count, else `FT_THREADS`,
    /// else available parallelism).
    pub fn runtime(&self) -> ft_runtime::Runtime {
        ft_runtime::Runtime::new(ft_runtime::resolve_threads(self.threads))
    }

    /// The paper's settings (expensive; used by `FT_SCALE=paper` benches).
    pub fn paper_default() -> Self {
        FlConfig {
            devices: 10,
            rounds: 300,
            local_epochs: 5,
            batch_size: 64,
            sgd: SgdConfig::default(),
            alpha: 0.5,
            dev_fraction: 0.1,
            participation: 1.0,
            prox_mu: 0.0,
            lr_decay: 1.0,
            parallel: true,
            threads: 0,
            codec: Codec::Dense,
            aggregator: Aggregator::FedAvg,
            collect_timeout_secs: default_collect_timeout_secs(),
            seed: 0,
        }
    }

    /// Laptop-scale settings the bench harnesses default to.
    pub fn bench_default() -> Self {
        FlConfig {
            devices: 6,
            rounds: 40,
            local_epochs: 2,
            batch_size: 32,
            sgd: SgdConfig {
                lr: 0.08,
                momentum: 0.0,
                weight_decay: 0.0,
                clip_norm: 2.0,
            },
            alpha: 0.5,
            dev_fraction: 0.2,
            participation: 1.0,
            prox_mu: 0.0,
            lr_decay: 1.0,
            parallel: true,
            threads: 0,
            codec: Codec::Dense,
            aggregator: Aggregator::FedAvg,
            collect_timeout_secs: default_collect_timeout_secs(),
            seed: 0,
        }
    }

    /// Millisecond-scale settings for unit tests.
    pub fn tiny_for_tests() -> Self {
        FlConfig {
            devices: 3,
            rounds: 4,
            local_epochs: 1,
            batch_size: 16,
            sgd: SgdConfig {
                lr: 0.1,
                momentum: 0.0,
                weight_decay: 0.0,
                clip_norm: 0.0,
            },
            alpha: 0.5,
            dev_fraction: 0.5,
            participation: 1.0,
            prox_mu: 0.0,
            lr_decay: 1.0,
            parallel: false,
            threads: 0,
            codec: Codec::Dense,
            aggregator: Aggregator::FedAvg,
            collect_timeout_secs: default_collect_timeout_secs(),
            seed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_presets_and_rejects_degenerates() {
        for cfg in [
            FlConfig::paper_default(),
            FlConfig::bench_default(),
            FlConfig::tiny_for_tests(),
        ] {
            assert_eq!(cfg.validate(), Ok(()));
        }
        let base = FlConfig::tiny_for_tests();
        let mut c = base;
        c.devices = 0;
        assert_eq!(c.validate(), Err(ConfigError::NoDevices));
        let mut c = base;
        c.batch_size = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroBatchSize));
        let mut c = base;
        c.local_epochs = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroLocalEpochs));
        let mut c = base;
        c.threads = MAX_THREADS + 1;
        assert_eq!(
            c.validate(),
            Err(ConfigError::TooManyThreads {
                threads: MAX_THREADS + 1
            })
        );
        let mut c = base;
        c.threads = MAX_THREADS; // at the cap is still legal
        assert_eq!(c.validate(), Ok(()));
        let mut c = base;
        c.participation = f32::NAN;
        assert_eq!(c.validate(), Err(ConfigError::BadParticipation));
        let mut c = base;
        c.aggregator = Aggregator::TrimmedMean { beta: 0.7 };
        assert_eq!(
            c.validate(),
            Err(ConfigError::BadTrimFraction { beta: 0.7 })
        );
        let mut c = base;
        c.aggregator = Aggregator::NormClipped { tau: -2.0 };
        assert_eq!(c.validate(), Err(ConfigError::BadClipNorm { tau: -2.0 }));
        let mut c = base;
        c.aggregator = Aggregator::TrimmedMean { beta: 0.25 };
        assert_eq!(c.validate(), Ok(()));
        for bad in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            let mut c = base;
            c.collect_timeout_secs = bad;
            // NaN != NaN under the derived PartialEq, so match on the
            // variant and compare the carried value bit-for-bit.
            match c.validate() {
                Err(ConfigError::BadCollectTimeout {
                    collect_timeout_secs,
                }) => assert_eq!(collect_timeout_secs.to_bits(), bad.to_bits()),
                other => panic!("collect_timeout_secs = {bad} must be rejected, got {other:?}"),
            }
        }
        let mut c = base;
        c.collect_timeout_secs = 0.25; // sub-second is unusual but legal
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn config_errors_display_their_field() {
        assert!(ConfigError::TooManyThreads { threads: 9999 }
            .to_string()
            .contains("9999"));
        assert!(ConfigError::BadDeadline {
            deadline_secs: -1.0
        }
        .to_string()
        .contains("-1"));
        assert!(ConfigError::ZeroBufferK.to_string().contains("buffer_k"));
        assert!(ConfigError::BadTrimFraction { beta: 0.9 }
            .to_string()
            .contains("0.9"));
        assert!(ConfigError::BadClipNorm { tau: 0.0 }
            .to_string()
            .contains("0"));
        assert!(ConfigError::BadCollectTimeout {
            collect_timeout_secs: -3.0
        }
        .to_string()
        .contains("-3"));
    }

    #[test]
    fn collect_timeout_defaults_when_absent_from_serialized_config() {
        let mut cfg = FlConfig::tiny_for_tests();
        cfg.collect_timeout_secs = 7.5;
        // Round-trips carry the knob through...
        let back = FlConfig::from_value(&cfg.to_value()).unwrap();
        assert_eq!(back, cfg);
        // ...and a pre-knob serialized config (no such key) gets the legacy
        // 30 s constant instead of a missing-field error.
        let legacy = match cfg.to_value() {
            serde::Value::Map(pairs) => serde::Value::Map(
                pairs
                    .into_iter()
                    .filter(|(k, _)| k != "collect_timeout_secs")
                    .collect(),
            ),
            other => panic!("FlConfig must serialize to a map, got {other:?}"),
        };
        let loaded = FlConfig::from_value(&legacy).unwrap();
        assert_eq!(loaded.collect_timeout_secs, 30.0);
    }

    #[test]
    fn presets_are_sane() {
        let p = FlConfig::paper_default();
        assert_eq!(p.devices, 10);
        assert_eq!(p.rounds, 300);
        assert_eq!(p.local_epochs, 5);
        assert_eq!(p.batch_size, 64);
        let t = FlConfig::tiny_for_tests();
        assert!(t.rounds < 10 && t.devices <= 4);
    }
}
