//! Federated-learning run configuration.

use ft_nn::optim::SgdConfig;
use ft_sparse::Codec;
use serde::{Deserialize, Serialize};

/// Shared federated-learning knobs (Sec. IV-A1 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlConfig {
    /// Number of participating devices `K` (paper: 10).
    pub devices: usize,
    /// Total FL rounds (paper: 300, or 200 for SVHN).
    pub rounds: usize,
    /// Local epochs per round `E` (paper: 5).
    pub local_epochs: usize,
    /// Mini-batch size (paper: 64).
    pub batch_size: usize,
    /// Local SGD hyperparameters.
    pub sgd: SgdConfig,
    /// Dirichlet concentration for the non-iid split (paper: 0.5).
    pub alpha: f64,
    /// Fraction of local data sampled as the development split `D̂_k`
    /// for BN adaptation (paper: 0.1).
    pub dev_fraction: f32,
    /// Fraction of devices participating per round (1.0 = all devices, the
    /// paper's setting; lower values model realistic partial participation).
    pub participation: f32,
    /// FedProx proximal coefficient µ; 0 disables the proximal term (the
    /// paper uses plain FedAvg). When set, each local step adds
    /// `µ(θ − θ_global)` to the gradient.
    pub prox_mu: f32,
    /// Per-round multiplicative learning-rate decay (1.0 = constant lr).
    pub lr_decay: f32,
    /// Run devices on parallel OS threads.
    pub parallel: bool,
    /// Worker threads of the run's [`ft_runtime::Runtime`] pool: device
    /// fan-out and kernel parallelism both draw from this one budget.
    /// `0` = auto (the `FT_THREADS` environment variable if set, otherwise
    /// all available cores); `1` = the exact legacy sequential path.
    /// Parallel and sequential execution are bit-identical, so this knob
    /// only changes wall-clock.
    pub threads: usize,
    /// Wire codec for the device → server update uploads (and the matching
    /// broadcast format). `Codec::Dense` reproduces the classic full-vector
    /// exchange; method runners typically override this per method.
    pub codec: Codec,
    /// Master seed for the whole run.
    pub seed: u64,
}

impl FlConfig {
    /// The run's worker pool: [`threads`](Self::threads) resolved through
    /// [`ft_runtime::resolve_threads`] (explicit count, else `FT_THREADS`,
    /// else available parallelism).
    pub fn runtime(&self) -> ft_runtime::Runtime {
        ft_runtime::Runtime::new(ft_runtime::resolve_threads(self.threads))
    }

    /// The paper's settings (expensive; used by `FT_SCALE=paper` benches).
    pub fn paper_default() -> Self {
        FlConfig {
            devices: 10,
            rounds: 300,
            local_epochs: 5,
            batch_size: 64,
            sgd: SgdConfig::default(),
            alpha: 0.5,
            dev_fraction: 0.1,
            participation: 1.0,
            prox_mu: 0.0,
            lr_decay: 1.0,
            parallel: true,
            threads: 0,
            codec: Codec::Dense,
            seed: 0,
        }
    }

    /// Laptop-scale settings the bench harnesses default to.
    pub fn bench_default() -> Self {
        FlConfig {
            devices: 6,
            rounds: 40,
            local_epochs: 2,
            batch_size: 32,
            sgd: SgdConfig {
                lr: 0.08,
                momentum: 0.0,
                weight_decay: 0.0,
                clip_norm: 2.0,
            },
            alpha: 0.5,
            dev_fraction: 0.2,
            participation: 1.0,
            prox_mu: 0.0,
            lr_decay: 1.0,
            parallel: true,
            threads: 0,
            codec: Codec::Dense,
            seed: 0,
        }
    }

    /// Millisecond-scale settings for unit tests.
    pub fn tiny_for_tests() -> Self {
        FlConfig {
            devices: 3,
            rounds: 4,
            local_epochs: 1,
            batch_size: 16,
            sgd: SgdConfig {
                lr: 0.1,
                momentum: 0.0,
                weight_decay: 0.0,
                clip_norm: 0.0,
            },
            alpha: 0.5,
            dev_fraction: 0.5,
            participation: 1.0,
            prox_mu: 0.0,
            lr_decay: 1.0,
            parallel: false,
            threads: 0,
            codec: Codec::Dense,
            seed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let p = FlConfig::paper_default();
        assert_eq!(p.devices, 10);
        assert_eq!(p.rounds, 300);
        assert_eq!(p.local_epochs, 5);
        assert_eq!(p.batch_size, 64);
        let t = FlConfig::tiny_for_tests();
        assert!(t.rounds < 10 && t.devices <= 4);
    }
}
