//! Experiment environment: data generation + federated split.

use crate::config::FlConfig;
use crate::sched::Scheduler;
use crate::spec::ModelSpec;
use ft_data::{dirichlet_partition, Dataset, DatasetProfile, SynthConfig};
use ft_metrics::DeviceProfile;
use ft_nn::Model;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A fully-prepared federated experiment: per-device training datasets (from
/// a Dirichlet non-iid split), the central test set, the simulated device
/// fleet, and the run configuration.
#[derive(Clone, Debug)]
pub struct ExperimentEnv {
    /// Local training datasets, one per device.
    pub parts: Vec<Dataset>,
    /// Held-out test dataset.
    pub test: Dataset,
    /// A server-side "public one-shot dataset" `D_s` (Sec. IV-A3) used by
    /// SNIP/PruneFL-style server pruning — a small iid sample.
    pub server_public: Dataset,
    /// Run configuration.
    pub cfg: FlConfig,
    /// Which dataset profile generated the data.
    pub profile: DatasetProfile,
    /// Compute/link/reliability profile of each simulated device. Defaults
    /// to a uniform reliable fleet (the pre-fleet behavior); indexed modulo
    /// its length so hand-built environments with resized `parts` stay
    /// valid.
    pub fleet: Vec<DeviceProfile>,
    /// How the server closes rounds over that fleet. Defaults to
    /// [`Scheduler::Synchronous`] (the classic barrier).
    pub scheduler: Scheduler,
}

impl ExperimentEnv {
    /// Generates data with `synth` and splits it across `cfg.devices`
    /// devices with `Dirichlet(cfg.alpha)`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`FlConfig::validate`] or the generated corpus
    /// has fewer samples than devices. Use [`try_new`](Self::try_new) for a
    /// typed error instead of a panic.
    pub fn new(synth: SynthConfig, cfg: FlConfig) -> Self {
        Self::try_new(synth, cfg).unwrap_or_else(|e| panic!("invalid FlConfig: {e}"))
    }

    /// [`new`](Self::new) with configuration validation surfaced as a typed
    /// [`ConfigError`](crate::ConfigError) instead of a downstream panic or
    /// hang.
    pub fn try_new(synth: SynthConfig, cfg: FlConfig) -> Result<Self, crate::ConfigError> {
        cfg.validate()?;
        let (train, test) = synth.generate();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x9a97_1710);
        let parts_idx = dirichlet_partition(
            &mut rng,
            train.labels(),
            train.classes(),
            cfg.devices,
            cfg.alpha,
        );
        let parts: Vec<Dataset> = parts_idx.iter().map(|idx| train.subset(idx)).collect();
        // Server public data: an iid sample of ~10% of the corpus.
        let server_public = train.dev_split(&mut rng, 0.1);
        Ok(ExperimentEnv {
            parts,
            test,
            server_public,
            cfg,
            profile: synth.profile,
            fleet: DeviceProfile::fleet_uniform(cfg.devices),
            scheduler: Scheduler::Synchronous,
        })
    }

    /// Replaces the simulated device fleet (builder style).
    pub fn with_fleet(mut self, fleet: Vec<DeviceProfile>) -> Self {
        self.fleet = fleet;
        self
    }

    /// Replaces the round scheduler (builder style).
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Replaces the wire codec (builder style).
    pub fn with_codec(mut self, codec: ft_sparse::Codec) -> Self {
        self.cfg.codec = codec;
        self
    }

    /// A view of this environment with `codec` selected: borrows when the
    /// codec already matches and clones (datasets included) only when it
    /// actually changes — method runners call this per run.
    pub fn codec_view(&self, codec: ft_sparse::Codec) -> std::borrow::Cow<'_, Self> {
        if self.cfg.codec == codec {
            std::borrow::Cow::Borrowed(self)
        } else {
            std::borrow::Cow::Owned(self.clone().with_codec(codec))
        }
    }

    /// The device profile of device `k` (fleet indexed modulo its length;
    /// an empty fleet falls back to the uniform reference profile).
    pub fn device_profile(&self, k: usize) -> DeviceProfile {
        if self.fleet.is_empty() {
            DeviceProfile::uniform()
        } else {
            self.fleet[k % self.fleet.len()]
        }
    }

    /// Millisecond-scale environment for unit tests.
    pub fn tiny_for_tests(seed: u64) -> Self {
        let mut cfg = FlConfig::tiny_for_tests();
        cfg.seed = seed;
        let synth = SynthConfig::tiny_for_tests(DatasetProfile::Cifar10, seed);
        Self::new(synth, cfg)
    }

    /// Laptop-scale environment matching the bench defaults.
    pub fn bench_default(profile: DatasetProfile, seed: u64) -> Self {
        let mut cfg = FlConfig::bench_default();
        cfg.seed = seed;
        let synth = SynthConfig::bench_default(profile, seed);
        Self::new(synth, cfg)
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.parts.len()
    }

    /// Total training samples across devices.
    pub fn total_train_samples(&self) -> usize {
        self.parts.iter().map(Dataset::len).sum()
    }

    /// Relative dataset weights `|D_k| / Σ|D_j|` used by every aggregation
    /// in the paper (Eqs. 4 and 7).
    pub fn device_weights(&self) -> Vec<f64> {
        let total = self.total_train_samples() as f64;
        self.parts.iter().map(|d| d.len() as f64 / total).collect()
    }

    /// Builds the model for this environment (input channels/classes come
    /// from the data).
    ///
    /// # Panics
    ///
    /// Panics if the spec's input resolution differs from the data's.
    pub fn build_model(&self, spec: &ModelSpec) -> Box<dyn Model> {
        let [c, h, _w] = self.test.sample_shape();
        assert_eq!(
            h,
            spec.input_size(),
            "model expects {} inputs but data is {h}px",
            spec.input_size()
        );
        spec.build(c, self.test.classes(), self.cfg.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_env_is_consistent() {
        let env = ExperimentEnv::tiny_for_tests(0);
        assert_eq!(env.num_devices(), 3);
        assert!(env.parts.iter().all(|p| !p.is_empty()));
        assert_eq!(env.test.classes(), 10);
        assert!(!env.server_public.is_empty());
        let w = env.device_weights();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ExperimentEnv::tiny_for_tests(3);
        let b = ExperimentEnv::tiny_for_tests(3);
        assert_eq!(a.parts[0].labels(), b.parts[0].labels());
    }

    #[test]
    fn sim_fleet_defaults_are_uniform_and_synchronous() {
        let env = ExperimentEnv::tiny_for_tests(0);
        assert_eq!(env.fleet.len(), env.cfg.devices);
        assert_eq!(env.scheduler, Scheduler::Synchronous);
        assert_eq!(env.device_profile(0), DeviceProfile::uniform());
        // Modulo indexing tolerates hand-resized environments; an empty
        // fleet falls back to the reference profile.
        let mut env = env.with_fleet(vec![DeviceProfile::slow()]);
        assert_eq!(env.device_profile(5), DeviceProfile::slow());
        env.fleet.clear();
        assert_eq!(env.device_profile(2), DeviceProfile::uniform());
    }

    #[test]
    fn try_new_rejects_invalid_configs_with_typed_error() {
        let mut cfg = FlConfig::tiny_for_tests();
        cfg.threads = crate::MAX_THREADS + 1;
        let synth = SynthConfig::tiny_for_tests(DatasetProfile::Cifar10, 0);
        match ExperimentEnv::try_new(synth, cfg) {
            Err(crate::ConfigError::TooManyThreads { threads }) => {
                assert_eq!(threads, crate::MAX_THREADS + 1);
            }
            other => panic!("expected TooManyThreads, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "invalid FlConfig")]
    fn new_panics_with_readable_message_on_invalid_config() {
        let mut cfg = FlConfig::tiny_for_tests();
        cfg.batch_size = 0;
        let synth = SynthConfig::tiny_for_tests(DatasetProfile::Cifar10, 0);
        let _ = ExperimentEnv::new(synth, cfg);
    }

    #[test]
    fn build_model_checks_resolution() {
        let env = ExperimentEnv::tiny_for_tests(0);
        let m = env.build_model(&ModelSpec::small_cnn_test());
        assert_eq!(m.arch().input, [3, 8, 8]);
    }

    #[test]
    #[should_panic(expected = "but data is")]
    fn build_model_rejects_resolution_mismatch() {
        let env = ExperimentEnv::tiny_for_tests(0);
        let _ = env.build_model(&ModelSpec::ResNet18 {
            width: 0.125,
            input: 16,
        });
    }
}
