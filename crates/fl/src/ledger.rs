//! Cost bookkeeping and the uniform result type every method runner returns.

use serde::{Deserialize, Serialize};

/// Accumulates per-round device costs over a run.
///
/// The paper reports the *maximum* per-round training FLOPs (whether any
/// round overwhelms a constrained device) and total communication. Those
/// `round_flops` are **analytic** (counted from the architecture and the
/// mask densities). Next to them the ledger records what the sparse
/// execution engine actually did: per-round *realized* FLOPs (the
/// multiply–accumulates the dense/sparse kernels executed) and device
/// wall-clock, so the analytic claims can be checked against reality.
///
/// # Examples
///
/// ```
/// use ft_fl::CostLedger;
///
/// let mut ledger = CostLedger::new();
/// ledger.record_round_flops(2.0e9); // analytic
/// ledger.record_realized_round(1.9e9, 0.25); // executed + wall-clock
/// ledger.add_comm(1.0e6);
/// assert_eq!(ledger.max_round_flops(), 2.0e9);
/// assert_eq!(ledger.max_realized_round_flops(), 1.9e9);
/// assert_eq!(ledger.total_train_wall_secs(), 0.25);
/// assert_eq!(ledger.rounds(), 1);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CostLedger {
    round_flops: Vec<f64>,
    realized_flops: Vec<f64>,
    wall_secs: Vec<f64>,
    comm_bytes: f64,
    extra_flops: f64,
}

impl CostLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the per-device analytic training FLOPs of one round.
    pub fn record_round_flops(&mut self, flops: f64) {
        self.round_flops.push(flops);
    }

    /// Records one round's *realized* execution cost: the maximum
    /// multiply–accumulate FLOPs any device's kernels actually executed,
    /// and the round's device-training wall-clock in seconds.
    pub fn record_realized_round(&mut self, flops: f64, wall_secs: f64) {
        self.realized_flops.push(flops);
        self.wall_secs.push(wall_secs);
    }

    /// Adds communication volume (bytes, any direction).
    pub fn add_comm(&mut self, bytes: f64) {
        self.comm_bytes += bytes;
    }

    /// Adds one-off extra computation (e.g. Alg. 1's BN adaptation passes).
    pub fn add_extra_flops(&mut self, flops: f64) {
        self.extra_flops += flops;
    }

    /// Maximum training FLOPs over all recorded rounds (Table I's "Max
    /// Training FLOPs"), zero if nothing was recorded.
    pub fn max_round_flops(&self) -> f64 {
        self.round_flops.iter().cloned().fold(0.0, f64::max)
    }

    /// Maximum *realized* per-round FLOPs, zero if nothing was recorded.
    pub fn max_realized_round_flops(&self) -> f64 {
        self.realized_flops.iter().cloned().fold(0.0, f64::max)
    }

    /// Total device-training wall-clock over all recorded rounds, in
    /// seconds.
    pub fn total_train_wall_secs(&self) -> f64 {
        self.wall_secs.iter().sum()
    }

    /// Total communication in bytes.
    pub fn total_comm_bytes(&self) -> f64 {
        self.comm_bytes
    }

    /// Total extra FLOPs (Table II's "Extra FLOPs in selection").
    pub fn extra_flops(&self) -> f64 {
        self.extra_flops
    }

    /// Number of recorded rounds.
    pub fn rounds(&self) -> usize {
        self.round_flops.len()
    }
}

/// The uniform outcome of one federated pruning run, shared by FedTiny and
/// every baseline so the bench harnesses can tabulate them side by side.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunResult {
    /// Human-readable method name (e.g. `"fedtiny"`, `"snip"`).
    pub method: String,
    /// Final top-1 accuracy on the test set.
    pub accuracy: f32,
    /// Accuracy after each evaluation point (typically once per round).
    pub history: Vec<f32>,
    /// Overall density of the final mask (1.0 for dense methods).
    pub final_density: f32,
    /// Maximum per-round per-device training FLOPs.
    pub max_round_flops: f64,
    /// Device memory footprint in bytes (model + method-specific extras).
    pub memory_bytes: f64,
    /// Total communication volume in bytes.
    pub comm_bytes: f64,
    /// Extra FLOPs outside training rounds (e.g. BN selection).
    pub extra_flops: f64,
    /// Maximum per-round per-device FLOPs the kernels actually executed
    /// (the realized counterpart of `max_round_flops`); 0 when unrecorded.
    pub realized_round_flops: f64,
    /// Total wall-clock seconds spent in device-side local training; 0 when
    /// unrecorded.
    pub train_wall_secs: f64,
}

impl RunResult {
    /// Best accuracy seen at any evaluation point (the paper reports final
    /// accuracy; best-seen is exposed for diagnostics).
    pub fn best_accuracy(&self) -> f32 {
        self.history.iter().cloned().fold(self.accuracy, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_tracks_max_and_totals() {
        let mut l = CostLedger::new();
        assert_eq!(l.max_round_flops(), 0.0);
        l.record_round_flops(10.0);
        l.record_round_flops(30.0);
        l.record_round_flops(20.0);
        l.add_comm(100.0);
        l.add_comm(50.0);
        l.add_extra_flops(5.0);
        assert_eq!(l.max_round_flops(), 30.0);
        assert_eq!(l.total_comm_bytes(), 150.0);
        assert_eq!(l.extra_flops(), 5.0);
        assert_eq!(l.rounds(), 3);
    }

    #[test]
    fn ledger_tracks_realized_costs() {
        let mut l = CostLedger::new();
        assert_eq!(l.max_realized_round_flops(), 0.0);
        assert_eq!(l.total_train_wall_secs(), 0.0);
        l.record_realized_round(8.0, 0.5);
        l.record_realized_round(25.0, 0.25);
        assert_eq!(l.max_realized_round_flops(), 25.0);
        assert_eq!(l.total_train_wall_secs(), 0.75);
    }

    #[test]
    fn best_accuracy_scans_history() {
        let r = RunResult {
            method: "x".into(),
            accuracy: 0.5,
            history: vec![0.2, 0.7, 0.6],
            final_density: 0.01,
            max_round_flops: 0.0,
            memory_bytes: 0.0,
            comm_bytes: 0.0,
            extra_flops: 0.0,
            realized_round_flops: 0.0,
            train_wall_secs: 0.0,
        };
        assert_eq!(r.best_accuracy(), 0.7);
    }
}
