//! Cost bookkeeping and the uniform result type every method runner returns.

use crate::transport::FaultKind;
use ft_metrics::FaultCounters;
use serde::{Deserialize, Serialize};

/// One device-side training task as the fleet simulation saw it.
///
/// `round` is the server round (or, under buffered aggregation, the server
/// version at which the task's update arrived); `applied` says whether the
/// update reached the aggregate (false = dropped, past the deadline, or the
/// whole round made no progress); `staleness` is the number of server
/// versions that elapsed while the device trained (always 0 under barrier
/// schedulers).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimelineEvent {
    /// Global device index.
    pub device: usize,
    /// Server round / version the task finished in.
    pub round: usize,
    /// Simulated second the device started training.
    pub start_secs: f64,
    /// Simulated second its update arrived at the server.
    pub finish_secs: f64,
    /// Whether the update contributed to an aggregation.
    pub applied: bool,
    /// Server versions elapsed between the task's start and its arrival.
    pub staleness: usize,
}

/// Accumulates per-round device costs over a run.
///
/// The paper reports the *maximum* per-round training FLOPs (whether any
/// round overwhelms a constrained device) and total communication. Those
/// `round_flops` are **analytic** (counted from the architecture and the
/// mask densities). Next to them the ledger records what the sparse
/// execution engine actually did: per-round *realized* FLOPs (the
/// multiply–accumulates the dense/sparse kernels executed) and device
/// wall-clock, so the analytic claims can be checked against reality.
///
/// The fleet simulation adds a third axis, *simulated time*: each round's
/// virtual-clock span ([`record_sim_round`](CostLedger::record_sim_round)),
/// a per-device [`TimelineEvent`] log, and a count of zero-progress rounds
/// (rounds whose surviving cohort was empty).
///
/// # Examples
///
/// ```
/// use ft_fl::CostLedger;
///
/// let mut ledger = CostLedger::new();
/// ledger.record_round_flops(2.0e9); // analytic
/// ledger.record_realized_round(1.9e9, 0.25); // executed + wall-clock
/// ledger.record_sim_round(14.5); // simulated fleet makespan of the round
/// ledger.add_comm(1.0e6);
/// assert_eq!(ledger.max_round_flops(), 2.0e9);
/// assert_eq!(ledger.max_realized_round_flops(), 1.9e9);
/// assert_eq!(ledger.total_train_wall_secs(), 0.25);
/// assert_eq!(ledger.sim_makespan_secs(), 14.5);
/// assert_eq!(ledger.rounds(), 1);
/// assert_eq!(ledger.zero_progress_rounds(), 0);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CostLedger {
    round_flops: Vec<f64>,
    realized_flops: Vec<f64>,
    wall_secs: Vec<f64>,
    sim_secs: Vec<f64>,
    comm_bytes: f64,
    payload_down_bytes: Vec<f64>,
    payload_up_bytes: Vec<f64>,
    payload_extra_bytes: f64,
    extra_flops: f64,
    zero_progress: usize,
    timeline: Vec<TimelineEvent>,
    faults: FaultCounters,
}

impl CostLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the per-device analytic training FLOPs of one round.
    pub fn record_round_flops(&mut self, flops: f64) {
        self.round_flops.push(flops);
    }

    /// Records one round's *realized* execution cost: the maximum
    /// multiply–accumulate FLOPs any device's kernels actually executed,
    /// and the round's device-training wall-clock in seconds.
    pub fn record_realized_round(&mut self, flops: f64, wall_secs: f64) {
        self.realized_flops.push(flops);
        self.wall_secs.push(wall_secs);
    }

    /// Records one round's simulated fleet makespan (virtual seconds from
    /// the round's start until the server could aggregate).
    pub fn record_sim_round(&mut self, secs: f64) {
        self.sim_secs.push(secs);
    }

    /// Marks the most recent round as zero-progress: its surviving cohort
    /// was empty (all devices dropped or late), so the global model was
    /// left unchanged.
    pub fn record_zero_progress(&mut self) {
        self.zero_progress += 1;
    }

    /// Appends one device-task event to the per-device timeline and
    /// returns its index (so a buffered scheduler can flip `applied` once
    /// the update actually reaches an aggregate).
    pub fn record_timeline(&mut self, event: TimelineEvent) -> usize {
        self.timeline.push(event);
        self.timeline.len() - 1
    }

    /// Marks a previously recorded timeline event as applied.
    pub(crate) fn set_timeline_applied(&mut self, idx: usize) {
        self.timeline[idx].applied = true;
    }

    /// Counts one quarantined delivery under its fault class (hostile or
    /// flaky devices never panic the server — they land here).
    pub fn record_fault(&mut self, fault: &FaultKind) {
        match fault {
            FaultKind::MalformedFrame(_) => self.faults.malformed_frames += 1,
            FaultKind::Disconnected(_) => self.faults.disconnects += 1,
            FaultKind::Replay { .. } => self.faults.replays += 1,
            FaultKind::InflatedSamples { .. } => self.faults.inflated_samples += 1,
        }
    }

    /// Counts updates a norm-clipping aggregator scaled down this round.
    pub fn record_clipped(&mut self, n: usize) {
        self.faults.clipped_updates += n as u64;
    }

    /// Counts connection attempts rejected while accepting the fleet.
    pub fn record_handshake_faults(&mut self, n: usize) {
        self.faults.rejected_handshakes += n as u64;
    }

    /// The run's fault/quarantine counters.
    pub fn faults(&self) -> &FaultCounters {
        &self.faults
    }

    /// Deliveries quarantined instead of aggregated (all fault classes).
    pub fn quarantined_updates(&self) -> u64 {
        self.faults.total_quarantined()
    }

    /// Adds communication volume (bytes, any direction).
    ///
    /// This is the *analytic* axis (paper-style formulas). The measured
    /// counterpart — bytes of actually-encoded payloads — is recorded by
    /// [`record_payload_round`](Self::record_payload_round) /
    /// [`add_payload_comm`](Self::add_payload_comm), the same
    /// analytic-vs-realized split the FLOPs accounting uses.
    pub fn add_comm(&mut self, bytes: f64) {
        self.comm_bytes += bytes;
    }

    /// Records one round's *measured* wire traffic: the server broadcast
    /// size and the heaviest device upload, both taken from
    /// `Payload::encoded_len` of actually-encoded payloads (mirroring the
    /// one-transfer-per-round convention of the analytic axis).
    pub fn record_payload_round(&mut self, down_bytes: f64, up_bytes: f64) {
        self.payload_down_bytes.push(down_bytes);
        self.payload_up_bytes.push(up_bytes);
    }

    /// Adds one-off measured wire traffic outside the round loop (BN-stat
    /// uploads during selection, top-k gradient pairs, mask adjustments).
    pub fn add_payload_comm(&mut self, bytes: f64) {
        self.payload_extra_bytes += bytes;
    }

    /// Adds one-off extra computation (e.g. Alg. 1's BN adaptation passes).
    pub fn add_extra_flops(&mut self, flops: f64) {
        self.extra_flops += flops;
    }

    /// Maximum training FLOPs over all recorded rounds (Table I's "Max
    /// Training FLOPs"), zero if nothing was recorded.
    pub fn max_round_flops(&self) -> f64 {
        self.round_flops.iter().cloned().fold(0.0, f64::max)
    }

    /// Maximum *realized* per-round FLOPs, zero if nothing was recorded.
    pub fn max_realized_round_flops(&self) -> f64 {
        self.realized_flops.iter().cloned().fold(0.0, f64::max)
    }

    /// Total device-training wall-clock over all recorded rounds, in
    /// seconds.
    pub fn total_train_wall_secs(&self) -> f64 {
        self.wall_secs.iter().sum()
    }

    /// Total *analytic* communication in bytes.
    pub fn total_comm_bytes(&self) -> f64 {
        self.comm_bytes
    }

    /// Total *measured* payload bytes (uploads + broadcasts + one-off
    /// exchanges), from actually-encoded payloads.
    pub fn total_payload_bytes(&self) -> f64 {
        self.payload_down_bytes.iter().sum::<f64>()
            + self.payload_up_bytes.iter().sum::<f64>()
            + self.payload_extra_bytes
    }

    /// Total measured device → server upload bytes across rounds.
    pub fn total_payload_upload_bytes(&self) -> f64 {
        self.payload_up_bytes.iter().sum()
    }

    /// Per-round measured upload bytes (heaviest device), in round order.
    pub fn payload_up_history(&self) -> &[f64] {
        &self.payload_up_bytes
    }

    /// Per-round measured broadcast bytes, in round order.
    pub fn payload_down_history(&self) -> &[f64] {
        &self.payload_down_bytes
    }

    /// Total extra FLOPs (Table II's "Extra FLOPs in selection").
    pub fn extra_flops(&self) -> f64 {
        self.extra_flops
    }

    /// Total simulated fleet time across all rounds — the virtual-clock
    /// makespan of the whole run. This is the "how long would the fleet the
    /// paper targets actually take" number, next to
    /// [`total_train_wall_secs`](Self::total_train_wall_secs) which measures
    /// the simulator host.
    pub fn sim_makespan_secs(&self) -> f64 {
        self.sim_secs.iter().sum()
    }

    /// Longest simulated single-round span, zero if nothing was recorded.
    pub fn max_sim_round_secs(&self) -> f64 {
        self.sim_secs.iter().cloned().fold(0.0, f64::max)
    }

    /// Rounds whose surviving cohort was empty (no update applied).
    pub fn zero_progress_rounds(&self) -> usize {
        self.zero_progress
    }

    /// The per-device task timeline, in simulated arrival order.
    pub fn timeline(&self) -> &[TimelineEvent] {
        &self.timeline
    }

    /// Per-round analytic training FLOPs, in round order.
    pub fn round_flops_history(&self) -> &[f64] {
        &self.round_flops
    }

    /// Per-round realized (executed) FLOPs, in round order.
    pub fn realized_flops_history(&self) -> &[f64] {
        &self.realized_flops
    }

    /// Per-round simulated makespans, in round order.
    pub fn sim_secs_history(&self) -> &[f64] {
        &self.sim_secs
    }

    /// Device updates that never reached an aggregate (dropped or late).
    pub fn dropped_updates(&self) -> usize {
        self.timeline.iter().filter(|e| !e.applied).count()
    }

    /// Number of recorded rounds.
    pub fn rounds(&self) -> usize {
        self.round_flops.len()
    }

    /// Serializes the full ledger into a checkpoint blob (bit-exact floats;
    /// see `ft_fl::checkpoint`). A resumed run *continues* this ledger, so
    /// every axis — analytic, realized, measured payload, simulated time,
    /// and the per-device timeline — must survive the round-trip exactly.
    pub(crate) fn encode_ckpt(&self, out: &mut Vec<u8>) {
        use crate::bytes::{put_bool, put_f64, put_f64_vec, put_u64};
        put_f64_vec(out, &self.round_flops);
        put_f64_vec(out, &self.realized_flops);
        put_f64_vec(out, &self.wall_secs);
        put_f64_vec(out, &self.sim_secs);
        put_f64(out, self.comm_bytes);
        put_f64_vec(out, &self.payload_down_bytes);
        put_f64_vec(out, &self.payload_up_bytes);
        put_f64(out, self.payload_extra_bytes);
        put_f64(out, self.extra_flops);
        put_u64(out, self.zero_progress as u64);
        crate::bytes::put_u32(out, self.timeline.len() as u32);
        for e in &self.timeline {
            put_u64(out, e.device as u64);
            put_u64(out, e.round as u64);
            put_f64(out, e.start_secs);
            put_f64(out, e.finish_secs);
            put_bool(out, e.applied);
            put_u64(out, e.staleness as u64);
        }
        // Fault counters (checkpoint layout version 2).
        put_u64(out, self.faults.malformed_frames);
        put_u64(out, self.faults.replays);
        put_u64(out, self.faults.disconnects);
        put_u64(out, self.faults.inflated_samples);
        put_u64(out, self.faults.clipped_updates);
        put_u64(out, self.faults.rejected_handshakes);
    }

    /// Parses a ledger written by [`encode_ckpt`](Self::encode_ckpt).
    pub(crate) fn decode_ckpt(
        r: &mut crate::bytes::ByteReader<'_>,
    ) -> Result<Self, crate::bytes::ReadError> {
        let round_flops = r.f64_vec()?;
        let realized_flops = r.f64_vec()?;
        let wall_secs = r.f64_vec()?;
        let sim_secs = r.f64_vec()?;
        let comm_bytes = r.f64()?;
        let payload_down_bytes = r.f64_vec()?;
        let payload_up_bytes = r.f64_vec()?;
        let payload_extra_bytes = r.f64()?;
        let extra_flops = r.f64()?;
        let zero_progress = r.len_u64()?;
        let n = r.u32()? as usize;
        let mut timeline = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            timeline.push(TimelineEvent {
                device: r.len_u64()?,
                round: r.len_u64()?,
                start_secs: r.f64()?,
                finish_secs: r.f64()?,
                applied: r.boolean()?,
                staleness: r.len_u64()?,
            });
        }
        let faults = FaultCounters {
            malformed_frames: r.u64()?,
            replays: r.u64()?,
            disconnects: r.u64()?,
            inflated_samples: r.u64()?,
            clipped_updates: r.u64()?,
            rejected_handshakes: r.u64()?,
        };
        Ok(CostLedger {
            round_flops,
            realized_flops,
            wall_secs,
            sim_secs,
            comm_bytes,
            payload_down_bytes,
            payload_up_bytes,
            payload_extra_bytes,
            extra_flops,
            zero_progress,
            timeline,
            faults,
        })
    }
}

/// The uniform outcome of one federated pruning run, shared by FedTiny and
/// every baseline so the bench harnesses can tabulate them side by side.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunResult {
    /// Human-readable method name (e.g. `"fedtiny"`, `"snip"`).
    pub method: String,
    /// Final top-1 accuracy on the test set.
    pub accuracy: f32,
    /// Accuracy after each evaluation point (typically once per round).
    pub history: Vec<f32>,
    /// Overall density of the final mask (1.0 for dense methods).
    pub final_density: f32,
    /// Maximum per-round per-device training FLOPs.
    pub max_round_flops: f64,
    /// Device memory footprint in bytes (model + method-specific extras).
    pub memory_bytes: f64,
    /// Total *analytic* communication volume in bytes (paper formulas).
    pub comm_bytes: f64,
    /// Total *measured* wire traffic in bytes: encoded payload sizes of
    /// every broadcast, upload, and side exchange; 0 when unrecorded.
    pub payload_comm_bytes: f64,
    /// Measured device → server upload share of `payload_comm_bytes`; 0
    /// when unrecorded.
    pub payload_upload_bytes: f64,
    /// Wire codec the run exchanged updates with (stable lowercase name).
    pub codec: String,
    /// Extra FLOPs outside training rounds (e.g. BN selection).
    pub extra_flops: f64,
    /// Maximum per-round per-device FLOPs the kernels actually executed
    /// (the realized counterpart of `max_round_flops`); 0 when unrecorded.
    pub realized_round_flops: f64,
    /// Total wall-clock seconds spent in device-side local training; 0 when
    /// unrecorded.
    pub train_wall_secs: f64,
    /// Total *simulated* fleet seconds for the run under the environment's
    /// device profiles and scheduler (the virtual-time counterpart of
    /// `train_wall_secs`); 0 when unrecorded.
    pub sim_makespan_secs: f64,
}

impl RunResult {
    /// The one shared constructor for every method runner: all
    /// ledger-derived fields come straight from the ledger's accessors, so
    /// runners can't drift in *which* total they report. The caller
    /// supplies only what the ledger cannot know — the method name, the
    /// accuracy history, the final mask density, the device memory model,
    /// and the wire codec. An empty history reports `NaN` accuracy (the
    /// halted-before-first-eval case of Result-returning runners).
    pub fn from_ledger(
        method: impl Into<String>,
        history: Vec<f32>,
        final_density: f32,
        memory_bytes: f64,
        codec: impl Into<String>,
        ledger: &CostLedger,
    ) -> Self {
        RunResult {
            method: method.into(),
            accuracy: history.last().copied().unwrap_or(f32::NAN),
            history,
            final_density,
            max_round_flops: ledger.max_round_flops(),
            memory_bytes,
            comm_bytes: ledger.total_comm_bytes(),
            payload_comm_bytes: ledger.total_payload_bytes(),
            payload_upload_bytes: ledger.total_payload_upload_bytes(),
            codec: codec.into(),
            extra_flops: ledger.extra_flops(),
            realized_round_flops: ledger.max_realized_round_flops(),
            train_wall_secs: ledger.total_train_wall_secs(),
            sim_makespan_secs: ledger.sim_makespan_secs(),
        }
    }

    /// Best accuracy seen at any evaluation point (the paper reports final
    /// accuracy; best-seen is exposed for diagnostics).
    pub fn best_accuracy(&self) -> f32 {
        self.history.iter().cloned().fold(self.accuracy, f32::max)
    }

    /// The uniform human-readable run summary every operator surface
    /// prints (`ft run`, the examples) — one formatter, so they can't
    /// drift.
    pub fn format_summary(&self) -> String {
        format!(
            "method: {} | codec: {}\n\
             top1: {:.4} (best {:.4}) | density: {:.4}\n\
             flops/round: {:.3e} analytic, {:.3e} realized (+{:.3e} extra)\n\
             comm: {:.1} KB analytic, {:.1} KB measured ({:.1} KB uploads)\n\
             memory: {:.1} KB/device | time: {:.1} s simulated, {:.2} s host training",
            self.method,
            self.codec,
            self.accuracy,
            self.best_accuracy(),
            self.final_density,
            self.max_round_flops,
            self.realized_round_flops,
            self.extra_flops,
            self.comm_bytes / 1e3,
            self.payload_comm_bytes / 1e3,
            self.payload_upload_bytes / 1e3,
            self.memory_bytes / 1e3,
            self.sim_makespan_secs,
            self.train_wall_secs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_tracks_max_and_totals() {
        let mut l = CostLedger::new();
        assert_eq!(l.max_round_flops(), 0.0);
        l.record_round_flops(10.0);
        l.record_round_flops(30.0);
        l.record_round_flops(20.0);
        l.add_comm(100.0);
        l.add_comm(50.0);
        l.add_extra_flops(5.0);
        assert_eq!(l.max_round_flops(), 30.0);
        assert_eq!(l.total_comm_bytes(), 150.0);
        assert_eq!(l.extra_flops(), 5.0);
        assert_eq!(l.rounds(), 3);
    }

    #[test]
    fn ledger_tracks_measured_payload_bytes() {
        let mut l = CostLedger::new();
        assert_eq!(l.total_payload_bytes(), 0.0);
        l.record_payload_round(1000.0, 400.0);
        l.record_payload_round(1000.0, 350.0);
        l.add_payload_comm(25.0);
        assert_eq!(l.total_payload_upload_bytes(), 750.0);
        assert_eq!(l.total_payload_bytes(), 2775.0);
        assert_eq!(l.payload_up_history(), &[400.0, 350.0]);
        assert_eq!(l.payload_down_history(), &[1000.0, 1000.0]);
        // Analytic axis is untouched by measured records.
        assert_eq!(l.total_comm_bytes(), 0.0);
    }

    #[test]
    fn ledger_tracks_realized_costs() {
        let mut l = CostLedger::new();
        assert_eq!(l.max_realized_round_flops(), 0.0);
        assert_eq!(l.total_train_wall_secs(), 0.0);
        l.record_realized_round(8.0, 0.5);
        l.record_realized_round(25.0, 0.25);
        assert_eq!(l.max_realized_round_flops(), 25.0);
        assert_eq!(l.total_train_wall_secs(), 0.75);
    }

    #[test]
    fn sim_ledger_tracks_virtual_time_and_timeline() {
        let mut l = CostLedger::new();
        assert_eq!(l.sim_makespan_secs(), 0.0);
        assert_eq!(l.zero_progress_rounds(), 0);
        l.record_sim_round(3.0);
        l.record_sim_round(7.5);
        l.record_zero_progress();
        l.record_timeline(TimelineEvent {
            device: 1,
            round: 0,
            start_secs: 0.0,
            finish_secs: 3.0,
            applied: true,
            staleness: 0,
        });
        l.record_timeline(TimelineEvent {
            device: 2,
            round: 1,
            start_secs: 3.0,
            finish_secs: 10.5,
            applied: false,
            staleness: 2,
        });
        assert_eq!(l.sim_makespan_secs(), 10.5);
        assert_eq!(l.max_sim_round_secs(), 7.5);
        assert_eq!(l.zero_progress_rounds(), 1);
        assert_eq!(l.timeline().len(), 2);
        assert_eq!(l.dropped_updates(), 1);
        assert_eq!(l.timeline()[1].staleness, 2);
    }

    #[test]
    fn ledger_fault_counters_roundtrip_through_ckpt_blob() {
        let mut l = CostLedger::new();
        l.record_fault(&FaultKind::MalformedFrame("junk".into()));
        l.record_fault(&FaultKind::Replay {
            got_round: 1,
            want_round: 3,
            got_epoch: 0,
            want_epoch: 1,
        });
        l.record_fault(&FaultKind::Disconnected("hung up".into()));
        l.record_fault(&FaultKind::InflatedSamples {
            claimed: 1 << 40,
            cap: 64,
        });
        l.record_clipped(2);
        l.record_handshake_faults(3);
        assert_eq!(l.quarantined_updates(), 4);
        assert_eq!(l.faults().clipped_updates, 2);
        assert_eq!(l.faults().rejected_handshakes, 3);
        let mut blob = Vec::new();
        l.encode_ckpt(&mut blob);
        let mut r = crate::bytes::ByteReader::new(&blob);
        let back = CostLedger::decode_ckpt(&mut r).expect("decode");
        assert_eq!(back.faults(), l.faults());
    }

    #[test]
    fn best_accuracy_scans_history() {
        let r = RunResult {
            method: "x".into(),
            accuracy: 0.5,
            history: vec![0.2, 0.7, 0.6],
            final_density: 0.01,
            max_round_flops: 0.0,
            memory_bytes: 0.0,
            comm_bytes: 0.0,
            payload_comm_bytes: 0.0,
            payload_upload_bytes: 0.0,
            codec: "dense".into(),
            extra_flops: 0.0,
            realized_round_flops: 0.0,
            train_wall_secs: 0.0,
            sim_makespan_secs: 0.0,
        };
        assert_eq!(r.best_accuracy(), 0.7);
    }
}
