//! Federated-learning simulator: devices, FedAvg aggregation, local SGD,
//! evaluation, and cost bookkeeping.
//!
//! Every pruning method in this workspace — the baselines in `ft-pruning`
//! and FedTiny itself — is built from the primitives here:
//!
//! - [`ExperimentEnv`] — a generated dataset, its Dirichlet non-iid split
//!   across `K` devices, and the shared [`FlConfig`].
//! - [`local_train`] / [`train_devices_parallel`] — `E` epochs of (masked)
//!   SGD per device, optionally fanned out over OS threads.
//! - [`fedavg`] / [`aggregate_bn_stats`] — size-weighted averaging of flat
//!   parameter vectors and of BatchNorm running statistics (Eqs. 4 and 7);
//!   [`staleness_fedavg`] / [`fedavg_or_previous`] are the
//!   straggler-tolerant variants the schedulers build on.
//! - The typed update pipeline: a [`DeviceUpdate`] carries an encoded
//!   [`Payload`] (delta against the round anchor under the run's
//!   [`Codec`]), [`fedavg_payloads`] / [`staleness_fedavg_payloads`]
//!   decode-and-accumulate without materializing per-device dense vectors,
//!   and the schedulers bill the `SimClock` and [`CostLedger`] with
//!   *measured* `encoded_len()` bytes next to the analytic formulas.
//! - [`Scheduler`] — how the server closes rounds over the environment's
//!   simulated [`DeviceProfile`] fleet: synchronous barrier, deadline cut,
//!   or FedBuff-style buffered asynchrony, all on a virtual clock.
//! - [`server`] — the transport-agnostic round state machine (Broadcast →
//!   Collect → Aggregate → Advance) behind every scheduler, with
//!   checkpoint/resume ([`Checkpoint`], [`CheckpointSpec`]) that reproduces
//!   an interrupted run's final trace byte for byte.
//! - [`transport`] — how updates reach the server: [`InProcess`] (function
//!   calls, the golden-trace-pinned classic), [`SimTime`] (every update
//!   crosses a real in-memory frame boundary), and [`TcpTransport`] /
//!   [`run_tcp_device`] (length-prefixed frames over `std::net` sockets —
//!   same seed, bit-identical final model).
//! - [`evaluate`] — top-1 accuracy of the global model on the test split.
//! - [`CostLedger`] / [`RunResult`] — per-round FLOPs/communication records,
//!   simulated fleet makespans and per-device [`TimelineEvent`]s, and the
//!   uniform result struct every method runner returns.
//!
//! # Examples
//!
//! ```
//! use ft_fl::{evaluate, ExperimentEnv, ModelSpec};
//!
//! let env = ExperimentEnv::tiny_for_tests(7);
//! let mut model = env.build_model(&ModelSpec::small_cnn_test());
//! let acc = evaluate(model.as_mut(), &env.test);
//! assert!(acc >= 0.0 && acc <= 1.0);
//! ```

pub mod adversary;
mod aggregate;
mod bytes;
mod checkpoint;
mod config;
mod env;
mod ledger;
mod rounds;
mod sched;
pub mod server;
mod spec;
mod train;
pub mod transport;

pub use adversary::{
    run_byzantine_tcp_device, run_churn_tcp_device, AdversarialTransport, Behavior,
};
pub use aggregate::{
    aggregate_bn_stats, fedavg, fedavg_or_previous, fedavg_payloads, staleness_fedavg,
    staleness_fedavg_payloads, staleness_weight, try_aggregate_bn_stats, try_fedavg,
    try_fedavg_payloads, try_staleness_fedavg_payloads, AggScratch, AggregateOutcome, AggregateRef,
    Aggregator, ShardAccumulate,
};
pub use checkpoint::{Checkpoint, CheckpointError, CheckpointSpec, CheckpointSummary};
pub use config::{ConfigError, FlConfig, MAX_THREADS};
pub use env::ExperimentEnv;
pub use ft_metrics::{
    decode_trace_frame, encode_trace_frame, read_trace_frame, DeviceProfile, FaultCounters,
    MetricsEndpoint, MetricsHub, RoundStats, SimClock, TraceDecodeError, TraceEvent,
    TraceStreamError, STALENESS_BUCKETS,
};
pub use ft_runtime::{resolve_threads, Runtime};
pub use ft_sparse::{Codec, Payload, WireCtx};
pub use ledger::{CostLedger, RunResult, TimelineEvent};
pub use rounds::{no_hook, run_federated_rounds, schedule_fits, RoundHook};
pub use sched::{
    broadcast_payload_len, device_round_cost, device_sim_secs, fleet_spread_deadline,
    PresenceSchedule, Scheduler,
};
pub use server::{run_with, RoundPhase, RunOptions, ServerError};
pub use spec::ModelSpec;
pub use train::{
    device_rng_seed, eval_loss, evaluate, local_train, local_train_prox, local_train_scratch,
    train_devices_parallel, train_one_device, DeviceUpdate, TrainScratch, WireSpec,
};
pub use transport::{
    run_tcp_device, run_tcp_devices, Delivery, FaultKind, InProcess, RoundRequest, SimTime,
    TcpTransport, Transport, TransportError,
};
