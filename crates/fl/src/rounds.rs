//! The generic federated round loop shared by every pruning method.

use crate::config::FlConfig;
use crate::env::ExperimentEnv;
use crate::ledger::CostLedger;
use ft_nn::Model;
use ft_sparse::Mask;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Per-round method-specific logic, invoked *after* aggregation each round.
///
/// The hook may mutate the model and the mask (grow/prune adjustments,
/// rewinding, …) and must return the extra per-device FLOPs its work cost in
/// that round; communication should be added to the ledger directly.
pub type RoundHook<'a> = dyn FnMut(&mut dyn Model, &mut Mask, usize, &mut CostLedger) -> f64 + 'a;

/// Runs `env.cfg.rounds` rounds of (masked) FedAvg under the environment's
/// [`Scheduler`] and simulated device fleet:
///
/// 1. every device trains `E` local epochs from the global model with
///    gradients masked by `mask` (Eq. 5);
/// 2. the server aggregates parameters and BN statistics weighted by
///    `|D_k|` — the whole cohort under `Synchronous`, the on-time survivors
///    under `Deadline`, a staleness-weighted buffer under `Buffered` — and
///    re-applies the mask;
/// 3. `hook` runs (mask adjustments, schedule events, …);
/// 4. the global model is evaluated every `eval_every` rounds and at the
///    end.
///
/// Per-round training FLOPs (at the round's density), model-transfer
/// bytes, realized execution costs, and the round's *simulated* fleet
/// makespan are recorded in `ledger`. Returns the accuracy history (always
/// nonempty).
///
/// This is the classic in-process entry point: a thin wrapper over the
/// transport-agnostic round state machine in [`crate::server`] running on
/// the [`crate::transport::InProcess`] transport. Use
/// [`crate::server::run_with`] directly to pick another transport
/// (`SimTime`, TCP) or to checkpoint/resume the run.
pub fn run_federated_rounds(
    global: &mut dyn Model,
    mask: &mut Mask,
    env: &ExperimentEnv,
    eval_every: usize,
    ledger: &mut CostLedger,
    hook: &mut RoundHook<'_>,
) -> Vec<f32> {
    crate::server::run_in_process(global, mask, env, eval_every, ledger, hook)
}

/// Samples the participating device indices for one round: all devices at
/// `participation = 1.0`, otherwise a seeded sample of
/// `ceil(K · participation)` devices (at least one).
pub(crate) fn sample_cohort(env: &ExperimentEnv, round: usize) -> Vec<usize> {
    let k = env.num_devices();
    let frac = env.cfg.participation.clamp(0.0, 1.0);
    if frac >= 1.0 {
        return (0..k).collect();
    }
    let take = ((k as f32 * frac).ceil() as usize).clamp(1, k);
    let mut rng =
        ChaCha8Rng::seed_from_u64(env.cfg.seed ^ 0xc0_0b7 ^ (round as u64).wrapping_mul(31));
    let mut idx: Vec<usize> = (0..k).collect();
    idx.shuffle(&mut rng);
    idx.truncate(take);
    idx.sort_unstable();
    idx
}

/// Convenience: the no-op hook for methods with a fixed mask.
pub fn no_hook() -> impl FnMut(&mut dyn Model, &mut Mask, usize, &mut CostLedger) -> f64 {
    |_: &mut dyn Model, _: &mut Mask, _: usize, _: &mut CostLedger| 0.0
}

/// Checks whether `cfg` rounds make the loop's `t = round · E` counter
/// consistent with a schedule horizon (diagnostic helper used by tests).
pub fn schedule_fits(cfg: &FlConfig, r_stop: usize) -> bool {
    cfg.rounds > 0 && r_stop > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelSpec;
    use ft_nn::{apply_mask, sparse_layout};

    #[test]
    fn dense_rounds_learn_something() {
        let env = ExperimentEnv::tiny_for_tests(0);
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let layout = sparse_layout(model.as_ref());
        let mut mask = Mask::ones(&layout);
        let mut ledger = CostLedger::new();
        let history = run_federated_rounds(
            model.as_mut(),
            &mut mask,
            &env,
            2,
            &mut ledger,
            &mut no_hook(),
        );
        assert!(!history.is_empty());
        assert_eq!(ledger.rounds(), env.cfg.rounds);
        assert!(ledger.max_round_flops() > 0.0);
        assert!(ledger.total_comm_bytes() > 0.0);
    }

    #[test]
    fn hook_runs_every_round_and_adds_flops() {
        let env = ExperimentEnv::tiny_for_tests(1);
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let layout = sparse_layout(model.as_ref());
        let mut mask = Mask::ones(&layout);
        let mut ledger = CostLedger::new();
        let mut calls = 0usize;
        {
            let mut hook = |_m: &mut dyn Model, _k: &mut Mask, _r: usize, _l: &mut CostLedger| {
                calls += 1;
                1e6
            };
            let _ =
                run_federated_rounds(model.as_mut(), &mut mask, &env, 0, &mut ledger, &mut hook);
        }
        assert_eq!(calls, env.cfg.rounds);
        // Every round got the extra 1e6.
        assert!(ledger.max_round_flops() > 1e6);
    }

    #[test]
    fn partial_participation_samples_subsets() {
        let mut env = ExperimentEnv::tiny_for_tests(3);
        env.cfg.participation = 0.34; // ceil(3 * 0.34) = 2 of 3 devices
        let c0 = sample_cohort(&env, 0);
        let c1 = sample_cohort(&env, 1);
        assert_eq!(c0.len(), 2);
        assert_eq!(c1.len(), 2);
        // Cohorts rotate across rounds (seeded, so deterministic).
        let differs = (0..10).any(|r| sample_cohort(&env, r) != c0);
        assert!(differs, "cohort never changed across rounds");
        // Full participation returns every device.
        env.cfg.participation = 1.0;
        assert_eq!(sample_cohort(&env, 0), vec![0, 1, 2]);
    }

    #[test]
    fn partial_participation_run_completes() {
        let mut env = ExperimentEnv::tiny_for_tests(4);
        env.cfg.participation = 0.5;
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let layout = sparse_layout(model.as_ref());
        let mut mask = Mask::ones(&layout);
        let mut ledger = CostLedger::new();
        let history = run_federated_rounds(
            model.as_mut(),
            &mut mask,
            &env,
            0,
            &mut ledger,
            &mut no_hook(),
        );
        assert!(!history.is_empty());
        assert!((0.0..=1.0).contains(history.last().expect("nonempty")));
    }

    /// Σ|decoded delta| of device 0's update — the payload-native drift
    /// measure (the payload *is* `θ − θ_global` for the round).
    fn device0_drift(env: &ExperimentEnv, model: &dyn Model, round: usize) -> f32 {
        use ft_nn::wire_ctx;
        let layout = sparse_layout(model);
        let mask = Mask::ones(&layout);
        let ctx = wire_ctx(model, &mask, 0);
        let wire = crate::train::WireSpec {
            codec: ft_sparse::Codec::Dense,
            ctx: &ctx,
            peer_epoch: 0,
        };
        let mut residuals = vec![Vec::new(); env.parts.len()];
        let u = crate::train::train_devices_parallel(
            model,
            &env.parts,
            None,
            &env.cfg,
            round,
            &wire,
            &mut residuals,
            &ft_runtime::Runtime::sequential(),
        );
        u[0].payload.decode(&ctx).iter().map(|d| d.abs()).sum()
    }

    #[test]
    fn fedprox_pulls_updates_toward_global() {
        // With a strong (but stable: lr·µ < 1) proximal coefficient local
        // updates stay closer to the global parameters. The proximal term is
        // zero on the first step from the anchor, so force several local
        // steps per device (small batches, two epochs) — otherwise a device
        // whose partition fits in one batch trains identically under both
        // configs.
        let mut env_free = ExperimentEnv::tiny_for_tests(5);
        env_free.cfg.batch_size = 4;
        env_free.cfg.local_epochs = 2;
        let mut env_prox = ExperimentEnv::tiny_for_tests(5);
        env_prox.cfg.batch_size = 4;
        env_prox.cfg.local_epochs = 2;
        env_prox.cfg.prox_mu = 5.0;
        let model = env_free.build_model(&ModelSpec::small_cnn_test());
        let free = device0_drift(&env_free, model.as_ref(), 0);
        let proxed = device0_drift(&env_prox, model.as_ref(), 0);
        assert!(
            proxed < free,
            "prox drift {proxed} should be below free drift {free}"
        );
    }

    #[test]
    fn lr_decay_shrinks_late_round_updates() {
        let mut env = ExperimentEnv::tiny_for_tests(6);
        env.cfg.lr_decay = 0.5;
        let model = env.build_model(&ModelSpec::small_cnn_test());
        // Same data/model, round index only affects the decayed lr and the
        // batch order; with decay 0.5^10 the late round must move far less.
        assert!(
            device0_drift(&env, model.as_ref(), 10) < device0_drift(&env, model.as_ref(), 0) * 0.5
        );
    }

    #[test]
    fn hook_can_mutate_mask() {
        let env = ExperimentEnv::tiny_for_tests(2);
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let layout = sparse_layout(model.as_ref());
        let mut mask = Mask::ones(&layout);
        let mut ledger = CostLedger::new();
        {
            let mut hook = |m: &mut dyn Model, k: &mut Mask, r: usize, _l: &mut CostLedger| {
                if r == 0 {
                    for i in 0..k.layer(0).len() / 2 {
                        k.set(0, i, false);
                    }
                    apply_mask(m, k);
                }
                0.0
            };
            let _ =
                run_federated_rounds(model.as_mut(), &mut mask, &env, 0, &mut ledger, &mut hook);
        }
        assert!(mask.density() < 1.0);
        // Pruned weights are zero in the final model.
        let p = model
            .params()
            .into_iter()
            .find(|p| p.prunable)
            .expect("prunable");
        assert_eq!(p.data.data()[0], 0.0);
    }
}
