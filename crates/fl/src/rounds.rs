//! The generic federated round loop shared by every pruning method.

use crate::aggregate::{aggregate_bn_stats, fedavg};
use crate::config::FlConfig;
use crate::env::ExperimentEnv;
use crate::ledger::CostLedger;
use crate::train::{evaluate, train_devices_parallel};
use ft_metrics::{densities_from_mask, sparse_model_bytes, training_flops};
use ft_nn::{apply_mask, set_flat_params, Model};
use ft_sparse::Mask;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Per-round method-specific logic, invoked *after* aggregation each round.
///
/// The hook may mutate the model and the mask (grow/prune adjustments,
/// rewinding, …) and must return the extra per-device FLOPs its work cost in
/// that round; communication should be added to the ledger directly.
pub type RoundHook<'a> = dyn FnMut(&mut dyn Model, &mut Mask, usize, &mut CostLedger) -> f64 + 'a;

/// Runs `env.cfg.rounds` rounds of (masked) FedAvg:
///
/// 1. every device trains `E` local epochs from the global model with
///    gradients masked by `mask` (Eq. 5);
/// 2. the server averages parameters and BN statistics weighted by `|D_k|`
///    and re-applies the mask;
/// 3. `hook` runs (mask adjustments, schedule events, …);
/// 4. the global model is evaluated every `eval_every` rounds and at the
///    end.
///
/// Per-round training FLOPs (at the round's density) and model-transfer
/// bytes are recorded in `ledger`. Returns the accuracy history (always
/// nonempty).
pub fn run_federated_rounds(
    global: &mut dyn Model,
    mask: &mut Mask,
    env: &ExperimentEnv,
    eval_every: usize,
    ledger: &mut CostLedger,
    hook: &mut RoundHook<'_>,
) -> Vec<f32> {
    let arch = global.arch();
    let max_samples = env.parts.iter().map(|p| p.len()).max().unwrap_or(0) as f64;
    let mut history = Vec::new();

    for round in 0..env.cfg.rounds {
        // Partial participation: sample the round's cohort (all devices at
        // participation = 1.0, the paper's setting).
        let cohort = sample_cohort(env, round);
        let parts: Vec<ft_data::Dataset> = cohort.iter().map(|&k| env.parts[k].clone()).collect();
        let weights: Vec<f64> = cohort.iter().map(|&k| env.parts[k].len() as f64).collect();
        let updates = train_devices_parallel(global, &parts, Some(mask), &env.cfg, round);
        let param_updates: Vec<(Vec<f32>, f64)> = updates
            .iter()
            .zip(weights.iter())
            .map(|(u, &w)| (u.params.clone(), w))
            .collect();
        set_flat_params(global, &fedavg(&param_updates));
        let bn_updates: Vec<_> = updates
            .iter()
            .zip(weights.iter())
            .map(|(u, &w)| (u.bn.clone(), w))
            .collect();
        let new_bn = aggregate_bn_stats(&bn_updates);
        for (dst, src) in global.bn_stats_mut().into_iter().zip(new_bn.iter()) {
            *dst = src.clone();
        }
        apply_mask(global, mask);

        let densities = densities_from_mask(mask);
        let mut round_flops =
            training_flops(&arch, &densities) * max_samples * env.cfg.local_epochs as f64;
        ledger.add_comm(2.0 * sparse_model_bytes(&arch, &densities));

        // Realized execution cost next to the analytic count: the heaviest
        // device's executed MAC FLOPs, and the round's training wall-clock
        // (the slowest device when devices run in parallel, the sum when
        // they run sequentially).
        let max_realized = updates
            .iter()
            .map(|u| u.realized_flops)
            .fold(0.0, f64::max);
        let round_wall = if env.cfg.parallel {
            updates.iter().map(|u| u.wall_secs).fold(0.0, f64::max)
        } else {
            updates.iter().map(|u| u.wall_secs).sum()
        };
        ledger.record_realized_round(max_realized, round_wall);

        round_flops += hook(global, mask, round, ledger);
        ledger.record_round_flops(round_flops);

        if (eval_every > 0 && round % eval_every == eval_every - 1) || round + 1 == env.cfg.rounds {
            history.push(evaluate(global, &env.test));
        }
    }
    if history.is_empty() {
        history.push(evaluate(global, &env.test));
    }
    history
}

/// Samples the participating device indices for one round: all devices at
/// `participation = 1.0`, otherwise a seeded sample of
/// `ceil(K · participation)` devices (at least one).
fn sample_cohort(env: &ExperimentEnv, round: usize) -> Vec<usize> {
    let k = env.num_devices();
    let frac = env.cfg.participation.clamp(0.0, 1.0);
    if frac >= 1.0 {
        return (0..k).collect();
    }
    let take = ((k as f32 * frac).ceil() as usize).clamp(1, k);
    let mut rng =
        ChaCha8Rng::seed_from_u64(env.cfg.seed ^ 0xc0_0b7 ^ (round as u64).wrapping_mul(31));
    let mut idx: Vec<usize> = (0..k).collect();
    idx.shuffle(&mut rng);
    idx.truncate(take);
    idx.sort_unstable();
    idx
}

/// Convenience: the no-op hook for methods with a fixed mask.
pub fn no_hook() -> impl FnMut(&mut dyn Model, &mut Mask, usize, &mut CostLedger) -> f64 {
    |_: &mut dyn Model, _: &mut Mask, _: usize, _: &mut CostLedger| 0.0
}

/// Checks whether `cfg` rounds make the loop's `t = round · E` counter
/// consistent with a schedule horizon (diagnostic helper used by tests).
pub fn schedule_fits(cfg: &FlConfig, r_stop: usize) -> bool {
    cfg.rounds > 0 && r_stop > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelSpec;
    use ft_nn::sparse_layout;

    #[test]
    fn dense_rounds_learn_something() {
        let env = ExperimentEnv::tiny_for_tests(0);
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let layout = sparse_layout(model.as_ref());
        let mut mask = Mask::ones(&layout);
        let mut ledger = CostLedger::new();
        let history = run_federated_rounds(
            model.as_mut(),
            &mut mask,
            &env,
            2,
            &mut ledger,
            &mut no_hook(),
        );
        assert!(!history.is_empty());
        assert_eq!(ledger.rounds(), env.cfg.rounds);
        assert!(ledger.max_round_flops() > 0.0);
        assert!(ledger.total_comm_bytes() > 0.0);
    }

    #[test]
    fn hook_runs_every_round_and_adds_flops() {
        let env = ExperimentEnv::tiny_for_tests(1);
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let layout = sparse_layout(model.as_ref());
        let mut mask = Mask::ones(&layout);
        let mut ledger = CostLedger::new();
        let mut calls = 0usize;
        {
            let mut hook = |_m: &mut dyn Model, _k: &mut Mask, _r: usize, _l: &mut CostLedger| {
                calls += 1;
                1e6
            };
            let _ =
                run_federated_rounds(model.as_mut(), &mut mask, &env, 0, &mut ledger, &mut hook);
        }
        assert_eq!(calls, env.cfg.rounds);
        // Every round got the extra 1e6.
        assert!(ledger.max_round_flops() > 1e6);
    }

    #[test]
    fn partial_participation_samples_subsets() {
        let mut env = ExperimentEnv::tiny_for_tests(3);
        env.cfg.participation = 0.34; // ceil(3 * 0.34) = 2 of 3 devices
        let c0 = sample_cohort(&env, 0);
        let c1 = sample_cohort(&env, 1);
        assert_eq!(c0.len(), 2);
        assert_eq!(c1.len(), 2);
        // Cohorts rotate across rounds (seeded, so deterministic).
        let differs = (0..10).any(|r| sample_cohort(&env, r) != c0);
        assert!(differs, "cohort never changed across rounds");
        // Full participation returns every device.
        env.cfg.participation = 1.0;
        assert_eq!(sample_cohort(&env, 0), vec![0, 1, 2]);
    }

    #[test]
    fn partial_participation_run_completes() {
        let mut env = ExperimentEnv::tiny_for_tests(4);
        env.cfg.participation = 0.5;
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let layout = sparse_layout(model.as_ref());
        let mut mask = Mask::ones(&layout);
        let mut ledger = CostLedger::new();
        let history = run_federated_rounds(
            model.as_mut(),
            &mut mask,
            &env,
            0,
            &mut ledger,
            &mut no_hook(),
        );
        assert!(!history.is_empty());
        assert!((0.0..=1.0).contains(history.last().expect("nonempty")));
    }

    #[test]
    fn fedprox_pulls_updates_toward_global() {
        use ft_nn::flat_params;
        // With a strong (but stable: lr·µ < 1) proximal coefficient local
        // updates stay closer to the global parameters. The proximal term is
        // zero on the first step from the anchor, so force several local
        // steps per device (small batches, two epochs) — otherwise a device
        // whose partition fits in one batch trains identically under both
        // configs.
        let mut env_free = ExperimentEnv::tiny_for_tests(5);
        env_free.cfg.batch_size = 4;
        env_free.cfg.local_epochs = 2;
        let mut env_prox = ExperimentEnv::tiny_for_tests(5);
        env_prox.cfg.batch_size = 4;
        env_prox.cfg.local_epochs = 2;
        env_prox.cfg.prox_mu = 5.0;
        let model = env_free.build_model(&ModelSpec::small_cnn_test());
        let w0 = flat_params(model.as_ref());
        let drift = |env: &ExperimentEnv| -> f32 {
            let u =
                crate::train::train_devices_parallel(model.as_ref(), &env.parts, None, &env.cfg, 0);
            u[0].params
                .iter()
                .zip(w0.iter())
                .map(|(a, b)| (a - b).abs())
                .sum()
        };
        let free = drift(&env_free);
        let proxed = drift(&env_prox);
        assert!(
            proxed < free,
            "prox drift {proxed} should be below free drift {free}"
        );
    }

    #[test]
    fn lr_decay_shrinks_late_round_updates() {
        use ft_nn::flat_params;
        let mut env = ExperimentEnv::tiny_for_tests(6);
        env.cfg.lr_decay = 0.5;
        let model = env.build_model(&ModelSpec::small_cnn_test());
        let w0 = flat_params(model.as_ref());
        let drift_at = |round: usize| -> f32 {
            let u = crate::train::train_devices_parallel(
                model.as_ref(),
                &env.parts,
                None,
                &env.cfg,
                round,
            );
            u[0].params
                .iter()
                .zip(w0.iter())
                .map(|(a, b)| (a - b).abs())
                .sum()
        };
        // Same data/model, round index only affects the decayed lr and the
        // batch order; with decay 0.5^10 the late round must move far less.
        assert!(drift_at(10) < drift_at(0) * 0.5);
    }

    #[test]
    fn hook_can_mutate_mask() {
        let env = ExperimentEnv::tiny_for_tests(2);
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let layout = sparse_layout(model.as_ref());
        let mut mask = Mask::ones(&layout);
        let mut ledger = CostLedger::new();
        {
            let mut hook = |m: &mut dyn Model, k: &mut Mask, r: usize, _l: &mut CostLedger| {
                if r == 0 {
                    for i in 0..k.layer(0).len() / 2 {
                        k.set(0, i, false);
                    }
                    apply_mask(m, k);
                }
                0.0
            };
            let _ =
                run_federated_rounds(model.as_mut(), &mut mask, &env, 0, &mut ledger, &mut hook);
        }
        assert!(mask.density() < 1.0);
        // Pruned weights are zero in the final model.
        let p = model
            .params()
            .into_iter()
            .find(|p| p.prunable)
            .expect("prunable");
        assert_eq!(p.data.data()[0], 0.0);
    }
}
