//! Virtual-time fleet scheduling: how the server closes rounds over a
//! heterogeneous device fleet.
//!
//! The classic loop assumes identical devices that all finish together. The
//! [`Scheduler`] policies relax that over the environment's
//! [`DeviceProfile`](ft_metrics::DeviceProfile) fleet, with every device's
//! analytic FLOPs + transfer bytes converted to *simulated seconds* by a
//! [`SimClock`](ft_metrics::SimClock):
//!
//! - [`Scheduler::Synchronous`] — the barrier: the server waits for every
//!   cohort member; the round's simulated span is the slowest device.
//! - [`Scheduler::Deadline`] — the server cuts the round at a deadline;
//!   late (and dropped) devices are excluded from the aggregate. An empty
//!   surviving cohort leaves the global unchanged and is recorded as a
//!   zero-progress round.
//! - [`Scheduler::Buffered`] — FedBuff-style asynchrony: devices train
//!   continuously against whatever global they last downloaded; the server
//!   applies a staleness-weighted aggregate as soon as `buffer_k` updates
//!   arrive. One aggregation = one "round".
//!
//! All policies keep the workspace's determinism contract: every stochastic
//! choice (batch order, jitter, dropout) is a pure function of
//! `(seed, round/task, device)`, so parallel and sequential host execution
//! produce bit-identical results.
//!
//! ## Wire billing
//!
//! Every transfer is billed to the [`SimClock`](ft_metrics::SimClock) and
//! the [`CostLedger`] at its **measured** size: the `encoded_len()` of the
//! actually-encoded [`Payload`](ft_sparse::Payload) upload plus the server
//! broadcast size, next to the classic analytic
//! [`sparse_model_bytes`] axis (the same measured-vs-analytic split the
//! FLOPs accounting uses). One caveat under buffered aggregation: a task's
//! finish time is fixed when its transfer is *scheduled*, so a stale
//! upload's extra index bytes (mask epoch drifted mid-flight) appear in the
//! ledger but not in its link time.

use crate::aggregate::{
    staleness_fedavg_payloads, staleness_weight, try_aggregate_bn_stats, try_fedavg_payloads,
};
use crate::env::ExperimentEnv;
use crate::ledger::{CostLedger, TimelineEvent};
use crate::rounds::{sample_cohort, RoundHook};
use crate::train::{
    evaluate, train_devices_parallel, train_devices_raw_parallel, train_one_device_raw,
    DeviceUpdate, LocalOutcome, WireSpec,
};
use ft_metrics::{
    densities_from_mask, sparse_model_bytes, training_flops, DeviceProfile, SimClock,
};
use ft_nn::{apply_mask, flat_params, set_flat_params, wire_ctx, ArchInfo, Model};
use ft_sparse::{Codec, Mask, Payload, WireCtx};
use serde::{Deserialize, Serialize};

/// Round-closing policy over the simulated fleet.
///
/// # Examples
///
/// ```
/// use ft_fl::Scheduler;
///
/// let mut env = ft_fl::ExperimentEnv::tiny_for_tests(0);
/// // Cut every round after 30 simulated seconds; stragglers are dropped.
/// env.scheduler = Scheduler::Deadline { deadline_secs: 30.0 };
/// assert_eq!(env.scheduler.name(), "deadline");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum Scheduler {
    /// Barrier aggregation: wait for the whole cohort (the paper's
    /// setting). Round span = slowest cohort member.
    #[default]
    Synchronous,
    /// Barrier with a cutoff: updates arriving after `deadline_secs`
    /// simulated seconds are discarded. Round span = `min(slowest,
    /// deadline)`.
    Deadline {
        /// Simulated seconds after which the server closes the round.
        deadline_secs: f64,
    },
    /// FedBuff-style buffered asynchrony: the server aggregates
    /// staleness-weighted updates as soon as `buffer_k` arrive; devices
    /// immediately restart from the newest global. Partial participation is
    /// ignored — every device streams continuously.
    Buffered {
        /// Updates buffered before the server aggregates (clamped to
        /// `[1, devices]`).
        buffer_k: usize,
    },
}

impl Scheduler {
    /// Stable lowercase name for reports and tables.
    pub fn name(&self) -> &'static str {
        match self {
            Scheduler::Synchronous => "synchronous",
            Scheduler::Deadline { .. } => "deadline",
            Scheduler::Buffered { .. } => "buffered",
        }
    }
}

/// Analytic cost of one local-training task at the given mask densities:
/// `(training FLOPs, transfer bytes)` for a device holding `samples`
/// samples. Bytes cover one download + one upload of the sparse model.
pub fn device_round_cost(
    arch: &ArchInfo,
    densities: &[f32],
    samples: usize,
    local_epochs: usize,
) -> (f64, f64) {
    let flops = training_flops(arch, densities) * samples as f64 * local_epochs as f64;
    let bytes = 2.0 * sparse_model_bytes(arch, densities);
    (flops, bytes)
}

/// Jitter-free simulated seconds one round takes on `profile` under the
/// *analytic* byte model — a deadline-picking heuristic. The round loops
/// bill the clock with measured payload bytes, which sit close to (and for
/// shared-epoch sparse transfers slightly below) this estimate.
pub fn device_sim_secs(
    profile: &DeviceProfile,
    arch: &ArchInfo,
    densities: &[f32],
    samples: usize,
    local_epochs: usize,
) -> f64 {
    let (flops, bytes) = device_round_cost(arch, densities, samples, local_epochs);
    profile.base_round_secs(flops, bytes)
}

/// A deadline strictly inside a fleet's spread: the geometric mean of the
/// fastest and the slowest device's jitter-free simulated round time at
/// `densities` — fast tiers land comfortably, the slowest tier is cut.
/// The shared heuristic behind the deadline benches, examples, and tests.
pub fn fleet_spread_deadline(env: &ExperimentEnv, arch: &ArchInfo, densities: &[f32]) -> f64 {
    let secs: Vec<f64> = (0..env.num_devices())
        .map(|k| {
            device_sim_secs(
                &env.device_profile(k),
                arch,
                densities,
                env.parts[k].len(),
                env.cfg.local_epochs,
            )
        })
        .collect();
    let fastest = secs.iter().cloned().fold(f64::INFINITY, f64::min);
    let slowest = secs.iter().cloned().fold(0.0f64, f64::max);
    (fastest * slowest).sqrt()
}

/// Whether the round loop evaluates after round `round` of `rounds`.
pub(crate) fn should_eval(eval_every: usize, round: usize, rounds: usize) -> bool {
    (eval_every > 0 && round % eval_every == eval_every - 1) || round + 1 == rounds
}

/// Measured wire size of one server → device model broadcast under `codec`:
/// the full dense vector for `Codec::Dense`, otherwise the mask-structured
/// values-only form (both ends share the mask epoch by construction — the
/// server just told the device which mask to train under).
pub fn broadcast_payload_len(codec: Codec, ctx: &WireCtx) -> usize {
    match codec {
        Codec::Dense => Codec::Dense.encoded_len_for(ctx, true),
        _ => Codec::MaskCsr.encoded_len_for(ctx, true),
    }
}

/// Weighted encoded updates of the surviving cohort members: `(payload,
/// |D_k|)` pairs. The weights always sum to the participating sample count
/// (the invariant every aggregation in the paper relies on).
pub(crate) fn survivor_payload_updates<'a>(
    updates: &'a [DeviceUpdate],
    alive: &[bool],
) -> Vec<(&'a Payload, f64)> {
    updates
        .iter()
        .zip(alive.iter())
        .filter(|(_, &a)| a)
        .map(|(u, _)| (&u.payload, u.samples as f64))
        .collect()
}

/// Barrier-style rounds (Synchronous, and Deadline when `deadline` is
/// `Some`): the whole cohort trains from the same global, then the server
/// aggregates whichever updates survived the fleet (dropout, deadline).
pub(crate) fn run_barrier_rounds(
    global: &mut dyn Model,
    mask: &mut Mask,
    env: &ExperimentEnv,
    eval_every: usize,
    ledger: &mut CostLedger,
    hook: &mut RoundHook<'_>,
    deadline: Option<f64>,
) -> Vec<f32> {
    let arch = global.arch();
    let max_samples = env.parts.iter().map(|p| p.len()).max().unwrap_or(0) as f64;
    let codec = env.cfg.codec;
    // One worker pool for the whole run: device fan-out and (server-side)
    // kernel parallelism share its thread budget. Bit-identical to the
    // sequential path by the runtime's determinism contract.
    let rt = env.cfg.runtime();
    global.set_runtime(rt);
    let mut clock = SimClock::new(env.cfg.seed);
    let mut history = Vec::new();
    // Wire epoch of the current mask: bumped whenever the hook changes the
    // mask, so `MaskCsr` payloads know when indices must travel.
    let mut epoch: u64 = 0;
    // Per-device error-feedback accumulators (TopK); empty until first use.
    let mut residuals: Vec<Vec<f32>> = vec![Vec::new(); env.num_devices()];

    for round in 0..env.cfg.rounds {
        // Partial participation: sample the round's cohort (all devices at
        // participation = 1.0, the paper's setting).
        let cohort = sample_cohort(env, round);
        let parts: Vec<ft_data::Dataset> = cohort.iter().map(|&k| env.parts[k].clone()).collect();

        // The round's anchor and wire context. Within a barrier round the
        // server and every device share the mask epoch (the mask only moves
        // in the post-aggregation hook), so uploads are values-only.
        let ctx = wire_ctx(global, mask, epoch);
        let anchor = flat_params(global);
        let broadcast_len = broadcast_payload_len(codec, &ctx) as f64;
        let wire = WireSpec {
            codec,
            ctx: &ctx,
            peer_epoch: epoch,
        };
        let mut cohort_residuals: Vec<Vec<f32>> = cohort
            .iter()
            .map(|&k| std::mem::take(&mut residuals[k]))
            .collect();
        // Encoding consumes transmitted mass from the error-feedback
        // residuals; keep the pre-round state so a device whose upload is
        // then dropped or cut at the deadline can roll back (a lost upload
        // must leave the residual untouched, matching the buffered loop).
        let residuals_before: Vec<Vec<f32>> = if codec.uses_error_feedback() {
            cohort_residuals.clone()
        } else {
            Vec::new()
        };
        let updates = train_devices_parallel(
            global,
            &parts,
            Some(mask),
            &env.cfg,
            round,
            &wire,
            &mut cohort_residuals,
            &rt,
        );
        for (taken, &k) in cohort_residuals.iter_mut().zip(cohort.iter()) {
            residuals[k] = std::mem::take(taken);
        }

        // Simulated fleet: finish time and survival of every cohort
        // member, with link time billed at the *measured* wire bytes
        // (broadcast down + encoded upload back).
        let densities = densities_from_mask(mask);
        let per_sample_flops = training_flops(&arch, &densities);
        let analytic_bytes = 2.0 * sparse_model_bytes(&arch, &densities);
        let round_start = clock.now();
        let mut finish = Vec::with_capacity(cohort.len());
        let mut alive = Vec::with_capacity(cohort.len());
        let mut max_upload = 0.0f64;
        for (u, &k) in updates.iter().zip(cohort.iter()) {
            let profile = env.device_profile(k);
            let flops = per_sample_flops * u.samples as f64 * env.cfg.local_epochs as f64;
            let upload = u.payload.encoded_len(&ctx) as f64;
            max_upload = max_upload.max(upload);
            let secs = clock.device_secs(&profile, flops, broadcast_len + upload, round, k);
            let timely = deadline.is_none_or(|d| secs <= d);
            let dropped = clock.dropout_hits(&profile, round, k);
            finish.push(secs);
            alive.push(timely && !dropped);
        }
        // Lost uploads keep their pre-round error-feedback residual: the
        // mass the encode step drained never reached the server.
        if codec.uses_error_feedback() {
            for ((&k, &a), before) in cohort.iter().zip(alive.iter()).zip(residuals_before) {
                if !a {
                    residuals[k] = before;
                }
            }
        }

        // Aggregate the survivors straight from their payloads; an empty
        // (or zero-weight) cohort leaves the global untouched and records
        // a zero-progress round.
        let surviving = survivor_payload_updates(&updates, &alive);
        let progressed = match try_fedavg_payloads(&surviving, &anchor, &ctx) {
            Some(new_params) => {
                set_flat_params(global, &new_params);
                let bn_updates: Vec<_> = updates
                    .iter()
                    .zip(alive.iter())
                    .filter(|(_, &a)| a)
                    .map(|(u, _)| (u.bn.clone(), u.samples as f64))
                    .collect();
                if let Some(new_bn) = try_aggregate_bn_stats(&bn_updates) {
                    for (dst, src) in global.bn_stats_mut().into_iter().zip(new_bn.iter()) {
                        *dst = src.clone();
                    }
                }
                true
            }
            None => {
                ledger.record_zero_progress();
                false
            }
        };
        apply_mask(global, mask);

        for ((&k, &secs), &a) in cohort.iter().zip(finish.iter()).zip(alive.iter()) {
            ledger.record_timeline(TimelineEvent {
                device: k,
                round,
                start_secs: round_start,
                finish_secs: round_start + secs,
                applied: progressed && a,
                staleness: 0,
            });
        }

        // The round's simulated span: slowest cohort member, cut at the
        // deadline when one is set.
        let slowest = finish.iter().cloned().fold(0.0, f64::max);
        let span = match deadline {
            Some(d) => slowest.min(d),
            None => slowest,
        };
        clock.advance_by(span);
        ledger.record_sim_round(span);

        // Cost accounting: analytic (paper-style, the heaviest device at
        // the round's densities — paid even by devices that were dropped)
        // next to the measured payload bytes and the realized execution
        // costs the devices reported.
        let mut round_flops = per_sample_flops * max_samples * env.cfg.local_epochs as f64;
        ledger.add_comm(analytic_bytes);
        ledger.record_payload_round(broadcast_len, max_upload);
        let max_realized = updates.iter().map(|u| u.realized_flops).fold(0.0, f64::max);
        let round_wall = if env.cfg.parallel {
            updates.iter().map(|u| u.wall_secs).fold(0.0, f64::max)
        } else {
            updates.iter().map(|u| u.wall_secs).sum()
        };
        ledger.record_realized_round(max_realized, round_wall);

        let mask_before_hook = mask.clone();
        round_flops += hook(global, mask, round, ledger);
        if *mask != mask_before_hook {
            epoch += 1;
        }
        ledger.record_round_flops(round_flops);

        if should_eval(eval_every, round, env.cfg.rounds) {
            history.push(evaluate(global, &env.test));
        }
    }
    if history.is_empty() {
        history.push(evaluate(global, &env.test));
    }
    history
}

/// One in-flight device task in the buffered event loop. The trained delta
/// stays *device-local* (a [`LocalOutcome`], not yet encoded): the wire
/// encoding happens at arrival time, when the server's current mask epoch
/// decides whether a `MaskCsr` upload can drop its indices.
struct InFlight {
    device: usize,
    start_secs: f64,
    finish_secs: f64,
    start_version: usize,
    dropped: bool,
    analytic_flops: f64,
    analytic_bytes: f64,
    /// Measured broadcast bytes the device downloaded at task start.
    download_bytes: f64,
    /// Wire context (mask + epoch) the device trained under — shared with
    /// every other task launched under the same mask.
    ctx: std::sync::Arc<WireCtx>,
    outcome: LocalOutcome,
}

/// FedBuff-style buffered asynchronous rounds: an event loop over the
/// virtual clock. Every device trains continuously; the server aggregates
/// (staleness-weighted) once `buffer_k` updates arrive, which defines one
/// "round". Devices restart immediately from the newest global, so a slow
/// device's update can be several versions stale when it lands.
pub(crate) fn run_buffered_rounds(
    global: &mut dyn Model,
    mask: &mut Mask,
    env: &ExperimentEnv,
    eval_every: usize,
    ledger: &mut CostLedger,
    hook: &mut RoundHook<'_>,
    buffer_k: usize,
) -> Vec<f32> {
    let mut history = Vec::new();
    let n = env.num_devices();
    if env.cfg.rounds == 0 || n == 0 {
        history.push(evaluate(global, &env.test));
        return history;
    }
    let arch = global.arch();
    let codec = env.cfg.codec;
    // The run's shared worker pool (see the barrier loop).
    let rt = env.cfg.runtime();
    global.set_runtime(rt);
    let k_needed = buffer_k.clamp(1, n);
    let mut clock = SimClock::new(env.cfg.seed);
    let mut version = 0usize;
    let mut task_counter = vec![0usize; n];
    let mut last_agg_secs = 0.0f64;
    // Wire epoch of the server's current mask (bumped on hook changes) and
    // the per-device error-feedback accumulators.
    let mut epoch: u64 = 0;
    let mut residuals: Vec<Vec<f32>> = vec![Vec::new(); n];

    // Mask densities and wire context, refreshed only when the mask can
    // change (after an aggregation's hook) rather than on every event.
    let mut densities = densities_from_mask(mask);
    let mut ctx = std::sync::Arc::new(wire_ctx(global, mask, epoch));

    // Measured wire bytes of one task launched under `ctx`: broadcast down
    // plus the (shared-epoch) encoded upload back. The upload estimate is
    // exact unless the mask moves while the task is in flight.
    let task_bytes = |codec: Codec, ctx: &WireCtx| -> (f64, f64) {
        let down = broadcast_payload_len(codec, ctx) as f64;
        let up = codec.encoded_len_for(ctx, true) as f64;
        (down, up)
    };

    // Initial wave: every device starts at t = 0 from version 0 with the
    // same `(seed, 0, device)` RNG streams as a synchronous first round.
    let mut in_flight: Vec<InFlight> = {
        let outcomes = train_devices_raw_parallel(global, &env.parts, Some(mask), &env.cfg, 0, &rt);
        outcomes
            .into_iter()
            .enumerate()
            .map(|(k, outcome)| {
                let profile = env.device_profile(k);
                let (flops, analytic_bytes) =
                    device_round_cost(&arch, &densities, outcome.samples, env.cfg.local_epochs);
                let (down, up) = task_bytes(codec, &ctx);
                let secs = clock.device_secs(&profile, flops, down + up, task_counter[k], k);
                let dropped = clock.dropout_hits(&profile, task_counter[k], k);
                task_counter[k] += 1;
                InFlight {
                    device: k,
                    start_secs: 0.0,
                    finish_secs: secs,
                    start_version: 0,
                    dropped,
                    analytic_flops: flops,
                    analytic_bytes,
                    download_bytes: down,
                    ctx: ctx.clone(),
                    outcome,
                }
            })
            .collect()
    };

    // Safety valve: with pathological dropout (every update lost) the
    // buffer can never fill; cap the event count instead of spinning.
    let max_events = env.cfg.rounds.max(1) * n * 64;
    let mut events = 0usize;
    // Buffered arrivals awaiting aggregation: `event_idx` points at the
    // arrival's timeline entry, flipped to applied once it aggregates.
    struct Buffered {
        update: DeviceUpdate,
        staleness: usize,
        analytic_flops: f64,
        analytic_bytes: f64,
        download_bytes: f64,
        upload_bytes: f64,
        event_idx: usize,
    }
    let mut buffer: Vec<Buffered> = Vec::new();

    while version < env.cfg.rounds && events < max_events {
        events += 1;
        // Earliest finisher; ties break on the lower device index, so the
        // event order is a pure function of the simulated times.
        let next = in_flight
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.finish_secs
                    .total_cmp(&b.finish_secs)
                    .then(a.device.cmp(&b.device))
            })
            .map(|(i, _)| i)
            .expect("nonempty fleet");
        let task = in_flight.swap_remove(next);
        clock.advance_to(task.finish_secs);
        let staleness = version - task.start_version;

        // Recorded as not-applied until it actually reaches an aggregate;
        // a dropped (or forever-buffered) update keeps `applied: false`.
        let event_idx = ledger.record_timeline(TimelineEvent {
            device: task.device,
            round: version,
            start_secs: task.start_secs,
            finish_secs: task.finish_secs,
            applied: false,
            staleness,
        });
        if !task.dropped {
            // The actual transmission: encode the device-local delta now
            // that the server's current mask epoch is known. A stale mask
            // (epoch drifted mid-flight) forces explicit indices. Lost
            // updates are never encoded, so their error-feedback residual
            // is untouched.
            let k = task.device;
            let residual = codec.uses_error_feedback().then_some(&mut residuals[k]);
            let update = task.outcome.encode(codec, &task.ctx, epoch, residual);
            let upload_bytes = update.payload.encoded_len(&task.ctx) as f64;
            buffer.push(Buffered {
                update,
                staleness,
                analytic_flops: task.analytic_flops,
                analytic_bytes: task.analytic_bytes,
                download_bytes: task.download_bytes,
                upload_bytes,
                event_idx,
            });
        }

        if buffer.len() >= k_needed {
            // Staleness-weighted payload aggregation over the buffered
            // updates: deltas are applied to the *current* global, decoded
            // straight out of their wire form. Values-only payloads in the
            // buffer always match the current epoch (the mask only moves in
            // the hook below, after the buffer drains).
            let current = flat_params(global);
            let param_updates: Vec<(&Payload, f64, usize)> = buffer
                .iter()
                .map(|b| (&b.update.payload, b.update.samples as f64, b.staleness))
                .collect();
            set_flat_params(
                global,
                &staleness_fedavg_payloads(&param_updates, &current, &ctx),
            );
            let bn_updates: Vec<_> = buffer
                .iter()
                .map(|b| {
                    (
                        b.update.bn.clone(),
                        b.update.samples as f64 * staleness_weight(b.staleness),
                    )
                })
                .collect();
            if let Some(new_bn) = try_aggregate_bn_stats(&bn_updates) {
                for (dst, src) in global.bn_stats_mut().into_iter().zip(new_bn.iter()) {
                    *dst = src.clone();
                }
            }
            // Re-apply the mask: stale updates were trained under old
            // masks and must not resurrect pruned weights.
            apply_mask(global, mask);

            // Per-device accounting, matching the barrier loop's
            // convention: one round charges one model transfer (the
            // heaviest in the buffer), not the fleet-summed traffic —
            // analytic and measured side by side.
            ledger.add_comm(buffer.iter().map(|b| b.analytic_bytes).fold(0.0, f64::max));
            ledger.record_payload_round(
                buffer.iter().map(|b| b.download_bytes).fold(0.0, f64::max),
                buffer.iter().map(|b| b.upload_bytes).fold(0.0, f64::max),
            );
            for b in &buffer {
                ledger.set_timeline_applied(b.event_idx);
            }
            let analytic = buffer.iter().map(|b| b.analytic_flops).fold(0.0, f64::max);
            let realized = buffer
                .iter()
                .map(|b| b.update.realized_flops)
                .fold(0.0, f64::max);
            let wall = buffer
                .iter()
                .map(|b| b.update.wall_secs)
                .fold(0.0, f64::max);
            ledger.record_realized_round(realized, wall);
            ledger.record_sim_round(clock.now() - last_agg_secs);
            last_agg_secs = clock.now();
            buffer.clear();

            let mask_before_hook = mask.clone();
            let extra = hook(global, mask, version, ledger);
            // The hook may have adjusted the mask: refresh the cached
            // densities and wire context (with a bumped epoch) for the
            // tasks launched from here on.
            if *mask != mask_before_hook {
                epoch += 1;
                densities = densities_from_mask(mask);
                ctx = std::sync::Arc::new(wire_ctx(&*global, mask, epoch));
            }
            ledger.record_round_flops(analytic + extra);
            if should_eval(eval_every, version, env.cfg.rounds) {
                history.push(evaluate(global, &env.test));
            }
            version += 1;
        }

        // The finisher restarts immediately from the current global (and
        // the current mask/version — its next update is fresh by
        // construction). No restart once the final round has aggregated.
        if version >= env.cfg.rounds {
            break;
        }
        let k = task.device;
        let profile = env.device_profile(k);
        // Mid-flight restarts train one device at a time on the caller's
        // thread, so the device's kernels get the whole pool.
        let outcome = train_one_device_raw(
            &*global,
            &env.parts[k],
            Some(mask),
            &env.cfg,
            version,
            k,
            task_counter[k] as u64,
            &rt,
        );
        let (flops, analytic_bytes) =
            device_round_cost(&arch, &densities, outcome.samples, env.cfg.local_epochs);
        let (down, up) = task_bytes(codec, &ctx);
        let secs = clock.device_secs(&profile, flops, down + up, task_counter[k], k);
        let dropped = clock.dropout_hits(&profile, task_counter[k], k);
        task_counter[k] += 1;
        in_flight.push(InFlight {
            device: k,
            start_secs: clock.now(),
            finish_secs: clock.now() + secs,
            start_version: version,
            dropped,
            analytic_flops: flops,
            analytic_bytes,
            download_bytes: down,
            ctx: ctx.clone(),
            outcome,
        });
    }

    // Rounds the event cap starved (pathological all-dropout fleets):
    // recorded as zero-progress so the ledger still covers `cfg.rounds`.
    while version < env.cfg.rounds {
        ledger.record_round_flops(0.0);
        ledger.record_sim_round(0.0);
        ledger.record_zero_progress();
        version += 1;
    }
    if history.is_empty() {
        history.push(evaluate(global, &env.test));
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rounds::{no_hook, run_federated_rounds};
    use crate::spec::ModelSpec;
    use ft_nn::sparse_layout;
    use proptest::prelude::*;

    /// Runs one policy end-to-end on a mixed fleet and returns everything
    /// the determinism tests compare bit-for-bit.
    fn run_policy_with_codec(
        scheduler: Scheduler,
        parallel: bool,
        seed: u64,
        codec: Codec,
    ) -> (Vec<f32>, Vec<f32>, String) {
        let mut env = ExperimentEnv::tiny_for_tests(seed);
        env.cfg.parallel = parallel;
        env.cfg.codec = codec;
        env.fleet = DeviceProfile::fleet_mixed(env.num_devices());
        env.scheduler = scheduler;
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let layout = sparse_layout(model.as_ref());
        let mut mask = Mask::ones(&layout);
        let mut ledger = CostLedger::new();
        let history = run_federated_rounds(
            model.as_mut(),
            &mut mask,
            &env,
            1,
            &mut ledger,
            &mut no_hook(),
        );
        (
            history,
            flat_params(model.as_ref()),
            ledger_fingerprint(&ledger),
        )
    }

    fn run_policy(scheduler: Scheduler, parallel: bool, seed: u64) -> (Vec<f32>, Vec<f32>, String) {
        run_policy_with_codec(scheduler, parallel, seed, Codec::Dense)
    }

    /// The deterministic projection of a ledger: everything except host
    /// wall-clock, with floats rendered bit-exactly.
    fn ledger_fingerprint(ledger: &CostLedger) -> String {
        let bits = |v: &[f64]| -> Vec<String> {
            v.iter().map(|x| format!("{:016x}", x.to_bits())).collect()
        };
        format!(
            "flops={:?} realized={:?} sim={:?} comm={:016x} up={:?} down={:?} extra={:016x} zero={} timeline={}",
            bits(ledger.round_flops_history()),
            bits(ledger.realized_flops_history()),
            bits(ledger.sim_secs_history()),
            ledger.total_comm_bytes().to_bits(),
            bits(ledger.payload_up_history()),
            bits(ledger.payload_down_history()),
            ledger.extra_flops().to_bits(),
            ledger.zero_progress_rounds(),
            serde_json::to_string(&ledger.timeline().to_vec()).expect("timeline serializes"),
        )
    }

    /// A fleet with no timing noise where the last device is 100x slower
    /// than the rest — a clean straggler regardless of how the non-iid
    /// split distributed the samples.
    fn two_speed_fleet(n: usize) -> Vec<DeviceProfile> {
        let reference = DeviceProfile::uniform();
        let mut straggler = reference;
        straggler.flops_per_sec /= 100.0;
        straggler.bytes_per_sec /= 100.0;
        let mut fleet = vec![reference; n.saturating_sub(1)];
        fleet.push(straggler);
        fleet
    }

    /// [`fleet_spread_deadline`] at dense densities for the test model —
    /// with [`two_speed_fleet`] this lands strictly between the reference
    /// devices and the 100x straggler.
    fn two_speed_deadline(env: &ExperimentEnv) -> f64 {
        let model = env.build_model(&ModelSpec::small_cnn_test());
        let densities = vec![1.0f32; sparse_layout(model.as_ref()).num_layers()];
        fleet_spread_deadline(env, &model.arch(), &densities)
    }

    #[test]
    fn sim_synchronous_parallel_matches_sequential() {
        let a = run_policy(Scheduler::Synchronous, true, 9);
        let b = run_policy(Scheduler::Synchronous, false, 9);
        assert_eq!(a.0, b.0, "accuracy history diverged");
        assert_eq!(a.1, b.1, "final parameters diverged");
        assert_eq!(a.2, b.2, "ledger diverged");
    }

    #[test]
    fn sim_deadline_parallel_matches_sequential() {
        // 2 simulated seconds sits inside the mixed fleet's spread, so the
        // drop path is genuinely exercised on both sides of the comparison.
        let d = 2.0;
        let a = run_policy(Scheduler::Deadline { deadline_secs: d }, true, 9);
        let b = run_policy(Scheduler::Deadline { deadline_secs: d }, false, 9);
        assert_eq!(a.0, b.0, "accuracy history diverged");
        assert_eq!(a.1, b.1, "final parameters diverged");
        assert_eq!(a.2, b.2, "ledger diverged");
    }

    #[test]
    fn sim_buffered_parallel_matches_sequential() {
        let a = run_policy(Scheduler::Buffered { buffer_k: 2 }, true, 9);
        let b = run_policy(Scheduler::Buffered { buffer_k: 2 }, false, 9);
        assert_eq!(a.0, b.0, "accuracy history diverged");
        assert_eq!(a.1, b.1, "final parameters diverged");
        assert_eq!(a.2, b.2, "ledger diverged");
    }

    #[test]
    fn sim_every_codec_parallel_matches_sequential() {
        // The payload pipeline keeps the determinism contract for every
        // codec under every scheduler: encoding, error feedback, and
        // measured byte accounting are all pure functions of
        // (seed, round/task, device).
        for codec in [
            Codec::Dense,
            Codec::MaskCsr,
            Codec::QuantInt8,
            Codec::TopK {
                k_frac: 0.1,
                error_feedback: true,
            },
        ] {
            for sched in [
                Scheduler::Synchronous,
                Scheduler::Deadline { deadline_secs: 2.0 },
                Scheduler::Buffered { buffer_k: 2 },
            ] {
                let a = run_policy_with_codec(sched, true, 13, codec);
                let b = run_policy_with_codec(sched, false, 13, codec);
                assert_eq!(a.0, b.0, "{codec:?}/{sched:?}: history diverged");
                assert_eq!(a.1, b.1, "{codec:?}/{sched:?}: parameters diverged");
                assert_eq!(a.2, b.2, "{codec:?}/{sched:?}: ledger diverged");
            }
        }
    }

    #[test]
    fn sim_measured_bytes_ordered_by_codec() {
        // At full density: MaskCsr ≈ Dense, QuantInt8 strictly smaller
        // uploads, TopK smallest. The measured axis must reflect the wire
        // formats, not the analytic formula.
        let upload_total = |codec: Codec| -> f64 {
            let mut env = ExperimentEnv::tiny_for_tests(3);
            env.cfg.codec = codec;
            let mut model = env.build_model(&ModelSpec::small_cnn_test());
            let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
            let mut ledger = CostLedger::new();
            let _ = run_federated_rounds(
                model.as_mut(),
                &mut mask,
                &env,
                0,
                &mut ledger,
                &mut no_hook(),
            );
            ledger.total_payload_upload_bytes()
        };
        let dense = upload_total(Codec::Dense);
        let quant = upload_total(Codec::QuantInt8);
        let topk = upload_total(Codec::TopK {
            k_frac: 0.05,
            error_feedback: true,
        });
        assert!(dense > 0.0);
        assert!(
            quant < dense / 3.0,
            "quantized uploads {quant} not ≥3x below dense {dense}"
        );
        assert!(
            topk < dense / 3.0,
            "top-k uploads {topk} not ≥3x below dense {dense}"
        );
    }

    #[test]
    fn sim_repeat_runs_are_bit_identical() {
        for sched in [
            Scheduler::Synchronous,
            Scheduler::Deadline {
                deadline_secs: 50.0,
            },
            Scheduler::Buffered { buffer_k: 2 },
        ] {
            let a = run_policy(sched, true, 4);
            let b = run_policy(sched, true, 4);
            assert_eq!(a.0, b.0, "{sched:?}: history diverged across runs");
            assert_eq!(a.1, b.1, "{sched:?}: parameters diverged across runs");
            assert_eq!(a.2, b.2, "{sched:?}: ledger diverged across runs");
        }
    }

    #[test]
    fn sim_deadline_drops_stragglers_but_progresses() {
        let mut env = ExperimentEnv::tiny_for_tests(5);
        env.fleet = two_speed_fleet(env.num_devices());
        let d = two_speed_deadline(&env);
        env.scheduler = Scheduler::Deadline { deadline_secs: d };
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
        let mut ledger = CostLedger::new();
        let history = run_federated_rounds(
            model.as_mut(),
            &mut mask,
            &env,
            0,
            &mut ledger,
            &mut no_hook(),
        );
        assert!(!history.is_empty());
        assert!(ledger.dropped_updates() > 0, "no straggler was ever cut");
        assert_eq!(ledger.zero_progress_rounds(), 0, "fast tier should land");
        // The cut round can never span longer than the deadline.
        assert!(ledger.max_sim_round_secs() <= d + 1e-9);
    }

    #[test]
    fn sim_deadline_empty_cohort_keeps_global_unchanged() {
        let mut env = ExperimentEnv::tiny_for_tests(6);
        env.scheduler = Scheduler::Deadline { deadline_secs: 0.0 };
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let before = flat_params(model.as_ref());
        let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
        let mut ledger = CostLedger::new();
        let history = run_federated_rounds(
            model.as_mut(),
            &mut mask,
            &env,
            0,
            &mut ledger,
            &mut no_hook(),
        );
        assert_eq!(ledger.zero_progress_rounds(), env.cfg.rounds);
        assert_eq!(flat_params(model.as_ref()), before, "global must not move");
        assert!(history.iter().all(|a| a.is_finite()));
        assert!(before.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sim_buffered_completes_all_rounds_with_staleness() {
        let mut env = ExperimentEnv::tiny_for_tests(7);
        env.fleet = DeviceProfile::fleet_mixed(env.num_devices());
        env.scheduler = Scheduler::Buffered { buffer_k: 1 };
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
        let mut ledger = CostLedger::new();
        let history = run_federated_rounds(
            model.as_mut(),
            &mut mask,
            &env,
            1,
            &mut ledger,
            &mut no_hook(),
        );
        assert_eq!(ledger.rounds(), env.cfg.rounds);
        assert_eq!(history.len(), env.cfg.rounds);
        assert!(ledger.sim_makespan_secs() > 0.0);
        // With buffer_k = 1 on a mixed fleet the slow device's update must
        // land several versions stale.
        assert!(
            ledger.timeline().iter().any(|e| e.staleness > 0),
            "no stale update ever recorded"
        );
    }

    #[test]
    fn sim_buffered_never_resurrects_pruned_weights() {
        let mut env = ExperimentEnv::tiny_for_tests(8);
        env.fleet = DeviceProfile::fleet_mixed(env.num_devices());
        env.scheduler = Scheduler::Buffered { buffer_k: 2 };
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let layout = sparse_layout(model.as_ref());
        let mut mask = Mask::ones(&layout);
        for i in 0..layout.layer(0).len {
            if i % 2 == 0 {
                mask.set(0, i, false);
            }
        }
        apply_mask(model.as_mut(), &mask);
        let mut ledger = CostLedger::new();
        let _ = run_federated_rounds(
            model.as_mut(),
            &mut mask,
            &env,
            0,
            &mut ledger,
            &mut no_hook(),
        );
        // Pruned coordinates stay zero in the final global.
        let mut offset = 0;
        for p in model.params() {
            if p.prunable {
                break;
            }
            offset += p.len();
        }
        let flat = flat_params(model.as_ref());
        for i in 0..layout.layer(0).len {
            if i % 2 == 0 {
                assert_eq!(flat[offset + i], 0.0, "pruned weight {i} resurrected");
            }
        }
    }

    #[test]
    fn sim_synchronous_span_is_slowest_cohort_member() {
        let mut env = ExperimentEnv::tiny_for_tests(10);
        env.fleet = DeviceProfile::fleet_mixed(env.num_devices());
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
        let mut ledger = CostLedger::new();
        let _ = run_federated_rounds(
            model.as_mut(),
            &mut mask,
            &env,
            0,
            &mut ledger,
            &mut no_hook(),
        );
        // Every round's span is at least the slow tier's jitter-free time
        // under the *measured* byte model the clock is billed with.
        let arch = model.arch();
        let densities = vec![1.0f32; mask.num_layers()];
        let ctx = ft_nn::wire_ctx(model.as_ref(), &mask, 0);
        let bytes = broadcast_payload_len(env.cfg.codec, &ctx) as f64
            + env.cfg.codec.encoded_len_for(&ctx, true) as f64;
        let flops = training_flops(&arch, &densities)
            * env.parts[2].len() as f64
            * env.cfg.local_epochs as f64;
        let slow_base = env.device_profile(2).base_round_secs(flops, bytes);
        assert!(
            ledger.max_sim_round_secs() >= slow_base,
            "span {} below the slow tier's base time {slow_base}",
            ledger.max_sim_round_secs()
        );
    }

    #[test]
    fn sim_scheduler_serde_roundtrip_and_names() {
        for sched in [
            Scheduler::Synchronous,
            Scheduler::Deadline {
                deadline_secs: 12.5,
            },
            Scheduler::Buffered { buffer_k: 3 },
        ] {
            let json = serde_json::to_string(&sched).expect("ser");
            let back: Scheduler = serde_json::from_str(&json).expect("de");
            assert_eq!(sched, back);
        }
        assert_eq!(Scheduler::Synchronous.name(), "synchronous");
        assert_eq!(Scheduler::default(), Scheduler::Synchronous);
        assert_eq!(Scheduler::Buffered { buffer_k: 1 }.name(), "buffered");
    }

    #[test]
    fn sim_slower_profiles_take_longer() {
        let env = ExperimentEnv::tiny_for_tests(11);
        let model = env.build_model(&ModelSpec::small_cnn_test());
        let arch = model.arch();
        let densities = vec![1.0f32; sparse_layout(model.as_ref()).num_layers()];
        let fast = device_sim_secs(&DeviceProfile::fast(), &arch, &densities, 20, 1);
        let slow = device_sim_secs(&DeviceProfile::slow(), &arch, &densities, 20, 1);
        assert!(slow > fast * 5.0, "slow {slow} vs fast {fast}");
        // Sparser masks shrink simulated time.
        let sparse = device_sim_secs(
            &DeviceProfile::fast(),
            &arch,
            &vec![0.05f32; densities.len()],
            20,
            1,
        );
        assert!(sparse < fast);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The weights handed to the aggregator always sum to the
        /// participating (surviving) sample count.
        #[test]
        fn sim_survivor_weights_sum_to_sample_count(
            samples in proptest::collection::vec(1usize..500, 1..8),
            alive_bits in proptest::collection::vec(0u32..2, 1..8),
        ) {
            let n = samples.len().min(alive_bits.len());
            let updates: Vec<DeviceUpdate> = samples[..n]
                .iter()
                .map(|&s| DeviceUpdate {
                    payload: Payload::Dense { values: vec![0.0] },
                    bn: Vec::new(),
                    samples: s,
                    realized_flops: 0.0,
                    wall_secs: 0.0,
                })
                .collect();
            let alive: Vec<bool> = alive_bits[..n].iter().map(|&b| b == 1).collect();
            let got = survivor_payload_updates(&updates, &alive);
            let weight_sum: f64 = got.iter().map(|(_, w)| *w).sum();
            let expected: usize = samples[..n]
                .iter()
                .zip(alive.iter())
                .filter(|(_, &a)| a)
                .map(|(&s, _)| s)
                .sum();
            prop_assert_eq!(got.len(), alive.iter().filter(|&&a| a).count());
            prop_assert!((weight_sum - expected as f64).abs() < 1e-9);
        }
    }
}
