//! Virtual-time fleet scheduling: how the server closes rounds over a
//! heterogeneous device fleet.
//!
//! The classic loop assumes identical devices that all finish together. The
//! [`Scheduler`] policies relax that over the environment's
//! [`DeviceProfile`](ft_metrics::DeviceProfile) fleet, with every device's
//! analytic FLOPs + transfer bytes converted to *simulated seconds* by a
//! [`SimClock`](ft_metrics::SimClock):
//!
//! - [`Scheduler::Synchronous`] — the barrier: the server waits for every
//!   cohort member; the round's simulated span is the slowest device.
//! - [`Scheduler::Deadline`] — the server cuts the round at a deadline;
//!   late (and dropped) devices are excluded from the aggregate. An empty
//!   surviving cohort leaves the global unchanged and is recorded as a
//!   zero-progress round.
//! - [`Scheduler::Buffered`] — FedBuff-style asynchrony: devices train
//!   continuously against whatever global they last downloaded; the server
//!   applies a staleness-weighted aggregate as soon as `buffer_k` updates
//!   arrive. One aggregation = one "round".
//!
//! All policies keep the workspace's determinism contract: every stochastic
//! choice (batch order, jitter, dropout) is a pure function of
//! `(seed, round/task, device)`, so parallel and sequential host execution
//! produce bit-identical results.
//!
//! ## Wire billing
//!
//! Every transfer is billed to the [`SimClock`](ft_metrics::SimClock) and
//! the [`CostLedger`] at its **measured** size: the `encoded_len()` of the
//! actually-encoded [`Payload`](ft_sparse::Payload) upload plus the server
//! broadcast size, next to the classic analytic
//! [`sparse_model_bytes`] axis (the same measured-vs-analytic split the
//! FLOPs accounting uses). One caveat under buffered aggregation: a task's
//! finish time is fixed when its transfer is *scheduled*, so a stale
//! upload's extra index bytes (mask epoch drifted mid-flight) appear in the
//! ledger but not in its link time.

use crate::env::ExperimentEnv;
use crate::transport::Delivery;
use ft_metrics::{sparse_model_bytes, training_flops, DeviceProfile};
use ft_nn::ArchInfo;
use ft_sparse::{Codec, Payload, WireCtx};
use serde::{Deserialize, Serialize};

/// Round-closing policy over the simulated fleet.
///
/// # Examples
///
/// ```
/// use ft_fl::Scheduler;
///
/// let mut env = ft_fl::ExperimentEnv::tiny_for_tests(0);
/// // Cut every round after 30 simulated seconds; stragglers are dropped.
/// env.scheduler = Scheduler::Deadline { deadline_secs: 30.0 };
/// assert_eq!(env.scheduler.name(), "deadline");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum Scheduler {
    /// Barrier aggregation: wait for the whole cohort (the paper's
    /// setting). Round span = slowest cohort member.
    #[default]
    Synchronous,
    /// Barrier with a cutoff: updates arriving after `deadline_secs`
    /// simulated seconds are discarded. Round span = `min(slowest,
    /// deadline)`.
    Deadline {
        /// Simulated seconds after which the server closes the round.
        deadline_secs: f64,
    },
    /// FedBuff-style buffered asynchrony: the server aggregates
    /// staleness-weighted updates as soon as `buffer_k` arrive; devices
    /// immediately restart from the newest global. Partial participation is
    /// ignored — every device streams continuously.
    Buffered {
        /// Updates buffered before the server aggregates (clamped to
        /// `[1, devices]`).
        buffer_k: usize,
    },
}

impl Scheduler {
    /// Stable lowercase name for reports and tables.
    pub fn name(&self) -> &'static str {
        match self {
            Scheduler::Synchronous => "synchronous",
            Scheduler::Deadline { .. } => "deadline",
            Scheduler::Buffered { .. } => "buffered",
        }
    }

    /// Structural validation, enforced before the round loop starts:
    /// rejects `Buffered { buffer_k: 0 }` (the server would wait forever
    /// for an aggregate that can never form) and negative or non-finite
    /// deadlines (every round would be cut before any device finishes).
    pub fn validate(&self) -> Result<(), crate::config::ConfigError> {
        match *self {
            Scheduler::Synchronous => Ok(()),
            Scheduler::Deadline { deadline_secs } => {
                if deadline_secs.is_finite() && deadline_secs >= 0.0 {
                    Ok(())
                } else {
                    Err(crate::config::ConfigError::BadDeadline { deadline_secs })
                }
            }
            Scheduler::Buffered { buffer_k } => {
                if buffer_k == 0 {
                    Err(crate::config::ConfigError::ZeroBufferK)
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// Analytic cost of one local-training task at the given mask densities:
/// `(training FLOPs, transfer bytes)` for a device holding `samples`
/// samples. Bytes cover one download + one upload of the sparse model.
pub fn device_round_cost(
    arch: &ArchInfo,
    densities: &[f32],
    samples: usize,
    local_epochs: usize,
) -> (f64, f64) {
    let flops = training_flops(arch, densities) * samples as f64 * local_epochs as f64;
    let bytes = 2.0 * sparse_model_bytes(arch, densities);
    (flops, bytes)
}

/// Jitter-free simulated seconds one round takes on `profile` under the
/// *analytic* byte model — a deadline-picking heuristic. The round loops
/// bill the clock with measured payload bytes, which sit close to (and for
/// shared-epoch sparse transfers slightly below) this estimate.
pub fn device_sim_secs(
    profile: &DeviceProfile,
    arch: &ArchInfo,
    densities: &[f32],
    samples: usize,
    local_epochs: usize,
) -> f64 {
    let (flops, bytes) = device_round_cost(arch, densities, samples, local_epochs);
    profile.base_round_secs(flops, bytes)
}

/// A deadline strictly inside a fleet's spread: the geometric mean of the
/// fastest and the slowest device's jitter-free simulated round time at
/// `densities` — fast tiers land comfortably, the slowest tier is cut.
/// The shared heuristic behind the deadline benches, examples, and tests.
pub fn fleet_spread_deadline(env: &ExperimentEnv, arch: &ArchInfo, densities: &[f32]) -> f64 {
    let secs: Vec<f64> = (0..env.num_devices())
        .map(|k| {
            device_sim_secs(
                &env.device_profile(k),
                arch,
                densities,
                env.parts[k].len(),
                env.cfg.local_epochs,
            )
        })
        .collect();
    let fastest = secs.iter().cloned().fold(f64::INFINITY, f64::min);
    let slowest = secs.iter().cloned().fold(0.0f64, f64::max);
    (fastest * slowest).sqrt()
}

/// Whether the round loop evaluates after round `round` of `rounds`.
pub(crate) fn should_eval(eval_every: usize, round: usize, rounds: usize) -> bool {
    (eval_every > 0 && round % eval_every == eval_every - 1) || round + 1 == rounds
}

/// Measured wire size of one server → device model broadcast under `codec`:
/// the full dense vector for `Codec::Dense`, otherwise the mask-structured
/// values-only form (both ends share the mask epoch by construction — the
/// server just told the device which mask to train under).
pub fn broadcast_payload_len(codec: Codec, ctx: &WireCtx) -> usize {
    match codec {
        Codec::Dense => Codec::Dense.encoded_len_for(ctx, true),
        _ => Codec::MaskCsr.encoded_len_for(ctx, true),
    }
}

/// Weighted encoded updates of the surviving cohort members: `(payload,
/// |D_k|)` pairs. Quarantined (faulted) deliveries and members the
/// scheduler cut carry no weight; for the survivors the weights always sum
/// to the participating sample count (the invariant every aggregation in
/// the paper relies on).
pub(crate) fn survivor_payload_updates<'a>(
    updates: &'a [Delivery],
    alive: &[bool],
) -> Vec<(&'a Payload, f64)> {
    updates
        .iter()
        .zip(alive.iter())
        .filter(|(_, &a)| a)
        .filter_map(|(d, _)| d.update().map(|u| (&u.payload, u.samples as f64)))
        .collect()
}

/// The fleet's dynamic registry: which devices are enrolled at which
/// round. An empty schedule (the default) means every device is always
/// present — the pre-churn behavior, bit for bit. Absence windows model
/// devices leaving and rejoining between rounds: an absent device is
/// filtered out of every sampled cohort, and the round it comes back is
/// reported as *rejoining* so a reconnecting transport can re-accept its
/// stream before the broadcast.
///
/// # Examples
///
/// ```
/// use ft_fl::PresenceSchedule;
///
/// // Device 2 is gone for rounds 3 and 4, back at round 5.
/// let p = PresenceSchedule::new().absent(2, 3..5);
/// assert!(p.enrolled(2, 2));
/// assert!(!p.enrolled(3, 2));
/// assert!(!p.enrolled(4, 2));
/// assert!(p.enrolled(5, 2));
/// assert!(p.rejoining(5, 2));
/// assert!(!p.rejoining(6, 2));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PresenceSchedule {
    /// Half-open absence windows `[from, until)` per device.
    windows: Vec<(usize, std::ops::Range<usize>)>,
}

impl PresenceSchedule {
    /// The always-present schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `device` absent for the half-open round range `rounds`
    /// (builder-style; windows may overlap and accumulate).
    pub fn absent(mut self, device: usize, rounds: std::ops::Range<usize>) -> Self {
        self.windows.push((device, rounds));
        self
    }

    /// Whether any absence window exists at all.
    pub fn is_trivial(&self) -> bool {
        self.windows.is_empty()
    }

    /// Whether `device` is enrolled (present) at `round`.
    pub fn enrolled(&self, round: usize, device: usize) -> bool {
        !self
            .windows
            .iter()
            .any(|(d, r)| *d == device && r.contains(&round))
    }

    /// Whether `device` comes back at `round` after being absent the round
    /// before — the transport must re-accept its connection before this
    /// round's broadcast.
    pub fn rejoining(&self, round: usize, device: usize) -> bool {
        round > 0 && self.enrolled(round, device) && !self.enrolled(round - 1, device)
    }

    /// The devices of `fleet_size` rejoining at `round`, ascending.
    pub fn rejoining_devices(&self, round: usize, fleet_size: usize) -> Vec<usize> {
        (0..fleet_size)
            .filter(|&d| self.rejoining(round, d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::CostLedger;
    use crate::rounds::{no_hook, run_federated_rounds};
    use crate::spec::ModelSpec;
    use crate::train::DeviceUpdate;
    use ft_nn::{apply_mask, flat_params, sparse_layout};
    use ft_sparse::Mask;
    use proptest::prelude::*;

    /// Runs one policy end-to-end on a mixed fleet and returns everything
    /// the determinism tests compare bit-for-bit.
    fn run_policy_with_codec(
        scheduler: Scheduler,
        parallel: bool,
        seed: u64,
        codec: Codec,
    ) -> (Vec<f32>, Vec<f32>, String) {
        let mut env = ExperimentEnv::tiny_for_tests(seed);
        env.cfg.parallel = parallel;
        env.cfg.codec = codec;
        env.fleet = DeviceProfile::fleet_mixed(env.num_devices());
        env.scheduler = scheduler;
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let layout = sparse_layout(model.as_ref());
        let mut mask = Mask::ones(&layout);
        let mut ledger = CostLedger::new();
        let history = run_federated_rounds(
            model.as_mut(),
            &mut mask,
            &env,
            1,
            &mut ledger,
            &mut no_hook(),
        );
        (
            history,
            flat_params(model.as_ref()),
            ledger_fingerprint(&ledger),
        )
    }

    fn run_policy(scheduler: Scheduler, parallel: bool, seed: u64) -> (Vec<f32>, Vec<f32>, String) {
        run_policy_with_codec(scheduler, parallel, seed, Codec::Dense)
    }

    /// The deterministic projection of a ledger: everything except host
    /// wall-clock, with floats rendered bit-exactly.
    fn ledger_fingerprint(ledger: &CostLedger) -> String {
        let bits = |v: &[f64]| -> Vec<String> {
            v.iter().map(|x| format!("{:016x}", x.to_bits())).collect()
        };
        format!(
            "flops={:?} realized={:?} sim={:?} comm={:016x} up={:?} down={:?} extra={:016x} zero={} timeline={}",
            bits(ledger.round_flops_history()),
            bits(ledger.realized_flops_history()),
            bits(ledger.sim_secs_history()),
            ledger.total_comm_bytes().to_bits(),
            bits(ledger.payload_up_history()),
            bits(ledger.payload_down_history()),
            ledger.extra_flops().to_bits(),
            ledger.zero_progress_rounds(),
            serde_json::to_string(&ledger.timeline().to_vec()).expect("timeline serializes"),
        )
    }

    /// A fleet with no timing noise where the last device is 100x slower
    /// than the rest — a clean straggler regardless of how the non-iid
    /// split distributed the samples.
    fn two_speed_fleet(n: usize) -> Vec<DeviceProfile> {
        let reference = DeviceProfile::uniform();
        let mut straggler = reference;
        straggler.flops_per_sec /= 100.0;
        straggler.bytes_per_sec /= 100.0;
        let mut fleet = vec![reference; n.saturating_sub(1)];
        fleet.push(straggler);
        fleet
    }

    /// [`fleet_spread_deadline`] at dense densities for the test model —
    /// with [`two_speed_fleet`] this lands strictly between the reference
    /// devices and the 100x straggler.
    fn two_speed_deadline(env: &ExperimentEnv) -> f64 {
        let model = env.build_model(&ModelSpec::small_cnn_test());
        let densities = vec![1.0f32; sparse_layout(model.as_ref()).num_layers()];
        fleet_spread_deadline(env, &model.arch(), &densities)
    }

    #[test]
    fn sim_synchronous_parallel_matches_sequential() {
        let a = run_policy(Scheduler::Synchronous, true, 9);
        let b = run_policy(Scheduler::Synchronous, false, 9);
        assert_eq!(a.0, b.0, "accuracy history diverged");
        assert_eq!(a.1, b.1, "final parameters diverged");
        assert_eq!(a.2, b.2, "ledger diverged");
    }

    #[test]
    fn sim_deadline_parallel_matches_sequential() {
        // 2 simulated seconds sits inside the mixed fleet's spread, so the
        // drop path is genuinely exercised on both sides of the comparison.
        let d = 2.0;
        let a = run_policy(Scheduler::Deadline { deadline_secs: d }, true, 9);
        let b = run_policy(Scheduler::Deadline { deadline_secs: d }, false, 9);
        assert_eq!(a.0, b.0, "accuracy history diverged");
        assert_eq!(a.1, b.1, "final parameters diverged");
        assert_eq!(a.2, b.2, "ledger diverged");
    }

    #[test]
    fn sim_buffered_parallel_matches_sequential() {
        let a = run_policy(Scheduler::Buffered { buffer_k: 2 }, true, 9);
        let b = run_policy(Scheduler::Buffered { buffer_k: 2 }, false, 9);
        assert_eq!(a.0, b.0, "accuracy history diverged");
        assert_eq!(a.1, b.1, "final parameters diverged");
        assert_eq!(a.2, b.2, "ledger diverged");
    }

    #[test]
    fn sim_every_codec_parallel_matches_sequential() {
        // The payload pipeline keeps the determinism contract for every
        // codec under every scheduler: encoding, error feedback, and
        // measured byte accounting are all pure functions of
        // (seed, round/task, device).
        for codec in [
            Codec::Dense,
            Codec::MaskCsr,
            Codec::QuantInt8,
            Codec::TopK {
                k_frac: 0.1,
                error_feedback: true,
            },
        ] {
            for sched in [
                Scheduler::Synchronous,
                Scheduler::Deadline { deadline_secs: 2.0 },
                Scheduler::Buffered { buffer_k: 2 },
            ] {
                let a = run_policy_with_codec(sched, true, 13, codec);
                let b = run_policy_with_codec(sched, false, 13, codec);
                assert_eq!(a.0, b.0, "{codec:?}/{sched:?}: history diverged");
                assert_eq!(a.1, b.1, "{codec:?}/{sched:?}: parameters diverged");
                assert_eq!(a.2, b.2, "{codec:?}/{sched:?}: ledger diverged");
            }
        }
    }

    #[test]
    fn sim_measured_bytes_ordered_by_codec() {
        // At full density: MaskCsr ≈ Dense, QuantInt8 strictly smaller
        // uploads, TopK smallest. The measured axis must reflect the wire
        // formats, not the analytic formula.
        let upload_total = |codec: Codec| -> f64 {
            let mut env = ExperimentEnv::tiny_for_tests(3);
            env.cfg.codec = codec;
            let mut model = env.build_model(&ModelSpec::small_cnn_test());
            let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
            let mut ledger = CostLedger::new();
            let _ = run_federated_rounds(
                model.as_mut(),
                &mut mask,
                &env,
                0,
                &mut ledger,
                &mut no_hook(),
            );
            ledger.total_payload_upload_bytes()
        };
        let dense = upload_total(Codec::Dense);
        let quant = upload_total(Codec::QuantInt8);
        let topk = upload_total(Codec::TopK {
            k_frac: 0.05,
            error_feedback: true,
        });
        assert!(dense > 0.0);
        assert!(
            quant < dense / 3.0,
            "quantized uploads {quant} not ≥3x below dense {dense}"
        );
        assert!(
            topk < dense / 3.0,
            "top-k uploads {topk} not ≥3x below dense {dense}"
        );
    }

    #[test]
    fn sim_repeat_runs_are_bit_identical() {
        for sched in [
            Scheduler::Synchronous,
            Scheduler::Deadline {
                deadline_secs: 50.0,
            },
            Scheduler::Buffered { buffer_k: 2 },
        ] {
            let a = run_policy(sched, true, 4);
            let b = run_policy(sched, true, 4);
            assert_eq!(a.0, b.0, "{sched:?}: history diverged across runs");
            assert_eq!(a.1, b.1, "{sched:?}: parameters diverged across runs");
            assert_eq!(a.2, b.2, "{sched:?}: ledger diverged across runs");
        }
    }

    #[test]
    fn sim_deadline_drops_stragglers_but_progresses() {
        let mut env = ExperimentEnv::tiny_for_tests(5);
        env.fleet = two_speed_fleet(env.num_devices());
        let d = two_speed_deadline(&env);
        env.scheduler = Scheduler::Deadline { deadline_secs: d };
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
        let mut ledger = CostLedger::new();
        let history = run_federated_rounds(
            model.as_mut(),
            &mut mask,
            &env,
            0,
            &mut ledger,
            &mut no_hook(),
        );
        assert!(!history.is_empty());
        assert!(ledger.dropped_updates() > 0, "no straggler was ever cut");
        assert_eq!(ledger.zero_progress_rounds(), 0, "fast tier should land");
        // The cut round can never span longer than the deadline.
        assert!(ledger.max_sim_round_secs() <= d + 1e-9);
    }

    #[test]
    fn sim_deadline_empty_cohort_keeps_global_unchanged() {
        let mut env = ExperimentEnv::tiny_for_tests(6);
        env.scheduler = Scheduler::Deadline { deadline_secs: 0.0 };
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let before = flat_params(model.as_ref());
        let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
        let mut ledger = CostLedger::new();
        let history = run_federated_rounds(
            model.as_mut(),
            &mut mask,
            &env,
            0,
            &mut ledger,
            &mut no_hook(),
        );
        assert_eq!(ledger.zero_progress_rounds(), env.cfg.rounds);
        assert_eq!(flat_params(model.as_ref()), before, "global must not move");
        assert!(history.iter().all(|a| a.is_finite()));
        assert!(before.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sim_buffered_completes_all_rounds_with_staleness() {
        let mut env = ExperimentEnv::tiny_for_tests(7);
        env.fleet = DeviceProfile::fleet_mixed(env.num_devices());
        env.scheduler = Scheduler::Buffered { buffer_k: 1 };
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
        let mut ledger = CostLedger::new();
        let history = run_federated_rounds(
            model.as_mut(),
            &mut mask,
            &env,
            1,
            &mut ledger,
            &mut no_hook(),
        );
        assert_eq!(ledger.rounds(), env.cfg.rounds);
        assert_eq!(history.len(), env.cfg.rounds);
        assert!(ledger.sim_makespan_secs() > 0.0);
        // With buffer_k = 1 on a mixed fleet the slow device's update must
        // land several versions stale.
        assert!(
            ledger.timeline().iter().any(|e| e.staleness > 0),
            "no stale update ever recorded"
        );
    }

    #[test]
    fn sim_buffered_never_resurrects_pruned_weights() {
        let mut env = ExperimentEnv::tiny_for_tests(8);
        env.fleet = DeviceProfile::fleet_mixed(env.num_devices());
        env.scheduler = Scheduler::Buffered { buffer_k: 2 };
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let layout = sparse_layout(model.as_ref());
        let mut mask = Mask::ones(&layout);
        for i in 0..layout.layer(0).len {
            if i % 2 == 0 {
                mask.set(0, i, false);
            }
        }
        apply_mask(model.as_mut(), &mask);
        let mut ledger = CostLedger::new();
        let _ = run_federated_rounds(
            model.as_mut(),
            &mut mask,
            &env,
            0,
            &mut ledger,
            &mut no_hook(),
        );
        // Pruned coordinates stay zero in the final global.
        let mut offset = 0;
        for p in model.params() {
            if p.prunable {
                break;
            }
            offset += p.len();
        }
        let flat = flat_params(model.as_ref());
        for i in 0..layout.layer(0).len {
            if i % 2 == 0 {
                assert_eq!(flat[offset + i], 0.0, "pruned weight {i} resurrected");
            }
        }
    }

    #[test]
    fn sim_synchronous_span_is_slowest_cohort_member() {
        let mut env = ExperimentEnv::tiny_for_tests(10);
        env.fleet = DeviceProfile::fleet_mixed(env.num_devices());
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
        let mut ledger = CostLedger::new();
        let _ = run_federated_rounds(
            model.as_mut(),
            &mut mask,
            &env,
            0,
            &mut ledger,
            &mut no_hook(),
        );
        // Every round's span is at least the slow tier's jitter-free time
        // under the *measured* byte model the clock is billed with.
        let arch = model.arch();
        let densities = vec![1.0f32; mask.num_layers()];
        let ctx = ft_nn::wire_ctx(model.as_ref(), &mask, 0);
        let bytes = broadcast_payload_len(env.cfg.codec, &ctx) as f64
            + env.cfg.codec.encoded_len_for(&ctx, true) as f64;
        let flops = training_flops(&arch, &densities)
            * env.parts[2].len() as f64
            * env.cfg.local_epochs as f64;
        let slow_base = env.device_profile(2).base_round_secs(flops, bytes);
        assert!(
            ledger.max_sim_round_secs() >= slow_base,
            "span {} below the slow tier's base time {slow_base}",
            ledger.max_sim_round_secs()
        );
    }

    #[test]
    fn sim_scheduler_serde_roundtrip_and_names() {
        for sched in [
            Scheduler::Synchronous,
            Scheduler::Deadline {
                deadline_secs: 12.5,
            },
            Scheduler::Buffered { buffer_k: 3 },
        ] {
            let json = serde_json::to_string(&sched).expect("ser");
            let back: Scheduler = serde_json::from_str(&json).expect("de");
            assert_eq!(sched, back);
        }
        assert_eq!(Scheduler::Synchronous.name(), "synchronous");
        assert_eq!(Scheduler::default(), Scheduler::Synchronous);
        assert_eq!(Scheduler::Buffered { buffer_k: 1 }.name(), "buffered");
    }

    #[test]
    fn sim_slower_profiles_take_longer() {
        let env = ExperimentEnv::tiny_for_tests(11);
        let model = env.build_model(&ModelSpec::small_cnn_test());
        let arch = model.arch();
        let densities = vec![1.0f32; sparse_layout(model.as_ref()).num_layers()];
        let fast = device_sim_secs(&DeviceProfile::fast(), &arch, &densities, 20, 1);
        let slow = device_sim_secs(&DeviceProfile::slow(), &arch, &densities, 20, 1);
        assert!(slow > fast * 5.0, "slow {slow} vs fast {fast}");
        // Sparser masks shrink simulated time.
        let sparse = device_sim_secs(
            &DeviceProfile::fast(),
            &arch,
            &vec![0.05f32; densities.len()],
            20,
            1,
        );
        assert!(sparse < fast);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The weights handed to the aggregator always sum to the
        /// participating (surviving) sample count.
        #[test]
        fn sim_survivor_weights_sum_to_sample_count(
            samples in proptest::collection::vec(1usize..500, 1..8),
            alive_bits in proptest::collection::vec(0u32..2, 1..8),
        ) {
            let n = samples.len().min(alive_bits.len());
            let updates: Vec<DeviceUpdate> = samples[..n]
                .iter()
                .map(|&s| DeviceUpdate {
                    payload: Payload::Dense { values: vec![0.0] },
                    bn: Vec::new(),
                    samples: s,
                    realized_flops: 0.0,
                    wall_secs: 0.0,
                })
                .collect();
            let alive: Vec<bool> = alive_bits[..n].iter().map(|&b| b == 1).collect();
            let deliveries: Vec<Delivery> = updates.into_iter().map(Delivery::Update).collect();
            let got = survivor_payload_updates(&deliveries, &alive);
            let weight_sum: f64 = got.iter().map(|(_, w)| *w).sum();
            let expected: usize = samples[..n]
                .iter()
                .zip(alive.iter())
                .filter(|(_, &a)| a)
                .map(|(&s, _)| s)
                .sum();
            prop_assert_eq!(got.len(), alive.iter().filter(|&&a| a).count());
            prop_assert!((weight_sum - expected as f64).abs() < 1e-9);
        }
    }
}
