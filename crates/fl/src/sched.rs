//! Virtual-time fleet scheduling: how the server closes rounds over a
//! heterogeneous device fleet.
//!
//! The classic loop assumes identical devices that all finish together. The
//! [`Scheduler`] policies relax that over the environment's
//! [`DeviceProfile`](ft_metrics::DeviceProfile) fleet, with every device's
//! analytic FLOPs + transfer bytes converted to *simulated seconds* by a
//! [`SimClock`](ft_metrics::SimClock):
//!
//! - [`Scheduler::Synchronous`] — the barrier: the server waits for every
//!   cohort member; the round's simulated span is the slowest device.
//! - [`Scheduler::Deadline`] — the server cuts the round at a deadline;
//!   late (and dropped) devices are excluded from the aggregate. An empty
//!   surviving cohort leaves the global unchanged and is recorded as a
//!   zero-progress round.
//! - [`Scheduler::Buffered`] — FedBuff-style asynchrony: devices train
//!   continuously against whatever global they last downloaded; the server
//!   applies a staleness-weighted aggregate as soon as `buffer_k` updates
//!   arrive. One aggregation = one "round".
//!
//! All policies keep the workspace's determinism contract: every stochastic
//! choice (batch order, jitter, dropout) is a pure function of
//! `(seed, round/task, device)`, so parallel and sequential host execution
//! produce bit-identical results.

use crate::aggregate::{staleness_fedavg, staleness_weight, try_aggregate_bn_stats, try_fedavg};
use crate::env::ExperimentEnv;
use crate::ledger::{CostLedger, TimelineEvent};
use crate::rounds::{sample_cohort, RoundHook};
use crate::train::{evaluate, train_devices_parallel, train_one_device, DeviceUpdate};
use ft_metrics::{densities_from_mask, sparse_model_bytes, training_flops, DeviceProfile, SimClock};
use ft_nn::{apply_mask, flat_params, set_flat_params, ArchInfo, Model};
use ft_sparse::Mask;
use serde::{Deserialize, Serialize};

/// Round-closing policy over the simulated fleet.
///
/// # Examples
///
/// ```
/// use ft_fl::Scheduler;
///
/// let mut env = ft_fl::ExperimentEnv::tiny_for_tests(0);
/// // Cut every round after 30 simulated seconds; stragglers are dropped.
/// env.scheduler = Scheduler::Deadline { deadline_secs: 30.0 };
/// assert_eq!(env.scheduler.name(), "deadline");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum Scheduler {
    /// Barrier aggregation: wait for the whole cohort (the paper's
    /// setting). Round span = slowest cohort member.
    #[default]
    Synchronous,
    /// Barrier with a cutoff: updates arriving after `deadline_secs`
    /// simulated seconds are discarded. Round span = `min(slowest,
    /// deadline)`.
    Deadline {
        /// Simulated seconds after which the server closes the round.
        deadline_secs: f64,
    },
    /// FedBuff-style buffered asynchrony: the server aggregates
    /// staleness-weighted updates as soon as `buffer_k` arrive; devices
    /// immediately restart from the newest global. Partial participation is
    /// ignored — every device streams continuously.
    Buffered {
        /// Updates buffered before the server aggregates (clamped to
        /// `[1, devices]`).
        buffer_k: usize,
    },
}

impl Scheduler {
    /// Stable lowercase name for reports and tables.
    pub fn name(&self) -> &'static str {
        match self {
            Scheduler::Synchronous => "synchronous",
            Scheduler::Deadline { .. } => "deadline",
            Scheduler::Buffered { .. } => "buffered",
        }
    }
}

/// Analytic cost of one local-training task at the given mask densities:
/// `(training FLOPs, transfer bytes)` for a device holding `samples`
/// samples. Bytes cover one download + one upload of the sparse model.
pub fn device_round_cost(
    arch: &ArchInfo,
    densities: &[f32],
    samples: usize,
    local_epochs: usize,
) -> (f64, f64) {
    let flops = training_flops(arch, densities) * samples as f64 * local_epochs as f64;
    let bytes = 2.0 * sparse_model_bytes(arch, densities);
    (flops, bytes)
}

/// Jitter-free simulated seconds one round takes on `profile` — the
/// deterministic part of the time model, handy for picking deadlines.
pub fn device_sim_secs(
    profile: &DeviceProfile,
    arch: &ArchInfo,
    densities: &[f32],
    samples: usize,
    local_epochs: usize,
) -> f64 {
    let (flops, bytes) = device_round_cost(arch, densities, samples, local_epochs);
    profile.base_round_secs(flops, bytes)
}

/// A deadline strictly inside a fleet's spread: the geometric mean of the
/// fastest and the slowest device's jitter-free simulated round time at
/// `densities` — fast tiers land comfortably, the slowest tier is cut.
/// The shared heuristic behind the deadline benches, examples, and tests.
pub fn fleet_spread_deadline(env: &ExperimentEnv, arch: &ArchInfo, densities: &[f32]) -> f64 {
    let secs: Vec<f64> = (0..env.num_devices())
        .map(|k| {
            device_sim_secs(
                &env.device_profile(k),
                arch,
                densities,
                env.parts[k].len(),
                env.cfg.local_epochs,
            )
        })
        .collect();
    let fastest = secs.iter().cloned().fold(f64::INFINITY, f64::min);
    let slowest = secs.iter().cloned().fold(0.0f64, f64::max);
    (fastest * slowest).sqrt()
}

/// Whether the round loop evaluates after round `round` of `rounds`.
pub(crate) fn should_eval(eval_every: usize, round: usize, rounds: usize) -> bool {
    (eval_every > 0 && round % eval_every == eval_every - 1) || round + 1 == rounds
}

/// Weighted parameter updates of the surviving cohort members: `(params,
/// |D_k|)` pairs. The weights always sum to the participating sample count
/// (the invariant every aggregation in the paper relies on).
pub(crate) fn survivor_param_updates(
    updates: &[DeviceUpdate],
    alive: &[bool],
) -> Vec<(Vec<f32>, f64)> {
    updates
        .iter()
        .zip(alive.iter())
        .filter(|(_, &a)| a)
        .map(|(u, _)| (u.params.clone(), u.samples as f64))
        .collect()
}

/// Barrier-style rounds (Synchronous, and Deadline when `deadline` is
/// `Some`): the whole cohort trains from the same global, then the server
/// aggregates whichever updates survived the fleet (dropout, deadline).
pub(crate) fn run_barrier_rounds(
    global: &mut dyn Model,
    mask: &mut Mask,
    env: &ExperimentEnv,
    eval_every: usize,
    ledger: &mut CostLedger,
    hook: &mut RoundHook<'_>,
    deadline: Option<f64>,
) -> Vec<f32> {
    let arch = global.arch();
    let max_samples = env.parts.iter().map(|p| p.len()).max().unwrap_or(0) as f64;
    let mut clock = SimClock::new(env.cfg.seed);
    let mut history = Vec::new();

    for round in 0..env.cfg.rounds {
        // Partial participation: sample the round's cohort (all devices at
        // participation = 1.0, the paper's setting).
        let cohort = sample_cohort(env, round);
        let parts: Vec<ft_data::Dataset> = cohort.iter().map(|&k| env.parts[k].clone()).collect();
        let updates = train_devices_parallel(global, &parts, Some(mask), &env.cfg, round);

        // Simulated fleet: finish time and survival of every cohort member.
        let densities = densities_from_mask(mask);
        let per_sample_flops = training_flops(&arch, &densities);
        let bytes = 2.0 * sparse_model_bytes(&arch, &densities);
        let round_start = clock.now();
        let mut finish = Vec::with_capacity(cohort.len());
        let mut alive = Vec::with_capacity(cohort.len());
        for (u, &k) in updates.iter().zip(cohort.iter()) {
            let profile = env.device_profile(k);
            let flops = per_sample_flops * u.samples as f64 * env.cfg.local_epochs as f64;
            let secs = clock.device_secs(&profile, flops, bytes, round, k);
            let timely = deadline.is_none_or(|d| secs <= d);
            let dropped = clock.dropout_hits(&profile, round, k);
            finish.push(secs);
            alive.push(timely && !dropped);
        }

        // Aggregate the survivors; an empty (or zero-weight) cohort leaves
        // the global untouched and records a zero-progress round.
        let surviving = survivor_param_updates(&updates, &alive);
        let progressed = match try_fedavg(&surviving) {
            Some(new_params) => {
                set_flat_params(global, &new_params);
                let bn_updates: Vec<_> = updates
                    .iter()
                    .zip(alive.iter())
                    .filter(|(_, &a)| a)
                    .map(|(u, _)| (u.bn.clone(), u.samples as f64))
                    .collect();
                if let Some(new_bn) = try_aggregate_bn_stats(&bn_updates) {
                    for (dst, src) in global.bn_stats_mut().into_iter().zip(new_bn.iter()) {
                        *dst = src.clone();
                    }
                }
                true
            }
            None => {
                ledger.record_zero_progress();
                false
            }
        };
        apply_mask(global, mask);

        for ((&k, &secs), &a) in cohort.iter().zip(finish.iter()).zip(alive.iter()) {
            ledger.record_timeline(TimelineEvent {
                device: k,
                round,
                start_secs: round_start,
                finish_secs: round_start + secs,
                applied: progressed && a,
                staleness: 0,
            });
        }

        // The round's simulated span: slowest cohort member, cut at the
        // deadline when one is set.
        let slowest = finish.iter().cloned().fold(0.0, f64::max);
        let span = match deadline {
            Some(d) => slowest.min(d),
            None => slowest,
        };
        clock.advance_by(span);
        ledger.record_sim_round(span);

        // Cost accounting: analytic (paper-style, the heaviest device at
        // the round's densities — paid even by devices that were dropped),
        // plus the realized execution costs the devices reported.
        let mut round_flops = per_sample_flops * max_samples * env.cfg.local_epochs as f64;
        ledger.add_comm(bytes);
        let max_realized = updates
            .iter()
            .map(|u| u.realized_flops)
            .fold(0.0, f64::max);
        let round_wall = if env.cfg.parallel {
            updates.iter().map(|u| u.wall_secs).fold(0.0, f64::max)
        } else {
            updates.iter().map(|u| u.wall_secs).sum()
        };
        ledger.record_realized_round(max_realized, round_wall);

        round_flops += hook(global, mask, round, ledger);
        ledger.record_round_flops(round_flops);

        if should_eval(eval_every, round, env.cfg.rounds) {
            history.push(evaluate(global, &env.test));
        }
    }
    if history.is_empty() {
        history.push(evaluate(global, &env.test));
    }
    history
}

/// One in-flight device task in the buffered event loop.
struct InFlight {
    device: usize,
    start_secs: f64,
    finish_secs: f64,
    start_version: usize,
    dropped: bool,
    analytic_flops: f64,
    bytes: f64,
    update: DeviceUpdate,
}

/// FedBuff-style buffered asynchronous rounds: an event loop over the
/// virtual clock. Every device trains continuously; the server aggregates
/// (staleness-weighted) once `buffer_k` updates arrive, which defines one
/// "round". Devices restart immediately from the newest global, so a slow
/// device's update can be several versions stale when it lands.
pub(crate) fn run_buffered_rounds(
    global: &mut dyn Model,
    mask: &mut Mask,
    env: &ExperimentEnv,
    eval_every: usize,
    ledger: &mut CostLedger,
    hook: &mut RoundHook<'_>,
    buffer_k: usize,
) -> Vec<f32> {
    let mut history = Vec::new();
    let n = env.num_devices();
    if env.cfg.rounds == 0 || n == 0 {
        history.push(evaluate(global, &env.test));
        return history;
    }
    let arch = global.arch();
    let k_needed = buffer_k.clamp(1, n);
    let mut clock = SimClock::new(env.cfg.seed);
    let mut version = 0usize;
    let mut task_counter = vec![0usize; n];
    let mut last_agg_secs = 0.0f64;

    // Mask densities, refreshed only when the mask can change (after an
    // aggregation's hook) rather than on every event.
    let mut densities = densities_from_mask(mask);

    // Initial wave: every device starts at t = 0 from version 0. This is
    // the only multi-device start, so it reuses the parallel trainer (same
    // `(seed, 0, device)` RNG streams as a synchronous first round).
    let mut in_flight: Vec<InFlight> = {
        let updates = train_devices_parallel(global, &env.parts, Some(mask), &env.cfg, 0);
        updates
            .into_iter()
            .enumerate()
            .map(|(k, u)| {
                let profile = env.device_profile(k);
                let (flops, bytes) =
                    device_round_cost(&arch, &densities, u.samples, env.cfg.local_epochs);
                let secs = clock.device_secs(&profile, flops, bytes, task_counter[k], k);
                let dropped = clock.dropout_hits(&profile, task_counter[k], k);
                task_counter[k] += 1;
                InFlight {
                    device: k,
                    start_secs: 0.0,
                    finish_secs: secs,
                    start_version: 0,
                    dropped,
                    analytic_flops: flops,
                    bytes,
                    update: u,
                }
            })
            .collect()
    };

    // Safety valve: with pathological dropout (every update lost) the
    // buffer can never fill; cap the event count instead of spinning.
    let max_events = env.cfg.rounds.max(1) * n * 64;
    let mut events = 0usize;
    // Buffered arrivals awaiting aggregation: `event_idx` points at the
    // arrival's timeline entry, flipped to applied once it aggregates.
    struct Buffered {
        update: DeviceUpdate,
        staleness: usize,
        analytic_flops: f64,
        bytes: f64,
        event_idx: usize,
    }
    let mut buffer: Vec<Buffered> = Vec::new();

    while version < env.cfg.rounds && events < max_events {
        events += 1;
        // Earliest finisher; ties break on the lower device index, so the
        // event order is a pure function of the simulated times.
        let next = in_flight
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.finish_secs
                    .total_cmp(&b.finish_secs)
                    .then(a.device.cmp(&b.device))
            })
            .map(|(i, _)| i)
            .expect("nonempty fleet");
        let task = in_flight.swap_remove(next);
        clock.advance_to(task.finish_secs);
        let staleness = version - task.start_version;

        // Recorded as not-applied until it actually reaches an aggregate;
        // a dropped (or forever-buffered) update keeps `applied: false`.
        let event_idx = ledger.record_timeline(TimelineEvent {
            device: task.device,
            round: version,
            start_secs: task.start_secs,
            finish_secs: task.finish_secs,
            applied: false,
            staleness,
        });
        if !task.dropped {
            buffer.push(Buffered {
                update: task.update,
                staleness,
                analytic_flops: task.analytic_flops,
                bytes: task.bytes,
                event_idx,
            });
        }

        if buffer.len() >= k_needed {
            // Staleness-weighted aggregation over the buffered updates.
            let prev = flat_params(global);
            let param_updates: Vec<(&[f32], f64, usize)> = buffer
                .iter()
                .map(|b| (b.update.params.as_slice(), b.update.samples as f64, b.staleness))
                .collect();
            set_flat_params(global, &staleness_fedavg(&param_updates, &prev));
            let bn_updates: Vec<_> = buffer
                .iter()
                .map(|b| {
                    (
                        b.update.bn.clone(),
                        b.update.samples as f64 * staleness_weight(b.staleness),
                    )
                })
                .collect();
            if let Some(new_bn) = try_aggregate_bn_stats(&bn_updates) {
                for (dst, src) in global.bn_stats_mut().into_iter().zip(new_bn.iter()) {
                    *dst = src.clone();
                }
            }
            // Re-apply the mask: stale updates were trained under old
            // masks and must not resurrect pruned weights.
            apply_mask(global, mask);

            // Per-device accounting, matching the barrier loop's
            // convention: one round charges one model transfer (the
            // heaviest in the buffer), not the fleet-summed traffic.
            ledger.add_comm(buffer.iter().map(|b| b.bytes).fold(0.0, f64::max));
            for b in &buffer {
                ledger.set_timeline_applied(b.event_idx);
            }
            let analytic = buffer.iter().map(|b| b.analytic_flops).fold(0.0, f64::max);
            let realized = buffer
                .iter()
                .map(|b| b.update.realized_flops)
                .fold(0.0, f64::max);
            let wall = buffer
                .iter()
                .map(|b| b.update.wall_secs)
                .fold(0.0, f64::max);
            ledger.record_realized_round(realized, wall);
            ledger.record_sim_round(clock.now() - last_agg_secs);
            last_agg_secs = clock.now();
            buffer.clear();

            let extra = hook(global, mask, version, ledger);
            // The hook may have adjusted the mask: refresh the cached
            // densities for the tasks launched from here on.
            densities = densities_from_mask(mask);
            ledger.record_round_flops(analytic + extra);
            if should_eval(eval_every, version, env.cfg.rounds) {
                history.push(evaluate(global, &env.test));
            }
            version += 1;
        }

        // The finisher restarts immediately from the current global (and
        // the current mask/version — its next update is fresh by
        // construction). No restart once the final round has aggregated.
        if version >= env.cfg.rounds {
            break;
        }
        let k = task.device;
        let profile = env.device_profile(k);
        let update = train_one_device(
            &*global,
            &env.parts[k],
            Some(mask),
            &env.cfg,
            version,
            k,
            task_counter[k] as u64,
        );
        let (flops, bytes) = device_round_cost(&arch, &densities, update.samples, env.cfg.local_epochs);
        let secs = clock.device_secs(&profile, flops, bytes, task_counter[k], k);
        let dropped = clock.dropout_hits(&profile, task_counter[k], k);
        task_counter[k] += 1;
        in_flight.push(InFlight {
            device: k,
            start_secs: clock.now(),
            finish_secs: clock.now() + secs,
            start_version: version,
            dropped,
            analytic_flops: flops,
            bytes,
            update,
        });
    }

    // Rounds the event cap starved (pathological all-dropout fleets):
    // recorded as zero-progress so the ledger still covers `cfg.rounds`.
    while version < env.cfg.rounds {
        ledger.record_round_flops(0.0);
        ledger.record_sim_round(0.0);
        ledger.record_zero_progress();
        version += 1;
    }
    if history.is_empty() {
        history.push(evaluate(global, &env.test));
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rounds::{no_hook, run_federated_rounds};
    use crate::spec::ModelSpec;
    use ft_nn::sparse_layout;
    use proptest::prelude::*;

    /// Runs one policy end-to-end on a mixed fleet and returns everything
    /// the determinism tests compare bit-for-bit.
    fn run_policy(scheduler: Scheduler, parallel: bool, seed: u64) -> (Vec<f32>, Vec<f32>, String) {
        let mut env = ExperimentEnv::tiny_for_tests(seed);
        env.cfg.parallel = parallel;
        env.fleet = DeviceProfile::fleet_mixed(env.num_devices());
        env.scheduler = scheduler;
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let layout = sparse_layout(model.as_ref());
        let mut mask = Mask::ones(&layout);
        let mut ledger = CostLedger::new();
        let history = run_federated_rounds(
            model.as_mut(),
            &mut mask,
            &env,
            1,
            &mut ledger,
            &mut no_hook(),
        );
        (history, flat_params(model.as_ref()), ledger_fingerprint(&ledger))
    }

    /// The deterministic projection of a ledger: everything except host
    /// wall-clock, with floats rendered bit-exactly.
    fn ledger_fingerprint(ledger: &CostLedger) -> String {
        let bits = |v: &[f64]| -> Vec<String> {
            v.iter().map(|x| format!("{:016x}", x.to_bits())).collect()
        };
        format!(
            "flops={:?} realized={:?} sim={:?} comm={:016x} extra={:016x} zero={} timeline={}",
            bits(ledger.round_flops_history()),
            bits(ledger.realized_flops_history()),
            bits(ledger.sim_secs_history()),
            ledger.total_comm_bytes().to_bits(),
            ledger.extra_flops().to_bits(),
            ledger.zero_progress_rounds(),
            serde_json::to_string(&ledger.timeline().to_vec()).expect("timeline serializes"),
        )
    }

    /// A fleet with no timing noise where the last device is 100x slower
    /// than the rest — a clean straggler regardless of how the non-iid
    /// split distributed the samples.
    fn two_speed_fleet(n: usize) -> Vec<DeviceProfile> {
        let reference = DeviceProfile::uniform();
        let mut straggler = reference;
        straggler.flops_per_sec /= 100.0;
        straggler.bytes_per_sec /= 100.0;
        let mut fleet = vec![reference; n.saturating_sub(1)];
        fleet.push(straggler);
        fleet
    }

    /// [`fleet_spread_deadline`] at dense densities for the test model —
    /// with [`two_speed_fleet`] this lands strictly between the reference
    /// devices and the 100x straggler.
    fn two_speed_deadline(env: &ExperimentEnv) -> f64 {
        let model = env.build_model(&ModelSpec::small_cnn_test());
        let densities = vec![1.0f32; sparse_layout(model.as_ref()).num_layers()];
        fleet_spread_deadline(env, &model.arch(), &densities)
    }

    #[test]
    fn sim_synchronous_parallel_matches_sequential() {
        let a = run_policy(Scheduler::Synchronous, true, 9);
        let b = run_policy(Scheduler::Synchronous, false, 9);
        assert_eq!(a.0, b.0, "accuracy history diverged");
        assert_eq!(a.1, b.1, "final parameters diverged");
        assert_eq!(a.2, b.2, "ledger diverged");
    }

    #[test]
    fn sim_deadline_parallel_matches_sequential() {
        // 2 simulated seconds sits inside the mixed fleet's spread, so the
        // drop path is genuinely exercised on both sides of the comparison.
        let d = 2.0;
        let a = run_policy(Scheduler::Deadline { deadline_secs: d }, true, 9);
        let b = run_policy(Scheduler::Deadline { deadline_secs: d }, false, 9);
        assert_eq!(a.0, b.0, "accuracy history diverged");
        assert_eq!(a.1, b.1, "final parameters diverged");
        assert_eq!(a.2, b.2, "ledger diverged");
    }

    #[test]
    fn sim_buffered_parallel_matches_sequential() {
        let a = run_policy(Scheduler::Buffered { buffer_k: 2 }, true, 9);
        let b = run_policy(Scheduler::Buffered { buffer_k: 2 }, false, 9);
        assert_eq!(a.0, b.0, "accuracy history diverged");
        assert_eq!(a.1, b.1, "final parameters diverged");
        assert_eq!(a.2, b.2, "ledger diverged");
    }

    #[test]
    fn sim_repeat_runs_are_bit_identical() {
        for sched in [
            Scheduler::Synchronous,
            Scheduler::Deadline { deadline_secs: 50.0 },
            Scheduler::Buffered { buffer_k: 2 },
        ] {
            let a = run_policy(sched, true, 4);
            let b = run_policy(sched, true, 4);
            assert_eq!(a.0, b.0, "{sched:?}: history diverged across runs");
            assert_eq!(a.1, b.1, "{sched:?}: parameters diverged across runs");
            assert_eq!(a.2, b.2, "{sched:?}: ledger diverged across runs");
        }
    }

    #[test]
    fn sim_deadline_drops_stragglers_but_progresses() {
        let mut env = ExperimentEnv::tiny_for_tests(5);
        env.fleet = two_speed_fleet(env.num_devices());
        let d = two_speed_deadline(&env);
        env.scheduler = Scheduler::Deadline { deadline_secs: d };
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
        let mut ledger = CostLedger::new();
        let history = run_federated_rounds(
            model.as_mut(),
            &mut mask,
            &env,
            0,
            &mut ledger,
            &mut no_hook(),
        );
        assert!(!history.is_empty());
        assert!(ledger.dropped_updates() > 0, "no straggler was ever cut");
        assert_eq!(ledger.zero_progress_rounds(), 0, "fast tier should land");
        // The cut round can never span longer than the deadline.
        assert!(ledger.max_sim_round_secs() <= d + 1e-9);
    }

    #[test]
    fn sim_deadline_empty_cohort_keeps_global_unchanged() {
        let mut env = ExperimentEnv::tiny_for_tests(6);
        env.scheduler = Scheduler::Deadline { deadline_secs: 0.0 };
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let before = flat_params(model.as_ref());
        let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
        let mut ledger = CostLedger::new();
        let history = run_federated_rounds(
            model.as_mut(),
            &mut mask,
            &env,
            0,
            &mut ledger,
            &mut no_hook(),
        );
        assert_eq!(ledger.zero_progress_rounds(), env.cfg.rounds);
        assert_eq!(flat_params(model.as_ref()), before, "global must not move");
        assert!(history.iter().all(|a| a.is_finite()));
        assert!(before.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sim_buffered_completes_all_rounds_with_staleness() {
        let mut env = ExperimentEnv::tiny_for_tests(7);
        env.fleet = DeviceProfile::fleet_mixed(env.num_devices());
        env.scheduler = Scheduler::Buffered { buffer_k: 1 };
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
        let mut ledger = CostLedger::new();
        let history = run_federated_rounds(
            model.as_mut(),
            &mut mask,
            &env,
            1,
            &mut ledger,
            &mut no_hook(),
        );
        assert_eq!(ledger.rounds(), env.cfg.rounds);
        assert_eq!(history.len(), env.cfg.rounds);
        assert!(ledger.sim_makespan_secs() > 0.0);
        // With buffer_k = 1 on a mixed fleet the slow device's update must
        // land several versions stale.
        assert!(
            ledger.timeline().iter().any(|e| e.staleness > 0),
            "no stale update ever recorded"
        );
    }

    #[test]
    fn sim_buffered_never_resurrects_pruned_weights() {
        let mut env = ExperimentEnv::tiny_for_tests(8);
        env.fleet = DeviceProfile::fleet_mixed(env.num_devices());
        env.scheduler = Scheduler::Buffered { buffer_k: 2 };
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let layout = sparse_layout(model.as_ref());
        let mut mask = Mask::ones(&layout);
        for i in 0..layout.layer(0).len {
            if i % 2 == 0 {
                mask.set(0, i, false);
            }
        }
        apply_mask(model.as_mut(), &mask);
        let mut ledger = CostLedger::new();
        let _ = run_federated_rounds(
            model.as_mut(),
            &mut mask,
            &env,
            0,
            &mut ledger,
            &mut no_hook(),
        );
        // Pruned coordinates stay zero in the final global.
        let mut offset = 0;
        for p in model.params() {
            if p.prunable {
                break;
            }
            offset += p.len();
        }
        let flat = flat_params(model.as_ref());
        for i in 0..layout.layer(0).len {
            if i % 2 == 0 {
                assert_eq!(flat[offset + i], 0.0, "pruned weight {i} resurrected");
            }
        }
    }

    #[test]
    fn sim_synchronous_span_is_slowest_cohort_member() {
        let mut env = ExperimentEnv::tiny_for_tests(10);
        env.fleet = DeviceProfile::fleet_mixed(env.num_devices());
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
        let mut ledger = CostLedger::new();
        let _ = run_federated_rounds(
            model.as_mut(),
            &mut mask,
            &env,
            0,
            &mut ledger,
            &mut no_hook(),
        );
        // Every round's span equals its slowest recorded finish.
        let arch = model.arch();
        let densities = vec![1.0f32; mask.num_layers()];
        let slow_base = device_sim_secs(
            &env.device_profile(2), // slow tier
            &arch,
            &densities,
            env.parts[2].len(),
            env.cfg.local_epochs,
        );
        assert!(
            ledger.max_sim_round_secs() >= slow_base,
            "span {} below the slow tier's base time {slow_base}",
            ledger.max_sim_round_secs()
        );
    }

    #[test]
    fn sim_scheduler_serde_roundtrip_and_names() {
        for sched in [
            Scheduler::Synchronous,
            Scheduler::Deadline { deadline_secs: 12.5 },
            Scheduler::Buffered { buffer_k: 3 },
        ] {
            let json = serde_json::to_string(&sched).expect("ser");
            let back: Scheduler = serde_json::from_str(&json).expect("de");
            assert_eq!(sched, back);
        }
        assert_eq!(Scheduler::Synchronous.name(), "synchronous");
        assert_eq!(Scheduler::default(), Scheduler::Synchronous);
        assert_eq!(Scheduler::Buffered { buffer_k: 1 }.name(), "buffered");
    }

    #[test]
    fn sim_slower_profiles_take_longer() {
        let env = ExperimentEnv::tiny_for_tests(11);
        let model = env.build_model(&ModelSpec::small_cnn_test());
        let arch = model.arch();
        let densities = vec![1.0f32; sparse_layout(model.as_ref()).num_layers()];
        let fast = device_sim_secs(&DeviceProfile::fast(), &arch, &densities, 20, 1);
        let slow = device_sim_secs(&DeviceProfile::slow(), &arch, &densities, 20, 1);
        assert!(slow > fast * 5.0, "slow {slow} vs fast {fast}");
        // Sparser masks shrink simulated time.
        let sparse = device_sim_secs(
            &DeviceProfile::fast(),
            &arch,
            &vec![0.05f32; densities.len()],
            20,
            1,
        );
        assert!(sparse < fast);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The weights handed to the aggregator always sum to the
        /// participating (surviving) sample count.
        #[test]
        fn sim_survivor_weights_sum_to_sample_count(
            samples in proptest::collection::vec(1usize..500, 1..8),
            alive_bits in proptest::collection::vec(0u32..2, 1..8),
        ) {
            let n = samples.len().min(alive_bits.len());
            let updates: Vec<DeviceUpdate> = samples[..n]
                .iter()
                .map(|&s| DeviceUpdate {
                    params: vec![0.0],
                    bn: Vec::new(),
                    samples: s,
                    realized_flops: 0.0,
                    wall_secs: 0.0,
                })
                .collect();
            let alive: Vec<bool> = alive_bits[..n].iter().map(|&b| b == 1).collect();
            let got = survivor_param_updates(&updates, &alive);
            let weight_sum: f64 = got.iter().map(|(_, w)| *w).sum();
            let expected: usize = samples[..n]
                .iter()
                .zip(alive.iter())
                .filter(|(_, &a)| a)
                .map(|(&s, _)| s)
                .sum();
            prop_assert_eq!(got.len(), alive.iter().filter(|&&a| a).count());
            prop_assert!((weight_sum - expected as f64).abs() < 1e-9);
        }
    }
}
