//! The transport-agnostic federation server: an explicit round state
//! machine extracted from the old in-process scheduler loops.
//!
//! Every round walks the same four phases:
//!
//! ```text
//!   Broadcast ──▶ Collect ──▶ Aggregate ──▶ Advance ──▶ (next round)
//! ```
//!
//! - **Broadcast** — sample the round's cohort, pin the round anchor
//!   (global parameters + wire context + mask epoch), and take the
//!   cohort's error-feedback residuals.
//! - **Collect** — the [`Transport`] moves the snapshot to the devices and
//!   their encoded updates back (function calls for [`InProcess`], real
//!   frame bytes for `SimTime`/`Tcp`); the virtual fleet then decides each
//!   update's arrival time and survival (deadline cut, dropout).
//! - **Aggregate** — weighted payload aggregation of the survivors, BN
//!   statistics, and the mask re-applied.
//! - **Advance** — timeline/ledger accounting, the method hook, periodic
//!   evaluation, optional checkpointing, and the round counter.
//!
//! The buffered (FedBuff-style) scheduler runs the *same phases* as an
//! event loop: `Collect` pops one simulated arrival at a time (updates
//! cross the transport's byte boundary at arrival), `Aggregate`/`Advance`
//! fire when the buffer fills, and `Broadcast` relaunches the finisher
//! from the newest global. Because it interleaves device training with
//! arrivals it requires a local transport ([`Transport::is_local`]).
//!
//! The machine is *behavior-preserving*: under the [`InProcess`] transport
//! it reproduces the pre-refactor golden traces byte for byte, and the
//! `SimTime` transport proves on every run that a real encode → bytes →
//! decode boundary changes nothing.
//!
//! ## Checkpoint / resume
//!
//! [`RunOptions::checkpoint`] saves a versioned [`Checkpoint`] at round
//! boundaries; [`RunOptions::resume`] picks an existing one up and
//! continues to the *same final trace, byte for byte* (see
//! `tests/checkpoint_resume.rs`).

use crate::aggregate::{staleness_weight, try_aggregate_bn_stats};
use crate::checkpoint::{BufferedState, Checkpoint, CheckpointError, CheckpointSpec, TaskState};
use crate::config::ConfigError;
use crate::env::ExperimentEnv;
use crate::ledger::{CostLedger, TimelineEvent};
use crate::rounds::{sample_cohort, RoundHook};
use crate::sched::{
    broadcast_payload_len, device_round_cost, should_eval, survivor_payload_updates,
    PresenceSchedule, Scheduler,
};
use crate::train::{train_devices_raw_parallel, train_one_device_raw, DeviceUpdate, LocalOutcome};
use crate::transport::{Delivery, InProcess, RoundRequest, Transport, TransportError};
use ft_data::Dataset;
use ft_metrics::{densities_from_mask, sparse_model_bytes, training_flops, SimClock};
use ft_nn::{
    apply_mask, flat_params, restore_snapshot, set_flat_params, take_snapshot, wire_ctx, Model,
};
use ft_sparse::{Codec, Mask, Payload, WireCtx};

/// The four phases of one federated round. Exposed for observability and
/// tests; [`run_with`] drives them in order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoundPhase {
    /// Pin the round anchor and ship the global snapshot to the cohort.
    Broadcast,
    /// Move device updates across the transport and decide survival
    /// (deadline cut / buffer fill).
    Collect,
    /// Fold the surviving payloads into the global model.
    Aggregate,
    /// Account, run the method hook, evaluate, checkpoint, advance.
    Advance,
}

impl RoundPhase {
    /// The phase that follows this one (`Advance` wraps to `Broadcast`).
    pub fn next(self) -> RoundPhase {
        match self {
            RoundPhase::Broadcast => RoundPhase::Collect,
            RoundPhase::Collect => RoundPhase::Aggregate,
            RoundPhase::Aggregate => RoundPhase::Advance,
            RoundPhase::Advance => RoundPhase::Broadcast,
        }
    }
}

/// Why a server run could not start or finish.
#[derive(Debug)]
pub enum ServerError {
    /// The run configuration failed structural validation.
    Config(ConfigError),
    /// The transport failed mid-run (socket error, bad frame).
    Transport(TransportError),
    /// A checkpoint could not be saved, loaded, or matched to this run.
    Checkpoint(CheckpointError),
    /// The scheduler needs a local transport (buffered aggregation
    /// interleaves training with arrivals).
    UnsupportedScheduler {
        /// The offending transport's name.
        transport: &'static str,
        /// The offending scheduler's name.
        scheduler: &'static str,
    },
    /// The codec keeps device-side error-feedback state the server cannot
    /// roll back over a remote transport: a deadline-cut or dropped upload
    /// would silently drain the device's residual and diverge from the
    /// in-process run.
    UnsupportedCodec {
        /// The offending transport's name.
        transport: &'static str,
        /// The offending codec's name.
        codec: &'static str,
    },
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Config(e) => write!(f, "invalid configuration: {e}"),
            ServerError::Transport(e) => write!(f, "transport failure: {e}"),
            ServerError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
            ServerError::UnsupportedScheduler {
                transport,
                scheduler,
            } => write!(
                f,
                "the {scheduler} scheduler requires a local transport, got {transport}"
            ),
            ServerError::UnsupportedCodec { transport, codec } => write!(
                f,
                "the {codec} codec keeps device-side error-feedback state and \
                 requires a local transport, got {transport}"
            ),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<ConfigError> for ServerError {
    fn from(e: ConfigError) -> Self {
        ServerError::Config(e)
    }
}

impl From<TransportError> for ServerError {
    fn from(e: TransportError) -> Self {
        ServerError::Transport(e)
    }
}

impl From<CheckpointError> for ServerError {
    fn from(e: CheckpointError) -> Self {
        ServerError::Checkpoint(e)
    }
}

/// Serializes method-specific hook state for the checkpoint.
pub type HookSave<'a> = &'a dyn Fn() -> Vec<u8>;
/// Restores what a [`HookSave`] captured.
pub type HookLoad<'a> = &'a dyn Fn(&[u8]);

/// How to run a federation: the transport plus durability knobs.
pub struct RunOptions<'a> {
    /// The transport device updates travel over.
    pub transport: &'a mut dyn Transport,
    /// Save a [`Checkpoint`] here at round boundaries.
    pub checkpoint: Option<CheckpointSpec>,
    /// If the checkpoint file already exists, resume from it instead of
    /// starting over (a missing file starts fresh, so passing `--resume`
    /// unconditionally is idempotent).
    pub resume: bool,
    /// Test/ops hook emulating a kill: stop (after saving any due
    /// checkpoint) once this many rounds have completed.
    pub halt_after: Option<usize>,
    /// Serializes method-specific hook state into the checkpoint (e.g.
    /// FedTiny's progressive-adjustment counter), so resumed hooks continue
    /// where they left off.
    pub hook_save: Option<HookSave<'a>>,
    /// Restores what [`hook_save`](Self::hook_save) captured.
    pub hook_load: Option<HookLoad<'a>>,
    /// Dynamic device registry: which devices are enrolled at which round
    /// (churn). Absent devices are filtered out of every sampled cohort,
    /// and rejoining devices are announced to the transport so it can
    /// re-accept their connection before the broadcast. `None` (or a
    /// trivial schedule) is the classic always-present fleet, bit for bit.
    /// Barrier schedulers only — the buffered event loop has no round
    /// boundary for a device to leave at and ignores the schedule.
    pub presence: Option<PresenceSchedule>,
    /// Live observability: at every round (barrier) or aggregation
    /// (buffered) boundary the server publishes the ledger's cumulative
    /// totals and any new [`TimelineEvent`]s to this hub, where a metrics
    /// endpoint serves them to scrapers and `ft watch` subscribers.
    /// Strictly observational — the hub only ever receives values the
    /// ledger already computed, so `None` and `Some` runs are
    /// bit-identical (golden traces included).
    pub metrics: Option<std::sync::Arc<ft_metrics::MetricsHub>>,
}

impl<'a> RunOptions<'a> {
    /// Plain options: run on `transport`, no checkpointing.
    pub fn new(transport: &'a mut dyn Transport) -> Self {
        RunOptions {
            transport,
            checkpoint: None,
            resume: false,
            halt_after: None,
            hook_save: None,
            hook_load: None,
            presence: None,
            metrics: None,
        }
    }
}

/// Runs `env.cfg.rounds` federated rounds through the phase machine on the
/// given transport, with optional checkpoint/resume. Behavior under
/// [`InProcess`] is identical to the classic
/// [`run_federated_rounds`](crate::run_federated_rounds) — that function is
/// now a thin wrapper over this one.
///
/// Returns the accuracy history (always nonempty on a completed run;
/// possibly empty when halted early via [`RunOptions::halt_after`] before
/// the first evaluation).
pub fn run_with(
    global: &mut dyn Model,
    mask: &mut Mask,
    env: &ExperimentEnv,
    eval_every: usize,
    ledger: &mut CostLedger,
    hook: &mut RoundHook<'_>,
    mut opts: RunOptions<'_>,
) -> Result<Vec<f32>, ServerError> {
    env.cfg.validate()?;
    env.scheduler.validate()?;
    if !opts.transport.is_local() && matches!(env.scheduler, Scheduler::Buffered { .. }) {
        return Err(ServerError::UnsupportedScheduler {
            transport: opts.transport.name(),
            scheduler: env.scheduler.name(),
        });
    }
    // Error-feedback residuals live on the device; the in-process loops
    // roll them back when an upload is lost, which no wire protocol here
    // can do for a remote device. Refuse rather than silently diverge from
    // the in-process run.
    if !opts.transport.is_local() && env.cfg.codec.uses_error_feedback() {
        return Err(ServerError::UnsupportedCodec {
            transport: opts.transport.name(),
            codec: env.cfg.codec.name(),
        });
    }

    // Resume: pick up a previous run's state if a matching checkpoint
    // exists at the configured path.
    let resumed: Option<Checkpoint> = match (&opts.checkpoint, opts.resume) {
        (Some(spec), true) if spec.path.exists() => {
            let ck = Checkpoint::load(&spec.path)?;
            ck.validate_against(env, eval_every)?;
            Some(ck)
        }
        _ => None,
    };

    let mut state = ServerState {
        env,
        eval_every,
        clock: SimClock::new(env.cfg.seed),
        epoch: 0,
        round: 0,
        residuals: vec![Vec::new(); env.num_devices()],
        history: Vec::new(),
        applied_mask: mask.clone(),
        agg_scratch: crate::aggregate::AggScratch::new(),
        published_events: 0,
        last_cohort: 0,
    };
    let mut buffered_resume: Option<BufferedState> = None;
    if let Some(ck) = resumed {
        state.round = ck.rounds_done;
        state.epoch = ck.epoch;
        state.clock.advance_to(ck.clock_now);
        state.residuals = ck.residuals;
        state.history = ck.history;
        *ledger = ck.ledger;
        restore_snapshot(global, &ck.snapshot);
        *mask = Mask::from_layers(ck.mask_layers);
        // Re-arm the sparse dispatch exactly as the uninterrupted run had
        // it: the *applied* mask (last `apply_mask` in an Aggregate phase)
        // may lag the current mask when a hook moved it without
        // re-applying. Pruned coordinates are already zero in the
        // snapshot, so this only notes the mask on the params.
        state.applied_mask = Mask::from_layers(ck.applied_mask_layers);
        apply_mask(global, &state.applied_mask);
        if let (Some(load), true) = (opts.hook_load, !ck.hook_state.is_empty()) {
            load(&ck.hook_state);
        }
        buffered_resume = ck.buffered;
        if state.round >= env.cfg.rounds {
            // The checkpointed run had already finished.
            opts.transport.shutdown();
            if state.history.is_empty() {
                state
                    .history
                    .push(crate::train::evaluate(global, &env.test));
            }
            return Ok(state.history);
        }
    }

    let result = match env.scheduler {
        Scheduler::Synchronous => state.run_barrier(global, mask, ledger, hook, &mut opts, None),
        Scheduler::Deadline { deadline_secs } => {
            state.run_barrier(global, mask, ledger, hook, &mut opts, Some(deadline_secs))
        }
        Scheduler::Buffered { buffer_k } => state.run_buffered(
            global,
            mask,
            ledger,
            hook,
            &mut opts,
            buffer_k,
            buffered_resume,
        ),
    };
    // Final flush: trailing collect events (buffered arrivals that never
    // aggregated) and zero-progress filler rounds reach the hub too, so a
    // post-run scrape agrees with the finished ledger exactly.
    state.publish_metrics(&opts, ledger);
    opts.transport.shutdown();
    result
}

/// Cross-round server state shared by both machine shapes.
struct ServerState<'e> {
    env: &'e ExperimentEnv,
    eval_every: usize,
    clock: SimClock,
    /// Wire epoch of the current mask (bumped whenever a hook changes it).
    epoch: u64,
    /// Completed rounds (barrier) or aggregations (buffered).
    round: usize,
    /// Per-device error-feedback accumulators.
    residuals: Vec<Vec<f32>>,
    history: Vec<f32>,
    /// The mask most recently applied to the model (Aggregate phase) —
    /// checkpointed separately from the current mask because a hook may
    /// move the mask without re-applying it.
    applied_mask: Mask,
    /// Recycled buffers of the sharded Aggregate phase: accumulators,
    /// produced params, robust-rule delta buffers, and the shard plan keyed
    /// by mask epoch. Steady-state rounds aggregate without allocating.
    agg_scratch: crate::aggregate::AggScratch,
    /// Timeline entries already pushed to the metrics hub (a cursor into
    /// `ledger.timeline()`); 0 on resume so the hub replays the resumed
    /// history and its histogram still matches the ledger exactly.
    published_events: usize,
    /// Cohort size of the last aggregation, re-published by the final
    /// flush so the gauge survives the end of the run.
    last_cohort: usize,
}

/// Scratch state of one in-flight barrier round, threaded through the
/// phases.
struct BarrierRound {
    cohort: Vec<usize>,
    parts: Vec<Dataset>,
    ctx: WireCtx,
    anchor: Vec<f32>,
    broadcast_len: f64,
    cohort_residuals: Vec<Vec<f32>>,
    residuals_before: Vec<Vec<f32>>,
    updates: Vec<Delivery>,
    per_sample_flops: f64,
    analytic_bytes: f64,
    round_start: f64,
    finish: Vec<f64>,
    alive: Vec<bool>,
    max_upload: f64,
    progressed: bool,
}

impl ServerState<'_> {
    /// Publishes new timeline events and the ledger's cumulative totals to
    /// the hub in `opts.metrics`, if any. Read-only against the run state —
    /// calling this more or less often cannot change what a run computes.
    fn publish_metrics(&mut self, opts: &RunOptions<'_>, ledger: &CostLedger) {
        let Some(hub) = &opts.metrics else { return };
        let timeline = ledger.timeline();
        for ev in &timeline[self.published_events.min(timeline.len())..] {
            hub.record_event(&ft_metrics::TraceEvent {
                device: ev.device as u64,
                round: ev.round as u64,
                start_secs: ev.start_secs,
                finish_secs: ev.finish_secs,
                applied: ev.applied,
                staleness: ev.staleness as u64,
            });
        }
        self.published_events = timeline.len();
        hub.observe_round(ft_metrics::RoundStats {
            rounds_completed: self.round as u64,
            cohort_size: self.last_cohort as u64,
            devices: self.env.num_devices() as u64,
            payload_down_bytes: ledger.payload_down_history().iter().sum(),
            payload_up_bytes: ledger.total_payload_upload_bytes(),
            sim_makespan_secs: ledger.sim_makespan_secs(),
            zero_progress_rounds: ledger.zero_progress_rounds() as u64,
            faults: *ledger.faults(),
        });
    }

    /// Assembles the checkpoint for the current state.
    fn checkpoint(
        &self,
        global: &dyn Model,
        mask: &Mask,
        ledger: &CostLedger,
        opts: &RunOptions<'_>,
        buffered: Option<BufferedState>,
    ) -> Checkpoint {
        Checkpoint {
            seed: self.env.cfg.seed,
            devices: self.env.num_devices(),
            total_rounds: self.env.cfg.rounds,
            scheduler: self.env.scheduler,
            codec: self.env.cfg.codec,
            eval_every: self.eval_every,
            cfg_json: Checkpoint::cfg_fingerprint(&self.env.cfg),
            rounds_done: self.round,
            epoch: self.epoch,
            clock_now: self.clock.now(),
            history: self.history.clone(),
            snapshot: take_snapshot(global),
            mask_layers: (0..mask.num_layers())
                .map(|l| mask.layer(l).to_vec())
                .collect(),
            applied_mask_layers: (0..self.applied_mask.num_layers())
                .map(|l| self.applied_mask.layer(l).to_vec())
                .collect(),
            residuals: self.residuals.clone(),
            ledger: ledger.clone(),
            buffered,
            hook_state: opts.hook_save.map(|f| f()).unwrap_or_default(),
        }
    }

    /// Saves a due checkpoint; returns `true` when the run should halt
    /// (the `halt_after` kill-emulation hook).
    fn checkpoint_and_halt(
        &self,
        global: &dyn Model,
        mask: &Mask,
        ledger: &CostLedger,
        opts: &RunOptions<'_>,
        buffered: Option<BufferedState>,
    ) -> Result<bool, ServerError> {
        if let Some(spec) = &opts.checkpoint {
            if spec.due(self.round) || opts.halt_after == Some(self.round) {
                self.checkpoint(global, mask, ledger, opts, buffered)
                    .save(&spec.path)?;
            }
        }
        Ok(opts.halt_after == Some(self.round))
    }

    // -----------------------------------------------------------------
    // Barrier machine (Synchronous, Deadline)
    // -----------------------------------------------------------------

    /// Barrier-style rounds through the explicit phase machine. Transplant
    /// of the old `run_barrier_rounds`: the arithmetic and its order are
    /// unchanged, so golden traces stay byte-identical.
    fn run_barrier(
        &mut self,
        global: &mut dyn Model,
        mask: &mut Mask,
        ledger: &mut CostLedger,
        hook: &mut RoundHook<'_>,
        opts: &mut RunOptions<'_>,
        deadline: Option<f64>,
    ) -> Result<Vec<f32>, ServerError> {
        let env = self.env;
        let arch = global.arch();
        let max_samples = env.parts.iter().map(|p| p.len()).max().unwrap_or(0) as f64;
        let codec = env.cfg.codec;
        // One worker pool for the whole run: device fan-out and server-side
        // kernel parallelism share its thread budget.
        let rt = env.cfg.runtime();
        global.set_runtime(rt);
        let presence = opts.presence.clone().unwrap_or_default();

        while self.round < env.cfg.rounds {
            let mut phase = RoundPhase::Broadcast;
            let mut rs: Option<BarrierRound> = None;
            // One full revolution of the machine = one round.
            let halt = loop {
                phase = match phase {
                    RoundPhase::Broadcast => {
                        let local = opts.transport.is_local();
                        rs = Some(self.phase_broadcast(&*global, mask, codec, local, &presence));
                        RoundPhase::Collect
                    }
                    RoundPhase::Collect => {
                        self.phase_collect(
                            rs.as_mut().expect("broadcast ran"),
                            &*global,
                            mask,
                            &arch,
                            codec,
                            &rt,
                            deadline,
                            &presence,
                            &mut *opts.transport,
                        )?;
                        RoundPhase::Aggregate
                    }
                    RoundPhase::Aggregate => {
                        self.phase_aggregate(
                            rs.as_mut().expect("collect ran"),
                            global,
                            mask,
                            &rt,
                            ledger,
                        );
                        RoundPhase::Advance
                    }
                    RoundPhase::Advance => {
                        break self.phase_advance(
                            rs.take().expect("aggregate ran"),
                            global,
                            mask,
                            ledger,
                            hook,
                            opts,
                            deadline,
                            max_samples,
                        )?;
                    }
                };
            };
            if halt {
                return Ok(std::mem::take(&mut self.history));
            }
        }
        if self.history.is_empty() {
            self.history.push(crate::train::evaluate(global, &env.test));
        }
        Ok(std::mem::take(&mut self.history))
    }

    /// Broadcast: sample the cohort, pin the round anchor and wire
    /// context, and take the cohort's error-feedback residuals.
    fn phase_broadcast(
        &mut self,
        global: &dyn Model,
        mask: &Mask,
        codec: Codec,
        local: bool,
        presence: &PresenceSchedule,
    ) -> BarrierRound {
        let env = self.env;
        // Partial participation: sample the round's cohort (all devices at
        // participation = 1.0, the paper's setting), then drop members the
        // churn schedule marks absent this round.
        let mut cohort = sample_cohort(env, self.round);
        if !presence.is_trivial() {
            let round = self.round;
            cohort.retain(|&k| presence.enrolled(round, k));
        }
        // Remote devices hold their own data — cloning the cohort datasets
        // would be pure memcpy the transport never reads.
        let parts: Vec<Dataset> = if local {
            cohort.iter().map(|&k| env.parts[k].clone()).collect()
        } else {
            Vec::new()
        };

        // The round's anchor and wire context. Within a barrier round the
        // server and every device share the mask epoch (the mask only moves
        // in the post-aggregation hook), so uploads are values-only.
        let ctx = wire_ctx(global, mask, self.epoch);
        let anchor = flat_params(global);
        let broadcast_len = broadcast_payload_len(codec, &ctx) as f64;
        let cohort_residuals: Vec<Vec<f32>> = cohort
            .iter()
            .map(|&k| std::mem::take(&mut self.residuals[k]))
            .collect();
        // Encoding consumes transmitted mass from the error-feedback
        // residuals; keep the pre-round state so a device whose upload is
        // then dropped or cut at the deadline can roll back (a lost upload
        // must leave the residual untouched, matching the buffered loop).
        let residuals_before: Vec<Vec<f32>> = if codec.uses_error_feedback() {
            cohort_residuals.clone()
        } else {
            Vec::new()
        };
        BarrierRound {
            cohort,
            parts,
            ctx,
            anchor,
            broadcast_len,
            cohort_residuals,
            residuals_before,
            updates: Vec::new(),
            per_sample_flops: 0.0,
            analytic_bytes: 0.0,
            round_start: 0.0,
            finish: Vec::new(),
            alive: Vec::new(),
            max_upload: 0.0,
            progressed: false,
        }
    }

    /// Collect: the transport moves the snapshot down and the updates
    /// back; the simulated fleet then fixes every cohort member's arrival
    /// time and survival, billed at the measured wire bytes.
    #[allow(clippy::too_many_arguments)]
    fn phase_collect(
        &mut self,
        rs: &mut BarrierRound,
        global: &dyn Model,
        mask: &Mask,
        arch: &ft_nn::ArchInfo,
        codec: Codec,
        rt: &ft_runtime::Runtime,
        deadline: Option<f64>,
        presence: &PresenceSchedule,
        transport: &mut dyn Transport,
    ) -> Result<(), ServerError> {
        let env = self.env;
        // Ground truth each cohort member's sample claim can be screened
        // against: the server knows every device's partition size.
        let sample_caps: Vec<usize> = rs.cohort.iter().map(|&k| env.parts[k].len()).collect();
        let rejoining = if presence.is_trivial() {
            Vec::new()
        } else {
            presence.rejoining_devices(self.round, env.num_devices())
        };
        let mut req = RoundRequest {
            global,
            mask,
            ctx: &rs.ctx,
            epoch: self.epoch,
            round: self.round,
            cohort: &rs.cohort,
            parts: &rs.parts,
            cfg: &env.cfg,
            rt,
            residuals: &mut rs.cohort_residuals,
            sample_caps: &sample_caps,
            rejoining: &rejoining,
        };
        rs.updates = transport.exchange_round(&mut req)?;
        for (taken, &k) in rs.cohort_residuals.iter_mut().zip(rs.cohort.iter()) {
            self.residuals[k] = std::mem::take(taken);
        }

        // Simulated fleet: finish time and survival of every cohort
        // member, with link time billed at the *measured* wire bytes
        // (broadcast down + encoded upload back).
        let densities = densities_from_mask(mask);
        rs.per_sample_flops = training_flops(arch, &densities);
        rs.analytic_bytes = 2.0 * sparse_model_bytes(arch, &densities);
        rs.round_start = self.clock.now();
        rs.finish = Vec::with_capacity(rs.cohort.len());
        rs.alive = Vec::with_capacity(rs.cohort.len());
        for (d, &k) in rs.updates.iter().zip(rs.cohort.iter()) {
            let Some(u) = d.update() else {
                // Quarantined member: its bytes never became an update, so
                // it has no finish time and cannot survive. `device_secs`
                // and `dropout_hits` are pure functions of `(round,
                // device)`, so skipping them here perturbs nobody else.
                rs.finish.push(0.0);
                rs.alive.push(false);
                continue;
            };
            let profile = env.device_profile(k);
            let flops = rs.per_sample_flops * u.samples as f64 * env.cfg.local_epochs as f64;
            let upload = u.payload.encoded_len(&rs.ctx) as f64;
            rs.max_upload = rs.max_upload.max(upload);
            let secs =
                self.clock
                    .device_secs(&profile, flops, rs.broadcast_len + upload, self.round, k);
            let timely = deadline.is_none_or(|d| secs <= d);
            let dropped = self.clock.dropout_hits(&profile, self.round, k);
            rs.finish.push(secs);
            rs.alive.push(timely && !dropped);
        }
        // Lost uploads keep their pre-round error-feedback residual: the
        // mass the encode step drained never reached the server.
        if codec.uses_error_feedback() {
            for ((&k, &a), before) in rs
                .cohort
                .iter()
                .zip(rs.alive.iter())
                .zip(std::mem::take(&mut rs.residuals_before))
            {
                if !a {
                    self.residuals[k] = before;
                }
            }
        }
        Ok(())
    }

    /// Aggregate: fold the surviving payloads and BN statistics into the
    /// global model; an empty (or zero-weight) cohort leaves it untouched
    /// and records a zero-progress round. Runs the sharded engine
    /// ([`Aggregator::aggregate_into`]) over `self.agg_scratch`'s recycled
    /// buffers — bit-identical to the sequential path for any shard count.
    fn phase_aggregate(
        &mut self,
        rs: &mut BarrierRound,
        global: &mut dyn Model,
        mask: &Mask,
        rt: &ft_runtime::Runtime,
        ledger: &mut CostLedger,
    ) {
        // Quarantine accounting first: every faulted delivery is a typed,
        // counted event, never a panic.
        for d in &rs.updates {
            if let Some(fault) = d.fault() {
                ledger.record_fault(fault);
            }
        }
        let surviving = survivor_payload_updates(&rs.updates, &rs.alive);
        let aggregator = self.env.cfg.aggregator;
        let outcome =
            aggregator.aggregate_into(&surviving, &rs.anchor, &rs.ctx, rt, &mut self.agg_scratch);
        ledger.record_clipped(outcome.clipped);
        rs.progressed = match outcome.params {
            Some(new_params) => {
                set_flat_params(global, new_params);
                let bn_updates: Vec<_> = rs
                    .updates
                    .iter()
                    .zip(rs.alive.iter())
                    .filter(|(_, &a)| a)
                    .filter_map(|(d, _)| d.update().map(|u| (u.bn.clone(), u.samples as f64)))
                    .collect();
                if let Some(new_bn) = try_aggregate_bn_stats(&bn_updates) {
                    for (dst, src) in global.bn_stats_mut().into_iter().zip(new_bn.iter()) {
                        *dst = src.clone();
                    }
                }
                true
            }
            None => {
                ledger.record_zero_progress();
                false
            }
        };
        apply_mask(global, mask);
        self.applied_mask = mask.clone();
    }

    /// Advance: timeline + ledger accounting, the method hook, periodic
    /// evaluation, checkpointing, and the round counter. Returns `true`
    /// when the run should halt (`halt_after`).
    #[allow(clippy::too_many_arguments)]
    fn phase_advance(
        &mut self,
        rs: BarrierRound,
        global: &mut dyn Model,
        mask: &mut Mask,
        ledger: &mut CostLedger,
        hook: &mut RoundHook<'_>,
        opts: &RunOptions<'_>,
        deadline: Option<f64>,
        max_samples: f64,
    ) -> Result<bool, ServerError> {
        let env = self.env;
        for ((&k, &secs), &a) in rs.cohort.iter().zip(rs.finish.iter()).zip(rs.alive.iter()) {
            ledger.record_timeline(TimelineEvent {
                device: k,
                round: self.round,
                start_secs: rs.round_start,
                finish_secs: rs.round_start + secs,
                applied: rs.progressed && a,
                staleness: 0,
            });
        }

        // The round's simulated span: slowest cohort member, cut at the
        // deadline when one is set.
        let slowest = rs.finish.iter().cloned().fold(0.0, f64::max);
        let span = match deadline {
            Some(d) => slowest.min(d),
            None => slowest,
        };
        self.clock.advance_by(span);
        ledger.record_sim_round(span);

        // Cost accounting: analytic (paper-style, the heaviest device at
        // the round's densities — paid even by devices that were dropped)
        // next to the measured payload bytes and the realized execution
        // costs the devices reported.
        let mut round_flops = rs.per_sample_flops * max_samples * env.cfg.local_epochs as f64;
        ledger.add_comm(rs.analytic_bytes);
        ledger.record_payload_round(rs.broadcast_len, rs.max_upload);
        let max_realized = rs
            .updates
            .iter()
            .filter_map(|d| d.update())
            .map(|u| u.realized_flops)
            .fold(0.0, f64::max);
        let round_wall = if env.cfg.parallel {
            rs.updates
                .iter()
                .filter_map(|d| d.update())
                .map(|u| u.wall_secs)
                .fold(0.0, f64::max)
        } else {
            rs.updates
                .iter()
                .filter_map(|d| d.update())
                .map(|u| u.wall_secs)
                .sum()
        };
        ledger.record_realized_round(max_realized, round_wall);

        let mask_before_hook = mask.clone();
        round_flops += hook(global, mask, self.round, ledger);
        if *mask != mask_before_hook {
            self.epoch += 1;
        }
        ledger.record_round_flops(round_flops);

        if should_eval(self.eval_every, self.round, env.cfg.rounds) {
            self.history.push(crate::train::evaluate(global, &env.test));
        }
        self.round += 1;
        self.last_cohort = rs.cohort.len();
        self.publish_metrics(opts, ledger);
        self.checkpoint_and_halt(&*global, mask, ledger, opts, None)
    }

    // -----------------------------------------------------------------
    // Buffered machine (FedBuff-style event loop)
    // -----------------------------------------------------------------

    /// FedBuff-style buffered asynchronous rounds as the event-driven
    /// instantiation of the phase machine: `Collect` pops one simulated
    /// arrival (the update crosses the transport byte boundary there),
    /// `Aggregate`/`Advance` fire once `buffer_k` updates are buffered, and
    /// `Broadcast` relaunches the finisher from the newest global.
    /// Transplant of the old `run_buffered_rounds` — bit-identical.
    #[allow(clippy::too_many_arguments)]
    fn run_buffered(
        &mut self,
        global: &mut dyn Model,
        mask: &mut Mask,
        ledger: &mut CostLedger,
        hook: &mut RoundHook<'_>,
        opts: &mut RunOptions<'_>,
        buffer_k: usize,
        resume: Option<BufferedState>,
    ) -> Result<Vec<f32>, ServerError> {
        let env = self.env;
        let n = env.num_devices();
        if env.cfg.rounds == 0 || n == 0 {
            self.history.push(crate::train::evaluate(global, &env.test));
            return Ok(std::mem::take(&mut self.history));
        }
        let arch = global.arch();
        let codec = env.cfg.codec;
        // The run's shared worker pool (see the barrier machine).
        let rt = env.cfg.runtime();
        global.set_runtime(rt);
        let k_needed = buffer_k.clamp(1, n);
        let mut task_counter = vec![0usize; n];
        let mut last_agg_secs = 0.0f64;

        // Mask densities and wire context, refreshed only when the mask can
        // change (after an aggregation's hook) rather than on every event.
        let mut densities = densities_from_mask(mask);
        let mut ctx = std::sync::Arc::new(wire_ctx(&*global, mask, self.epoch));
        let segments = ctx.segments.clone();

        // Measured wire bytes of one task launched under `ctx`: broadcast
        // down plus the (shared-epoch) encoded upload back.
        let task_bytes = |codec: Codec, ctx: &WireCtx| -> (f64, f64) {
            let down = broadcast_payload_len(codec, ctx) as f64;
            let up = codec.encoded_len_for(ctx, true) as f64;
            (down, up)
        };

        let mut events = 0usize;
        // Broadcast (initial wave): every device starts at t = 0 from
        // version 0 with the same `(seed, 0, device)` RNG streams as a
        // synchronous first round — or, on resume, the persisted in-flight
        // tasks are rehydrated instead.
        let mut in_flight: Vec<InFlight> = match resume {
            Some(b) => {
                last_agg_secs = b.last_agg_secs;
                events = b.events;
                task_counter = b.task_counter;
                b.in_flight
                    .into_iter()
                    .map(|t| InFlight {
                        device: t.device,
                        start_secs: t.start_secs,
                        finish_secs: t.finish_secs,
                        start_version: t.start_version,
                        dropped: t.dropped,
                        analytic_flops: t.analytic_flops,
                        analytic_bytes: t.analytic_bytes,
                        download_bytes: t.download_bytes,
                        ctx: std::sync::Arc::new(WireCtx::new(
                            t.ctx_alive,
                            segments.clone(),
                            t.ctx_epoch,
                        )),
                        outcome: t.outcome,
                    })
                    .collect()
            }
            None => {
                let outcomes =
                    train_devices_raw_parallel(&*global, &env.parts, Some(mask), &env.cfg, 0, &rt);
                outcomes
                    .into_iter()
                    .enumerate()
                    .map(|(k, outcome)| {
                        let profile = env.device_profile(k);
                        let (flops, analytic_bytes) = device_round_cost(
                            &arch,
                            &densities,
                            outcome.samples,
                            env.cfg.local_epochs,
                        );
                        let (down, up) = task_bytes(codec, &ctx);
                        let secs =
                            self.clock
                                .device_secs(&profile, flops, down + up, task_counter[k], k);
                        let dropped = self.clock.dropout_hits(&profile, task_counter[k], k);
                        task_counter[k] += 1;
                        InFlight {
                            device: k,
                            start_secs: 0.0,
                            finish_secs: secs,
                            start_version: 0,
                            dropped,
                            analytic_flops: flops,
                            analytic_bytes,
                            download_bytes: down,
                            ctx: ctx.clone(),
                            outcome,
                        }
                    })
                    .collect()
            }
        };

        // Safety valve: with pathological dropout (every update lost) the
        // buffer can never fill; cap the event count instead of spinning.
        let max_events = env.cfg.rounds.max(1) * n * 64;
        // Buffered arrivals awaiting aggregation: `event_idx` points at the
        // arrival's timeline entry, flipped to applied once it aggregates.
        // Empty at every checkpoint boundary by construction.
        let mut buffer: Vec<BufferedArrival> = Vec::new();

        while self.round < env.cfg.rounds && events < max_events {
            events += 1;
            // --- Collect: pop the earliest arrival; ties break on the
            // lower device index, so the event order is a pure function of
            // the simulated times.
            let next = in_flight
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.finish_secs
                        .total_cmp(&b.finish_secs)
                        .then(a.device.cmp(&b.device))
                })
                .map(|(i, _)| i)
                .expect("nonempty fleet");
            let task = in_flight.swap_remove(next);
            self.clock.advance_to(task.finish_secs);
            let staleness = self.round - task.start_version;

            // Recorded as not-applied until it actually reaches an
            // aggregate; a dropped (or forever-buffered) update keeps
            // `applied: false`.
            let event_idx = ledger.record_timeline(TimelineEvent {
                device: task.device,
                round: self.round,
                start_secs: task.start_secs,
                finish_secs: task.finish_secs,
                applied: false,
                staleness,
            });
            if !task.dropped {
                // The actual transmission: encode the device-local delta
                // now that the server's current mask epoch is known (a
                // stale mask forces explicit indices), then push it across
                // the transport's byte boundary. Lost updates are never
                // encoded, so their error-feedback residual is untouched.
                let k = task.device;
                let residual = codec
                    .uses_error_feedback()
                    .then_some(&mut self.residuals[k]);
                let update = task.outcome.encode(codec, &task.ctx, self.epoch, residual);
                let update = opts.transport.deliver_update(update, &task.ctx);
                let upload_bytes = update.payload.encoded_len(&task.ctx) as f64;
                buffer.push(BufferedArrival {
                    update,
                    staleness,
                    analytic_flops: task.analytic_flops,
                    analytic_bytes: task.analytic_bytes,
                    download_bytes: task.download_bytes,
                    upload_bytes,
                    event_idx,
                });
            }

            let mut aggregated = false;
            if buffer.len() >= k_needed {
                // --- Aggregate: staleness-weighted payload aggregation
                // over the buffered updates, decoded straight out of their
                // wire form and applied to the *current* global.
                let current = flat_params(&*global);
                let param_updates: Vec<(&Payload, f64, usize)> = buffer
                    .iter()
                    .map(|b| (&b.update.payload, b.update.samples as f64, b.staleness))
                    .collect();
                let outcome = env
                    .cfg
                    .aggregator
                    .aggregate_stale(&param_updates, &current, &ctx);
                ledger.record_clipped(outcome.clipped);
                // A fully-quarantined (all-zero-weight) buffer keeps the
                // current global instead of dividing by zero.
                set_flat_params(global, &outcome.params.unwrap_or(current));
                let bn_updates: Vec<_> = buffer
                    .iter()
                    .map(|b| {
                        (
                            b.update.bn.clone(),
                            b.update.samples as f64 * staleness_weight(b.staleness),
                        )
                    })
                    .collect();
                if let Some(new_bn) = try_aggregate_bn_stats(&bn_updates) {
                    for (dst, src) in global.bn_stats_mut().into_iter().zip(new_bn.iter()) {
                        *dst = src.clone();
                    }
                }
                // Re-apply the mask: stale updates were trained under old
                // masks and must not resurrect pruned weights.
                apply_mask(global, mask);
                self.applied_mask = mask.clone();

                // --- Advance: per-device accounting (one round charges one
                // model transfer — the heaviest in the buffer), the hook,
                // evaluation, and the version counter.
                ledger.add_comm(buffer.iter().map(|b| b.analytic_bytes).fold(0.0, f64::max));
                ledger.record_payload_round(
                    buffer.iter().map(|b| b.download_bytes).fold(0.0, f64::max),
                    buffer.iter().map(|b| b.upload_bytes).fold(0.0, f64::max),
                );
                for b in &buffer {
                    ledger.set_timeline_applied(b.event_idx);
                }
                let analytic = buffer.iter().map(|b| b.analytic_flops).fold(0.0, f64::max);
                let realized = buffer
                    .iter()
                    .map(|b| b.update.realized_flops)
                    .fold(0.0, f64::max);
                let wall = buffer
                    .iter()
                    .map(|b| b.update.wall_secs)
                    .fold(0.0, f64::max);
                ledger.record_realized_round(realized, wall);
                ledger.record_sim_round(self.clock.now() - last_agg_secs);
                last_agg_secs = self.clock.now();
                buffer.clear();

                let mask_before_hook = mask.clone();
                let extra = hook(global, mask, self.round, ledger);
                // The hook may have adjusted the mask: refresh the cached
                // densities and wire context (with a bumped epoch) for the
                // tasks launched from here on.
                if *mask != mask_before_hook {
                    self.epoch += 1;
                    densities = densities_from_mask(mask);
                    ctx = std::sync::Arc::new(wire_ctx(&*global, mask, self.epoch));
                }
                ledger.record_round_flops(analytic + extra);
                if should_eval(self.eval_every, self.round, env.cfg.rounds) {
                    self.history.push(crate::train::evaluate(global, &env.test));
                }
                self.round += 1;
                self.last_cohort = k_needed;
                self.publish_metrics(opts, ledger);
                aggregated = true;
            }

            // --- Broadcast: the finisher restarts immediately from the
            // current global (and the current mask/version — its next
            // update is fresh by construction). No restart once the final
            // round has aggregated.
            if self.round >= env.cfg.rounds {
                break;
            }
            let k = task.device;
            let profile = env.device_profile(k);
            // Mid-flight restarts train one device at a time on the
            // caller's thread, so the device's kernels get the whole pool.
            let outcome = train_one_device_raw(
                &*global,
                &env.parts[k],
                Some(mask),
                &env.cfg,
                self.round,
                k,
                task_counter[k] as u64,
                &rt,
            );
            let (flops, analytic_bytes) =
                device_round_cost(&arch, &densities, outcome.samples, env.cfg.local_epochs);
            let (down, up) = task_bytes(codec, &ctx);
            let secs = self
                .clock
                .device_secs(&profile, flops, down + up, task_counter[k], k);
            let dropped = self.clock.dropout_hits(&profile, task_counter[k], k);
            task_counter[k] += 1;
            in_flight.push(InFlight {
                device: k,
                start_secs: self.clock.now(),
                finish_secs: self.clock.now() + secs,
                start_version: self.round,
                dropped,
                analytic_flops: flops,
                analytic_bytes,
                download_bytes: down,
                ctx: ctx.clone(),
                outcome,
            });

            // Post-aggregation boundary: the buffer is empty and the fleet
            // is fully in flight again — the state a buffered checkpoint
            // captures.
            if aggregated
                && self.checkpoint_and_halt(
                    &*global,
                    mask,
                    ledger,
                    opts,
                    Some(buffered_state(
                        last_agg_secs,
                        events,
                        &task_counter,
                        &in_flight,
                    )),
                )?
            {
                return Ok(std::mem::take(&mut self.history));
            }
        }

        // Rounds the event cap starved (pathological all-dropout fleets):
        // recorded as zero-progress so the ledger still covers
        // `cfg.rounds`.
        while self.round < env.cfg.rounds {
            ledger.record_round_flops(0.0);
            ledger.record_sim_round(0.0);
            ledger.record_zero_progress();
            self.round += 1;
        }
        if self.history.is_empty() {
            self.history.push(crate::train::evaluate(global, &env.test));
        }
        // Final-state checkpoint so a completed run resumes to a no-op.
        if let Some(spec) = &opts.checkpoint {
            self.checkpoint(
                &*global,
                mask,
                ledger,
                opts,
                Some(buffered_state(
                    last_agg_secs,
                    events,
                    &task_counter,
                    &in_flight,
                )),
            )
            .save(&spec.path)?;
        }
        Ok(std::mem::take(&mut self.history))
    }
}

/// One in-flight device task in the buffered event loop. The trained delta
/// stays *device-local* (a [`LocalOutcome`], not yet encoded): the wire
/// encoding happens at arrival time, when the server's current mask epoch
/// decides whether a `MaskCsr` upload can drop its indices.
struct InFlight {
    device: usize,
    start_secs: f64,
    finish_secs: f64,
    start_version: usize,
    dropped: bool,
    analytic_flops: f64,
    analytic_bytes: f64,
    /// Measured broadcast bytes the device downloaded at task start.
    download_bytes: f64,
    /// Wire context (mask + epoch) the device trained under — shared with
    /// every other task launched under the same mask.
    ctx: std::sync::Arc<WireCtx>,
    outcome: LocalOutcome,
}

/// One buffered arrival awaiting aggregation.
struct BufferedArrival {
    update: DeviceUpdate,
    staleness: usize,
    analytic_flops: f64,
    analytic_bytes: f64,
    download_bytes: f64,
    upload_bytes: f64,
    event_idx: usize,
}

/// Snapshots the buffered event-loop state for a checkpoint.
fn buffered_state(
    last_agg_secs: f64,
    events: usize,
    task_counter: &[usize],
    in_flight: &[InFlight],
) -> BufferedState {
    BufferedState {
        last_agg_secs,
        events,
        task_counter: task_counter.to_vec(),
        in_flight: in_flight
            .iter()
            .map(|t| TaskState {
                device: t.device,
                start_secs: t.start_secs,
                finish_secs: t.finish_secs,
                start_version: t.start_version,
                dropped: t.dropped,
                analytic_flops: t.analytic_flops,
                analytic_bytes: t.analytic_bytes,
                download_bytes: t.download_bytes,
                ctx_epoch: t.ctx.epoch,
                ctx_alive: t.ctx.alive.clone(),
                outcome: t.outcome.clone(),
            })
            .collect(),
    }
}

/// Convenience used by the classic entry point: run on the [`InProcess`]
/// transport with no checkpointing, panicking on the (impossible for a
/// valid in-process configuration) error paths.
pub(crate) fn run_in_process(
    global: &mut dyn Model,
    mask: &mut Mask,
    env: &ExperimentEnv,
    eval_every: usize,
    ledger: &mut CostLedger,
    hook: &mut RoundHook<'_>,
) -> Vec<f32> {
    let mut transport = InProcess;
    run_with(
        global,
        mask,
        env,
        eval_every,
        ledger,
        hook,
        RunOptions::new(&mut transport),
    )
    .unwrap_or_else(|e| panic!("federated run failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rounds::no_hook;
    use crate::spec::ModelSpec;
    use crate::transport::SimTime;
    use ft_nn::sparse_layout;

    #[test]
    fn phase_order_cycles() {
        assert_eq!(RoundPhase::Broadcast.next(), RoundPhase::Collect);
        assert_eq!(RoundPhase::Collect.next(), RoundPhase::Aggregate);
        assert_eq!(RoundPhase::Aggregate.next(), RoundPhase::Advance);
        assert_eq!(RoundPhase::Advance.next(), RoundPhase::Broadcast);
    }

    #[test]
    fn run_with_rejects_invalid_config_typed() {
        let mut env = ExperimentEnv::tiny_for_tests(0);
        env.cfg.threads = crate::config::MAX_THREADS + 1;
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
        let mut ledger = CostLedger::new();
        let mut transport = InProcess;
        let err = run_with(
            model.as_mut(),
            &mut mask,
            &env,
            0,
            &mut ledger,
            &mut no_hook(),
            RunOptions::new(&mut transport),
        )
        .expect_err("must reject");
        assert!(matches!(
            err,
            ServerError::Config(ConfigError::TooManyThreads { threads }) if threads > 4096
        ));
        // Bad scheduler parameters are equally typed.
        env.cfg.threads = 0;
        env.scheduler = Scheduler::Buffered { buffer_k: 0 };
        let err = run_with(
            model.as_mut(),
            &mut mask,
            &env,
            0,
            &mut ledger,
            &mut no_hook(),
            RunOptions::new(&mut transport),
        )
        .expect_err("must reject");
        assert!(matches!(err, ServerError::Config(ConfigError::ZeroBufferK)));
        assert!(err.to_string().contains("buffer_k"));
    }

    /// A transport that claims to be remote and must never be exchanged
    /// with — run_with has to reject unsupported combinations first.
    struct RemoteStub;
    impl Transport for RemoteStub {
        fn name(&self) -> &'static str {
            "stub"
        }
        fn is_local(&self) -> bool {
            false
        }
        fn exchange_round(
            &mut self,
            _req: &mut RoundRequest<'_>,
        ) -> Result<Vec<Delivery>, TransportError> {
            unreachable!("never exchanged")
        }
        fn deliver_update(&mut self, u: DeviceUpdate, _ctx: &WireCtx) -> DeviceUpdate {
            u
        }
    }

    #[test]
    fn buffered_requires_local_transport() {
        let mut env = ExperimentEnv::tiny_for_tests(1);
        env.scheduler = Scheduler::Buffered { buffer_k: 2 };
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
        let mut ledger = CostLedger::new();
        let mut transport = RemoteStub;
        let err = run_with(
            model.as_mut(),
            &mut mask,
            &env,
            0,
            &mut ledger,
            &mut no_hook(),
            RunOptions::new(&mut transport),
        )
        .expect_err("buffered over a remote transport must be rejected");
        assert!(matches!(err, ServerError::UnsupportedScheduler { .. }));
    }

    #[test]
    fn error_feedback_codecs_require_local_transport() {
        // The in-process loops roll a lost upload's error-feedback
        // residual back on the device; no wire protocol here can do that
        // for a remote device, so the combination is refused up front
        // instead of silently diverging from the in-process run.
        let mut env = ExperimentEnv::tiny_for_tests(2);
        env.cfg.codec = ft_sparse::Codec::TopK {
            k_frac: 0.1,
            error_feedback: true,
        };
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
        let mut ledger = CostLedger::new();
        let mut transport = RemoteStub;
        let err = run_with(
            model.as_mut(),
            &mut mask,
            &env,
            0,
            &mut ledger,
            &mut no_hook(),
            RunOptions::new(&mut transport),
        )
        .expect_err("EF codec over a remote transport must be rejected");
        assert!(matches!(err, ServerError::UnsupportedCodec { .. }));
        assert!(err.to_string().contains("error-feedback"));
        // TopK *without* error feedback is stateless and stays allowed
        // (the stub then fails at exchange time, which is fine — we only
        // assert it passes validation).
        env.cfg.codec = ft_sparse::Codec::TopK {
            k_frac: 0.1,
            error_feedback: false,
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut model = env.build_model(&ModelSpec::small_cnn_test());
            let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
            let mut ledger = CostLedger::new();
            let mut transport = RemoteStub;
            let _ = run_with(
                model.as_mut(),
                &mut mask,
                &env,
                0,
                &mut ledger,
                &mut no_hook(),
                RunOptions::new(&mut transport),
            );
        }));
        assert!(result.is_err(), "stub must have reached exchange_round");
    }

    /// The in-memory byte-boundary transport reproduces the in-process run
    /// bit for bit, for every scheduler: this is the "the wire layer
    /// carries the whole federation" invariant.
    #[test]
    fn sim_time_transport_is_bit_identical_to_in_process() {
        for scheduler in [
            Scheduler::Synchronous,
            Scheduler::Deadline { deadline_secs: 2.0 },
            Scheduler::Buffered { buffer_k: 2 },
        ] {
            let run = |use_sim_time: bool| {
                let mut env = ExperimentEnv::tiny_for_tests(21);
                env.fleet = crate::DeviceProfile::fleet_mixed(env.num_devices());
                env.scheduler = scheduler;
                env.cfg.codec = ft_sparse::Codec::MaskCsr;
                let mut model = env.build_model(&ModelSpec::small_cnn_test());
                let mut mask = Mask::ones(&sparse_layout(model.as_ref()));
                let mut ledger = CostLedger::new();
                let history = if use_sim_time {
                    let mut t = SimTime;
                    run_with(
                        model.as_mut(),
                        &mut mask,
                        &env,
                        1,
                        &mut ledger,
                        &mut no_hook(),
                        RunOptions::new(&mut t),
                    )
                    .expect("sim_time run")
                } else {
                    crate::run_federated_rounds(
                        model.as_mut(),
                        &mut mask,
                        &env,
                        1,
                        &mut ledger,
                        &mut no_hook(),
                    )
                };
                let bits: Vec<u32> = flat_params(model.as_ref())
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let sim: Vec<u64> = ledger
                    .sim_secs_history()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let up: Vec<u64> = ledger
                    .payload_up_history()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                (history, bits, sim, up)
            };
            assert_eq!(
                run(true),
                run(false),
                "{scheduler:?} diverged across the byte boundary"
            );
        }
    }
}
