//! Declarative model construction, so experiment configs are plain data.

use ft_nn::models::{ResNet18, SmallCnn, Vgg11};
use ft_nn::Model;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Which architecture to build and at what scale.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// CIFAR-style ResNet18.
    ResNet18 {
        /// Channel width multiplier (1.0 = paper scale).
        width: f32,
        /// Square input resolution.
        input: usize,
    },
    /// VGG11 with batch normalization.
    Vgg11 {
        /// Channel width multiplier.
        width: f32,
        /// Square input resolution.
        input: usize,
    },
    /// The 3-conv small dense model of Tables IV/V.
    SmallCnn {
        /// Base channel count.
        width: usize,
        /// Square input resolution.
        input: usize,
    },
}

impl ModelSpec {
    /// Test-scale ResNet18 (width 1/8, 8×8 inputs).
    pub fn resnet_test() -> Self {
        ModelSpec::ResNet18 {
            width: 0.125,
            input: 8,
        }
    }

    /// Test-scale VGG11.
    pub fn vgg_test() -> Self {
        ModelSpec::Vgg11 {
            width: 0.125,
            input: 8,
        }
    }

    /// Test-scale SmallCnn.
    pub fn small_cnn_test() -> Self {
        ModelSpec::SmallCnn { width: 4, input: 8 }
    }

    /// Input resolution this spec expects.
    pub fn input_size(&self) -> usize {
        match *self {
            ModelSpec::ResNet18 { input, .. } | ModelSpec::Vgg11 { input, .. } => input,
            ModelSpec::SmallCnn { input, .. } => input,
        }
    }

    /// Builds the model with a seeded RNG so identical specs + seeds give
    /// identical initializations across methods (the paper starts every
    /// baseline from the same pre-trained weights; we start from the same
    /// initialization).
    pub fn build(&self, in_c: usize, classes: usize, seed: u64) -> Box<dyn Model> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x6d0d_e15e);
        match *self {
            ModelSpec::ResNet18 { width, input } => {
                Box::new(ResNet18::new(&mut rng, width, classes, in_c, input))
            }
            ModelSpec::Vgg11 { width, input } => {
                Box::new(Vgg11::new(&mut rng, width, classes, in_c, input))
            }
            ModelSpec::SmallCnn { width, input } => {
                Box::new(SmallCnn::new(&mut rng, width, classes, in_c, input))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_nn::flat_params;

    #[test]
    fn same_seed_same_init() {
        let a = ModelSpec::resnet_test().build(3, 10, 5);
        let b = ModelSpec::resnet_test().build(3, 10, 5);
        assert_eq!(flat_params(a.as_ref()), flat_params(b.as_ref()));
    }

    #[test]
    fn different_seed_different_init() {
        let a = ModelSpec::vgg_test().build(3, 10, 1);
        let b = ModelSpec::vgg_test().build(3, 10, 2);
        assert_ne!(flat_params(a.as_ref()), flat_params(b.as_ref()));
    }

    #[test]
    fn builds_every_arch() {
        for spec in [
            ModelSpec::resnet_test(),
            ModelSpec::vgg_test(),
            ModelSpec::small_cnn_test(),
        ] {
            let m = spec.build(3, 10, 0);
            assert_eq!(m.arch().classes, 10);
            assert_eq!(spec.input_size(), 8);
        }
    }
}
