//! Device-side local training and model evaluation.

use crate::config::FlConfig;
use ft_data::{BatchBuf, Dataset};
use ft_nn::loss::{cross_entropy_loss_only, softmax_cross_entropy_into};
use ft_nn::optim::Sgd;
use ft_nn::{
    accuracy, flat_params, flat_params_into, set_flat_params, ArchInfo, BnStats, Mode, Model,
};
use ft_runtime::Runtime;
use ft_sparse::{Codec, Mask, Payload, WireCtx};
use ft_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cell::RefCell;

/// Everything the encoder side of the update pipeline needs: the codec, the
/// wire context (aliveness, segments, mask epoch) and the receiver's known
/// mask epoch.
#[derive(Clone, Copy, Debug)]
pub struct WireSpec<'a> {
    /// Wire codec for the upload.
    pub codec: Codec,
    /// Context both ends encode/decode against.
    pub ctx: &'a WireCtx,
    /// Mask epoch the server holds (`MaskCsr` drops indices when it equals
    /// `ctx.epoch`).
    pub peer_epoch: u64,
}

/// What a device sends back after local training: its *encoded update
/// delta* (`θ_k − anchor` under the run's [`Codec`] — never a raw dense
/// parameter vector), refreshed BN statistics, its dataset size (the
/// FedAvg weight), and the realized execution cost of its local epochs.
#[derive(Clone, Debug)]
pub struct DeviceUpdate {
    /// Encoded parameter delta against the global the device downloaded.
    pub payload: Payload,
    /// BatchNorm running statistics after local training.
    pub bn: Vec<BnStats>,
    /// `|D_k|`.
    pub samples: usize,
    /// Multiply–accumulate FLOPs the device's kernels actually executed
    /// (dense or sparse path, whichever the dispatcher chose).
    pub realized_flops: f64,
    /// Wall-clock seconds the device spent in local training.
    pub wall_secs: f64,
}

/// Raw device-side training outcome *before* wire encoding. Stays inside
/// the crate: the buffered scheduler trains eagerly but encodes at
/// arrival time (when the server's mask epoch is known), so it briefly
/// holds this device-local state.
#[derive(Clone, Debug)]
pub(crate) struct LocalOutcome {
    /// `θ_k − anchor`, dense, device-local.
    pub(crate) delta: Vec<f32>,
    /// BatchNorm running statistics after local training.
    pub(crate) bn: Vec<BnStats>,
    /// `|D_k|`.
    pub(crate) samples: usize,
    /// Realized kernel FLOPs.
    pub(crate) realized_flops: f64,
    /// Host wall-clock seconds of local training.
    pub(crate) wall_secs: f64,
}

impl LocalOutcome {
    /// Encodes the delta into a [`DeviceUpdate`], consuming the outcome.
    pub(crate) fn encode(
        self,
        codec: Codec,
        ctx: &WireCtx,
        peer_epoch: u64,
        residual: Option<&mut Vec<f32>>,
    ) -> DeviceUpdate {
        DeviceUpdate {
            payload: codec.encode(&self.delta, ctx, peer_epoch, residual),
            bn: self.bn,
            samples: self.samples,
            realized_flops: self.realized_flops,
            wall_secs: self.wall_secs,
        }
    }
}

/// Reusable buffers for the local-training loop: one of these per worker
/// makes every epoch of [`local_train_scratch`] allocation-free at steady
/// state (batch assembly, forward activations, loss gradient, proximal
/// anchor all live here or inside the model's own arenas).
#[derive(Clone, Debug, Default)]
pub struct TrainScratch {
    /// Shuffled sample order for the current epoch.
    order: Vec<usize>,
    /// Mini-batch assembly buffers.
    buf: BatchBuf,
    /// Forward logits.
    logits: Tensor,
    /// Loss gradient w.r.t. the logits.
    grad: Tensor,
    /// FedProx anchor (`θ_global` at entry); only filled when `mu > 0`.
    prox_anchor: Vec<f32>,
}

/// Runs `epochs` of mini-batch SGD on `model` over `data`, with gradients
/// masked by `mask` when given (Eq. 5). The RNG drives batch shuffling only.
pub fn local_train(
    model: &mut dyn Model,
    data: &Dataset,
    mask: Option<&Mask>,
    epochs: usize,
    batch_size: usize,
    sgd: &mut Sgd,
    rng: &mut ChaCha8Rng,
) {
    local_train_prox(model, data, mask, epochs, batch_size, sgd, rng, 0.0);
}

/// [`local_train`] with an optional FedProx proximal term: when `mu > 0`,
/// each step adds `µ(θ − θ_global)` to the gradient, where `θ_global` is the
/// model's state at entry (Li et al., "Federated Optimization in
/// Heterogeneous Networks").
#[allow(clippy::too_many_arguments)]
pub fn local_train_prox(
    model: &mut dyn Model,
    data: &Dataset,
    mask: Option<&Mask>,
    epochs: usize,
    batch_size: usize,
    sgd: &mut Sgd,
    rng: &mut ChaCha8Rng,
    mu: f32,
) {
    let mut scratch = TrainScratch::default();
    local_train_scratch(
        model,
        data,
        mask,
        epochs,
        batch_size,
        sgd,
        rng,
        mu,
        &mut scratch,
    );
}

/// [`local_train_prox`] running through caller-owned [`TrainScratch`]
/// buffers. Bit-identical to the allocating form (same RNG draws, same
/// batch order, same kernel sequence); a reused scratch just skips the
/// per-batch allocations.
#[allow(clippy::too_many_arguments)]
pub fn local_train_scratch(
    model: &mut dyn Model,
    data: &Dataset,
    mask: Option<&Mask>,
    epochs: usize,
    batch_size: usize,
    sgd: &mut Sgd,
    rng: &mut ChaCha8Rng,
    mu: f32,
    scratch: &mut TrainScratch,
) {
    if mu > 0.0 {
        flat_params_into(model, &mut scratch.prox_anchor);
    }
    let bs = batch_size.max(1);
    for _ in 0..epochs {
        scratch.order.clear();
        scratch.order.extend(0..data.len());
        scratch.order.shuffle(rng);
        let mut pos = 0;
        while pos < scratch.order.len() {
            let end = (pos + bs).min(scratch.order.len());
            data.batch_into(&scratch.order[pos..end], &mut scratch.buf);
            pos = end;
            model.forward_into(&scratch.buf.images, &mut scratch.logits, Mode::Train);
            let _ =
                softmax_cross_entropy_into(&scratch.logits, &scratch.buf.labels, &mut scratch.grad);
            model.backward_scratch(&scratch.grad);
            if mu > 0.0 {
                add_proximal_term(model, &scratch.prox_anchor, mu);
            }
            sgd.step(model, mask);
            model.zero_grad();
        }
    }
}

/// Adds `µ(θ − θ_anchor)` to every gradient accumulator.
fn add_proximal_term(model: &mut dyn Model, anchor: &[f32], mu: f32) {
    let mut offset = 0;
    for p in model.params_mut() {
        let n = p.len();
        let a = &anchor[offset..offset + n];
        for ((g, w), &w0) in p
            .grad
            .data_mut()
            .iter_mut()
            .zip(p.data.data().iter())
            .zip(a.iter())
        {
            *g += mu * (w - w0);
        }
        offset += n;
    }
}

/// The per-device RNG seed: a pure function of `(run seed, round, device)`
/// so parallel and sequential execution draw identical streams.
pub fn device_rng_seed(run_seed: u64, round: usize, device: usize) -> u64 {
    run_seed ^ (round as u64).wrapping_mul(0x9e37_79b9) ^ (device as u64) << 32
}

/// Per-worker cached device state: a device-local model restored from the
/// global parameters each round instead of deep-cloned, plus the optimizer,
/// training scratch and flat-vector arenas. One lives in each worker
/// thread's TLS, so repeated rounds reuse every buffer (model weights,
/// layer arenas, velocity, batch assembly) and the per-round cost drops to
/// a handful of `memcpy`s.
struct DeviceTrainer {
    model: Box<dyn Model>,
    sgd: Sgd,
    scratch: TrainScratch,
    anchor: Vec<f32>,
    arch: ArchInfo,
}

thread_local! {
    static DEVICE_TRAINER: RefCell<Option<DeviceTrainer>> = const { RefCell::new(None) };
}

impl DeviceTrainer {
    /// Restores the cached model to an exact functional copy of `global`:
    /// parameters, gradients, BN running statistics and mask state. Layer
    /// scratch arenas and cached sparse plans survive (they re-key on batch
    /// geometry and mask epoch), which is the whole point of the cache.
    fn restore_from(&mut self, global: &dyn Model, rt: &Runtime) {
        flat_params_into(global, &mut self.anchor);
        set_flat_params(self.model.as_mut(), &self.anchor);
        let src_bn = global.bn_stats();
        let mut l = 0;
        self.model.for_each_bn_stats_mut(&mut |dst| {
            let s = src_bn.get(l).expect("BatchNorm layer count mismatch");
            dst.mean.copy_from_slice(&s.mean);
            dst.var.copy_from_slice(&s.var);
            l += 1;
        });
        assert_eq!(l, src_bn.len(), "BatchNorm layer count mismatch");
        let src_params = global.params();
        let mut i = 0;
        self.model.for_each_param_mut(&mut |p| {
            let src = src_params[i];
            p.grad.copy_from(&src.grad);
            if let Some(bits) = &src.mask_bits {
                p.note_mask(bits);
            }
            i += 1;
        });
        self.model.set_runtime(*rt);
        self.model.reset_realized_flops();
    }

    /// Whether the cached model can impersonate `global` after a restore:
    /// same architecture, and no stale mask recorded on a parameter the
    /// global considers unmasked (masks can be asserted but not cleared).
    fn can_restore(&self, global: &dyn Model, arch: &ArchInfo) -> bool {
        if self.arch != *arch {
            return false;
        }
        let src_params = global.params();
        let mut ok = true;
        let mut i = 0;
        self.model.for_each_param(&mut |p| {
            ok &= src_params[i].mask_bits.is_some() || p.mask_bits.is_none();
            i += 1;
        });
        ok && i == src_params.len()
    }
}

/// Trains one device from a snapshot of the global model and returns its
/// *raw* outcome (the dense delta, not yet encoded). `round` selects the
/// RNG stream and the decayed learning rate; `salt` further separates
/// repeated tasks of the same `(round, device)` pair (buffered schedulers
/// restart a device at an unchanged server version) — barrier schedulers
/// pass `0`, which leaves the classic `(seed, round, device)` stream
/// untouched. `rt` is the runtime the device's *kernels* execute on
/// (sequential when the caller already fans devices out across the pool;
/// kernels are bit-identical either way).
///
/// The device model is not cloned: each worker thread keeps a cached
/// [`DeviceTrainer`] and restores it from `global` (bit-identical to a
/// fresh clone, since training state is a pure function of the restored
/// parameters and the round RNG stream).
#[allow(clippy::too_many_arguments)]
pub(crate) fn train_one_device_raw(
    global: &dyn Model,
    data: &Dataset,
    mask: Option<&Mask>,
    cfg: &FlConfig,
    round: usize,
    device: usize,
    salt: u64,
    rt: &Runtime,
) -> LocalOutcome {
    DEVICE_TRAINER.with(|slot| {
        let mut slot = slot.borrow_mut();
        let arch = global.arch();
        let reuse = slot.as_ref().is_some_and(|t| t.can_restore(global, &arch));
        if !reuse {
            *slot = Some(DeviceTrainer {
                model: global.clone_model(),
                sgd: Sgd::default(),
                scratch: TrainScratch::default(),
                anchor: Vec::new(),
                arch,
            });
        }
        let trainer = slot.as_mut().expect("trainer just installed");
        trainer.restore_from(global, rt);

        let mut sgd_cfg = cfg.sgd;
        if cfg.lr_decay != 1.0 {
            sgd_cfg.lr *= cfg.lr_decay.powi(round as i32);
        }
        trainer.sgd.reset_with(sgd_cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(
            device_rng_seed(cfg.seed, round, device) ^ salt.wrapping_mul(0xd1b5_4a32_d192_ed03),
        );
        let started = std::time::Instant::now();
        local_train_scratch(
            trainer.model.as_mut(),
            data,
            mask,
            cfg.local_epochs,
            cfg.batch_size,
            &mut trainer.sgd,
            &mut rng,
            cfg.prox_mu,
            &mut trainer.scratch,
        );
        let wall_secs = started.elapsed().as_secs_f64();
        let mut delta = flat_params(trainer.model.as_ref());
        for (d, &a) in delta.iter_mut().zip(trainer.anchor.iter()) {
            *d -= a;
        }
        LocalOutcome {
            delta,
            bn: trainer.model.bn_stats().into_iter().cloned().collect(),
            samples: data.len(),
            realized_flops: trainer.model.realized_flops(),
            wall_secs,
        }
    })
}

/// Trains one device and encodes its update delta under `wire` — the full
/// device side of the typed update pipeline. `residual` is the device's
/// persistent error-feedback accumulator (only used by
/// `Codec::TopK { error_feedback: true }`).
#[allow(clippy::too_many_arguments)]
pub fn train_one_device(
    global: &dyn Model,
    data: &Dataset,
    mask: Option<&Mask>,
    cfg: &FlConfig,
    round: usize,
    device: usize,
    salt: u64,
    wire: &WireSpec<'_>,
    residual: Option<&mut Vec<f32>>,
    rt: &Runtime,
) -> DeviceUpdate {
    train_one_device_raw(global, data, mask, cfg, round, device, salt, rt).encode(
        wire.codec,
        wire.ctx,
        wire.peer_epoch,
        residual,
    )
}

/// Trains every device from the same global model and returns their encoded
/// updates in device order. When `cfg.parallel`, devices are fanned out over
/// `rt`'s shared worker pool (bounded by `rt.threads()`, not one unbounded
/// OS thread per device); otherwise devices run sequentially and each
/// device's *kernels* draw on `rt` instead.
///
/// `residuals` holds one error-feedback accumulator per device (an empty
/// vector until its first use); codecs without error feedback leave them
/// untouched. Device RNGs are derived from `(cfg.seed, round, device)`,
/// each device owns its residual, and the parallel kernels are bit-identical
/// to the sequential ones, so every execution shape produces identical
/// results.
///
/// # Panics
///
/// Panics if `residuals.len()` differs from `parts.len()`.
#[allow(clippy::too_many_arguments)]
pub fn train_devices_parallel(
    global: &dyn Model,
    parts: &[Dataset],
    mask: Option<&Mask>,
    cfg: &FlConfig,
    round: usize,
    wire: &WireSpec<'_>,
    residuals: &mut [Vec<f32>],
    rt: &Runtime,
) -> Vec<DeviceUpdate> {
    assert_eq!(
        residuals.len(),
        parts.len(),
        "one residual accumulator per device"
    );
    let needs_residual = wire.codec.uses_error_feedback();
    let fan_out = cfg.parallel && parts.len() > 1 && rt.is_parallel();
    // One thread budget for the whole run: either the devices occupy the
    // pool (kernels inline), or a lone device's kernels do.
    let kernel_rt = if fan_out { Runtime::sequential() } else { *rt };
    let run_one = |k: usize, data: &Dataset, res: &mut Vec<f32>| {
        train_one_device(
            global,
            data,
            mask,
            cfg,
            round,
            k,
            0,
            wire,
            needs_residual.then_some(res),
            &kernel_rt,
        )
    };

    if fan_out {
        let mut out: Vec<Option<DeviceUpdate>> = (0..parts.len()).map(|_| None).collect();
        let jobs: Vec<_> = parts
            .iter()
            .zip(residuals.iter_mut())
            .zip(out.iter_mut())
            .enumerate()
            .map(|(k, ((data, res), slot))| (k, data, res, slot))
            .collect();
        rt.scatter(jobs, |(k, data, res, slot)| {
            *slot = Some(run_one(k, data, res));
        });
        out.into_iter()
            .map(|u| u.expect("device job completed"))
            .collect()
    } else {
        parts
            .iter()
            .zip(residuals.iter_mut())
            .enumerate()
            .map(|(k, (d, res))| run_one(k, d, res))
            .collect()
    }
}

/// [`train_devices_parallel`] without the wire encoding: returns the raw
/// device-local outcomes. The buffered scheduler uses this because its
/// devices encode at *arrival* time (when the server's mask epoch is
/// known), not at training time.
pub(crate) fn train_devices_raw_parallel(
    global: &dyn Model,
    parts: &[Dataset],
    mask: Option<&Mask>,
    cfg: &FlConfig,
    round: usize,
    rt: &Runtime,
) -> Vec<LocalOutcome> {
    let fan_out = cfg.parallel && parts.len() > 1 && rt.is_parallel();
    let kernel_rt = if fan_out { Runtime::sequential() } else { *rt };
    let run_one = |k: usize, data: &Dataset| {
        train_one_device_raw(global, data, mask, cfg, round, k, 0, &kernel_rt)
    };
    if fan_out {
        let mut out: Vec<Option<LocalOutcome>> = (0..parts.len()).map(|_| None).collect();
        let jobs: Vec<_> = parts
            .iter()
            .zip(out.iter_mut())
            .enumerate()
            .map(|(k, (data, slot))| (k, data, slot))
            .collect();
        rt.scatter(jobs, |(k, data, slot)| {
            *slot = Some(run_one(k, data));
        });
        out.into_iter()
            .map(|o| o.expect("device job completed"))
            .collect()
    } else {
        parts
            .iter()
            .enumerate()
            .map(|(k, d)| run_one(k, d))
            .collect()
    }
}

/// Top-1 accuracy on a dataset in `Eval` mode, batched to bound memory.
/// Batches are assembled through a reused [`BatchBuf`] (no per-batch index
/// vector or image copy allocation).
pub fn evaluate(model: &mut dyn Model, data: &Dataset) -> f32 {
    assert!(!data.is_empty(), "cannot evaluate on an empty dataset");
    let mut correct = 0.0f64;
    let mut seen = 0usize;
    let n = data.len();
    let bs = 64;
    let mut buf = BatchBuf::default();
    let mut logits = Tensor::default();
    let mut i = 0;
    while i < n {
        data.batch_range_into(i, (i + bs).min(n), &mut buf);
        model.forward_into(&buf.images, &mut logits, Mode::Eval);
        correct += accuracy(&logits, &buf.labels) as f64 * buf.labels.len() as f64;
        seen += buf.labels.len();
        i += bs;
    }
    (correct / seen as f64) as f32
}

/// Mean cross-entropy loss on a dataset in `Eval` mode (Alg. 1 line 19).
pub fn eval_loss(model: &mut dyn Model, data: &Dataset) -> f32 {
    assert!(!data.is_empty(), "cannot evaluate on an empty dataset");
    let mut total = 0.0f64;
    let mut seen = 0usize;
    let n = data.len();
    let bs = 64;
    let mut buf = BatchBuf::default();
    let mut logits = Tensor::default();
    let mut i = 0;
    while i < n {
        data.batch_range_into(i, (i + bs).min(n), &mut buf);
        model.forward_into(&buf.images, &mut logits, Mode::Eval);
        total += cross_entropy_loss_only(&logits, &buf.labels) as f64 * buf.labels.len() as f64;
        seen += buf.labels.len();
        i += bs;
    }
    (total / seen as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ExperimentEnv;
    use crate::spec::ModelSpec;
    use ft_nn::optim::SgdConfig;
    use ft_nn::{apply_mask, sparse_layout, wire_ctx};
    use ft_sparse::Mask;

    /// Dense-codec wire plumbing for a model (the classic exchange).
    fn dense_ctx(model: &dyn Model) -> WireCtx {
        let layout = sparse_layout(model);
        wire_ctx(model, &Mask::ones(&layout), 0)
    }

    fn no_residuals(n: usize) -> Vec<Vec<f32>> {
        vec![Vec::new(); n]
    }

    #[test]
    fn local_train_reduces_loss() {
        let env = ExperimentEnv::tiny_for_tests(1);
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let data = &env.parts[0];
        let before = eval_loss(model.as_mut(), data);
        let mut sgd = Sgd::new(SgdConfig {
            lr: 0.1,
            ..Default::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        local_train(model.as_mut(), data, None, 8, 8, &mut sgd, &mut rng);
        let after = eval_loss(model.as_mut(), data);
        assert!(after < before, "loss {before} -> {after}");
    }

    #[test]
    fn parallel_matches_sequential() {
        let env = ExperimentEnv::tiny_for_tests(2);
        let model = env.build_model(&ModelSpec::small_cnn_test());
        let ctx = dense_ctx(model.as_ref());
        let wire = WireSpec {
            codec: Codec::Dense,
            ctx: &ctx,
            peer_epoch: 0,
        };
        let mut cfg_par = env.cfg;
        cfg_par.parallel = true;
        let mut cfg_seq = env.cfg;
        cfg_seq.parallel = false;
        let n = env.parts.len();
        let a = train_devices_parallel(
            model.as_ref(),
            &env.parts,
            None,
            &cfg_par,
            3,
            &wire,
            &mut no_residuals(n),
            &Runtime::exact(4),
        );
        let b = train_devices_parallel(
            model.as_ref(),
            &env.parts,
            None,
            &cfg_seq,
            3,
            &wire,
            &mut no_residuals(n),
            &Runtime::sequential(),
        );
        assert_eq!(a.len(), b.len());
        for (ua, ub) in a.iter().zip(b.iter()) {
            assert_eq!(ua.payload, ub.payload, "parallel/sequential divergence");
            assert_eq!(ua.samples, ub.samples);
        }
    }

    #[test]
    fn masked_training_preserves_sparsity() {
        let env = ExperimentEnv::tiny_for_tests(3);
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let layout = sparse_layout(model.as_ref());
        let mut mask = Mask::ones(&layout);
        for i in 0..layout.layer(0).len {
            if i % 2 == 0 {
                mask.set(0, i, false);
            }
        }
        apply_mask(model.as_mut(), &mask);
        let ctx = wire_ctx(model.as_ref(), &mask, 0);
        let wire = WireSpec {
            codec: Codec::MaskCsr,
            ctx: &ctx,
            peer_epoch: 0,
        };
        let n = env.parts.len();
        let updates = train_devices_parallel(
            model.as_ref(),
            &env.parts,
            Some(&mask),
            &env.cfg,
            0,
            &wire,
            &mut no_residuals(n),
            &Runtime::sequential(),
        );
        // Decoded deltas keep pruned coordinates at exactly zero (and the
        // anchor is zero there too, so the trained parameters stay zero).
        let mut offset = 0;
        for p in model.params() {
            if p.prunable {
                break;
            }
            offset += p.len();
        }
        for u in &updates {
            let delta = u.payload.decode(&ctx);
            for i in 0..layout.layer(0).len {
                if i % 2 == 0 {
                    assert_eq!(delta[offset + i], 0.0, "pruned weight moved on device");
                }
            }
        }
    }

    #[test]
    fn evaluate_bounds() {
        let env = ExperimentEnv::tiny_for_tests(4);
        let mut model = env.build_model(&ModelSpec::small_cnn_test());
        let acc = evaluate(model.as_mut(), &env.test);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn device_updates_carry_bn_stats() {
        let env = ExperimentEnv::tiny_for_tests(5);
        let model = env.build_model(&ModelSpec::small_cnn_test());
        let ctx = dense_ctx(model.as_ref());
        let wire = WireSpec {
            codec: Codec::Dense,
            ctx: &ctx,
            peer_epoch: 0,
        };
        let n = env.parts.len();
        let updates = train_devices_parallel(
            model.as_ref(),
            &env.parts,
            None,
            &env.cfg,
            0,
            &wire,
            &mut no_residuals(n),
            &Runtime::sequential(),
        );
        assert_eq!(updates.len(), env.num_devices());
        assert!(!updates[0].bn.is_empty());
        // Training must have moved the BN statistics away from init.
        assert!(updates[0]
            .bn
            .iter()
            .any(|s| s.mean.iter().any(|&m| m != 0.0)));
    }

    #[test]
    fn error_feedback_residuals_persist_across_rounds() {
        // Under TopK with error feedback the untransmitted mass stays on
        // the device: the residual is nonzero after a round and influences
        // the next round's payload.
        let env = ExperimentEnv::tiny_for_tests(9);
        let model = env.build_model(&ModelSpec::small_cnn_test());
        let ctx = dense_ctx(model.as_ref());
        let wire = WireSpec {
            codec: Codec::TopK {
                k_frac: 0.05,
                error_feedback: true,
            },
            ctx: &ctx,
            peer_epoch: 0,
        };
        let mut residuals = no_residuals(env.parts.len());
        let _ = train_devices_parallel(
            model.as_ref(),
            &env.parts,
            None,
            &env.cfg,
            0,
            &wire,
            &mut residuals,
            &Runtime::sequential(),
        );
        assert!(
            residuals.iter().all(|r| !r.is_empty()),
            "residuals untouched"
        );
        assert!(
            residuals.iter().any(|r| r.iter().any(|&v| v != 0.0)),
            "no residual mass accumulated at k_frac = 0.05"
        );
    }
}
