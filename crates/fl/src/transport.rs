//! Transports: how device updates reach the server.
//!
//! The round state machine in [`crate::server`] never talks to devices
//! directly — it hands a [`RoundRequest`] to a [`Transport`] and gets the
//! cohort's [`DeviceUpdate`]s back. Three implementations ship:
//!
//! - [`InProcess`] — devices are trained by direct function calls inside
//!   the server process and their updates are handed over as structs. This
//!   is the pre-transport behavior; the committed golden traces pin it
//!   byte-for-byte.
//! - [`SimTime`] — identical scheduling and virtual-time fleet, but every
//!   update crosses a *real byte boundary*: it is serialized into the same
//!   length-prefixed frame format the TCP transport uses
//!   ([`Payload::to_bytes`]) and parsed back with [`Payload::from_bytes`].
//!   Because the wire codecs round-trip bit-exactly, `SimTime` reproduces
//!   the `InProcess` golden traces byte-for-byte — proving the wire layer
//!   carries the whole federation, not just a byte counter.
//! - [`TcpTransport`] — frames cross a real socket (`std::net`, no new
//!   dependencies): the server broadcasts the global snapshot to connected
//!   [`run_tcp_device`] clients and reads their update frames back. For the
//!   same seed a loopback TCP run reaches the bit-identical final model as
//!   `InProcess`.
//!
//! ## Frame format
//!
//! Every frame is `u32 body_len | u8 kind | body` (little-endian):
//!
//! | kind | body |
//! |------|------|
//! | `1` HELLO  | `u32` device id |
//! | `2` ROUND  | `u64` round, `u64` mask epoch, params `f32` vec, BN stats, mask bit vecs |
//! | `3` UPDATE | `u32` device, `u64` samples, `f64` realized FLOPs, `f64` wall secs, BN stats, payload bytes blob |
//! | `4` DONE   | empty |
//!
//! Floats travel as raw IEEE-754 bits, so a ROUND → train → UPDATE
//! round-trip over any transport is bit-exact.

use crate::bytes::{
    put_bitvec, put_blob, put_bn_stats, put_f64, put_u32, put_u64, ByteReader, ReadError,
};
use crate::config::FlConfig;
use crate::train::{train_devices_parallel, DeviceUpdate, WireSpec};
use ft_data::Dataset;
use ft_nn::{apply_mask, restore_snapshot, take_snapshot, wire_ctx, Model, ModelSnapshot};
use ft_runtime::Runtime;
use ft_sparse::{Mask, Payload, WireCtx};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

/// Frame kinds of the wire protocol.
const FRAME_HELLO: u8 = 1;
const FRAME_ROUND: u8 = 2;
const FRAME_UPDATE: u8 = 3;
const FRAME_DONE: u8 = 4;

/// Why a transport exchange failed. In-process transports never fail; the
/// TCP transport surfaces socket and frame errors here so the server loop
/// can report them as a typed [`crate::server::ServerError`].
#[derive(Debug)]
pub enum TransportError {
    /// A socket operation failed.
    Io(std::io::Error),
    /// A peer sent a malformed or unexpected frame.
    Frame(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport io error: {e}"),
            TransportError::Frame(what) => write!(f, "bad frame: {what}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

impl From<ReadError> for TransportError {
    fn from(e: ReadError) -> Self {
        TransportError::Frame(e.to_string())
    }
}

/// Everything a transport needs to run one barrier round: the server's
/// current global snapshot (model + mask + wire context) and the cohort it
/// must collect updates from.
pub struct RoundRequest<'a> {
    /// The server's global model (the round anchor).
    pub global: &'a dyn Model,
    /// The server's current mask.
    pub mask: &'a Mask,
    /// Wire context both ends encode/decode against.
    pub ctx: &'a WireCtx,
    /// The server's current mask epoch.
    pub epoch: u64,
    /// Round index (selects device RNG streams and lr decay).
    pub round: usize,
    /// Global device indices of this round's cohort.
    pub cohort: &'a [usize],
    /// The cohort's local datasets, in cohort order (empty for remote
    /// transports, whose devices hold their own data).
    pub parts: &'a [Dataset],
    /// The run configuration.
    pub cfg: &'a FlConfig,
    /// The run's shared worker pool.
    pub rt: &'a Runtime,
    /// Per-cohort-member error-feedback residuals (only used by local
    /// transports; remote devices keep their own).
    pub residuals: &'a mut [Vec<f32>],
}

/// How one round's updates travel from the devices to the server.
///
/// Implementations must return the cohort's updates **in cohort order** —
/// aggregation order is part of the determinism contract.
pub trait Transport {
    /// Stable lowercase name for run headers and reports.
    fn name(&self) -> &'static str;

    /// Whether device training runs inside the server process. The
    /// buffered scheduler interleaves training with its event loop and
    /// therefore requires a local transport.
    fn is_local(&self) -> bool;

    /// Runs one barrier round: broadcast the request's global snapshot to
    /// the cohort and collect their updates, in cohort order.
    fn exchange_round(
        &mut self,
        req: &mut RoundRequest<'_>,
    ) -> Result<Vec<DeviceUpdate>, TransportError>;

    /// Ships one already-encoded update across the transport's byte
    /// boundary (the buffered loop calls this at arrival time). Local
    /// transports may return it unchanged.
    fn deliver_update(&mut self, update: DeviceUpdate, ctx: &WireCtx) -> DeviceUpdate;

    /// Tears the transport down after the final round (e.g. sends DONE
    /// frames to connected devices). Errors are best-effort-ignored.
    fn shutdown(&mut self) {}
}

/// The function-call transport: devices train inside the server process and
/// updates are handed over as structs — the pre-transport behavior, pinned
/// byte-for-byte by the committed golden traces.
#[derive(Clone, Copy, Debug, Default)]
pub struct InProcess;

impl Transport for InProcess {
    fn name(&self) -> &'static str {
        "in_process"
    }

    fn is_local(&self) -> bool {
        true
    }

    fn exchange_round(
        &mut self,
        req: &mut RoundRequest<'_>,
    ) -> Result<Vec<DeviceUpdate>, TransportError> {
        let wire = WireSpec {
            codec: req.cfg.codec,
            ctx: req.ctx,
            peer_epoch: req.epoch,
        };
        Ok(train_devices_parallel(
            req.global,
            req.parts,
            Some(req.mask),
            req.cfg,
            req.round,
            &wire,
            req.residuals,
            req.rt,
        ))
    }

    fn deliver_update(&mut self, update: DeviceUpdate, _ctx: &WireCtx) -> DeviceUpdate {
        update
    }
}

/// The in-memory byte-boundary transport: devices train exactly as under
/// [`InProcess`], but every update is serialized into a real UPDATE frame
/// and parsed back before the server sees it. Golden traces are
/// byte-identical to `InProcess` because the wire codecs round-trip
/// bit-exactly — which is precisely what this transport exists to prove on
/// every run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimTime;

impl Transport for SimTime {
    fn name(&self) -> &'static str {
        "sim_time"
    }

    fn is_local(&self) -> bool {
        true
    }

    fn exchange_round(
        &mut self,
        req: &mut RoundRequest<'_>,
    ) -> Result<Vec<DeviceUpdate>, TransportError> {
        let ctx = req.ctx;
        let updates = InProcess.exchange_round(req)?;
        Ok(updates
            .into_iter()
            .enumerate()
            .map(|(i, u)| self.deliver_update_for(i, u, ctx))
            .collect())
    }

    fn deliver_update(&mut self, update: DeviceUpdate, ctx: &WireCtx) -> DeviceUpdate {
        self.deliver_update_for(0, update, ctx)
    }
}

impl SimTime {
    /// Frame round-trip for one update; `device` only labels the frame.
    fn deliver_update_for(
        &self,
        device: usize,
        update: DeviceUpdate,
        ctx: &WireCtx,
    ) -> DeviceUpdate {
        let frame = encode_update_frame(device, &update, ctx);
        let (_, back) =
            decode_update_frame(&frame, ctx).expect("self-encoded update frame round-trips");
        back
    }
}

// ---------------------------------------------------------------------------
// Frame codec (shared by SimTime and Tcp)
// ---------------------------------------------------------------------------

/// Serializes one UPDATE frame body.
pub(crate) fn encode_update_frame(device: usize, u: &DeviceUpdate, ctx: &WireCtx) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + 4 * u.payload.len());
    put_u32(&mut out, device as u32);
    put_u64(&mut out, u.samples as u64);
    put_f64(&mut out, u.realized_flops);
    put_f64(&mut out, u.wall_secs);
    put_bn_stats(&mut out, &u.bn);
    put_blob(&mut out, &u.payload.to_bytes(ctx));
    out
}

/// Parses one UPDATE frame body back into `(device, update)`.
pub(crate) fn decode_update_frame(
    bytes: &[u8],
    ctx: &WireCtx,
) -> Result<(usize, DeviceUpdate), TransportError> {
    let mut r = ByteReader::new(bytes);
    let device = r.u32()? as usize;
    let samples = r.len_u64()?;
    let realized_flops = r.f64()?;
    let wall_secs = r.f64()?;
    let bn = r.bn_stats()?;
    let payload_bytes = r.blob()?;
    if r.remaining() != 0 {
        return Err(TransportError::Frame(
            "trailing bytes in update frame".into(),
        ));
    }
    let payload = Payload::from_bytes(&payload_bytes, ctx)
        .map_err(|e| TransportError::Frame(format!("payload: {e}")))?;
    Ok((
        device,
        DeviceUpdate {
            payload,
            bn,
            samples,
            realized_flops,
            wall_secs,
        },
    ))
}

/// Serializes the shared tail of a ROUND frame body: the round index, the
/// server's mask epoch, and the full global snapshot (params + BN stats +
/// mask bits). The per-recipient cohort position is prepended separately
/// by the sender, so this (large) part is encoded once per round.
pub(crate) fn encode_round_frame(
    round: usize,
    epoch: u64,
    snapshot: &ModelSnapshot,
    mask: &Mask,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + 4 * snapshot.params.len());
    put_u64(&mut out, round as u64);
    put_u64(&mut out, epoch);
    crate::bytes::put_f32_vec(&mut out, &snapshot.params);
    put_bn_stats(&mut out, &snapshot.bn);
    put_u32(&mut out, mask.num_layers() as u32);
    for l in 0..mask.num_layers() {
        put_bitvec(&mut out, mask.layer(l));
    }
    out
}

/// Parses one ROUND frame body back into
/// `(cohort_pos, round, epoch, snapshot, mask)`. The cohort position is
/// the device's index *within this round's cohort* — the in-process loop
/// derives RNG streams from that positional index, so the device side must
/// train under it (not under its global id) to stay bit-identical.
pub(crate) fn decode_round_frame(
    bytes: &[u8],
) -> Result<(usize, usize, u64, ModelSnapshot, Mask), TransportError> {
    let mut r = ByteReader::new(bytes);
    let cohort_pos = r.u32()? as usize;
    let round = r.len_u64()?;
    let epoch = r.u64()?;
    let params = r.f32_vec()?;
    let bn = r.bn_stats()?;
    let layers = r.u32()? as usize;
    let mut mask_layers = Vec::with_capacity(layers.min(4096));
    for _ in 0..layers {
        mask_layers.push(r.bitvec()?);
    }
    if r.remaining() != 0 {
        return Err(TransportError::Frame(
            "trailing bytes in round frame".into(),
        ));
    }
    Ok((
        cohort_pos,
        round,
        epoch,
        ModelSnapshot { params, bn },
        Mask::from_layers(mask_layers),
    ))
}

/// Writes one length-prefixed frame.
fn write_frame(stream: &mut TcpStream, kind: u8, body: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(body.len() as u32).to_le_bytes())?;
    stream.write_all(&[kind])?;
    stream.write_all(body)?;
    stream.flush()
}

/// Reads one length-prefixed frame, bounding the body at 1 GiB so a
/// corrupt length prefix cannot trigger an absurd allocation.
fn read_frame(stream: &mut TcpStream) -> Result<(u8, Vec<u8>), TransportError> {
    let mut header = [0u8; 5];
    stream.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
    if len > 1 << 30 {
        return Err(TransportError::Frame(format!(
            "frame of {len} bytes refused"
        )));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok((header[4], body))
}

// ---------------------------------------------------------------------------
// TCP transport (server side)
// ---------------------------------------------------------------------------

/// The socket transport: each device is a [`run_tcp_device`] client on the
/// other end of a `std::net::TcpStream`, identified by the device id in its
/// HELLO frame. Length-prefixed frames carry the global snapshot down and
/// the encoded updates back, so every exchanged byte is a real wire byte.
///
/// Only barrier schedulers (`Synchronous`, `Deadline`) are supported — the
/// buffered event loop interleaves training with arrivals and requires a
/// local transport.
#[derive(Debug)]
pub struct TcpTransport {
    /// One connected stream per device, indexed by device id.
    streams: Vec<TcpStream>,
}

impl TcpTransport {
    /// Binds `addr` and accepts exactly `devices` clients, each of which
    /// must open with a HELLO frame carrying a unique device id in
    /// `0..devices`.
    pub fn listen(addr: impl ToSocketAddrs, devices: usize) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(addr)?;
        Self::accept_fleet(&listener, devices)
    }

    /// Accepts `devices` HELLO-identified clients on an existing listener
    /// (lets tests bind port 0 first and hand the resolved address to their
    /// client threads).
    pub fn accept_fleet(listener: &TcpListener, devices: usize) -> Result<Self, TransportError> {
        let mut slots: Vec<Option<TcpStream>> = (0..devices).map(|_| None).collect();
        let mut connected = 0;
        while connected < devices {
            let (mut stream, _) = listener.accept()?;
            let (kind, body) = read_frame(&mut stream)?;
            if kind != FRAME_HELLO {
                return Err(TransportError::Frame(format!(
                    "expected HELLO, got frame kind {kind}"
                )));
            }
            let mut r = ByteReader::new(&body);
            let device = r.u32()? as usize;
            if device >= devices {
                return Err(TransportError::Frame(format!(
                    "device id {device} outside fleet of {devices}"
                )));
            }
            if slots[device].is_some() {
                return Err(TransportError::Frame(format!(
                    "device id {device} connected twice"
                )));
            }
            slots[device] = Some(stream);
            connected += 1;
        }
        Ok(TcpTransport {
            streams: slots
                .into_iter()
                .map(|s| s.expect("all slots filled"))
                .collect(),
        })
    }

    /// Number of connected devices.
    pub fn devices(&self) -> usize {
        self.streams.len()
    }
}

impl Transport for TcpTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn is_local(&self) -> bool {
        false
    }

    fn exchange_round(
        &mut self,
        req: &mut RoundRequest<'_>,
    ) -> Result<Vec<DeviceUpdate>, TransportError> {
        let snapshot = take_snapshot(req.global);
        let shared = encode_round_frame(req.round, req.epoch, &snapshot, req.mask);
        for (pos, &k) in req.cohort.iter().enumerate() {
            let stream = self
                .streams
                .get_mut(k)
                .ok_or_else(|| TransportError::Frame(format!("no stream for device {k}")))?;
            // Per-recipient prefix: the device's position within this
            // round's cohort (the index the in-process loop trains it
            // under), then the shared snapshot.
            let mut frame = Vec::with_capacity(4 + shared.len());
            put_u32(&mut frame, pos as u32);
            frame.extend_from_slice(&shared);
            write_frame(stream, FRAME_ROUND, &frame)?;
        }
        let mut updates = Vec::with_capacity(req.cohort.len());
        for &k in req.cohort {
            let stream = self.streams.get_mut(k).expect("checked above");
            let (kind, body) = read_frame(stream)?;
            if kind != FRAME_UPDATE {
                return Err(TransportError::Frame(format!(
                    "expected UPDATE from device {k}, got frame kind {kind}"
                )));
            }
            let (device, update) = decode_update_frame(&body, req.ctx)?;
            if device != k {
                return Err(TransportError::Frame(format!(
                    "device {device} answered on device {k}'s stream"
                )));
            }
            updates.push(update);
        }
        Ok(updates)
    }

    fn deliver_update(&mut self, update: DeviceUpdate, _ctx: &WireCtx) -> DeviceUpdate {
        // Unreachable in practice: the buffered loop rejects non-local
        // transports before it starts.
        update
    }

    fn shutdown(&mut self) {
        for stream in &mut self.streams {
            let _ = write_frame(stream, FRAME_DONE, &[]);
        }
    }
}

// ---------------------------------------------------------------------------
// TCP client (device side)
// ---------------------------------------------------------------------------

/// Runs one device's side of the TCP protocol until the server hangs up:
/// connect (retrying refused connections for ~30 s, so clients may launch
/// before the server finishes binding), identify as `device`, then for
/// every ROUND frame restore the broadcast snapshot, train locally (same
/// RNG streams, same kernels as the in-process path — the final aggregate
/// is bit-identical), and reply with the encoded update frame.
///
/// `env` must be built from the same seed and configuration as the
/// server's (the synthetic datasets are pure functions of the seed, so both
/// ends derive identical partitions without ever shipping data).
pub fn run_tcp_device(
    addr: impl ToSocketAddrs + Clone,
    device: usize,
    env: &crate::ExperimentEnv,
    spec: &crate::ModelSpec,
) -> Result<(), TransportError> {
    let mut stream = connect_with_retry(addr)?;
    let mut hello = Vec::new();
    put_u32(&mut hello, device as u32);
    write_frame(&mut stream, FRAME_HELLO, &hello)?;

    let mut model = env.build_model(spec);
    let rt = env.cfg.runtime();
    model.set_runtime(rt);
    let mut residual: Vec<f32> = Vec::new();
    let data = env.parts.get(device).ok_or_else(|| {
        TransportError::Frame(format!("device {device} has no partition in this env"))
    })?;

    loop {
        let (kind, body) = read_frame(&mut stream)?;
        match kind {
            FRAME_DONE => return Ok(()),
            FRAME_ROUND => {
                let (cohort_pos, round, epoch, snapshot, mask) = decode_round_frame(&body)?;
                restore_snapshot(model.as_mut(), &snapshot);
                apply_mask(model.as_mut(), &mask);
                let ctx = wire_ctx(model.as_ref(), &mask, epoch);
                let wire = WireSpec {
                    codec: env.cfg.codec,
                    ctx: &ctx,
                    peer_epoch: epoch,
                };
                let needs_residual = env.cfg.codec.uses_error_feedback();
                // Train under the *cohort-positional* index the server
                // assigned for this round — the in-process loop derives
                // device RNG streams from that position, so this is what
                // keeps TCP bit-identical under partial participation.
                let update = crate::train::train_one_device(
                    model.as_ref(),
                    data,
                    Some(&mask),
                    &env.cfg,
                    round,
                    cohort_pos,
                    0,
                    &wire,
                    needs_residual.then_some(&mut residual),
                    &rt,
                );
                let frame = encode_update_frame(device, &update, &ctx);
                write_frame(&mut stream, FRAME_UPDATE, &frame)?;
            }
            other => {
                return Err(TransportError::Frame(format!(
                    "unexpected frame kind {other} from server"
                )))
            }
        }
    }
}

/// Connects to the server, retrying connection-refused/reset errors with a
/// short backoff for ~30 seconds — client and server processes are usually
/// launched concurrently, and the bind is a race the client should absorb.
fn connect_with_retry(addr: impl ToSocketAddrs + Clone) -> Result<TcpStream, TransportError> {
    let mut last_err = None;
    for _ in 0..120 {
        match TcpStream::connect(addr.clone()) {
            Ok(stream) => return Ok(stream),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionRefused | std::io::ErrorKind::ConnectionReset
                ) =>
            {
                last_err = Some(e);
                std::thread::sleep(std::time::Duration::from_millis(250));
            }
            Err(e) => return Err(e.into()),
        }
    }
    Err(last_err.expect("retry loop ran").into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelSpec;
    use crate::ExperimentEnv;
    use ft_nn::sparse_layout;
    use ft_sparse::Codec;

    #[test]
    fn update_frame_roundtrips_bit_exactly() {
        let env = ExperimentEnv::tiny_for_tests(3);
        let model = env.build_model(&ModelSpec::small_cnn_test());
        let mask = Mask::ones(&sparse_layout(model.as_ref()));
        let ctx = wire_ctx(model.as_ref(), &mask, 5);
        for codec in [Codec::Dense, Codec::MaskCsr, Codec::QuantInt8] {
            let delta: Vec<f32> = (0..ctx.len()).map(|i| (i as f32).sin()).collect();
            let update = DeviceUpdate {
                payload: codec.encode(&delta, &ctx, 5, None),
                bn: model.bn_stats().into_iter().cloned().collect(),
                samples: 17,
                realized_flops: 1.25e9,
                wall_secs: 0.125,
            };
            let frame = encode_update_frame(2, &update, &ctx);
            let (device, back) = decode_update_frame(&frame, &ctx).expect("roundtrip");
            assert_eq!(device, 2);
            assert_eq!(back.payload, update.payload, "{codec:?}");
            assert_eq!(back.bn, update.bn);
            assert_eq!(back.samples, 17);
            assert_eq!(
                back.realized_flops.to_bits(),
                update.realized_flops.to_bits()
            );
        }
    }

    #[test]
    fn round_frame_roundtrips_snapshot_and_mask() {
        let env = ExperimentEnv::tiny_for_tests(4);
        let model = env.build_model(&ModelSpec::small_cnn_test());
        let layout = sparse_layout(model.as_ref());
        let mut mask = Mask::ones(&layout);
        for i in 0..layout.layer(0).len {
            if i % 3 == 0 {
                mask.set(0, i, false);
            }
        }
        let snapshot = take_snapshot(model.as_ref());
        let mut frame = Vec::new();
        put_u32(&mut frame, 1); // cohort position prefix
        frame.extend_from_slice(&encode_round_frame(7, 2, &snapshot, &mask));
        let (pos, round, epoch, snap, mask_back) = decode_round_frame(&frame).expect("roundtrip");
        assert_eq!(pos, 1);
        assert_eq!(round, 7);
        assert_eq!(epoch, 2);
        assert_eq!(snap, snapshot);
        assert_eq!(mask_back.num_layers(), mask.num_layers());
        for l in 0..mask.num_layers() {
            assert_eq!(mask_back.layer(l), mask.layer(l), "layer {l}");
        }
    }

    #[test]
    fn frames_reject_truncation() {
        let env = ExperimentEnv::tiny_for_tests(5);
        let model = env.build_model(&ModelSpec::small_cnn_test());
        let mask = Mask::ones(&sparse_layout(model.as_ref()));
        let snapshot = take_snapshot(model.as_ref());
        let frame = encode_round_frame(0, 0, &snapshot, &mask);
        assert!(decode_round_frame(&frame[..frame.len() / 2]).is_err());
        let ctx = wire_ctx(model.as_ref(), &mask, 0);
        let update = DeviceUpdate {
            payload: Payload::Dense {
                values: vec![0.5; ctx.len()],
            },
            bn: Vec::new(),
            samples: 1,
            realized_flops: 0.0,
            wall_secs: 0.0,
        };
        let uframe = encode_update_frame(0, &update, &ctx);
        assert!(decode_update_frame(&uframe[..10], &ctx).is_err());
    }

    #[test]
    fn sim_time_delivery_is_identity_on_payloads() {
        let ctx = WireCtx::dense(8);
        let update = DeviceUpdate {
            payload: Codec::QuantInt8.encode(&[0.5f32; 8], &ctx, 0, None),
            bn: vec![],
            samples: 3,
            realized_flops: 7.0,
            wall_secs: 0.25,
        };
        let back = SimTime.deliver_update(update.clone(), &ctx);
        assert_eq!(back.payload, update.payload);
        assert_eq!(back.samples, update.samples);
    }
}
