//! Transports: how device updates reach the server.
//!
//! The round state machine in [`crate::server`] never talks to devices
//! directly — it hands a [`RoundRequest`] to a [`Transport`] and gets the
//! cohort's [`DeviceUpdate`]s back. Three implementations ship:
//!
//! - [`InProcess`] — devices are trained by direct function calls inside
//!   the server process and their updates are handed over as structs. This
//!   is the pre-transport behavior; the committed golden traces pin it
//!   byte-for-byte.
//! - [`SimTime`] — identical scheduling and virtual-time fleet, but every
//!   update crosses a *real byte boundary*: it is serialized into the same
//!   length-prefixed frame format the TCP transport uses
//!   ([`Payload::to_bytes`]) and parsed back with [`Payload::from_bytes`].
//!   Because the wire codecs round-trip bit-exactly, `SimTime` reproduces
//!   the `InProcess` golden traces byte-for-byte — proving the wire layer
//!   carries the whole federation, not just a byte counter.
//! - [`TcpTransport`] — frames cross a real socket (`std::net`, no new
//!   dependencies): the server broadcasts the global snapshot to connected
//!   [`run_tcp_device`] clients and reads their update frames back. For the
//!   same seed a loopback TCP run reaches the bit-identical final model as
//!   `InProcess`.
//!
//! ## Frame format
//!
//! Every frame is `u32 body_len | u8 kind | body` (little-endian):
//!
//! | kind | body |
//! |------|------|
//! | `1` HELLO  | `u32` device id |
//! | `2` ROUND  | `u64` round, `u64` mask epoch, params `f32` vec, BN stats, mask bit vecs |
//! | `3` UPDATE | `u32` device, `u64` round, `u64` mask epoch, `u64` samples, `f64` realized FLOPs, `f64` wall secs, BN stats, payload bytes blob |
//! | `4` DONE   | empty |
//!
//! Floats travel as raw IEEE-754 bits, so a ROUND → train → UPDATE
//! round-trip over any transport is bit-exact.
//!
//! ## Hostile fleets
//!
//! A transport never trusts its devices. Every inbound UPDATE body passes
//! one shared screen ([`screen_update_frame`]) — structural decode, claimed
//! identity, round/epoch freshness (replay detection), and a sample-count
//! cap — before the server sees it. `exchange_round` therefore returns one
//! [`Delivery`] per cohort member: either the screened update or the typed
//! [`FaultKind`] it was quarantined under. A *tolerant* TCP transport
//! ([`TcpTransport::accept_fleet_tolerant`]) survives garbage frames,
//! replays, disconnects, and abandoned handshakes by quarantining the
//! offender and carrying on; the default strict transport (the
//! bit-identity harness) still fails fast on the first bad frame.

use crate::bytes::{
    put_bitvec, put_blob, put_bn_stats, put_f64, put_u32, put_u64, ByteReader, ReadError,
};
use crate::config::FlConfig;
use crate::train::{train_devices_parallel, DeviceUpdate, WireSpec};
use ft_data::Dataset;
use ft_nn::{apply_mask, restore_snapshot, take_snapshot, wire_ctx, Model, ModelSnapshot};
use ft_runtime::Runtime;
use ft_sparse::{Mask, Payload, WireCtx};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

/// Frame kinds of the wire protocol.
pub(crate) const FRAME_HELLO: u8 = 1;
pub(crate) const FRAME_ROUND: u8 = 2;
pub(crate) const FRAME_UPDATE: u8 = 3;
pub(crate) const FRAME_DONE: u8 = 4;

/// Why a transport exchange failed. In-process transports never fail; the
/// TCP transport surfaces socket and frame errors here so the server loop
/// can report them as a typed [`crate::server::ServerError`].
#[derive(Debug)]
pub enum TransportError {
    /// A socket operation failed.
    Io(std::io::Error),
    /// A peer sent a malformed or unexpected frame.
    Frame(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport io error: {e}"),
            TransportError::Frame(what) => write!(f, "bad frame: {what}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

impl From<ReadError> for TransportError {
    fn from(e: ReadError) -> Self {
        TransportError::Frame(e.to_string())
    }
}

/// Why one cohort member's update was quarantined this round. A fault
/// never aborts the round — the server aggregates the survivors and tallies
/// the reason in its ledger's `FaultCounters`.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// The frame failed structural decoding (garbage, truncation, trailing
    /// bytes, an unexpected frame kind, or a wrong claimed device id).
    MalformedFrame(String),
    /// The stream died: io error, reset, or no live connection at all.
    Disconnected(String),
    /// A well-formed update stamped with the wrong round or mask epoch —
    /// the signature of a replayed capture.
    Replay {
        /// Round the update claims.
        got_round: u64,
        /// Round the server is collecting.
        want_round: u64,
        /// Mask epoch the update claims.
        got_epoch: u64,
        /// Mask epoch the server is at.
        want_epoch: u64,
    },
    /// The update claimed more samples than the device's partition holds —
    /// a weight-inflation attack on sample-weighted averaging.
    InflatedSamples {
        /// Claimed sample count.
        claimed: u64,
        /// The device's actual partition size.
        cap: u64,
    },
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::MalformedFrame(what) => write!(f, "malformed frame: {what}"),
            FaultKind::Disconnected(what) => write!(f, "device disconnected: {what}"),
            FaultKind::Replay {
                got_round,
                want_round,
                got_epoch,
                want_epoch,
            } => write!(
                f,
                "replayed update: claims round {got_round} epoch {got_epoch}, \
                 server is at round {want_round} epoch {want_epoch}"
            ),
            FaultKind::InflatedSamples { claimed, cap } => write!(
                f,
                "inflated sample count: claimed {claimed}, partition holds {cap}"
            ),
        }
    }
}

impl FaultKind {
    /// The strict-mode conversion: a fault a tolerant transport would
    /// quarantine becomes the hard frame error the bit-identity harness
    /// fails on.
    fn into_frame_error(self) -> TransportError {
        match self {
            FaultKind::MalformedFrame(msg) => TransportError::Frame(msg),
            other => TransportError::Frame(other.to_string()),
        }
    }
}

/// One cohort member's result for one barrier round: the screened update,
/// or the fault it was quarantined under. Returned by
/// [`Transport::exchange_round`] **in cohort order** so aggregation order
/// stays deterministic even under attack.
#[derive(Clone, Debug)]
pub enum Delivery {
    /// The device's update passed every screen.
    Update(DeviceUpdate),
    /// The device was quarantined this round.
    Faulted(FaultKind),
}

impl Delivery {
    /// The update, if this member survived screening.
    pub fn update(&self) -> Option<&DeviceUpdate> {
        match self {
            Delivery::Update(u) => Some(u),
            Delivery::Faulted(_) => None,
        }
    }

    /// The fault, if this member was quarantined.
    pub fn fault(&self) -> Option<&FaultKind> {
        match self {
            Delivery::Update(_) => None,
            Delivery::Faulted(f) => Some(f),
        }
    }
}

/// Everything a transport needs to run one barrier round: the server's
/// current global snapshot (model + mask + wire context) and the cohort it
/// must collect updates from.
pub struct RoundRequest<'a> {
    /// The server's global model (the round anchor).
    pub global: &'a dyn Model,
    /// The server's current mask.
    pub mask: &'a Mask,
    /// Wire context both ends encode/decode against.
    pub ctx: &'a WireCtx,
    /// The server's current mask epoch.
    pub epoch: u64,
    /// Round index (selects device RNG streams and lr decay).
    pub round: usize,
    /// Global device indices of this round's cohort.
    pub cohort: &'a [usize],
    /// The cohort's local datasets, in cohort order (empty for remote
    /// transports, whose devices hold their own data).
    pub parts: &'a [Dataset],
    /// The run configuration.
    pub cfg: &'a FlConfig,
    /// The run's shared worker pool.
    pub rt: &'a Runtime,
    /// Per-cohort-member error-feedback residuals (only used by local
    /// transports; remote devices keep their own).
    pub residuals: &'a mut [Vec<f32>],
    /// Per-cohort-member sample-count caps (each device's known partition
    /// size): an update claiming more is quarantined as
    /// [`FaultKind::InflatedSamples`]. Empty disables the screen.
    pub sample_caps: &'a [usize],
    /// Device ids rejoining the fleet this round (present now, absent last
    /// round): a reconnecting transport drops their stale streams and
    /// re-accepts their HELLOs before broadcasting. Empty for steady-state
    /// rounds and for local transports.
    pub rejoining: &'a [usize],
}

/// How one round's updates travel from the devices to the server.
///
/// Implementations must return one [`Delivery`] per cohort member **in
/// cohort order** — aggregation order is part of the determinism contract.
pub trait Transport {
    /// Stable lowercase name for run headers and reports.
    fn name(&self) -> &'static str;

    /// Whether device training runs inside the server process. The
    /// buffered scheduler interleaves training with its event loop and
    /// therefore requires a local transport.
    fn is_local(&self) -> bool;

    /// Runs one barrier round: broadcast the request's global snapshot to
    /// the cohort and collect one delivery per member, in cohort order. A
    /// `Delivery::Faulted` quarantines that member without failing the
    /// round; `Err` aborts the run (server-side failure, or any device
    /// fault under a strict transport).
    fn exchange_round(
        &mut self,
        req: &mut RoundRequest<'_>,
    ) -> Result<Vec<Delivery>, TransportError>;

    /// Ships one already-encoded update across the transport's byte
    /// boundary (the buffered loop calls this at arrival time). Local
    /// transports may return it unchanged.
    fn deliver_update(&mut self, update: DeviceUpdate, ctx: &WireCtx) -> DeviceUpdate;

    /// Tears the transport down after the final round (e.g. sends DONE
    /// frames to connected devices). Errors are best-effort-ignored.
    fn shutdown(&mut self) {}
}

/// The function-call transport: devices train inside the server process and
/// updates are handed over as structs — the pre-transport behavior, pinned
/// byte-for-byte by the committed golden traces.
#[derive(Clone, Copy, Debug, Default)]
pub struct InProcess;

impl Transport for InProcess {
    fn name(&self) -> &'static str {
        "in_process"
    }

    fn is_local(&self) -> bool {
        true
    }

    fn exchange_round(
        &mut self,
        req: &mut RoundRequest<'_>,
    ) -> Result<Vec<Delivery>, TransportError> {
        let wire = WireSpec {
            codec: req.cfg.codec,
            ctx: req.ctx,
            peer_epoch: req.epoch,
        };
        Ok(train_devices_parallel(
            req.global,
            req.parts,
            Some(req.mask),
            req.cfg,
            req.round,
            &wire,
            req.residuals,
            req.rt,
        )
        .into_iter()
        .map(Delivery::Update)
        .collect())
    }

    fn deliver_update(&mut self, update: DeviceUpdate, _ctx: &WireCtx) -> DeviceUpdate {
        update
    }
}

/// The in-memory byte-boundary transport: devices train exactly as under
/// [`InProcess`], but every update is serialized into a real UPDATE frame
/// and parsed back before the server sees it. Golden traces are
/// byte-identical to `InProcess` because the wire codecs round-trip
/// bit-exactly — which is precisely what this transport exists to prove on
/// every run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimTime;

impl Transport for SimTime {
    fn name(&self) -> &'static str {
        "sim_time"
    }

    fn is_local(&self) -> bool {
        true
    }

    fn exchange_round(
        &mut self,
        req: &mut RoundRequest<'_>,
    ) -> Result<Vec<Delivery>, TransportError> {
        let ctx = req.ctx;
        let (round, epoch) = (req.round as u64, req.epoch);
        let deliveries = InProcess.exchange_round(req)?;
        Ok(deliveries
            .into_iter()
            .enumerate()
            .map(|(i, d)| match d {
                Delivery::Update(u) => {
                    Delivery::Update(self.deliver_update_for(i, round, epoch, u, ctx))
                }
                faulted => faulted,
            })
            .collect())
    }

    fn deliver_update(&mut self, update: DeviceUpdate, ctx: &WireCtx) -> DeviceUpdate {
        self.deliver_update_for(0, 0, ctx.epoch, update, ctx)
    }
}

impl SimTime {
    /// Frame round-trip for one update; `device`/`round`/`epoch` only label
    /// the frame.
    fn deliver_update_for(
        &self,
        device: usize,
        round: u64,
        epoch: u64,
        update: DeviceUpdate,
        ctx: &WireCtx,
    ) -> DeviceUpdate {
        let frame = encode_update_frame(device, round, epoch, &update, ctx);
        let (_, _, _, back) =
            decode_update_frame(&frame, ctx).expect("self-encoded update frame round-trips");
        back
    }
}

// ---------------------------------------------------------------------------
// Frame codec (shared by SimTime and Tcp)
// ---------------------------------------------------------------------------

/// Serializes one UPDATE frame body, stamped with the round and mask epoch
/// the update answers (the replay screen checks these against the server's
/// current state).
pub(crate) fn encode_update_frame(
    device: usize,
    round: u64,
    epoch: u64,
    u: &DeviceUpdate,
    ctx: &WireCtx,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(80 + 4 * u.payload.len());
    put_u32(&mut out, device as u32);
    put_u64(&mut out, round);
    put_u64(&mut out, epoch);
    put_u64(&mut out, u.samples as u64);
    put_f64(&mut out, u.realized_flops);
    put_f64(&mut out, u.wall_secs);
    put_bn_stats(&mut out, &u.bn);
    put_blob(&mut out, &u.payload.to_bytes(ctx));
    out
}

/// Parses one UPDATE frame body back into `(device, round, epoch, update)`.
pub(crate) fn decode_update_frame(
    bytes: &[u8],
    ctx: &WireCtx,
) -> Result<(usize, u64, u64, DeviceUpdate), TransportError> {
    let mut r = ByteReader::new(bytes);
    let device = r.u32()? as usize;
    let round = r.u64()?;
    let epoch = r.u64()?;
    let samples = r.len_u64()?;
    let realized_flops = r.f64()?;
    let wall_secs = r.f64()?;
    let bn = r.bn_stats()?;
    let payload_bytes = r.blob()?;
    if r.remaining() != 0 {
        return Err(TransportError::Frame(
            "trailing bytes in update frame".into(),
        ));
    }
    let payload = Payload::from_bytes(&payload_bytes, ctx)
        .map_err(|e| TransportError::Frame(format!("payload: {e}")))?;
    Ok((
        device,
        round,
        epoch,
        DeviceUpdate {
            payload,
            bn,
            samples,
            realized_flops,
            wall_secs,
        },
    ))
}

/// The one shared screen every inbound UPDATE body passes before the
/// server sees it, regardless of transport: structural decode, claimed
/// identity, round/epoch freshness, and the sample-count cap. Returning
/// the same [`FaultKind`] from every transport is what keeps adversarial
/// runs bit-identical between TCP and the in-process harness.
pub(crate) fn screen_update_frame(
    body: &[u8],
    ctx: &WireCtx,
    want_device: usize,
    want_round: u64,
    want_epoch: u64,
    sample_cap: Option<u64>,
) -> Result<DeviceUpdate, FaultKind> {
    let (device, round, epoch, update) = decode_update_frame(body, ctx).map_err(|e| {
        FaultKind::MalformedFrame(match e {
            TransportError::Frame(msg) => msg,
            TransportError::Io(e) => e.to_string(),
        })
    })?;
    if device != want_device {
        return Err(FaultKind::MalformedFrame(format!(
            "device {device} answered on device {want_device}'s stream"
        )));
    }
    if round != want_round || epoch != want_epoch {
        return Err(FaultKind::Replay {
            got_round: round,
            want_round,
            got_epoch: epoch,
            want_epoch,
        });
    }
    if let Some(cap) = sample_cap {
        if update.samples as u64 > cap {
            return Err(FaultKind::InflatedSamples {
                claimed: update.samples as u64,
                cap,
            });
        }
    }
    Ok(update)
}

/// Serializes the shared tail of a ROUND frame body: the round index, the
/// server's mask epoch, and the full global snapshot (params + BN stats +
/// mask bits). The per-recipient cohort position is prepended separately
/// by the sender, so this (large) part is encoded once per round.
pub(crate) fn encode_round_frame(
    round: usize,
    epoch: u64,
    snapshot: &ModelSnapshot,
    mask: &Mask,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + 4 * snapshot.params.len());
    put_u64(&mut out, round as u64);
    put_u64(&mut out, epoch);
    crate::bytes::put_f32_vec(&mut out, &snapshot.params);
    put_bn_stats(&mut out, &snapshot.bn);
    put_u32(&mut out, mask.num_layers() as u32);
    for l in 0..mask.num_layers() {
        put_bitvec(&mut out, mask.layer(l));
    }
    out
}

/// Parses one ROUND frame body back into
/// `(cohort_pos, round, epoch, snapshot, mask)`. The cohort position is
/// the device's index *within this round's cohort* — the in-process loop
/// derives RNG streams from that positional index, so the device side must
/// train under it (not under its global id) to stay bit-identical.
pub(crate) fn decode_round_frame(
    bytes: &[u8],
) -> Result<(usize, usize, u64, ModelSnapshot, Mask), TransportError> {
    let mut r = ByteReader::new(bytes);
    let cohort_pos = r.u32()? as usize;
    let round = r.len_u64()?;
    let epoch = r.u64()?;
    let params = r.f32_vec()?;
    let bn = r.bn_stats()?;
    let layers = r.u32()? as usize;
    let mut mask_layers = Vec::with_capacity(layers.min(4096));
    for _ in 0..layers {
        mask_layers.push(r.bitvec()?);
    }
    if r.remaining() != 0 {
        return Err(TransportError::Frame(
            "trailing bytes in round frame".into(),
        ));
    }
    Ok((
        cohort_pos,
        round,
        epoch,
        ModelSnapshot { params, bn },
        Mask::from_layers(mask_layers),
    ))
}

/// Writes one length-prefixed frame.
pub(crate) fn write_frame(stream: &mut TcpStream, kind: u8, body: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(body.len() as u32).to_le_bytes())?;
    stream.write_all(&[kind])?;
    stream.write_all(body)?;
    stream.flush()
}

/// Reads one length-prefixed frame, bounding the body at 1 GiB so a
/// corrupt length prefix cannot trigger an absurd allocation.
pub(crate) fn read_frame(stream: &mut TcpStream) -> Result<(u8, Vec<u8>), TransportError> {
    let mut header = [0u8; 5];
    stream.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
    if len > 1 << 30 {
        return Err(TransportError::Frame(format!(
            "frame of {len} bytes refused"
        )));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok((header[4], body))
}

// ---------------------------------------------------------------------------
// TCP transport (server side)
// ---------------------------------------------------------------------------

/// The socket transport: each device is a [`run_tcp_device`] client on the
/// other end of a `std::net::TcpStream`, identified by the device id in its
/// HELLO frame. Length-prefixed frames carry the global snapshot down and
/// the encoded updates back, so every exchanged byte is a real wire byte.
///
/// Two trust postures:
///
/// - **strict** ([`listen`](Self::listen) / [`accept_fleet`](Self::accept_fleet)):
///   the bit-identity harness — any malformed frame or dead stream aborts
///   the run with a typed error. This is the pre-hardening behavior.
/// - **tolerant** ([`listen_tolerant`](Self::listen_tolerant) /
///   [`accept_fleet_tolerant`](Self::accept_fleet_tolerant)): the hostile-
///   fleet posture — bad handshakes are refused and counted, bad frames
///   quarantine their sender as a [`Delivery::Faulted`], dead streams are
///   dropped, and (because the listener is retained) departed devices may
///   rejoin between rounds via [`RoundRequest::rejoining`].
///
/// Only barrier schedulers (`Synchronous`, `Deadline`) are supported — the
/// buffered event loop interleaves training with arrivals and requires a
/// local transport.
#[derive(Debug)]
pub struct TcpTransport {
    /// One stream slot per device, indexed by device id. `None` = departed
    /// or quarantined-dead.
    streams: Vec<Option<TcpStream>>,
    /// Quarantine instead of abort on device faults.
    tolerant: bool,
    /// Retained listener for between-round rejoins (tolerant mode only).
    listener: Option<TcpListener>,
    /// Connection attempts refused during accept/rejoin.
    handshake_faults: usize,
    /// Per-device receive buffers, recycled across rounds: the multiplexed
    /// collect loop reads each UPDATE body straight into its device's slot
    /// and the screen decodes from there — steady-state rounds reuse the
    /// same capacity instead of allocating a fresh `Vec` per frame.
    recv_bufs: Vec<Vec<u8>>,
    /// Recycled per-recipient broadcast frame (cohort-position prefix +
    /// shared snapshot), rebuilt in place for every cohort member.
    broadcast_scratch: Vec<u8>,
    /// HELLO-phase read timeout armed on tolerantly accepted streams (the
    /// collect phase uses the config's `collect_timeout_secs` instead).
    handshake_timeout: std::time::Duration,
}

/// Default read timeout a tolerant server arms on accepted streams for the
/// handshake/rejoin phase, and the legacy value of the per-round collect
/// timeout (now the `FlConfig::collect_timeout_secs` knob).
const TOLERANT_READ_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);

/// How long the multiplexed collect loop sleeps when a full readiness sweep
/// over every pending stream made no progress — long enough to stay off the
/// CPU while the fleet trains, short enough to add negligible latency to a
/// round.
const MUX_IDLE_SLEEP: std::time::Duration = std::time::Duration::from_micros(500);

impl TcpTransport {
    /// Binds `addr` and accepts exactly `devices` clients, each of which
    /// must open with a HELLO frame carrying a unique device id in
    /// `0..devices`. Strict: any bad handshake aborts the accept.
    pub fn listen(addr: impl ToSocketAddrs, devices: usize) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(addr)?;
        Self::accept_fleet(&listener, devices)
    }

    /// Accepts `devices` HELLO-identified clients on an existing listener
    /// (lets tests bind port 0 first and hand the resolved address to their
    /// client threads). Strict: any bad handshake aborts the accept.
    pub fn accept_fleet(listener: &TcpListener, devices: usize) -> Result<Self, TransportError> {
        let mut slots: Vec<Option<TcpStream>> = (0..devices).map(|_| None).collect();
        let mut connected = 0;
        while connected < devices {
            let (mut stream, _) = listener.accept()?;
            let device = read_hello(&mut stream, devices)?;
            if slots[device].is_some() {
                return Err(TransportError::Frame(format!(
                    "device id {device} connected twice"
                )));
            }
            slots[device] = Some(stream);
            connected += 1;
        }
        Ok(TcpTransport {
            streams: slots,
            tolerant: false,
            listener: None,
            handshake_faults: 0,
            recv_bufs: (0..devices).map(|_| Vec::new()).collect(),
            broadcast_scratch: Vec::new(),
            handshake_timeout: TOLERANT_READ_TIMEOUT,
        })
    }

    /// Binds `addr` and fills the fleet tolerantly — see
    /// [`accept_fleet_tolerant`](Self::accept_fleet_tolerant).
    pub fn listen_tolerant(
        addr: impl ToSocketAddrs,
        devices: usize,
    ) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(addr)?;
        Self::accept_fleet_tolerant(listener, devices)
    }

    /// Fills the fleet under the hostile posture: handshakes that are
    /// malformed, truncated, out of range, or abandoned mid-frame are
    /// refused and counted ([`handshake_faults`](Self::handshake_faults))
    /// without aborting; a duplicate device id replaces the earlier stream
    /// (latest connection wins — the reconnect case) and counts the loser.
    /// Takes listener ownership so departed devices can rejoin later.
    pub fn accept_fleet_tolerant(
        listener: TcpListener,
        devices: usize,
    ) -> Result<Self, TransportError> {
        Self::accept_fleet_tolerant_with_timeout(listener, devices, TOLERANT_READ_TIMEOUT)
    }

    /// [`accept_fleet_tolerant`](Self::accept_fleet_tolerant) with an
    /// explicit handshake read timeout, armed on every accepted stream so a
    /// half-written rejoin HELLO cannot hang the server between rounds. The
    /// per-round collect deadline is a separate knob
    /// ([`FlConfig::collect_timeout_secs`]) and travels with the
    /// [`RoundRequest`].
    pub fn accept_fleet_tolerant_with_timeout(
        listener: TcpListener,
        devices: usize,
        handshake_timeout: std::time::Duration,
    ) -> Result<Self, TransportError> {
        let mut slots: Vec<Option<TcpStream>> = (0..devices).map(|_| None).collect();
        let mut connected = 0;
        let mut handshake_faults = 0;
        while connected < devices {
            let (mut stream, _) = listener.accept()?;
            match read_hello(&mut stream, devices) {
                Ok(device) => {
                    let _ = stream.set_read_timeout(Some(handshake_timeout));
                    if slots[device].is_some() {
                        handshake_faults += 1;
                    } else {
                        connected += 1;
                    }
                    slots[device] = Some(stream);
                }
                Err(_) => handshake_faults += 1,
            }
        }
        Ok(TcpTransport {
            streams: slots,
            tolerant: true,
            listener: Some(listener),
            handshake_faults,
            recv_bufs: (0..devices).map(|_| Vec::new()).collect(),
            broadcast_scratch: Vec::new(),
            handshake_timeout,
        })
    }

    /// Number of device slots (live or departed).
    pub fn devices(&self) -> usize {
        self.streams.len()
    }

    /// Connection attempts refused during accept and rejoin screening.
    pub fn handshake_faults(&self) -> usize {
        self.handshake_faults
    }

    /// Drops the stale streams of `rejoining` devices and blocking-accepts
    /// their fresh HELLOs (slotting any other valid arrival for an empty
    /// slot along the way, so concurrent rejoiners cannot deadlock each
    /// other). The server drives this from its presence schedule, which
    /// makes the rejoin race-free: the device's new connection is fully
    /// established before the round broadcast.
    fn reconnect_rejoining(&mut self, rejoining: &[usize]) -> Result<(), TransportError> {
        if rejoining.is_empty() {
            return Ok(());
        }
        let listener = self.listener.as_ref().ok_or_else(|| {
            TransportError::Frame(
                "this transport cannot re-accept departed devices \
                 (accept the fleet with accept_fleet_tolerant to retain the listener)"
                    .into(),
            )
        })?;
        for &d in rejoining {
            if d >= self.streams.len() {
                return Err(TransportError::Frame(format!(
                    "rejoining device {d} outside fleet of {}",
                    self.streams.len()
                )));
            }
            self.streams[d] = None;
        }
        let mut waiting: Vec<usize> = rejoining.to_vec();
        while !waiting.is_empty() {
            let (mut stream, _) = listener.accept()?;
            match read_hello(&mut stream, self.streams.len()) {
                Ok(device) if self.streams[device].is_none() => {
                    let _ = stream.set_read_timeout(Some(self.handshake_timeout));
                    self.streams[device] = Some(stream);
                    waiting.retain(|&w| w != device);
                }
                // A valid HELLO for a live slot is an impostor (or a
                // reconnect we did not schedule): refuse and count it.
                Ok(_) | Err(_) => self.handshake_faults += 1,
            }
        }
        Ok(())
    }
}

/// Reads and validates one HELLO frame, returning the claimed device id.
fn read_hello(stream: &mut TcpStream, devices: usize) -> Result<usize, TransportError> {
    let (kind, body) = read_frame(stream)?;
    if kind != FRAME_HELLO {
        return Err(TransportError::Frame(format!(
            "expected HELLO, got frame kind {kind}"
        )));
    }
    let mut r = ByteReader::new(&body);
    let device = r.u32()? as usize;
    if device >= devices {
        return Err(TransportError::Frame(format!(
            "device id {device} outside fleet of {devices}"
        )));
    }
    Ok(device)
}

/// Per-stream progress of the multiplexed collect loop: where the next
/// received byte lands (header or body) and when a tolerant server gives
/// the stream up as silent.
struct MuxRecv {
    /// Index within this round's cohort (the slot in `outcomes`).
    pos: usize,
    /// Global device id: selects the stream and its receive buffer.
    device: usize,
    /// Frame header under assembly: `u32 body_len | u8 kind`.
    header: [u8; 5],
    /// Header bytes received so far.
    header_filled: usize,
    /// Body length parsed from the completed header.
    body_len: usize,
    /// Body bytes received so far.
    body_filled: usize,
    /// Instant after which a tolerant server quarantines the stream;
    /// re-armed on every received byte. Ignored by strict servers.
    deadline: std::time::Instant,
}

/// What the readiness loop settled for one pending cohort member.
enum MuxOutcome {
    /// A complete frame of this kind landed in the device's receive buffer.
    Frame {
        /// The frame kind byte from the header.
        kind: u8,
    },
    /// The stream faulted mid-collect and was dropped.
    Fault(FaultKind),
}

/// Reads exactly one frame from every `pending` stream through a single
/// nonblocking readiness loop: each sweep polls every still-pending socket,
/// draining whatever bytes the kernel has, and a sweep that moves no bytes
/// at all sleeps [`MUX_IDLE_SLEEP`] before retrying. Frame bodies land in
/// the per-device `recv_bufs` slot (recycled across rounds — a steady-state
/// collect reuses the capacity instead of allocating per frame), and every
/// pending member leaves with a [`MuxOutcome`] in its cohort slot.
///
/// Fault posture matches the old blocking loop exactly: a tolerant server
/// converts EOF/io errors and oversize length prefixes into quarantine
/// faults and kills the stream, and additionally quarantines any stream
/// that stays silent past `timeout` (the [`FlConfig::collect_timeout_secs`]
/// knob); a strict server aborts on the first io or framing error and never
/// times out. Surviving streams are restored to blocking mode on exit so
/// the next round's broadcast writes behave.
fn collect_multiplexed(
    streams: &mut [Option<TcpStream>],
    recv_bufs: &mut [Vec<u8>],
    pending: &[(usize, usize)],
    outcomes: &mut [Option<MuxOutcome>],
    tolerant: bool,
    timeout: std::time::Duration,
) -> Result<(), TransportError> {
    let armed = std::time::Instant::now() + timeout;
    let mut live: Vec<MuxRecv> = Vec::with_capacity(pending.len());
    for &(pos, device) in pending {
        let stream = streams[device].as_mut().expect("broadcast left it live");
        stream.set_nonblocking(true)?;
        live.push(MuxRecv {
            pos,
            device,
            header: [0; 5],
            header_filled: 0,
            body_len: 0,
            body_filled: 0,
            deadline: armed,
        });
    }
    while !live.is_empty() {
        let mut progressed = false;
        let mut hard: Option<TransportError> = None;
        live.retain_mut(|st| {
            if hard.is_some() {
                return true; // aborting the round; survivors are moot
            }
            let stream = streams[st.device].as_mut().expect("registered live");
            loop {
                let res = if st.header_filled < st.header.len() {
                    stream.read(&mut st.header[st.header_filled..])
                } else {
                    stream.read(&mut recv_bufs[st.device][st.body_filled..st.body_len])
                };
                match res {
                    Ok(0) => {
                        let e = std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "connection closed mid-collect",
                        );
                        if !tolerant {
                            hard = Some(e.into());
                            return true;
                        }
                        streams[st.device] = None;
                        outcomes[st.pos] =
                            Some(MuxOutcome::Fault(FaultKind::Disconnected(e.to_string())));
                        return false;
                    }
                    Ok(n) => {
                        progressed = true;
                        st.deadline = std::time::Instant::now() + timeout;
                        if st.header_filled < st.header.len() {
                            st.header_filled += n;
                            if st.header_filled == st.header.len() {
                                let len =
                                    u32::from_le_bytes(st.header[..4].try_into().expect("4 bytes"))
                                        as usize;
                                if len > 1 << 30 {
                                    let msg = format!("frame of {len} bytes refused");
                                    if !tolerant {
                                        hard = Some(TransportError::Frame(msg));
                                        return true;
                                    }
                                    streams[st.device] = None;
                                    outcomes[st.pos] =
                                        Some(MuxOutcome::Fault(FaultKind::MalformedFrame(msg)));
                                    return false;
                                }
                                st.body_len = len;
                                let buf = &mut recv_bufs[st.device];
                                buf.clear();
                                buf.resize(len, 0);
                            }
                        } else {
                            st.body_filled += n;
                        }
                        if st.header_filled == st.header.len() && st.body_filled == st.body_len {
                            outcomes[st.pos] = Some(MuxOutcome::Frame { kind: st.header[4] });
                            return false;
                        }
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        if tolerant && std::time::Instant::now() >= st.deadline {
                            streams[st.device] = None;
                            outcomes[st.pos] =
                                Some(MuxOutcome::Fault(FaultKind::Disconnected(format!(
                                    "no bytes for {:.1}s during collect",
                                    timeout.as_secs_f64()
                                ))));
                            return false;
                        }
                        return true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        if !tolerant {
                            hard = Some(e.into());
                            return true;
                        }
                        streams[st.device] = None;
                        outcomes[st.pos] =
                            Some(MuxOutcome::Fault(FaultKind::Disconnected(e.to_string())));
                        return false;
                    }
                }
            }
        });
        if let Some(e) = hard {
            return Err(e);
        }
        if !progressed && !live.is_empty() {
            std::thread::sleep(MUX_IDLE_SLEEP);
        }
    }
    // Collect is over: surviving cohort streams go back to blocking mode
    // for the next round's broadcast writes (and the DONE frame).
    for &(_, device) in pending {
        if let Some(stream) = streams[device].as_mut() {
            stream.set_nonblocking(false)?;
        }
    }
    Ok(())
}

impl Transport for TcpTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn is_local(&self) -> bool {
        false
    }

    fn exchange_round(
        &mut self,
        req: &mut RoundRequest<'_>,
    ) -> Result<Vec<Delivery>, TransportError> {
        self.reconnect_rejoining(req.rejoining)?;
        let snapshot = take_snapshot(req.global);
        let shared = encode_round_frame(req.round, req.epoch, &snapshot, req.mask);
        let Self {
            streams,
            recv_bufs,
            broadcast_scratch,
            tolerant,
            ..
        } = self;
        let tolerant = *tolerant;
        // Broadcast phase: a member whose stream is dead (or dies on
        // write) is quarantined here and skipped during collection.
        let mut broadcast_faults: Vec<Option<FaultKind>> = vec![None; req.cohort.len()];
        for (pos, &k) in req.cohort.iter().enumerate() {
            if !matches!(streams.get(k), Some(Some(_))) {
                if tolerant {
                    broadcast_faults[pos] = Some(FaultKind::Disconnected(format!(
                        "no live stream for device {k}"
                    )));
                    continue;
                }
                return Err(TransportError::Frame(format!("no stream for device {k}")));
            }
            // Per-recipient prefix: the device's position within this
            // round's cohort (the index the in-process loop trains it
            // under), then the shared snapshot. The frame buffer is
            // recycled across recipients and rounds.
            broadcast_scratch.clear();
            put_u32(broadcast_scratch, pos as u32);
            broadcast_scratch.extend_from_slice(&shared);
            let stream = streams[k].as_mut().expect("checked live above");
            if let Err(e) = write_frame(stream, FRAME_ROUND, broadcast_scratch) {
                if tolerant {
                    streams[k] = None;
                    broadcast_faults[pos] = Some(FaultKind::Disconnected(e.to_string()));
                } else {
                    return Err(e.into());
                }
            }
        }
        // Collection phase: one readiness loop over every pending stream,
        // reading whichever socket has bytes — no cohort member can stall
        // the members behind it, and one server thread owns the whole
        // fleet's sockets. Arrival order is whatever the kernel delivers;
        // determinism is restored by screening in cohort order below.
        let pending: Vec<(usize, usize)> = req
            .cohort
            .iter()
            .enumerate()
            .filter(|&(pos, _)| broadcast_faults[pos].is_none())
            .map(|(pos, &k)| (pos, k))
            .collect();
        let mut outcomes: Vec<Option<MuxOutcome>> = Vec::with_capacity(req.cohort.len());
        outcomes.resize_with(req.cohort.len(), || None);
        let timeout = std::time::Duration::from_secs_f64(req.cfg.collect_timeout_secs);
        collect_multiplexed(
            streams,
            recv_bufs,
            &pending,
            &mut outcomes,
            tolerant,
            timeout,
        )?;
        // Screening phase, in cohort order, so delivery order — and with it
        // the aggregation — is independent of arrival order. Decode-level
        // faults keep the stream (the length-prefixed framing is intact, so
        // the connection can still carry next round); io/framing faults
        // killed it inside the readiness loop.
        let mut out = Vec::with_capacity(req.cohort.len());
        for (pos, &k) in req.cohort.iter().enumerate() {
            if let Some(fault) = broadcast_faults[pos].take() {
                out.push(Delivery::Faulted(fault));
                continue;
            }
            let kind = match outcomes[pos]
                .take()
                .expect("readiness loop settles every member")
            {
                MuxOutcome::Fault(fault) => {
                    out.push(Delivery::Faulted(fault));
                    continue;
                }
                MuxOutcome::Frame { kind } => kind,
            };
            if kind != FRAME_UPDATE {
                let msg = format!("expected UPDATE from device {k}, got frame kind {kind}");
                if !tolerant {
                    return Err(TransportError::Frame(msg));
                }
                out.push(Delivery::Faulted(FaultKind::MalformedFrame(msg)));
                continue;
            }
            let cap = req.sample_caps.get(pos).map(|&c| c as u64);
            match screen_update_frame(&recv_bufs[k], req.ctx, k, req.round as u64, req.epoch, cap) {
                Ok(update) => out.push(Delivery::Update(update)),
                Err(fault) => {
                    if !tolerant {
                        return Err(fault.into_frame_error());
                    }
                    out.push(Delivery::Faulted(fault));
                }
            }
        }
        Ok(out)
    }

    fn deliver_update(&mut self, update: DeviceUpdate, _ctx: &WireCtx) -> DeviceUpdate {
        // Unreachable in practice: the buffered loop rejects non-local
        // transports before it starts.
        update
    }

    fn shutdown(&mut self) {
        for stream in self.streams.iter_mut().flatten() {
            let _ = write_frame(stream, FRAME_DONE, &[]);
        }
    }
}

// ---------------------------------------------------------------------------
// TCP client (device side)
// ---------------------------------------------------------------------------

/// Runs one device's side of the TCP protocol until the server hangs up:
/// connect (retrying refused connections for ~30 s, so clients may launch
/// before the server finishes binding), identify as `device`, then for
/// every ROUND frame restore the broadcast snapshot, train locally (same
/// RNG streams, same kernels as the in-process path — the final aggregate
/// is bit-identical), and reply with the encoded update frame.
///
/// `env` must be built from the same seed and configuration as the
/// server's (the synthetic datasets are pure functions of the seed, so both
/// ends derive identical partitions without ever shipping data).
pub fn run_tcp_device(
    addr: impl ToSocketAddrs + Clone,
    device: usize,
    env: &crate::ExperimentEnv,
    spec: &crate::ModelSpec,
) -> Result<(), TransportError> {
    let mut stream = connect_with_retry(addr)?;
    let mut hello = Vec::new();
    put_u32(&mut hello, device as u32);
    write_frame(&mut stream, FRAME_HELLO, &hello)?;

    let mut model = env.build_model(spec);
    let rt = env.cfg.runtime();
    model.set_runtime(rt);
    let mut residual: Vec<f32> = Vec::new();
    let data = env.parts.get(device).ok_or_else(|| {
        TransportError::Frame(format!("device {device} has no partition in this env"))
    })?;

    loop {
        let (kind, body) = read_frame(&mut stream)?;
        match kind {
            FRAME_DONE => return Ok(()),
            FRAME_ROUND => {
                let (cohort_pos, round, epoch, snapshot, mask) = decode_round_frame(&body)?;
                restore_snapshot(model.as_mut(), &snapshot);
                apply_mask(model.as_mut(), &mask);
                let ctx = wire_ctx(model.as_ref(), &mask, epoch);
                let wire = WireSpec {
                    codec: env.cfg.codec,
                    ctx: &ctx,
                    peer_epoch: epoch,
                };
                let needs_residual = env.cfg.codec.uses_error_feedback();
                // Train under the *cohort-positional* index the server
                // assigned for this round — the in-process loop derives
                // device RNG streams from that position, so this is what
                // keeps TCP bit-identical under partial participation.
                let update = crate::train::train_one_device(
                    model.as_ref(),
                    data,
                    Some(&mask),
                    &env.cfg,
                    round,
                    cohort_pos,
                    0,
                    &wire,
                    needs_residual.then_some(&mut residual),
                    &rt,
                );
                let frame = encode_update_frame(device, round as u64, epoch, &update, &ctx);
                write_frame(&mut stream, FRAME_UPDATE, &frame)?;
            }
            other => {
                return Err(TransportError::Frame(format!(
                    "unexpected frame kind {other} from server"
                )))
            }
        }
    }
}

/// Runs many devices' sides of the TCP protocol from one thread — the
/// client half of a 10k-device loopback fleet, where a thread per device
/// would exhaust the machine long before the transport does. Each device
/// in `devices` gets its own socket (its own HELLO, its own error-feedback
/// residual); they share one model instance and one training loop.
///
/// The sockets are served in lockstep device order, which is deadlock-free
/// because the server's barrier protocol writes every cohort member's
/// ROUND broadcast before reading any UPDATE, and its multiplexed collect
/// loop drains earlier devices' replies while this loop is still working
/// through later ones. Lockstep requires every device to appear in every
/// cohort, so the config must run full participation; anything else would
/// leave this loop blocked on a socket the server never wrote to.
pub fn run_tcp_devices(
    addr: impl ToSocketAddrs + Clone,
    devices: std::ops::Range<usize>,
    env: &crate::ExperimentEnv,
    spec: &crate::ModelSpec,
) -> Result<(), TransportError> {
    if devices.is_empty() {
        return Ok(());
    }
    if env.cfg.participation < 1.0 {
        return Err(TransportError::Frame(format!(
            "run_tcp_devices serves its sockets in lockstep and needs every device in \
             every cohort: participation is {}, not 1.0 (use one run_tcp_device thread \
             per device for partial participation)",
            env.cfg.participation
        )));
    }
    let mut streams = Vec::with_capacity(devices.len());
    let mut hello = Vec::new();
    for device in devices.clone() {
        let mut stream = connect_with_retry(addr.clone())?;
        hello.clear();
        put_u32(&mut hello, device as u32);
        write_frame(&mut stream, FRAME_HELLO, &hello)?;
        streams.push(stream);
    }
    let mut model = env.build_model(spec);
    let rt = env.cfg.runtime();
    model.set_runtime(rt);
    let needs_residual = env.cfg.codec.uses_error_feedback();
    let mut residuals: Vec<Vec<f32>> = vec![Vec::new(); devices.len()];
    loop {
        for (i, device) in devices.clone().enumerate() {
            let stream = &mut streams[i];
            let (kind, body) = read_frame(stream)?;
            match kind {
                FRAME_DONE if i == 0 => return Ok(()),
                FRAME_DONE => {
                    return Err(TransportError::Frame(format!(
                        "server hung up on device {device} mid-round"
                    )))
                }
                FRAME_ROUND => {
                    let (cohort_pos, round, epoch, snapshot, mask) = decode_round_frame(&body)?;
                    restore_snapshot(model.as_mut(), &snapshot);
                    apply_mask(model.as_mut(), &mask);
                    let ctx = wire_ctx(model.as_ref(), &mask, epoch);
                    let wire = WireSpec {
                        codec: env.cfg.codec,
                        ctx: &ctx,
                        peer_epoch: epoch,
                    };
                    let data = env.parts.get(device).ok_or_else(|| {
                        TransportError::Frame(format!(
                            "device {device} has no partition in this env"
                        ))
                    })?;
                    let update = crate::train::train_one_device(
                        model.as_ref(),
                        data,
                        Some(&mask),
                        &env.cfg,
                        round,
                        cohort_pos,
                        0,
                        &wire,
                        needs_residual.then_some(&mut residuals[i]),
                        &rt,
                    );
                    let frame = encode_update_frame(device, round as u64, epoch, &update, &ctx);
                    write_frame(stream, FRAME_UPDATE, &frame)?;
                }
                other => {
                    return Err(TransportError::Frame(format!(
                        "unexpected frame kind {other} from server"
                    )))
                }
            }
        }
    }
}

/// Connects to the server, retrying connection-refused/reset errors with a
/// short backoff for ~30 seconds — client and server processes are usually
/// launched concurrently, and the bind is a race the client should absorb.
pub(crate) fn connect_with_retry(
    addr: impl ToSocketAddrs + Clone,
) -> Result<TcpStream, TransportError> {
    let mut last_err = None;
    for _ in 0..120 {
        match TcpStream::connect(addr.clone()) {
            Ok(stream) => return Ok(stream),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionRefused | std::io::ErrorKind::ConnectionReset
                ) =>
            {
                last_err = Some(e);
                std::thread::sleep(std::time::Duration::from_millis(250));
            }
            Err(e) => return Err(e.into()),
        }
    }
    Err(last_err.expect("retry loop ran").into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelSpec;
    use crate::ExperimentEnv;
    use ft_nn::sparse_layout;
    use ft_sparse::Codec;

    #[test]
    fn update_frame_roundtrips_bit_exactly() {
        let env = ExperimentEnv::tiny_for_tests(3);
        let model = env.build_model(&ModelSpec::small_cnn_test());
        let mask = Mask::ones(&sparse_layout(model.as_ref()));
        let ctx = wire_ctx(model.as_ref(), &mask, 5);
        for codec in [Codec::Dense, Codec::MaskCsr, Codec::QuantInt8] {
            let delta: Vec<f32> = (0..ctx.len()).map(|i| (i as f32).sin()).collect();
            let update = DeviceUpdate {
                payload: codec.encode(&delta, &ctx, 5, None),
                bn: model.bn_stats().into_iter().cloned().collect(),
                samples: 17,
                realized_flops: 1.25e9,
                wall_secs: 0.125,
            };
            let frame = encode_update_frame(2, 7, 5, &update, &ctx);
            let (device, round, epoch, back) =
                decode_update_frame(&frame, &ctx).expect("roundtrip");
            assert_eq!(device, 2);
            assert_eq!((round, epoch), (7, 5));
            assert_eq!(back.payload, update.payload, "{codec:?}");
            assert_eq!(back.bn, update.bn);
            assert_eq!(back.samples, 17);
            assert_eq!(
                back.realized_flops.to_bits(),
                update.realized_flops.to_bits()
            );
        }
    }

    #[test]
    fn round_frame_roundtrips_snapshot_and_mask() {
        let env = ExperimentEnv::tiny_for_tests(4);
        let model = env.build_model(&ModelSpec::small_cnn_test());
        let layout = sparse_layout(model.as_ref());
        let mut mask = Mask::ones(&layout);
        for i in 0..layout.layer(0).len {
            if i % 3 == 0 {
                mask.set(0, i, false);
            }
        }
        let snapshot = take_snapshot(model.as_ref());
        let mut frame = Vec::new();
        put_u32(&mut frame, 1); // cohort position prefix
        frame.extend_from_slice(&encode_round_frame(7, 2, &snapshot, &mask));
        let (pos, round, epoch, snap, mask_back) = decode_round_frame(&frame).expect("roundtrip");
        assert_eq!(pos, 1);
        assert_eq!(round, 7);
        assert_eq!(epoch, 2);
        assert_eq!(snap, snapshot);
        assert_eq!(mask_back.num_layers(), mask.num_layers());
        for l in 0..mask.num_layers() {
            assert_eq!(mask_back.layer(l), mask.layer(l), "layer {l}");
        }
    }

    #[test]
    fn frames_reject_truncation() {
        let env = ExperimentEnv::tiny_for_tests(5);
        let model = env.build_model(&ModelSpec::small_cnn_test());
        let mask = Mask::ones(&sparse_layout(model.as_ref()));
        let snapshot = take_snapshot(model.as_ref());
        let frame = encode_round_frame(0, 0, &snapshot, &mask);
        assert!(decode_round_frame(&frame[..frame.len() / 2]).is_err());
        let ctx = wire_ctx(model.as_ref(), &mask, 0);
        let update = DeviceUpdate {
            payload: Payload::Dense {
                values: vec![0.5; ctx.len()],
            },
            bn: Vec::new(),
            samples: 1,
            realized_flops: 0.0,
            wall_secs: 0.0,
        };
        let uframe = encode_update_frame(0, 0, 0, &update, &ctx);
        assert!(decode_update_frame(&uframe[..10], &ctx).is_err());
    }

    #[test]
    fn sim_time_delivery_is_identity_on_payloads() {
        let ctx = WireCtx::dense(8);
        let update = DeviceUpdate {
            payload: Codec::QuantInt8.encode(&[0.5f32; 8], &ctx, 0, None),
            bn: vec![],
            samples: 3,
            realized_flops: 7.0,
            wall_secs: 0.25,
        };
        let back = SimTime.deliver_update(update.clone(), &ctx);
        assert_eq!(back.payload, update.payload);
        assert_eq!(back.samples, update.samples);
    }

    mod corruption {
        use super::*;
        use proptest::prelude::*;

        /// A valid UPDATE body for device 3, round 4, epoch 2, claiming 9
        /// samples — the fixed point the fuzzers mutate away from.
        fn sample_update_body(ctx: &WireCtx) -> Vec<u8> {
            let update = DeviceUpdate {
                payload: Payload::Dense {
                    values: (0..ctx.len()).map(|i| (i as f32).cos()).collect(),
                },
                bn: Vec::new(),
                samples: 9,
                realized_flops: 3.0e6,
                wall_secs: 0.5,
            };
            encode_update_frame(3, 4, 2, &update, ctx)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Random byte mutations of a valid UPDATE body either still
            /// screen clean (the flip hit a value byte) or land on a typed
            /// fault — the ingest path never panics, and a surviving update
            /// always respects the sample cap.
            #[test]
            fn corrupt_update_bodies_screen_to_typed_faults(
                flips in proptest::collection::vec((0usize..4096, 1usize..256), 1..8),
            ) {
                let ctx = WireCtx::dense(16);
                let mut body = sample_update_body(&ctx);
                for &(pos, xor) in &flips {
                    let i = pos % body.len();
                    body[i] ^= xor as u8;
                }
                match screen_update_frame(&body, &ctx, 3, 4, 2, Some(9)) {
                    Ok(u) => prop_assert!(u.samples as u64 <= 9),
                    Err(FaultKind::MalformedFrame(_))
                    | Err(FaultKind::Replay { .. })
                    | Err(FaultKind::InflatedSamples { .. }) => {}
                    Err(f @ FaultKind::Disconnected(_)) => {
                        prop_assert!(false, "byte corruption cannot disconnect: {f:?}")
                    }
                }
            }

            /// Every proper prefix of a valid UPDATE body is a typed
            /// malformed-frame fault, not a panic (extends the fixed-length
            /// truncation check to all cut points).
            #[test]
            fn truncated_update_bodies_are_malformed(cut in 0usize..4096) {
                let ctx = WireCtx::dense(16);
                let body = sample_update_body(&ctx);
                prop_assume!(cut < body.len());
                let got = screen_update_frame(&body[..cut], &ctx, 3, 4, 2, None);
                prop_assert!(
                    matches!(got, Err(FaultKind::MalformedFrame(_))),
                    "cut at {}: {:?}",
                    cut,
                    got
                );
            }

            /// A bit-exact replay of an older round's update is quarantined
            /// as [`FaultKind::Replay`] with both stamps preserved for the
            /// ledger.
            #[test]
            fn replayed_update_bodies_are_typed_replays(
                want_round in 5u64..50,
                want_epoch in 3u64..40,
            ) {
                let ctx = WireCtx::dense(16);
                let body = sample_update_body(&ctx); // stamped round 4, epoch 2
                match screen_update_frame(&body, &ctx, 3, want_round, want_epoch, None) {
                    Err(FaultKind::Replay {
                        got_round,
                        want_round: wr,
                        got_epoch,
                        want_epoch: we,
                    }) => {
                        prop_assert_eq!((got_round, got_epoch), (4, 2));
                        prop_assert_eq!((wr, we), (want_round, want_epoch));
                    }
                    other => prop_assert!(false, "expected replay fault, got {other:?}"),
                }
            }

            /// An update claiming more samples than the device's partition
            /// holds is quarantined as weight inflation.
            #[test]
            fn inflated_sample_claims_are_quarantined(cap in 0u64..9) {
                let ctx = WireCtx::dense(16);
                let body = sample_update_body(&ctx); // claims 9 samples
                match screen_update_frame(&body, &ctx, 3, 4, 2, Some(cap)) {
                    Err(FaultKind::InflatedSamples { claimed, cap: c }) => {
                        prop_assert_eq!((claimed, c), (9, cap));
                    }
                    other => prop_assert!(false, "expected inflation fault, got {other:?}"),
                }
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// A tolerant accept survives an arbitrary (well-framed) garbage
            /// handshake: the junk connection is refused or slotted per the
            /// HELLO rules, a following honest HELLO always completes the
            /// fleet, and nothing panics.
            #[test]
            fn tolerant_accept_survives_garbage_hello(
                kind in 0usize..256,
                junk in proptest::collection::vec(0usize..256, 0..8),
            ) {
                let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
                let addr = listener.local_addr().expect("addr");
                let client = std::thread::spawn(move || {
                    let body: Vec<u8> = junk.iter().map(|&b| b as u8).collect();
                    let mut garbage = TcpStream::connect(addr).expect("connect");
                    write_frame(&mut garbage, kind as u8, &body).expect("garbage hello");
                    let mut honest = TcpStream::connect(addr).expect("connect");
                    write_frame(&mut honest, FRAME_HELLO, &0u32.to_le_bytes())
                        .expect("honest hello");
                    // Keep both sockets open until the server has accepted.
                    (garbage, honest)
                });
                let transport = TcpTransport::accept_fleet_tolerant(listener, 1)
                    .expect("tolerant accept never aborts on a bad handshake");
                prop_assert_eq!(transport.devices(), 1);
                let _sockets = client.join().expect("client thread");
            }
        }
    }

    /// Fuzzers driving corrupted frames through the *multiplexed* collect
    /// loop over a real socket — not just the body screen: truncations and
    /// mutations must land as typed quarantine deliveries, never a panic,
    /// never a hang, and never a hard error on a tolerant server.
    mod mux {
        use super::*;
        use proptest::prelude::*;

        /// Runs one tolerant `exchange_round` against a fake device whose
        /// raw UPDATE wire bytes are rewritten by `transform` (returning
        /// the bytes to send and whether to drop the socket afterwards).
        /// The valid input frame is stamped for device 0, round 0, epoch 5
        /// — a clean pass yields `Delivery::Update`.
        fn round_against(transform: impl FnOnce(Vec<u8>) -> (Vec<u8>, bool)) -> Vec<Delivery> {
            let env = ExperimentEnv::tiny_for_tests(3);
            let model = env.build_model(&ModelSpec::small_cnn_test());
            let mask = Mask::ones(&sparse_layout(model.as_ref()));
            let epoch = 5;
            let ctx = wire_ctx(model.as_ref(), &mask, epoch);
            let update = DeviceUpdate {
                payload: Codec::MaskCsr.encode(&vec![0.125f32; ctx.len()], &ctx, epoch, None),
                bn: model.bn_stats().into_iter().cloned().collect(),
                samples: 7,
                realized_flops: 1.0e6,
                wall_secs: 0.25,
            };
            let body = encode_update_frame(0, 0, epoch, &update, &ctx);
            let mut wire = Vec::with_capacity(5 + body.len());
            wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
            wire.push(FRAME_UPDATE);
            wire.extend_from_slice(&body);
            let (bytes, drop_socket) = transform(wire);

            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            let client = std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                write_frame(&mut stream, FRAME_HELLO, &0u32.to_le_bytes()).expect("hello");
                stream.write_all(&bytes).expect("raw update bytes");
                stream.flush().expect("flush");
                // The device never reads its ROUND broadcast; the kernel
                // buffers it. Dropping the stream here is the truncation
                // EOF the server must survive.
                if drop_socket {
                    None
                } else {
                    Some(stream)
                }
            });
            let mut transport =
                TcpTransport::accept_fleet_tolerant(listener, 1).expect("tolerant accept");
            // Join *before* the round: the corrupted bytes are already in
            // the socket buffer, so the collect loop never waits on the
            // quiet deadline.
            let _socket = client.join().expect("client thread");
            let mut cfg = FlConfig::tiny_for_tests();
            cfg.collect_timeout_secs = 2.0;
            let rt = Runtime::sequential();
            let mut req = RoundRequest {
                global: model.as_ref(),
                mask: &mask,
                ctx: &ctx,
                epoch,
                round: 0,
                cohort: &[0],
                parts: &[],
                cfg: &cfg,
                rt: &rt,
                residuals: &mut [],
                sample_caps: &[],
                rejoining: &[],
            };
            transport
                .exchange_round(&mut req)
                .expect("tolerant round never hard-fails")
        }

        proptest! {
            /// Cutting a valid UPDATE frame anywhere — inside the header,
            /// inside the body — and closing the socket quarantines the
            /// device with a typed fault; only the uncut frame passes.
            #[test]
            fn mux_truncated_frames_quarantine_typed(cut in 0usize..4096) {
                let mut was_cut = false;
                let out = round_against(|wire| {
                    let cut = cut.min(wire.len());
                    was_cut = cut < wire.len();
                    (wire[..cut].to_vec(), true)
                });
                prop_assert_eq!(out.len(), 1);
                match (&out[0], was_cut) {
                    (Delivery::Faulted(FaultKind::Disconnected(_)), true) => {}
                    (Delivery::Update(_), false) => {}
                    (other, _) => prop_assert!(
                        false,
                        "cut={cut}: unexpected delivery {other:?}"
                    ),
                }
            }

            /// Flipping any single body byte still yields exactly one
            /// typed delivery through the multiplexed path: a screened
            /// update or a quarantine fault, never a panic or hang.
            #[test]
            fn mux_mutated_frames_settle_typed(idx in 0usize..4096, xor in 1usize..256) {
                let out = round_against(|mut wire| {
                    // Mutate the body only; the length prefix stays honest
                    // so the frame still arrives complete.
                    let body_len = wire.len() - 5;
                    wire[5 + idx % body_len] ^= xor as u8;
                    (wire, false)
                });
                prop_assert_eq!(out.len(), 1);
                match &out[0] {
                    Delivery::Update(_) | Delivery::Faulted(_) => {}
                }
            }
        }
    }
}
