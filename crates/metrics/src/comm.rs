//! Communication-cost accounting (Fig. 5 and the Alg. 1 overhead analysis).
//!
//! These formulas are *analytic* — computed from the architecture and the
//! per-layer densities. The real wire sizes come from the typed codecs in
//! `ft_sparse::codec`; the test suite here cross-checks the two against
//! each other so the paper-style accounting can never drift away from what
//! the encoder actually produces.

use crate::memory::{prunable_lens, unprunable_params};
use ft_nn::{ArchInfo, LayerArch};
use ft_sparse::sparse_index_width;

/// How a sparse transfer pays for its index structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexWidth {
    /// The receiver already holds the mask (shared mask epoch): values
    /// travel bare, indices cost nothing.
    Shared,
    /// Fixed `bytes` per surviving weight's index.
    Fixed(usize),
    /// Derived per layer from the layer size — 2 bytes for layers of at
    /// most 2^16 weights, 4 beyond (the same rule the `MaskCsr` wire codec
    /// uses).
    PerLayer,
}

impl IndexWidth {
    fn bytes_for(self, layer_len: usize) -> f64 {
        match self {
            IndexWidth::Shared => 0.0,
            IndexWidth::Fixed(b) => b as f64,
            IndexWidth::PerLayer => sparse_index_width(layer_len) as f64,
        }
    }
}

/// Bytes to transfer one sparse model: surviving prunable weights as a
/// value plus an index of `width` bytes, and the dense unprunable
/// parameters as bare values.
///
/// # Panics
///
/// Panics if `densities.len()` differs from the number of prunable layers.
pub fn sparse_model_bytes_with(arch: &ArchInfo, densities: &[f32], width: IndexWidth) -> f64 {
    let lens = prunable_lens(arch);
    assert_eq!(
        lens.len(),
        densities.len(),
        "densities must cover every prunable layer"
    );
    let payload: f64 = lens
        .iter()
        .zip(densities.iter())
        .map(|(&n, &d)| n as f64 * d.clamp(0.0, 1.0) as f64 * (4.0 + width.bytes_for(n)))
        .sum();
    payload + 4.0 * unprunable_params(arch) as f64
}

/// [`sparse_model_bytes_with`] at the derived per-layer index width — the
/// Fig. 5 headline number. (Historically this assumed a flat 8-byte
/// `(value, index)` pair; the index share is now 2 bytes for layers that
/// fit `u16` offsets and 4 beyond, matching the real `MaskCsr` encoder.)
///
/// # Panics
///
/// Panics if `densities.len()` differs from the number of prunable layers.
pub fn sparse_model_bytes(arch: &ArchInfo, densities: &[f32]) -> f64 {
    sparse_model_bytes_with(arch, densities, IndexWidth::PerLayer)
}

/// Bytes to transfer the dense model (plain values, no indices needed).
pub fn dense_download_bytes(arch: &ArchInfo) -> f64 {
    4.0 * crate::memory::total_params(arch) as f64
}

/// Bytes of one full set of batch-normalization statistics (mean + variance
/// per channel) — what each device uploads per candidate in Alg. 1.
pub fn bn_stats_bytes(arch: &ArchInfo) -> f64 {
    let channels: usize = arch
        .layers
        .iter()
        .map(|l| match l {
            LayerArch::BatchNorm { channels, .. } => *channels,
            _ => 0,
        })
        .sum();
    (2 * channels * 4) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::arch;

    #[test]
    fn sparse_transfer_scales_with_density() {
        let a = arch();
        let full = sparse_model_bytes(&a, &[1.0, 1.0]);
        let tiny = sparse_model_bytes(&a, &[0.01, 0.01]);
        assert!(tiny < full / 2.0);
        // Unprunable floor stays.
        assert!(tiny >= 4.0 * unprunable_params(&a) as f64);
    }

    #[test]
    fn dense_download_counts_everything() {
        let a = arch();
        assert_eq!(
            dense_download_bytes(&a),
            4.0 * crate::total_params(&a) as f64
        );
    }

    #[test]
    fn bn_bytes_by_hand() {
        // Channels: 8 + 16 = 24; mean+var = 48 floats = 192 bytes.
        assert_eq!(bn_stats_bytes(&arch()), 192.0);
    }

    #[test]
    fn bn_stats_are_cheap_relative_to_model() {
        let a = arch();
        assert!(bn_stats_bytes(&a) < sparse_model_bytes(&a, &[1.0, 1.0]) / 10.0);
    }

    #[test]
    fn index_width_variants_order_correctly() {
        let a = arch();
        let d = [0.3, 0.3];
        let shared = sparse_model_bytes_with(&a, &d, IndexWidth::Shared);
        let auto = sparse_model_bytes_with(&a, &d, IndexWidth::PerLayer);
        let wide = sparse_model_bytes_with(&a, &d, IndexWidth::Fixed(4));
        assert!(shared < auto && auto <= wide, "{shared} {auto} {wide}");
        // Both test layers fit u16 offsets: Auto = value + 2-byte index.
        assert_eq!(auto, sparse_model_bytes_with(&a, &d, IndexWidth::Fixed(2)));
        assert_eq!(sparse_model_bytes(&a, &d), auto);
    }

    /// The analytic formula cross-checked against the *real* `MaskCsr`
    /// encoder on a real mask: at matched density the two agree to within
    /// the codec's fixed headers, both with shared-epoch (values-only) and
    /// indexed encodings.
    #[test]
    fn analytic_bytes_match_maskcsr_encoder() {
        use ft_sparse::{Codec, Mask, SparseLayout, WireCtx};

        let a = arch();
        let lens = prunable_lens(&a);
        let layout = SparseLayout::new(
            lens.iter()
                .enumerate()
                .map(|(i, &n)| (format!("l{i}"), n))
                .collect(),
        );
        // A real mask: keep every third weight of layer 0, every fifth of
        // layer 1.
        let mut mask = Mask::ones(&layout);
        for (l, stride) in [(0usize, 3usize), (1, 5)] {
            for i in 0..layout.layer(l).len {
                mask.set(l, i, i % stride == 0);
            }
        }
        let densities: Vec<f32> = (0..mask.num_layers())
            .map(|l| mask.layer_density(l))
            .collect();

        // Flat wire context: the prunable segments under the mask plus one
        // dense unprunable segment (arrangement does not change byte
        // totals).
        let mut alive: Vec<bool> = Vec::new();
        let mut segments: Vec<usize> = Vec::new();
        for (l, &n) in lens.iter().enumerate() {
            alive.extend_from_slice(mask.layer(l));
            segments.push(n);
        }
        let unprunable = unprunable_params(&a);
        alive.extend(std::iter::repeat_n(true, unprunable));
        segments.push(unprunable);
        let ctx = WireCtx::new(alive, segments, 1);
        let vector = vec![0.5f32; ctx.len()];

        let shared = Codec::MaskCsr
            .encode(&vector, &ctx, 1, None)
            .encoded_len(&ctx) as f64;
        let indexed = Codec::MaskCsr
            .encode(&vector, &ctx, 0, None)
            .encoded_len(&ctx) as f64;
        let analytic_shared = sparse_model_bytes_with(&a, &densities, IndexWidth::Shared);
        let analytic_indexed = sparse_model_bytes(&a, &densities);
        assert!(
            (shared - analytic_shared).abs() / analytic_shared < 0.05,
            "shared: measured {shared} vs analytic {analytic_shared}"
        );
        assert!(
            (indexed - analytic_indexed).abs() / analytic_indexed < 0.05,
            "indexed: measured {indexed} vs analytic {analytic_indexed}"
        );
    }
}
