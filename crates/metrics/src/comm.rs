//! Communication-cost accounting (Fig. 5 and the Alg. 1 overhead analysis).

use crate::memory::{prunable_lens, unprunable_params};
use ft_nn::{ArchInfo, LayerArch};

/// Bytes to transfer one sparse model: surviving prunable weights as
/// (value, index) pairs plus the dense unprunable parameters as values.
///
/// # Panics
///
/// Panics if `densities.len()` differs from the number of prunable layers.
pub fn sparse_model_bytes(arch: &ArchInfo, densities: &[f32]) -> f64 {
    let lens = prunable_lens(arch);
    assert_eq!(
        lens.len(),
        densities.len(),
        "densities must cover every prunable layer"
    );
    let nnz: f64 = lens
        .iter()
        .zip(densities.iter())
        .map(|(&n, &d)| n as f64 * d.clamp(0.0, 1.0) as f64)
        .sum();
    8.0 * nnz + 4.0 * unprunable_params(arch) as f64
}

/// Bytes to transfer the dense model (plain values, no indices needed).
pub fn dense_download_bytes(arch: &ArchInfo) -> f64 {
    4.0 * crate::memory::total_params(arch) as f64
}

/// Bytes of one full set of batch-normalization statistics (mean + variance
/// per channel) — what each device uploads per candidate in Alg. 1.
pub fn bn_stats_bytes(arch: &ArchInfo) -> f64 {
    let channels: usize = arch
        .layers
        .iter()
        .map(|l| match l {
            LayerArch::BatchNorm { channels, .. } => *channels,
            _ => 0,
        })
        .sum();
    (2 * channels * 4) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::arch;

    #[test]
    fn sparse_transfer_scales_with_density() {
        let a = arch();
        let full = sparse_model_bytes(&a, &[1.0, 1.0]);
        let tiny = sparse_model_bytes(&a, &[0.01, 0.01]);
        assert!(tiny < full / 2.0);
        // Unprunable floor stays.
        assert!(tiny >= 4.0 * unprunable_params(&a) as f64);
    }

    #[test]
    fn dense_download_counts_everything() {
        let a = arch();
        assert_eq!(
            dense_download_bytes(&a),
            4.0 * crate::total_params(&a) as f64
        );
    }

    #[test]
    fn bn_bytes_by_hand() {
        // Channels: 8 + 16 = 24; mean+var = 48 floats = 192 bytes.
        assert_eq!(bn_stats_bytes(&arch()), 192.0);
    }

    #[test]
    fn bn_stats_are_cheap_relative_to_model() {
        let a = arch();
        assert!(bn_stats_bytes(&a) < sparse_model_bytes(&a, &[1.0, 1.0]) / 10.0);
    }
}
