//! Quarantine accounting for hostile fleets.
//!
//! The federation server never trusts a device: every inbound update frame
//! is screened (framing, claimed identity, round/epoch freshness, sample
//! count) before its payload touches the aggregator. Each rejection is a
//! *quarantine* — the update is discarded, the round proceeds with the
//! survivors, and the reason is tallied here so a run's hostility profile
//! is observable (and pinned by the golden adversarial traces).

use serde::{Deserialize, Serialize};

/// Per-run tallies of quarantined traffic, one counter per screening
/// failure class. Lives inside the cost ledger and rides through its
/// checkpoint codec, so a resumed run keeps its history of abuse.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Frames that failed structural decoding: garbage bytes, truncation,
    /// trailing bytes, or an update claiming the wrong device identity.
    pub malformed_frames: u64,
    /// Well-formed updates stamped with a stale round or mask epoch — the
    /// signature of a replayed capture.
    pub replays: u64,
    /// Streams that died mid-round: connection resets, broken pipes, or
    /// mid-handshake disconnects observed while collecting a cohort.
    pub disconnects: u64,
    /// Updates whose claimed `num_samples` exceeded the device's known
    /// partition size — a weight-inflation attack on weighted averaging.
    pub inflated_samples: u64,
    /// Updates accepted but norm-clipped by a `NormClipped` aggregator
    /// (not quarantined — the defense fired rather than the screen).
    pub clipped_updates: u64,
    /// Connection attempts refused during fleet accept: malformed HELLOs,
    /// out-of-range device ids, or handshakes abandoned mid-frame.
    pub rejected_handshakes: u64,
}

impl FaultCounters {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Updates quarantined during rounds (everything except clipping,
    /// which accepts the update, and handshake rejections, which happen
    /// before any round).
    pub fn total_quarantined(&self) -> u64 {
        self.malformed_frames + self.replays + self.disconnects + self.inflated_samples
    }

    /// True when nothing was ever quarantined, clipped, or refused — the
    /// signature of an honest fleet.
    pub fn is_clean(&self) -> bool {
        *self == Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarantine_total_excludes_clips_and_handshakes() {
        let c = FaultCounters {
            malformed_frames: 2,
            replays: 3,
            disconnects: 5,
            inflated_samples: 7,
            clipped_updates: 100,
            rejected_handshakes: 100,
        };
        assert_eq!(c.total_quarantined(), 17);
        assert!(!c.is_clean());
        assert!(FaultCounters::new().is_clean());
    }
}
