//! Per-sample FLOPs accounting.

use ft_nn::{ArchInfo, LayerArch};

/// Forward FLOPs of one layer at weight density `d` for a single sample.
///
/// Convolutions and linears scale linearly with density (skipped
/// multiply-accumulates); BatchNorm is unaffected by weight sparsity.
pub fn layer_forward_flops(layer: &LayerArch, density: f32) -> f64 {
    let d = density.clamp(0.0, 1.0) as f64;
    match layer {
        LayerArch::Conv {
            in_c,
            out_c,
            kernel,
            out_h,
            out_w,
            ..
        } => 2.0 * (*kernel * *kernel * *in_c * *out_c * *out_h * *out_w) as f64 * d,
        LayerArch::Linear {
            in_dim, out_dim, ..
        } => 2.0 * (*in_dim * *out_dim) as f64 * d,
        LayerArch::BatchNorm { channels, spatial } => {
            // subtract mean, divide by std, scale, shift ≈ 4 ops/position.
            4.0 * (*channels * *spatial) as f64
        }
    }
}

/// Dense forward FLOPs per sample.
pub fn forward_flops_dense(arch: &ArchInfo) -> f64 {
    arch.layers
        .iter()
        .map(|l| layer_forward_flops(l, 1.0))
        .sum()
}

/// Forward FLOPs per sample with per-layer densities applied to prunable
/// layers (`densities` is indexed by `prunable_idx`; unprunable layers stay
/// dense).
///
/// # Panics
///
/// Panics if a `prunable_idx` exceeds `densities.len()`.
pub fn forward_flops(arch: &ArchInfo, densities: &[f32]) -> f64 {
    arch.layers
        .iter()
        .map(|l| {
            let d = match prunable_idx(l) {
                Some(i) => {
                    assert!(
                        i < densities.len(),
                        "density vector too short for layer {i}"
                    );
                    densities[i]
                }
                None => 1.0,
            };
            layer_forward_flops(l, d)
        })
        .sum()
}

/// Backward FLOPs per sample (≈ 2× forward: input gradient + weight
/// gradient).
pub fn backward_flops(arch: &ArchInfo, densities: &[f32]) -> f64 {
    2.0 * forward_flops(arch, densities)
}

/// Training FLOPs per sample (forward + backward ≈ 3× forward).
pub fn training_flops(arch: &ArchInfo, densities: &[f32]) -> f64 {
    3.0 * forward_flops(arch, densities)
}

fn prunable_idx(layer: &LayerArch) -> Option<usize> {
    match layer {
        LayerArch::Conv { prunable_idx, .. } | LayerArch::Linear { prunable_idx, .. } => {
            *prunable_idx
        }
        LayerArch::BatchNorm { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::arch;

    #[test]
    fn dense_counts_by_hand() {
        let a = arch();
        // conv1: 2*9*3*8*64 = 27648; bn1: 4*8*64 = 2048;
        // conv2: 2*9*8*16*16 = 36864; bn2: 4*16*16 = 1024;
        // fc1: 2*256*10 = 5120; fc2: 2*10*10 = 200.
        let expect = 27648.0 + 2048.0 + 36864.0 + 1024.0 + 5120.0 + 200.0;
        assert_eq!(forward_flops_dense(&a), expect);
    }

    #[test]
    fn density_scales_only_prunable_layers() {
        let a = arch();
        let dense = forward_flops_dense(&a);
        let sparse = forward_flops(&a, &[0.0, 0.0]);
        // Zero density removes conv2 + fc1 contributions entirely.
        assert_eq!(sparse, dense - 36864.0 - 5120.0);
    }

    #[test]
    fn training_is_three_times_forward() {
        let a = arch();
        let d = [0.5, 0.5];
        assert_eq!(training_flops(&a, &d), 3.0 * forward_flops(&a, &d));
        assert_eq!(backward_flops(&a, &d), 2.0 * forward_flops(&a, &d));
    }

    #[test]
    fn density_clamps() {
        let a = arch();
        assert_eq!(forward_flops(&a, &[2.0, 2.0]), forward_flops_dense(&a));
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn rejects_short_density_vector() {
        let _ = forward_flops(&arch(), &[0.5]);
    }

    #[test]
    fn resnet18_dense_flops_order_of_magnitude() {
        use ft_nn::models::ResNet18;
        use ft_nn::Model;
        use rand::SeedableRng;
        let m = ResNet18::new(
            &mut rand_chacha::ChaCha8Rng::seed_from_u64(0),
            1.0,
            10,
            3,
            32,
        );
        let f = forward_flops_dense(&m.arch());
        // CIFAR ResNet18 forward ≈ 0.5–0.6 GFLOPs (1.1 GMACs x ~0.5).
        assert!((3e8..2e9).contains(&f), "got {f:e}");
    }
}
