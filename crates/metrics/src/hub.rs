//! Live run observability: a lock-light [`MetricsHub`] the round state
//! machine updates at phase boundaries, a plaintext Prometheus-style
//! exposition endpoint over `std::net` TCP, and a length-prefixed
//! [`TraceEvent`] frame stream that `ft watch` tails while a fleet runs.
//!
//! The hub is strictly *observational*: the server publishes values the
//! [`CostLedger`](../../ft_fl) already computed, never the other way
//! around, so enabling or disabling the endpoint cannot perturb a run —
//! golden traces stay byte-identical either way. Publishing happens once
//! per round (not per sample), so the single short-lived mutex hold is
//! invisible next to a round of local SGD.
//!
//! # Wire protocol of the endpoint
//!
//! One listener serves both consumers, distinguished by the first line the
//! client sends:
//!
//! - `GET ...` — an HTTP/1.0 request (curl, a Prometheus scraper, or a
//!   raw-socket `printf`): the hub renders the text exposition format
//!   (`text/plain; version=0.0.4`) and closes.
//! - `WATCH` — the connection is registered as a trace subscriber and
//!   receives every subsequent [`TimelineEvent`]-shaped frame live:
//!   `u32 LE body length | body`, body = `u8 kind(=1) | u64 device |
//!   u64 round | f64 start_secs | f64 finish_secs | u8 applied |
//!   u64 staleness` (floats as raw IEEE-754 bits, all little-endian —
//!   the same framing discipline as the fleet transport).
//!
//! A subscriber that stops draining (or disconnects) is dropped after a
//! short write timeout; slow watchers can never stall the round loop.

use crate::FaultCounters;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Trace-frame kind byte for a device timeline event (the only kind today;
/// the byte exists so the stream can grow without re-framing).
pub const TRACE_KIND_EVENT: u8 = 1;

/// Encoded body length of a [`TRACE_KIND_EVENT`] frame.
const EVENT_BODY_LEN: usize = 1 + 8 + 8 + 8 + 8 + 1 + 8;

/// Upper bound on a trace frame body; anything larger is a corrupt stream,
/// not a future extension.
const MAX_TRACE_BODY: u32 = 4096;

/// Upper staleness edges of the exposition histogram, in rounds. `+Inf` is
/// implicit.
pub const STALENESS_BUCKETS: [usize; 6] = [0, 1, 2, 4, 8, 16];

/// One device-round observation, mirroring `ft-fl`'s `TimelineEvent` (the
/// mirror exists because `ft-metrics` sits *below* `ft-fl` in the crate
/// DAG).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Device index within the fleet.
    pub device: u64,
    /// Round whose model the device trained on.
    pub round: u64,
    /// Simulated start of the device's work, in seconds.
    pub start_secs: f64,
    /// Simulated completion time, in seconds.
    pub finish_secs: f64,
    /// Whether the update was applied (false = dropped/cut/quarantined).
    pub applied: bool,
    /// Rounds of staleness at application time (0 = fresh).
    pub staleness: u64,
}

/// Why a trace frame failed to decode. Truncation is a *typed* outcome —
/// a partial read at any byte offset must never panic the watcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceDecodeError {
    /// The buffer ends mid-frame: `needed` more bytes than `have`.
    Truncated {
        /// Bytes the complete frame requires.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The length prefix exceeds any frame this protocol emits.
    Oversized {
        /// The claimed body length.
        len: u32,
    },
    /// An unrecognized frame-kind byte.
    UnknownKind {
        /// The offending kind byte.
        kind: u8,
    },
    /// A known kind whose body length does not match its fixed layout.
    BadLength {
        /// The claimed body length.
        len: u32,
        /// The length the kind requires.
        expected: usize,
    },
}

impl std::fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceDecodeError::Truncated { needed, have } => {
                write!(f, "truncated trace frame: need {needed} bytes, have {have}")
            }
            TraceDecodeError::Oversized { len } => {
                write!(f, "trace frame body of {len} bytes exceeds protocol bound")
            }
            TraceDecodeError::UnknownKind { kind } => {
                write!(f, "unknown trace frame kind {kind}")
            }
            TraceDecodeError::BadLength { len, expected } => {
                write!(
                    f,
                    "trace frame body of {len} bytes, kind requires {expected}"
                )
            }
        }
    }
}

impl std::error::Error for TraceDecodeError {}

/// Encodes one event as a complete frame (length prefix included).
pub fn encode_trace_frame(ev: &TraceEvent) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + EVENT_BODY_LEN);
    out.extend_from_slice(&(EVENT_BODY_LEN as u32).to_le_bytes());
    out.push(TRACE_KIND_EVENT);
    out.extend_from_slice(&ev.device.to_le_bytes());
    out.extend_from_slice(&ev.round.to_le_bytes());
    out.extend_from_slice(&ev.start_secs.to_bits().to_le_bytes());
    out.extend_from_slice(&ev.finish_secs.to_bits().to_le_bytes());
    out.push(ev.applied as u8);
    out.extend_from_slice(&ev.staleness.to_le_bytes());
    out
}

/// Decodes one frame from the front of `buf`, returning the event and the
/// bytes consumed. Every malformed input — truncation at any offset, an
/// absurd length, an unknown kind — is a typed error, never a panic.
pub fn decode_trace_frame(buf: &[u8]) -> Result<(TraceEvent, usize), TraceDecodeError> {
    if buf.len() < 4 {
        return Err(TraceDecodeError::Truncated {
            needed: 4,
            have: buf.len(),
        });
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len > MAX_TRACE_BODY {
        return Err(TraceDecodeError::Oversized { len });
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Err(TraceDecodeError::Truncated {
            needed: total,
            have: buf.len(),
        });
    }
    let body = &buf[4..total];
    let kind = body[0];
    if kind != TRACE_KIND_EVENT {
        return Err(TraceDecodeError::UnknownKind { kind });
    }
    if body.len() != EVENT_BODY_LEN {
        return Err(TraceDecodeError::BadLength {
            len,
            expected: EVENT_BODY_LEN,
        });
    }
    let u64_at = |o: usize| u64::from_le_bytes(body[o..o + 8].try_into().expect("8-byte slice"));
    let ev = TraceEvent {
        device: u64_at(1),
        round: u64_at(9),
        start_secs: f64::from_bits(u64_at(17)),
        finish_secs: f64::from_bits(u64_at(25)),
        applied: body[33] != 0,
        staleness: u64_at(34),
    };
    Ok((ev, total))
}

/// Reads one frame from a stream. `Ok(None)` is a clean end (EOF exactly at
/// a frame boundary); EOF mid-frame surfaces as [`TraceDecodeError::Truncated`]
/// wrapped in `UnexpectedEof`-flavored `io::Error` via [`TraceStreamError`].
pub fn read_trace_frame<R: Read>(r: &mut R) -> Result<Option<TraceEvent>, TraceStreamError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(TraceStreamError::Decode(TraceDecodeError::Truncated {
                    needed: 4,
                    have: got,
                }))
            }
            Ok(n) => got += n,
            Err(e) => return Err(TraceStreamError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_TRACE_BODY {
        return Err(TraceStreamError::Decode(TraceDecodeError::Oversized {
            len,
        }));
    }
    let mut frame = Vec::with_capacity(4 + len as usize);
    frame.extend_from_slice(&len_buf);
    frame.resize(4 + len as usize, 0);
    let mut filled = 4usize;
    while filled < frame.len() {
        match r.read(&mut frame[filled..]) {
            Ok(0) => {
                return Err(TraceStreamError::Decode(TraceDecodeError::Truncated {
                    needed: frame.len(),
                    have: filled,
                }))
            }
            Ok(n) => filled += n,
            Err(e) => return Err(TraceStreamError::Io(e)),
        }
    }
    decode_trace_frame(&frame)
        .map(|(ev, _)| Some(ev))
        .map_err(TraceStreamError::Decode)
}

/// A streaming read that failed: socket trouble or a malformed frame.
#[derive(Debug)]
pub enum TraceStreamError {
    /// The underlying socket read failed.
    Io(std::io::Error),
    /// The bytes read do not form a valid frame.
    Decode(TraceDecodeError),
}

impl std::fmt::Display for TraceStreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceStreamError::Io(e) => write!(f, "trace stream read failed: {e}"),
            TraceStreamError::Decode(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TraceStreamError {}

/// Ledger-derived totals the server publishes once per completed round.
/// Everything is a *cumulative* value copied from the `CostLedger`, so the
/// exposition always agrees with the ledger exactly — no double counting.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundStats {
    /// Completed federated rounds.
    pub rounds_completed: u64,
    /// Devices whose updates the server accepted this round.
    pub cohort_size: u64,
    /// Fleet size `K`.
    pub devices: u64,
    /// Cumulative measured broadcast bytes (server → devices).
    pub payload_down_bytes: f64,
    /// Cumulative measured upload bytes (devices → server).
    pub payload_up_bytes: f64,
    /// Simulated fleet makespan so far, in seconds.
    pub sim_makespan_secs: f64,
    /// Rounds that closed with an empty cohort.
    pub zero_progress_rounds: u64,
    /// Quarantine/defense tallies, copied whole from the ledger.
    pub faults: FaultCounters,
}

/// Mutable interior of the hub, behind one short-hold mutex.
#[derive(Default)]
struct HubState {
    round: RoundStats,
    /// Raw (non-cumulative) staleness bucket counts; rendered cumulatively.
    stale_buckets: [u64; STALENESS_BUCKETS.len() + 1],
    stale_sum: u64,
    stale_count: u64,
    /// Steady-state allocation bytes per round; negative = not measured.
    alloc_bytes_per_round: f64,
}

/// The lock-light metrics rendezvous between a running server and its
/// observers. The server publishes at round boundaries; scrapers and
/// watchers read through [`MetricsEndpoint`] without ever touching the
/// round loop.
pub struct MetricsHub {
    state: Mutex<HubState>,
    watchers: Mutex<Vec<TcpStream>>,
    started: Instant,
    closed: AtomicBool,
}

impl Default for MetricsHub {
    fn default() -> Self {
        MetricsHub {
            state: Mutex::new(HubState {
                alloc_bytes_per_round: -1.0,
                ..HubState::default()
            }),
            watchers: Mutex::new(Vec::new()),
            started: Instant::now(),
            closed: AtomicBool::new(false),
        }
    }
}

impl MetricsHub {
    /// A fresh hub, shareable between the round loop and an endpoint.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Publishes the cumulative round totals (overwrites, never adds —
    /// the values are ledger totals already).
    pub fn observe_round(&self, stats: RoundStats) {
        let mut st = self.state.lock().expect("metrics state poisoned");
        st.round = stats;
    }

    /// Records one timeline event: bumps the staleness histogram and
    /// pushes a live frame to every watcher.
    pub fn record_event(&self, ev: &TraceEvent) {
        {
            let mut st = self.state.lock().expect("metrics state poisoned");
            let idx = STALENESS_BUCKETS
                .iter()
                .position(|&edge| ev.staleness as usize <= edge)
                .unwrap_or(STALENESS_BUCKETS.len());
            st.stale_buckets[idx] += 1;
            st.stale_sum += ev.staleness;
            st.stale_count += 1;
        }
        let mut watchers = self.watchers.lock().expect("metrics watchers poisoned");
        if watchers.is_empty() {
            return;
        }
        let frame = encode_trace_frame(ev);
        // A watcher that cannot take the frame within its write timeout is
        // dropped — the round loop never waits on a slow consumer.
        watchers.retain_mut(|w| w.write_all(&frame).is_ok());
    }

    /// Publishes the steady-state allocation bytes per round (from the
    /// bench harness's counting allocator; negative = not measured).
    pub fn set_alloc_bytes_per_round(&self, bytes: f64) {
        let mut st = self.state.lock().expect("metrics state poisoned");
        st.alloc_bytes_per_round = bytes;
    }

    /// Renders the Prometheus text exposition format (version 0.0.4).
    /// `f64` values print in Rust's shortest round-trip form, so a scraper
    /// parsing them back recovers the ledger's bits exactly.
    pub fn render_text(&self) -> String {
        let st = self.state.lock().expect("metrics state poisoned");
        let host_secs = self.started.elapsed().as_secs_f64();
        let mut out = String::with_capacity(2048);
        let family = |name: &str, kind: &str, help: &str, out: &mut String| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        };
        let r = &st.round;
        family(
            "ft_rounds_completed",
            "counter",
            "Completed federated rounds.",
            &mut out,
        );
        out.push_str(&format!("ft_rounds_completed {}\n", r.rounds_completed));
        family(
            "ft_fleet_devices",
            "gauge",
            "Configured fleet size K.",
            &mut out,
        );
        out.push_str(&format!("ft_fleet_devices {}\n", r.devices));
        family(
            "ft_round_cohort_size",
            "gauge",
            "Updates accepted in the last completed round.",
            &mut out,
        );
        out.push_str(&format!("ft_round_cohort_size {}\n", r.cohort_size));
        family(
            "ft_payload_bytes_total",
            "counter",
            "Measured wire payload bytes by direction.",
            &mut out,
        );
        out.push_str(&format!(
            "ft_payload_bytes_total{{direction=\"down\"}} {}\n",
            r.payload_down_bytes
        ));
        out.push_str(&format!(
            "ft_payload_bytes_total{{direction=\"up\"}} {}\n",
            r.payload_up_bytes
        ));
        family(
            "ft_update_staleness_rounds",
            "histogram",
            "Staleness (in rounds) of every collected device update.",
            &mut out,
        );
        let mut cum = 0u64;
        for (i, edge) in STALENESS_BUCKETS.iter().enumerate() {
            cum += st.stale_buckets[i];
            out.push_str(&format!(
                "ft_update_staleness_rounds_bucket{{le=\"{edge}\"}} {cum}\n"
            ));
        }
        cum += st.stale_buckets[STALENESS_BUCKETS.len()];
        out.push_str(&format!(
            "ft_update_staleness_rounds_bucket{{le=\"+Inf\"}} {cum}\n"
        ));
        out.push_str(&format!(
            "ft_update_staleness_rounds_sum {}\n",
            st.stale_sum
        ));
        out.push_str(&format!(
            "ft_update_staleness_rounds_count {}\n",
            st.stale_count
        ));
        family(
            "ft_faults_total",
            "counter",
            "Quarantined or defended traffic by screening class.",
            &mut out,
        );
        for (kind, v) in [
            ("malformed_frame", r.faults.malformed_frames),
            ("replay", r.faults.replays),
            ("disconnect", r.faults.disconnects),
            ("inflated_samples", r.faults.inflated_samples),
            ("clipped_update", r.faults.clipped_updates),
            ("rejected_handshake", r.faults.rejected_handshakes),
        ] {
            out.push_str(&format!("ft_faults_total{{kind=\"{kind}\"}} {v}\n"));
        }
        family(
            "ft_zero_progress_rounds",
            "counter",
            "Rounds that closed with an empty cohort.",
            &mut out,
        );
        out.push_str(&format!(
            "ft_zero_progress_rounds {}\n",
            r.zero_progress_rounds
        ));
        family(
            "ft_sim_makespan_seconds",
            "gauge",
            "Simulated fleet makespan.",
            &mut out,
        );
        out.push_str(&format!(
            "ft_sim_makespan_seconds {}\n",
            r.sim_makespan_secs
        ));
        family(
            "ft_host_run_seconds",
            "gauge",
            "Host wall-clock since the hub was created.",
            &mut out,
        );
        out.push_str(&format!("ft_host_run_seconds {host_secs}\n"));
        family(
            "ft_alloc_bytes_per_round",
            "gauge",
            "Steady-state heap bytes allocated per round (-1 = not measured).",
            &mut out,
        );
        out.push_str(&format!(
            "ft_alloc_bytes_per_round {}\n",
            st.alloc_bytes_per_round
        ));
        out
    }

    /// Binds `addr` and serves scrapes and watch streams on a background
    /// thread until the returned endpoint is shut down or dropped.
    pub fn serve(self: &Arc<Self>, addr: &str) -> std::io::Result<MetricsEndpoint> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let hub = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("ft-metrics".into())
            .spawn(move || hub.accept_loop(listener))
            .expect("spawn metrics endpoint thread");
        Ok(MetricsEndpoint {
            addr: local,
            hub: Arc::clone(self),
            handle: Some(handle),
        })
    }

    fn accept_loop(self: Arc<Self>, listener: TcpListener) {
        for conn in listener.incoming() {
            if self.closed.load(Ordering::SeqCst) {
                return;
            }
            let Ok(stream) = conn else { continue };
            // One malformed or slow client must not wedge the acceptor:
            // bound the request read, then hand off or answer inline.
            let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
            let mut reader = BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(_) => continue,
            });
            let mut line = String::new();
            if reader.read_line(&mut line).is_err() {
                continue;
            }
            let mut stream = stream;
            if line.starts_with("GET") {
                let body = self.render_text();
                let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                let _ = write!(
                    stream,
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                    body.len(),
                    body
                );
            } else if line.trim_end() == "WATCH" {
                // Live subscriber: short write timeout so a stalled
                // watcher is shed instead of blocking record_event.
                let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
                self.watchers
                    .lock()
                    .expect("metrics watchers poisoned")
                    .push(stream);
            }
            // Anything else: drop the connection silently.
        }
    }
}

/// Handle to a running metrics/trace listener. Dropping it stops the
/// acceptor thread and closes every watcher stream.
pub struct MetricsEndpoint {
    addr: SocketAddr,
    hub: Arc<MetricsHub>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsEndpoint {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the acceptor and disconnects all watchers.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.hub.closed.store(true, Ordering::SeqCst);
        // The acceptor blocks in accept(); poke it with a throwaway
        // connection so it observes the flag and exits.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.hub
            .watchers
            .lock()
            .expect("metrics watchers poisoned")
            .clear();
    }
}

impl Drop for MetricsEndpoint {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> TraceEvent {
        TraceEvent {
            device: 3,
            round: 7,
            start_secs: 1.25,
            finish_secs: 2.5,
            applied: true,
            staleness: 2,
        }
    }

    #[test]
    fn trace_frame_round_trips() {
        let ev = sample_event();
        let frame = encode_trace_frame(&ev);
        let (back, used) = decode_trace_frame(&frame).expect("valid frame");
        assert_eq!(back, ev);
        assert_eq!(used, frame.len());
    }

    #[test]
    fn every_truncation_is_a_typed_error_never_a_panic() {
        let frame = encode_trace_frame(&sample_event());
        for cut in 0..frame.len() {
            match decode_trace_frame(&frame[..cut]) {
                Err(TraceDecodeError::Truncated { needed, have }) => {
                    assert_eq!(have, cut);
                    assert!(needed > cut);
                }
                other => panic!("truncation at {cut} must be typed, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_kind_and_oversize_are_rejected() {
        let mut frame = encode_trace_frame(&sample_event());
        frame[4] = 99;
        assert_eq!(
            decode_trace_frame(&frame),
            Err(TraceDecodeError::UnknownKind { kind: 99 })
        );
        let huge = (MAX_TRACE_BODY + 1).to_le_bytes();
        assert_eq!(
            decode_trace_frame(&huge),
            Err(TraceDecodeError::Oversized {
                len: MAX_TRACE_BODY + 1
            })
        );
    }

    #[test]
    fn stream_reader_distinguishes_clean_eof_from_truncation() {
        let frame = encode_trace_frame(&sample_event());
        let mut two = frame.clone();
        two.extend_from_slice(&frame);
        let mut cursor = std::io::Cursor::new(two);
        assert!(matches!(read_trace_frame(&mut cursor), Ok(Some(_))));
        assert!(matches!(read_trace_frame(&mut cursor), Ok(Some(_))));
        assert!(matches!(read_trace_frame(&mut cursor), Ok(None)));
        let mut cut = std::io::Cursor::new(frame[..frame.len() - 3].to_vec());
        match read_trace_frame(&mut cut) {
            Err(TraceStreamError::Decode(TraceDecodeError::Truncated { .. })) => {}
            other => panic!("mid-frame EOF must be Truncated, got {other:?}"),
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_count_every_event() {
        let hub = MetricsHub::new();
        for staleness in [0u64, 0, 1, 3, 20] {
            hub.record_event(&TraceEvent {
                staleness,
                ..sample_event()
            });
        }
        let text = hub.render_text();
        assert!(text.contains("ft_update_staleness_rounds_bucket{le=\"0\"} 2\n"));
        assert!(text.contains("ft_update_staleness_rounds_bucket{le=\"1\"} 3\n"));
        assert!(text.contains("ft_update_staleness_rounds_bucket{le=\"4\"} 4\n"));
        assert!(text.contains("ft_update_staleness_rounds_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("ft_update_staleness_rounds_sum 24\n"));
        assert!(text.contains("ft_update_staleness_rounds_count 5\n"));
    }

    #[test]
    fn endpoint_serves_scrapes_and_watch_frames() {
        let hub = MetricsHub::new();
        hub.observe_round(RoundStats {
            rounds_completed: 4,
            cohort_size: 3,
            devices: 3,
            payload_down_bytes: 100.0,
            payload_up_bytes: 250.0,
            ..RoundStats::default()
        });
        let endpoint = hub.serve("127.0.0.1:0").expect("bind");
        let addr = endpoint.local_addr();

        // Raw-socket GET, exactly what the CI job does.
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect("send");
        let mut resp = String::new();
        s.read_to_string(&mut resp).expect("read");
        assert!(resp.starts_with("HTTP/1.0 200 OK"));
        assert!(resp.contains("ft_rounds_completed 4\n"));
        assert!(resp.contains("ft_payload_bytes_total{direction=\"up\"} 250\n"));

        // Watch subscriber sees events published after it connects.
        let mut w = TcpStream::connect(addr).expect("connect watch");
        w.write_all(b"WATCH\n").expect("send watch");
        // Registration races the publish; poll until the frame arrives.
        let ev = sample_event();
        w.set_read_timeout(Some(Duration::from_millis(100))).ok();
        let deadline = Instant::now() + Duration::from_secs(5);
        let got = loop {
            hub.record_event(&ev);
            match read_trace_frame(&mut w) {
                Ok(Some(got)) => break got,
                _ if Instant::now() < deadline => continue,
                other => panic!("watch frame never arrived: {other:?}"),
            }
        };
        assert_eq!(got, ev);
        endpoint.shutdown();
    }
}
