//! Analytic cost accounting for federated pruning experiments.
//!
//! The paper's Tables I and II report per-device training FLOPs, memory
//! footprint and (Fig. 5) communication cost as *multiples of the dense
//! model's analytic cost* — not wall-clock measurements. This crate
//! reproduces that accounting: everything is computed from a model's
//! [`ft_nn::ArchInfo`] plus per-layer densities, so costs are exact, deterministic
//! and independent of the host machine.
//!
//! Conventions (documented in DESIGN.md):
//! - A multiply-accumulate counts as 2 FLOPs.
//! - Backward pass ≈ 2× forward, so training ≈ 3× forward
//!   (the standard estimate the paper also relies on).
//! - Sparse tensors are stored as value + index (8 bytes/nnz); training
//!   additionally keeps a gradient per surviving weight (4 bytes/nnz).
//! - Dense (unprunable) parameters cost 8 bytes each during training
//!   (weight + gradient).
//!
//! The [`DeviceProfile`] / [`SimClock`] pair extends the same analytic
//! philosophy to *time*: a device's round takes `flops / flops_per_sec +
//! bytes / bytes_per_sec` simulated seconds (plus deterministic jitter), so
//! fleet heterogeneity is modeled without ever sleeping on the host.

mod comm;
mod faults;
mod flops;
pub mod hub;
mod memory;
mod time;

pub use comm::{
    bn_stats_bytes, dense_download_bytes, sparse_model_bytes, sparse_model_bytes_with, IndexWidth,
};
pub use faults::FaultCounters;
pub use flops::{
    backward_flops, forward_flops, forward_flops_dense, layer_forward_flops, training_flops,
};
pub use hub::{
    decode_trace_frame, encode_trace_frame, read_trace_frame, MetricsEndpoint, MetricsHub,
    RoundStats, TraceDecodeError, TraceEvent, TraceStreamError, STALENESS_BUCKETS,
};
pub use memory::{
    device_memory_bytes, prunable_lens, total_params, unprunable_params, ExtraMemory,
};
pub use time::{DeviceProfile, SimClock};

use ft_sparse::Mask;

/// Extracts per-layer densities (in prunable-layer order) from a mask.
pub fn densities_from_mask(mask: &Mask) -> Vec<f32> {
    (0..mask.num_layers())
        .map(|l| mask.layer_density(l))
        .collect()
}

#[cfg(test)]
pub(crate) mod testutil {
    use ft_nn::{ArchInfo, LayerArch};

    /// A small fixed architecture used across this crate's tests:
    /// conv(3→8, 3x3, 8x8 out) [not prunable] → bn → conv(8→16, 3x3, 4x4 out)
    /// [prunable 0] → bn → linear(256→10) [prunable 1] → linear(10→10) [not].
    pub fn arch() -> ArchInfo {
        ArchInfo {
            name: "test".into(),
            input: [3, 8, 8],
            classes: 10,
            layers: vec![
                LayerArch::Conv {
                    in_c: 3,
                    out_c: 8,
                    kernel: 3,
                    out_h: 8,
                    out_w: 8,
                    prunable_idx: None,
                },
                LayerArch::BatchNorm {
                    channels: 8,
                    spatial: 64,
                },
                LayerArch::Conv {
                    in_c: 8,
                    out_c: 16,
                    kernel: 3,
                    out_h: 4,
                    out_w: 4,
                    prunable_idx: Some(0),
                },
                LayerArch::BatchNorm {
                    channels: 16,
                    spatial: 16,
                },
                LayerArch::Linear {
                    in_dim: 256,
                    out_dim: 10,
                    prunable_idx: Some(1),
                },
                LayerArch::Linear {
                    in_dim: 10,
                    out_dim: 10,
                    prunable_idx: None,
                },
            ],
        }
    }
}
