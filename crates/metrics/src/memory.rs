//! Device memory-footprint accounting.

use ft_nn::{ArchInfo, LayerArch};

/// Method-specific additional memory a device must hold beyond the sparse
/// model itself (Table I's differentiator between methods).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ExtraMemory {
    /// Nothing beyond the sparse model (SNIP, SynFlow, FL-PQSU after
    /// pruning).
    None,
    /// Dense importance scores for every parameter (PruneFL keeps full-size
    /// aggregated gradients: 4 bytes × total parameters).
    DenseScores,
    /// The device trains the *dense* model (LotteryFL): weight + gradient
    /// for every parameter.
    DenseTraining,
    /// FedTiny's `O(a)` top-k gradient buffer: `k` (index, value) pairs.
    TopKBuffer(usize),
    /// A binary mask over all prunable weights (FedDST mask adjustment).
    MaskBits,
}

/// Total scalar parameters of the architecture (weights + biases + BN
/// affine).
pub fn total_params(arch: &ArchInfo) -> usize {
    arch.layers
        .iter()
        .map(|l| match l {
            LayerArch::Conv {
                in_c,
                out_c,
                kernel,
                ..
            } => in_c * out_c * kernel * kernel,
            LayerArch::Linear {
                in_dim, out_dim, ..
            } => in_dim * out_dim + out_dim,
            LayerArch::BatchNorm { channels, .. } => 2 * channels,
        })
        .sum()
}

/// Lengths of the prunable weight tensors, indexed by `prunable_idx`.
pub fn prunable_lens(arch: &ArchInfo) -> Vec<usize> {
    let mut pairs: Vec<(usize, usize)> = arch
        .layers
        .iter()
        .filter_map(|l| match l {
            LayerArch::Conv {
                in_c,
                out_c,
                kernel,
                prunable_idx: Some(i),
                ..
            } => Some((*i, in_c * out_c * kernel * kernel)),
            LayerArch::Linear {
                in_dim,
                out_dim,
                prunable_idx: Some(i),
                ..
            } => Some((*i, in_dim * out_dim)),
            _ => None,
        })
        .collect();
    pairs.sort_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, n)| n).collect()
}

/// Scalar parameters that never participate in pruning.
pub fn unprunable_params(arch: &ArchInfo) -> usize {
    total_params(arch) - prunable_lens(arch).iter().sum::<usize>()
}

/// Device memory footprint in bytes for local *training* at the given
/// per-layer densities.
///
/// Accounting: surviving prunable weights cost 12 bytes (value + index +
/// gradient); unprunable parameters cost 8 bytes (value + gradient); plus
/// the method-specific [`ExtraMemory`].
///
/// # Panics
///
/// Panics if `densities.len()` differs from the number of prunable layers.
pub fn device_memory_bytes(arch: &ArchInfo, densities: &[f32], extra: ExtraMemory) -> f64 {
    let lens = prunable_lens(arch);
    assert_eq!(
        lens.len(),
        densities.len(),
        "densities must cover every prunable layer"
    );
    let nnz: f64 = lens
        .iter()
        .zip(densities.iter())
        .map(|(&n, &d)| n as f64 * d.clamp(0.0, 1.0) as f64)
        .sum();
    let base = 12.0 * nnz + 8.0 * unprunable_params(arch) as f64;
    let total = total_params(arch) as f64;
    let extra_bytes = match extra {
        ExtraMemory::None => 0.0,
        ExtraMemory::DenseScores => 4.0 * total,
        ExtraMemory::DenseTraining => {
            // Dense weight+grad replaces the sparse storage entirely.
            return 8.0 * total;
        }
        ExtraMemory::TopKBuffer(k) => 8.0 * k as f64,
        ExtraMemory::MaskBits => lens.iter().sum::<usize>() as f64 / 8.0,
    };
    base + extra_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::arch;

    #[test]
    fn total_params_by_hand() {
        // conv1 3*8*9=216, bn1 16, conv2 8*16*9=1152, bn2 32,
        // fc1 256*10+10=2570, fc2 10*10+10=110.
        assert_eq!(total_params(&arch()), 216 + 16 + 1152 + 32 + 2570 + 110);
    }

    #[test]
    fn prunable_lens_ordered() {
        assert_eq!(prunable_lens(&arch()), vec![1152, 2560]);
        assert_eq!(
            unprunable_params(&arch()),
            total_params(&arch()) - 1152 - 2560
        );
    }

    #[test]
    fn memory_shrinks_with_density() {
        let a = arch();
        let dense = device_memory_bytes(&a, &[1.0, 1.0], ExtraMemory::None);
        let sparse = device_memory_bytes(&a, &[0.01, 0.01], ExtraMemory::None);
        assert!(sparse < dense / 2.0, "{sparse} vs {dense}");
    }

    #[test]
    fn dense_scores_add_full_model() {
        let a = arch();
        let d = [0.01, 0.01];
        let none = device_memory_bytes(&a, &d, ExtraMemory::None);
        let scores = device_memory_bytes(&a, &d, ExtraMemory::DenseScores);
        assert!((scores - none - 4.0 * total_params(&a) as f64).abs() < 1e-9);
    }

    #[test]
    fn dense_training_ignores_density() {
        let a = arch();
        let m1 = device_memory_bytes(&a, &[0.01, 0.01], ExtraMemory::DenseTraining);
        let m2 = device_memory_bytes(&a, &[1.0, 1.0], ExtraMemory::DenseTraining);
        assert_eq!(m1, m2);
        assert_eq!(m1, 8.0 * total_params(&a) as f64);
    }

    #[test]
    fn topk_buffer_is_tiny() {
        let a = arch();
        let d = [0.01, 0.01];
        let none = device_memory_bytes(&a, &d, ExtraMemory::None);
        let topk = device_memory_bytes(&a, &d, ExtraMemory::TopKBuffer(64));
        assert_eq!(topk - none, 8.0 * 64.0);
    }

    #[test]
    fn paper_scale_resnet_memory_factor() {
        // At density 0.01, Table I reports ~3% of the dense footprint for
        // ResNet18. Our accounting should land in the same ballpark.
        use ft_nn::models::ResNet18;
        use ft_nn::Model;
        use rand::SeedableRng;
        let m = ResNet18::new(
            &mut rand_chacha::ChaCha8Rng::seed_from_u64(0),
            1.0,
            10,
            3,
            32,
        );
        let a = m.arch();
        let lens = prunable_lens(&a);
        let dense = device_memory_bytes(&a, &vec![1.0; lens.len()], ExtraMemory::None);
        let sparse = device_memory_bytes(&a, &vec![0.01; lens.len()], ExtraMemory::None);
        let factor = sparse / dense;
        assert!(factor < 0.08, "sparse/dense memory factor {factor}");
    }
}
