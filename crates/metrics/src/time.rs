//! Virtual-time model for heterogeneous device fleets.
//!
//! The paper's cost accounting is analytic (FLOPs, bytes); this module turns
//! those analytic counts into **simulated seconds** per device, so the round
//! loop can model slow and flaky fleets without ever sleeping on the host.
//! A [`DeviceProfile`] describes one device's compute and link rates plus
//! its unreliability; a [`SimClock`] converts analytic costs into seconds
//! and supplies deterministic, order-independent jitter/dropout draws (pure
//! functions of `(seed, round, device)`, so parallel and sequential host
//! execution see identical fleets).

use serde::{Deserialize, Serialize};

/// Compute/link/reliability profile of one simulated device.
///
/// Rates are analytic: `flops_per_sec` divides the analytic training FLOPs
/// of a round, `bytes_per_sec` divides the model-transfer bytes. `dropout`
/// is the probability that a finished update never reaches the server;
/// `jitter` is the fractional half-width of multiplicative timing noise
/// (a device with `jitter = 0.3` runs up to 30% slower than its rates say).
///
/// # Examples
///
/// ```
/// use ft_metrics::DeviceProfile;
///
/// let p = DeviceProfile::slow();
/// // 1e7 analytic FLOPs at 1e7 FLOPs/s is one simulated second.
/// assert_eq!(p.exec_secs(1e7), 1.0);
/// let fleet = DeviceProfile::fleet_mixed(5);
/// assert_eq!(fleet.len(), 5);
/// assert!(fleet[0].flops_per_sec > fleet[2].flops_per_sec);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Sustained analytic training throughput in FLOPs per second.
    pub flops_per_sec: f64,
    /// Sustained link throughput in bytes per second (up + down combined).
    pub bytes_per_sec: f64,
    /// Probability that one finished local update is lost (crash, radio
    /// loss) before the server sees it. `0.0` = perfectly reliable.
    pub dropout: f64,
    /// Fractional half-width of multiplicative timing noise: realized time
    /// is `base * (1 + jitter * u)` with `u` uniform in `[0, 1)`.
    pub jitter: f64,
}

impl DeviceProfile {
    /// The reliable reference device every experiment used before fleets
    /// existed: no dropout, no jitter. Default fleet member.
    pub fn uniform() -> Self {
        DeviceProfile {
            flops_per_sec: 1e8,
            bytes_per_sec: 1e5,
            dropout: 0.0,
            jitter: 0.0,
        }
    }

    /// A well-provisioned edge device (fast MCU, decent WiFi).
    pub fn fast() -> Self {
        DeviceProfile {
            flops_per_sec: 2e8,
            bytes_per_sec: 2e5,
            dropout: 0.0,
            jitter: 0.05,
        }
    }

    /// A mid-tier device with occasional losses.
    pub fn balanced() -> Self {
        DeviceProfile {
            flops_per_sec: 5e7,
            bytes_per_sec: 5e4,
            dropout: 0.02,
            jitter: 0.15,
        }
    }

    /// A straggler: slow core, lossy low-bandwidth radio, noisy timing.
    pub fn slow() -> Self {
        DeviceProfile {
            flops_per_sec: 1e7,
            bytes_per_sec: 1e4,
            dropout: 0.05,
            jitter: 0.3,
        }
    }

    /// `n` identical reliable devices (the pre-fleet behavior).
    pub fn fleet_uniform(n: usize) -> Vec<Self> {
        vec![Self::uniform(); n]
    }

    /// `n` devices cycling fast → balanced → slow — the canonical
    /// heterogeneous fleet used by the straggler experiments.
    pub fn fleet_mixed(n: usize) -> Vec<Self> {
        (0..n)
            .map(|k| match k % 3 {
                0 => Self::fast(),
                1 => Self::balanced(),
                _ => Self::slow(),
            })
            .collect()
    }

    /// Seconds to execute `flops` analytic FLOPs on this device (no jitter).
    pub fn exec_secs(&self, flops: f64) -> f64 {
        flops / self.flops_per_sec.max(f64::MIN_POSITIVE)
    }

    /// Seconds to move `bytes` over this device's link (no jitter).
    pub fn comm_secs(&self, bytes: f64) -> f64 {
        bytes / self.bytes_per_sec.max(f64::MIN_POSITIVE)
    }

    /// Jitter-free seconds for one round: compute plus transfer.
    pub fn base_round_secs(&self, flops: f64, bytes: f64) -> f64 {
        self.exec_secs(flops) + self.comm_secs(bytes)
    }
}

impl Default for DeviceProfile {
    fn default() -> Self {
        Self::uniform()
    }
}

/// Virtual clock for the fleet simulation.
///
/// Tracks simulated "now" and supplies the stochastic part of the time
/// model. Draws are **stateless**: a pure hash of `(seed, round, device)`,
/// never a sequential RNG stream — so the order in which devices are
/// simulated (parallel threads, event-loop order) cannot change any draw.
///
/// # Examples
///
/// ```
/// use ft_metrics::{DeviceProfile, SimClock};
///
/// let mut clock = SimClock::new(7);
/// let p = DeviceProfile::uniform(); // jitter 0 → exact analytic time
/// let secs = clock.device_secs(&p, 2e8, 1e5, 0, 0);
/// assert_eq!(secs, 3.0); // 2e8/1e8 compute + 1e5/1e5 transfer
/// clock.advance_by(secs);
/// assert_eq!(clock.now(), 3.0);
/// assert!(!clock.dropout_hits(&p, 0, 0)); // dropout 0 never fires
/// ```
#[derive(Clone, Debug)]
pub struct SimClock {
    seed: u64,
    now: f64,
}

impl SimClock {
    /// A clock at simulated time zero whose draws derive from `seed`.
    pub fn new(seed: u64) -> Self {
        SimClock { seed, now: 0.0 }
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances simulated time by `secs` (negative advances are clamped).
    pub fn advance_by(&mut self, secs: f64) {
        self.now += secs.max(0.0);
    }

    /// Moves simulated time forward to `t`; never moves backwards.
    pub fn advance_to(&mut self, t: f64) {
        self.now = self.now.max(t);
    }

    /// Simulated seconds device `device` needs in round (or task) `round`
    /// to execute `flops` and transfer `bytes`, including its jitter draw.
    pub fn device_secs(
        &self,
        profile: &DeviceProfile,
        flops: f64,
        bytes: f64,
        round: usize,
        device: usize,
    ) -> f64 {
        let noise = profile.jitter * self.unit_draw(round, device, 0x71_77);
        profile.base_round_secs(flops, bytes) * (1.0 + noise)
    }

    /// Whether device `device`'s update in round (or task) `round` is lost.
    pub fn dropout_hits(&self, profile: &DeviceProfile, round: usize, device: usize) -> bool {
        self.unit_draw(round, device, 0xd0_0d) < profile.dropout
    }

    /// Uniform draw in `[0, 1)` as a pure function of
    /// `(seed, round, device, salt)` — splitmix64 finalizer.
    fn unit_draw(&self, round: usize, device: usize, salt: u64) -> f64 {
        let mut z = self
            .seed
            .wrapping_add((round as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add((device as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(salt.wrapping_mul(0x94d0_49bb_1331_11eb));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_and_comm_seconds_by_hand() {
        let p = DeviceProfile::uniform();
        assert_eq!(p.exec_secs(1e8), 1.0);
        assert_eq!(p.comm_secs(2e5), 2.0);
        assert_eq!(p.base_round_secs(1e8, 2e5), 3.0);
    }

    #[test]
    fn tiers_are_ordered() {
        let (f, b, s) = (
            DeviceProfile::fast(),
            DeviceProfile::balanced(),
            DeviceProfile::slow(),
        );
        assert!(f.flops_per_sec > b.flops_per_sec && b.flops_per_sec > s.flops_per_sec);
        assert!(f.exec_secs(1e8) < s.exec_secs(1e8));
        assert!(f.dropout <= b.dropout && b.dropout <= s.dropout);
    }

    #[test]
    fn mixed_fleet_cycles_tiers() {
        let fleet = DeviceProfile::fleet_mixed(7);
        assert_eq!(fleet[0], DeviceProfile::fast());
        assert_eq!(fleet[1], DeviceProfile::balanced());
        assert_eq!(fleet[2], DeviceProfile::slow());
        assert_eq!(fleet[3], DeviceProfile::fast());
    }

    #[test]
    fn draws_are_order_independent_and_seeded() {
        let clock = SimClock::new(3);
        let p = DeviceProfile::slow();
        let a = clock.device_secs(&p, 1e7, 0.0, 4, 1);
        // Interleave other draws: the (round, device) draw is unaffected.
        let _ = clock.device_secs(&p, 1e7, 0.0, 9, 2);
        let _ = clock.dropout_hits(&p, 0, 0);
        assert_eq!(a, clock.device_secs(&p, 1e7, 0.0, 4, 1));
        // A different seed shifts the jitter.
        let other = SimClock::new(4);
        assert_ne!(a, other.device_secs(&p, 1e7, 0.0, 4, 1));
    }

    #[test]
    fn jitter_bounds_hold() {
        let clock = SimClock::new(1);
        let p = DeviceProfile::slow(); // jitter 0.3
        let base = p.base_round_secs(1e7, 1e4);
        for r in 0..200 {
            let t = clock.device_secs(&p, 1e7, 1e4, r, 0);
            assert!(t >= base && t < base * 1.3 + 1e-9, "round {r}: {t}");
        }
    }

    #[test]
    fn dropout_rate_roughly_matches_probability() {
        let clock = SimClock::new(2);
        let mut p = DeviceProfile::uniform();
        p.dropout = 0.5;
        let hits = (0..2000).filter(|&r| clock.dropout_hits(&p, r, 0)).count();
        assert!((800..1200).contains(&hits), "got {hits}/2000");
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new(0);
        c.advance_by(2.0);
        c.advance_by(-5.0); // clamped
        assert_eq!(c.now(), 2.0);
        c.advance_to(1.0); // never backwards
        assert_eq!(c.now(), 2.0);
        c.advance_to(4.5);
        assert_eq!(c.now(), 4.5);
    }

    #[test]
    fn zero_rate_profiles_do_not_divide_by_zero() {
        let p = DeviceProfile {
            flops_per_sec: 0.0,
            bytes_per_sec: 0.0,
            dropout: 0.0,
            jitter: 0.0,
        };
        assert!(p.exec_secs(1.0).is_finite());
        assert!(p.comm_secs(1.0).is_finite());
    }
}
