//! Concrete layers with manual forward/backward passes.
//!
//! Every layer caches what its backward pass needs during `forward`, so a
//! model's backward pass is simply the layers' backward calls in reverse
//! order. Parameter gradients *accumulate* into [`Param::grad`]; call
//! [`Param::zero_grad`] (or `Model::zero_grad`) between batches.

use crate::param::{Param, ParamKind};
use ft_runtime::Runtime;
use ft_sparse::{BsrMatrix, CsrMatrix};
use ft_tensor::{
    avg_pool_global_backward_into, avg_pool_global_into_rt, bsr_dsmm_nt_into_rt, bsr_spmm_into_rt,
    col2im_ld, conv2d_fused_into_rt, dsmm_into_rt, dsmm_nt_into_rt, im2col_batched_rt,
    kaiming_normal, matmul_into_rt, matmul_nt_into_rt, matmul_nt_seg_into_rt, matmul_tn_into_rt,
    max_pool2x2_backward_into, max_pool2x2_into_rt, sddmm_nt_seg_into_rt, sddmm_tn_into_rt,
    spmm_into_rt, spmm_tn_into_rt, ConvGeom, Tensor,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Default density crossover below which `Conv2d` / `Linear` switch from the
/// dense GEMM kernels to the CSR sparse kernels.
///
/// At densities above ~0.5 the CSR index traffic outweighs the skipped
/// multiply-accumulates on these blocked CPU kernels, so the dense path wins;
/// below it the sparse path wins and keeps winning proportionally to `1/d`.
/// Override per model with [`crate::Model::set_sparse_crossover`].
pub const DEFAULT_SPARSE_CROSSOVER: f32 = 0.5;

/// Tile edge of the block-sparse (BSR) forward packing.
///
/// Matches the widest unrolled path of the `ft-tensor` BSR kernels; small
/// enough that structured masks (whole channels / im2col rows pruned
/// together) still produce mostly-full tiles.
pub const BSR_BLOCK: usize = 4;

/// Average tile fill (`nnz / stored`) the forward pass must *strictly
/// exceed* to be routed through the BSR kernels instead of CSR.
///
/// At or below this, the explicit zeros inside partially-alive tiles cost
/// more flops than the dense tile loops save in index traffic (at fill 0.5
/// BSR already executes 2× CSR's multiply-accumulates); a scattered
/// magnitude mask at density `d` has expected fill ≈ `d` and stays on CSR.
pub const BSR_MIN_FILL: f32 = 0.5;

/// Cached sparse packing of a layer weight, keyed by the mask epoch that
/// produced its structure.
///
/// The structure is rebuilt only when [`Param::mask_epoch`] changes (a new
/// mask was applied); between optimizer steps only the values are
/// re-gathered, which is `O(nnz)` (plus `O(stored)` for the BSR tiles when
/// present).
///
/// `csr` is always built: the backward pass (scatter/sampled-dense shapes)
/// stays on it unconditionally. `bsr` is additionally built at rebuild time
/// when the mask clusters — average tile fill strictly above
/// [`BSR_MIN_FILL`] — and then takes over the *forward* GEMM only.
#[derive(Clone, Debug)]
struct SparsePlan {
    epoch: u64,
    csr: CsrMatrix,
    bsr: Option<BsrMatrix>,
}

/// Decides the execution path for a weight and keeps `plan` fresh: returns
/// `true` (and a valid, value-refreshed plan) when the weight should run
/// sparse, `false` (and clears the plan) when it should run dense.
fn refresh_plan(
    plan: &mut Option<SparsePlan>,
    w: &Param,
    crossover: f32,
    rows: usize,
    cols: usize,
) -> bool {
    let Some(bits) = w.mask_bits.as_ref() else {
        *plan = None;
        return false;
    };
    // `crossover == 0.0` must force the dense path unconditionally (the
    // contract the gradient-scoring probes rely on) — including for a
    // fully-pruned layer, where `density (0.0) > crossover (0.0)` is false.
    if crossover == 0.0 || w.mask_density() > crossover {
        *plan = None;
        return false;
    }
    match plan {
        Some(p) if p.epoch == w.mask_epoch => {
            p.csr.refresh_values(w.data.data());
            if let Some(bsr) = &mut p.bsr {
                bsr.refresh_values(w.data.data());
            }
        }
        _ => {
            let bsr = BsrMatrix::from_mask_values(bits, w.data.data(), rows, cols, BSR_BLOCK);
            *plan = Some(SparsePlan {
                epoch: w.mask_epoch,
                csr: CsrMatrix::from_mask_values(bits, w.data.data(), rows, cols),
                bsr: (bsr.fill() > BSR_MIN_FILL).then_some(bsr),
            });
        }
    }
    true
}

/// Forward-pass mode.
///
/// `Train` uses batch statistics in BatchNorm and updates the running
/// statistics — this is also the mode used for FedTiny's *BN adaptation*
/// forward passes (parameters frozen, statistics refreshed). `Eval` uses the
/// stored running statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Batch statistics; running statistics are updated.
    Train,
    /// Running statistics; nothing is updated.
    Eval,
}

/// Running statistics of one BatchNorm layer.
///
/// These are the `µ, σ` the FedTiny selection module aggregates across
/// devices (Alg. 1 lines 10–13).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BnStats {
    /// Per-channel running mean.
    pub mean: Vec<f32>,
    /// Per-channel running variance.
    pub var: Vec<f32>,
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

/// 2-D convolution with square kernels, computed via im2col + matmul.
///
/// Bias-free by convention in this workspace (every conv is followed by
/// BatchNorm, which supplies the shift).
///
/// When a pruning mask has been applied (see [`Param::note_mask`]) and the
/// layer's density is at or below its crossover, forward and backward run on
/// the CSR sparse kernels instead of the dense GEMMs; outputs are identical
/// up to float rounding, but the sparse backward only produces weight
/// gradients at mask-alive coordinates (gradient scoring passes that need
/// pruned-coordinate gradients must disable the sparse path via
/// `set_sparse_crossover(0.0)`).
#[derive(Clone, Debug)]
pub struct Conv2d {
    /// Kernel weights `[out_c, in_c, k, k]`.
    pub w: Param,
    in_c: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    crossover: f32,
    runtime: Runtime,
    plan: Option<SparsePlan>,
    realized_flops: f64,
    cache: Option<ConvMeta>,
    scratch: ConvScratch,
}

/// Per-layer scratch arena: every buffer the batched conv engine touches,
/// sized on first use for a given batch geometry and reused across batches,
/// epochs, and rounds (same idiom as `AggScratch` in `ft_fl`).
#[derive(Clone, Debug, Default)]
struct ConvScratch {
    /// Batched column matrix `[cr, n·cc]`; sample `i` occupies columns
    /// `i·cc..(i+1)·cc`. Materialized by the sparse forward, rebuilt from
    /// `x_cache` in the dense backward (the dense forward packs B-panels
    /// straight out of the image and never materializes it).
    cols_b: Tensor,
    /// Forward output staging `[oc, n·cc]` before the NCHW scatter.
    out_b: Tensor,
    /// Backward `dY` staging `[oc, n·cc]` (repacked from NCHW).
    gob: Tensor,
    /// Column-space input gradient `[cr, n·cc]`.
    dcol_b: Tensor,
    /// Input copy kept by the dense forward so backward can rebuild columns.
    x_cache: Tensor,
    /// Sparse-path `dW` values at the CSR structure.
    grad_w_vals: Vec<f32>,
}

#[derive(Clone, Copy, Debug)]
struct ConvMeta {
    geom: ConvGeom,
    batch: usize,
    /// Whether the forward pass ran on the sparse path (backward must match).
    sparse: bool,
    /// Whether `scratch.cols_b` already holds this batch's column matrix.
    cols_valid: bool,
}

impl Conv2d {
    /// Creates a Kaiming-initialized convolution.
    ///
    /// `prunable` marks whether the weight participates in pruning masks
    /// (the input layer of a model passes `false`).
    #[allow(clippy::too_many_arguments)] // geometry is naturally positional
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        prunable: bool,
        name: &str,
    ) -> Self {
        let w = Param::new(
            kaiming_normal(rng, &[out_c, in_c, kernel, kernel]),
            ParamKind::ConvWeight,
            prunable,
            format!("{name}.w"),
        );
        Conv2d {
            w,
            in_c,
            out_c,
            kernel,
            stride,
            pad,
            crossover: DEFAULT_SPARSE_CROSSOVER,
            runtime: Runtime::sequential(),
            plan: None,
            realized_flops: 0.0,
            cache: None,
            scratch: ConvScratch::default(),
        }
    }

    /// Sets the parallel runtime this layer's kernels execute on. The
    /// default is the sequential runtime; parallel output is bit-identical
    /// either way, so this only changes wall-clock.
    pub fn set_runtime(&mut self, rt: Runtime) {
        self.runtime = rt;
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// Sets the density crossover below which this layer runs on the sparse
    /// kernels (0.0 forces dense, 1.0 forces sparse whenever masked).
    pub fn set_sparse_crossover(&mut self, crossover: f32) {
        self.crossover = crossover.clamp(0.0, 1.0);
        if self.crossover == 0.0 {
            self.plan = None;
        }
    }

    /// Multiply–accumulate FLOPs actually executed by this layer's forward
    /// and backward GEMMs since the last [`Conv2d::reset_realized_flops`].
    pub fn realized_flops(&self) -> f64 {
        self.realized_flops
    }

    /// Clears the realized-FLOPs counter.
    pub fn reset_realized_flops(&mut self) {
        self.realized_flops = 0.0;
    }

    /// `(in_c, out_c, kernel, stride, pad)` geometry tuple.
    pub fn geometry(&self) -> (usize, usize, usize, usize, usize) {
        (self.in_c, self.out_c, self.kernel, self.stride, self.pad)
    }

    /// Forward pass over `[n, in_c, h, w]` (allocating wrapper around
    /// [`Conv2d::forward_into`]).
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank-4 or the channel count differs.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut out = Tensor::default();
        self.forward_into(x, &mut out, mode);
        out
    }

    /// Batched forward into a caller-owned output tensor. The whole batch
    /// runs through a single kernel call: the dense path packs B-panels
    /// straight out of the image (implicit GEMM, no column matrix), the
    /// sparse path materializes the `[cr, n·cc]` column matrix into the
    /// layer's scratch arena and runs CSR/BSR SpMM over it. Per-output
    /// accumulation order is a pure function of the k-decomposition, so the
    /// result is bit-identical to the per-sample composition.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank-4 or the channel count differs.
    pub fn forward_into(&mut self, x: &Tensor, out: &mut Tensor, mode: Mode) {
        let s = x.shape();
        assert_eq!(s.len(), 4, "conv input must be [n,c,h,w]");
        assert_eq!(
            s[1], self.in_c,
            "conv expected {} input channels, got {}",
            self.in_c, s[1]
        );
        let (n, h, w) = (s[0], s[2], s[3]);
        let geom = ConvGeom {
            in_c: self.in_c,
            in_h: h,
            in_w: w,
            kernel: self.kernel,
            stride: self.stride,
            pad: self.pad,
        };
        let (cr, cc) = (geom.col_rows(), geom.col_cols());
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let sparse = refresh_plan(&mut self.plan, &self.w, self.crossover, self.out_c, cr);
        out.resize_for_overwrite(&[n, self.out_c, oh, ow]);
        let scratch = &mut self.scratch;
        scratch.out_b.resize_zeroed(&[self.out_c, n * cc]);
        let cols_valid;
        if sparse {
            scratch.cols_b.resize_for_overwrite(&[cr, n * cc]);
            im2col_batched_rt(&self.runtime, x.data(), n, &geom, scratch.cols_b.data_mut());
            let plan = self.plan.as_ref().expect("sparse path always has a plan");
            match &plan.bsr {
                Some(bsr) => bsr_spmm_into_rt(
                    &self.runtime,
                    bsr.view(),
                    &scratch.cols_b,
                    &mut scratch.out_b,
                ),
                None => spmm_into_rt(
                    &self.runtime,
                    plan.csr.view(),
                    &scratch.cols_b,
                    &mut scratch.out_b,
                ),
            }
            cols_valid = true;
        } else if matches!(mode, Mode::Train) {
            // Training forward materializes the column matrix up front — the
            // backward dW GEMM needs it regardless — and runs a plain batched
            // GEMM over it. The fused pack reads the same values in the same
            // kernel order, so this is bit-identical while letting backward
            // skip a full im2col rebuild.
            scratch.cols_b.resize_for_overwrite(&[cr, n * cc]);
            im2col_batched_rt(&self.runtime, x.data(), n, &geom, scratch.cols_b.data_mut());
            self.w.data.reshape_in_place(&[self.out_c, cr]);
            matmul_into_rt(
                &self.runtime,
                &self.w.data,
                &scratch.cols_b,
                &mut scratch.out_b,
            );
            self.w
                .data
                .reshape_in_place(&[self.out_c, self.in_c, self.kernel, self.kernel]);
            cols_valid = true;
        } else {
            // Eval forward: implicit GEMM packs B-panels straight out of the
            // image, never materializing the column matrix. Keep the input so
            // a backward call could still rebuild it (im2col is a pure
            // function of the input).
            scratch.x_cache.copy_from(x);
            // Zero-copy `[oc, cr]` view of the weight: reshape in place for
            // the kernel call and restore after, instead of copying the
            // whole buffer through `reshaped`.
            self.w.data.reshape_in_place(&[self.out_c, cr]);
            conv2d_fused_into_rt(
                &self.runtime,
                &self.w.data,
                x.data(),
                n,
                &geom,
                &mut scratch.out_b,
            );
            self.w
                .data
                .reshape_in_place(&[self.out_c, self.in_c, self.kernel, self.kernel]);
            cols_valid = false;
        }
        // Scatter [oc, n·cc] back to NCHW [n, oc, oh, ow].
        let ob = scratch.out_b.data();
        let od = out.data_mut();
        for i in 0..n {
            for c in 0..self.out_c {
                od[(i * self.out_c + c) * cc..][..cc]
                    .copy_from_slice(&ob[c * n * cc + i * cc..][..cc]);
            }
        }
        // BSR executes its tiles' explicit zeros, so it counts stored slots.
        let mac = match &self.plan {
            Some(plan) if sparse => plan.bsr.as_ref().map_or(plan.csr.nnz(), |b| b.stored()),
            _ => self.out_c * cr,
        };
        self.realized_flops += 2.0 * (n * cc * mac) as f64;
        self.cache = Some(ConvMeta {
            geom,
            batch: n,
            sparse,
            cols_valid,
        });
    }

    /// Backward pass: accumulates `w.grad` and returns the input gradient
    /// (allocating wrapper around [`Conv2d::backward_into`]).
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut gx = Tensor::default();
        self.backward_into(grad_out, &mut gx);
        gx
    }

    /// Batched backward into a caller-owned input-gradient tensor. `dW` and
    /// `dCol` each run as a single whole-batch kernel call; the weight
    /// gradient accumulates straight into `w.grad` through a segmented-k
    /// GEMM (one fresh accumulator per sample segment), which is
    /// bit-identical to the per-sample loop followed by `add_assign`.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward_into(&mut self, grad_out: &Tensor, gx: &mut Tensor) {
        self.backward_impl(grad_out, Some(gx));
    }

    /// Backward pass that only accumulates the parameter gradients,
    /// skipping the input gradient entirely (no dCol GEMM, no col2im).
    /// For a network's leading convolution the input gradient is dead —
    /// there is no layer before it — so the training engine drops roughly
    /// half of the first conv's backward FLOPs by calling this.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward_params_only(&mut self, grad_out: &Tensor) {
        self.backward_impl(grad_out, None);
    }

    fn backward_impl(&mut self, grad_out: &Tensor, gx: Option<&mut Tensor>) {
        let meta = self
            .cache
            .take()
            .expect("Conv2d::backward called before forward");
        let geom = meta.geom;
        let (cr, cc) = (geom.col_rows(), geom.col_cols());
        let n = meta.batch;
        assert_eq!(
            grad_out.shape(),
            &[n, self.out_c, geom.out_h(), geom.out_w()],
            "conv grad_out shape mismatch"
        );
        let sparse_plan = if meta.sparse {
            self.plan.as_ref()
        } else {
            None
        };
        let scratch = &mut self.scratch;
        // Repack dY from NCHW [n, oc, cc] to the batched layout [oc, n·cc].
        scratch.gob.resize_for_overwrite(&[self.out_c, n * cc]);
        {
            let gd = grad_out.data();
            let gob = scratch.gob.data_mut();
            for i in 0..n {
                for c in 0..self.out_c {
                    gob[c * n * cc + i * cc..][..cc]
                        .copy_from_slice(&gd[(i * self.out_c + c) * cc..][..cc]);
                }
            }
        }
        if !meta.cols_valid {
            // The dense forward went through the fused pack; rebuild the
            // column matrix from the cached input for the dW GEMM.
            scratch.cols_b.resize_for_overwrite(&[cr, n * cc]);
            im2col_batched_rt(
                &self.runtime,
                scratch.x_cache.data(),
                n,
                &geom,
                scratch.cols_b.data_mut(),
            );
        }
        let want_gx = gx.is_some();
        if want_gx {
            scratch.dcol_b.resize_zeroed(&[cr, n * cc]);
        }
        match sparse_plan {
            Some(plan) => {
                // dW (mask-alive coordinates only) += dY · colᵀ sampled at
                // the CSR structure, one fresh accumulator per sample.
                scratch.grad_w_vals.clear();
                scratch.grad_w_vals.resize(plan.csr.nnz(), 0.0);
                sddmm_nt_seg_into_rt(
                    &self.runtime,
                    plan.csr.view(),
                    &scratch.gob,
                    &scratch.cols_b,
                    cc,
                    &mut scratch.grad_w_vals,
                );
                if want_gx {
                    // dCol = Wᵀ · dY through the sparse kernel.
                    spmm_tn_into_rt(
                        &self.runtime,
                        plan.csr.view(),
                        &scratch.gob,
                        &mut scratch.dcol_b,
                    );
                }
                plan.csr
                    .scatter_add(&scratch.grad_w_vals, self.w.grad.data_mut());
                let passes = if want_gx { 4.0 } else { 2.0 };
                self.realized_flops += passes * (n * cc * plan.csr.nnz()) as f64;
            }
            None => {
                // dW += dY · colᵀ ([oc, n·cc] x [cr, n·cc]ᵀ → [oc, cr]),
                // accumulated straight into the reshaped weight gradient.
                self.w.grad.reshape_in_place(&[self.out_c, cr]);
                matmul_nt_seg_into_rt(
                    &self.runtime,
                    &scratch.gob,
                    &scratch.cols_b,
                    cc,
                    &mut self.w.grad,
                );
                self.w
                    .grad
                    .reshape_in_place(&[self.out_c, self.in_c, self.kernel, self.kernel]);
                if want_gx {
                    // dCol = Wᵀ · dY ([oc,cr]ᵀ x [oc, n·cc] → [cr, n·cc]).
                    self.w.data.reshape_in_place(&[self.out_c, cr]);
                    matmul_tn_into_rt(
                        &self.runtime,
                        &self.w.data,
                        &scratch.gob,
                        &mut scratch.dcol_b,
                    );
                    self.w.data.reshape_in_place(&[
                        self.out_c,
                        self.in_c,
                        self.kernel,
                        self.kernel,
                    ]);
                }
                let passes = if want_gx { 4.0 } else { 2.0 };
                self.realized_flops += passes * (n * cc * self.out_c * cr) as f64;
            }
        }
        let Some(gx) = gx else { return };
        gx.resize_zeroed(&[n, geom.in_c, geom.in_h, geom.in_w]);
        let sample = geom.in_c * geom.in_h * geom.in_w;
        let dcol = scratch.dcol_b.data();
        let gxd = gx.data_mut();
        for i in 0..n {
            col2im_ld(
                &dcol[i * cc..],
                n * cc,
                &geom,
                &mut gxd[i * sample..(i + 1) * sample],
            );
        }
    }
}

// ---------------------------------------------------------------------------
// BatchNorm2d
// ---------------------------------------------------------------------------

/// Batch normalization over the channel dimension of `[n, c, h, w]`.
///
/// In `Train` mode the layer normalizes with batch statistics and updates
/// the running statistics with momentum (`running = (1-m)·running +
/// m·batch`). FedTiny's adaptive selection performs exactly this forward
/// pass with frozen parameters to re-estimate `µ, σ` on device data.
#[derive(Clone, Debug)]
pub struct BatchNorm2d {
    /// Scale `γ`, initialized to 1.
    pub gamma: Param,
    /// Shift `β`, initialized to 0.
    pub beta: Param,
    /// Running statistics used in `Eval` mode.
    pub stats: BnStats,
    channels: usize,
    momentum: f32,
    eps: f32,
    /// `Some(batch_mode)` after a forward: whether normalization used batch
    /// statistics (Train) — the backward pass then includes the
    /// statistic-dependent terms — or fixed running statistics (Eval),
    /// where the statistics are constants.
    cache: Option<bool>,
    scratch: BnScratch,
}

/// Reused across batches: normalized activations, per-channel statistics,
/// and the batch shape the backward pass validates against.
#[derive(Clone, Debug, Default)]
struct BnScratch {
    mean: Vec<f32>,
    var: Vec<f32>,
    inv_std: Vec<f32>,
    xhat: Tensor,
    batch_shape: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a BatchNorm layer over `channels` channels with the standard
    /// momentum of 0.1 and epsilon 1e-5.
    pub fn new(channels: usize, name: &str) -> Self {
        BatchNorm2d {
            gamma: Param::new(
                Tensor::ones(&[channels]),
                ParamKind::BnGamma,
                false,
                format!("{name}.gamma"),
            ),
            beta: Param::new(
                Tensor::zeros(&[channels]),
                ParamKind::BnBeta,
                false,
                format!("{name}.beta"),
            ),
            stats: BnStats {
                mean: vec![0.0; channels],
                var: vec![1.0; channels],
            },
            channels,
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
            scratch: BnScratch::default(),
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Overrides the running-statistics momentum.
    ///
    /// FedTiny's BN adaptation (Alg. 1 line 5) sets momentum to 1.0 so a
    /// single forward pass over the development split replaces the running
    /// statistics with that split's exact batch statistics.
    pub fn set_momentum(&mut self, momentum: f32) {
        self.momentum = momentum.clamp(0.0, 1.0);
    }

    /// Forward pass (allocating wrapper around [`BatchNorm2d::forward_into`]).
    ///
    /// # Panics
    ///
    /// Panics if the input is not `[n, c, h, w]` with matching channels.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut out = Tensor::default();
        self.forward_into(x, &mut out, mode);
        out
    }

    /// Forward pass into a caller-owned output; statistics and normalized
    /// activations land in the layer's scratch arena.
    ///
    /// # Panics
    ///
    /// Panics if the input is not `[n, c, h, w]` with matching channels.
    #[allow(clippy::needless_range_loop)] // index math mirrors the NCHW layout
    pub fn forward_into(&mut self, x: &Tensor, out: &mut Tensor, mode: Mode) {
        let s = x.shape();
        assert_eq!(s.len(), 4, "batchnorm input must be [n,c,h,w]");
        assert_eq!(s[1], self.channels, "batchnorm channel mismatch");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let plane = h * w;
        let count = (n * plane) as f32;
        let xd = x.data();
        out.resize_for_overwrite(s);
        let scratch = &mut self.scratch;
        scratch.batch_shape.clear();
        scratch.batch_shape.extend_from_slice(s);
        scratch.xhat.resize_for_overwrite(s);

        match mode {
            Mode::Train => {
                scratch.mean.clear();
                scratch.mean.resize(c, 0.0);
                scratch.var.clear();
                scratch.var.resize(c, 0.0);
                for ci in 0..c {
                    let mut sum = 0.0f32;
                    for ni in 0..n {
                        let base = (ni * c + ci) * plane;
                        sum += xd[base..base + plane].iter().sum::<f32>();
                    }
                    scratch.mean[ci] = sum / count;
                }
                for ci in 0..c {
                    let m = scratch.mean[ci];
                    let mut sq = 0.0f32;
                    for ni in 0..n {
                        let base = (ni * c + ci) * plane;
                        sq += xd[base..base + plane]
                            .iter()
                            .map(|&v| (v - m) * (v - m))
                            .sum::<f32>();
                    }
                    scratch.var[ci] = sq / count;
                }
                for ci in 0..c {
                    self.stats.mean[ci] = (1.0 - self.momentum) * self.stats.mean[ci]
                        + self.momentum * scratch.mean[ci];
                    self.stats.var[ci] = (1.0 - self.momentum) * self.stats.var[ci]
                        + self.momentum * scratch.var[ci];
                }
                scratch.inv_std.clear();
                scratch
                    .inv_std
                    .extend(scratch.var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()));
                let xh = scratch.xhat.data_mut();
                let od = out.data_mut();
                for ni in 0..n {
                    for ci in 0..c {
                        let base = (ni * c + ci) * plane;
                        let (m, is) = (scratch.mean[ci], scratch.inv_std[ci]);
                        let (g, b) = (self.gamma.data.data()[ci], self.beta.data.data()[ci]);
                        for idx in base..base + plane {
                            let xn = (xd[idx] - m) * is;
                            xh[idx] = xn;
                            od[idx] = g * xn + b;
                        }
                    }
                }
                self.cache = Some(true);
            }
            Mode::Eval => {
                scratch.inv_std.clear();
                scratch
                    .inv_std
                    .extend(self.stats.var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()));
                let xh = scratch.xhat.data_mut();
                let od = out.data_mut();
                for ni in 0..n {
                    for ci in 0..c {
                        let base = (ni * c + ci) * plane;
                        let m = self.stats.mean[ci];
                        let is = scratch.inv_std[ci];
                        let (g, b) = (self.gamma.data.data()[ci], self.beta.data.data()[ci]);
                        for idx in base..base + plane {
                            let xn = (xd[idx] - m) * is;
                            xh[idx] = xn;
                            od[idx] = g * xn + b;
                        }
                    }
                }
                self.cache = Some(false);
            }
        }
    }

    /// Backward pass (allocating wrapper around
    /// [`BatchNorm2d::backward_into`]). After a `Train`-mode forward the
    /// full batch-statistic gradient is used; after an `Eval`-mode forward
    /// the running statistics are constants, so `∂y/∂x = γ/σ` (used e.g. by
    /// SynFlow's linearized probe).
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding forward.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut gx = Tensor::default();
        self.backward_into(grad_out, &mut gx);
        gx
    }

    /// Backward pass into a caller-owned input-gradient tensor.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding forward.
    pub fn backward_into(&mut self, grad_out: &Tensor, gx: &mut Tensor) {
        let batch_mode = self
            .cache
            .take()
            .expect("BatchNorm2d::backward requires a forward first");
        let scratch = &mut self.scratch;
        let s = &scratch.batch_shape;
        assert_eq!(
            grad_out.shape(),
            &s[..],
            "batchnorm grad_out shape mismatch"
        );
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let plane = h * w;
        let count = (n * plane) as f32;
        let god = grad_out.data();
        let xh = scratch.xhat.data();

        gx.resize_for_overwrite(s);
        for ci in 0..c {
            // Per-channel reductions.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for idx in base..base + plane {
                    sum_dy += god[idx];
                    sum_dy_xhat += god[idx] * xh[idx];
                }
            }
            self.beta.grad.data_mut()[ci] += sum_dy;
            self.gamma.grad.data_mut()[ci] += sum_dy_xhat;
            let g = self.gamma.data.data()[ci];
            let is = scratch.inv_std[ci];
            let gxd = gx.data_mut();
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for idx in base..base + plane {
                    gxd[idx] = if batch_mode {
                        g * is / count * (count * god[idx] - sum_dy - xh[idx] * sum_dy_xhat)
                    } else {
                        g * is * god[idx]
                    };
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

/// Fully-connected layer `y = x Wᵀ + b` over `[n, in]`.
///
/// Dispatches to the CSR sparse kernels below its density crossover exactly
/// like [`Conv2d`] (see there for the gradient-coverage caveat).
#[derive(Clone, Debug)]
pub struct Linear {
    /// Weights `[out, in]`.
    pub w: Param,
    /// Bias `[out]`.
    pub b: Param,
    in_dim: usize,
    out_dim: usize,
    crossover: f32,
    runtime: Runtime,
    plan: Option<SparsePlan>,
    realized_flops: f64,
    /// `Some(sparse)` after a forward: which path ran (backward must match).
    cache: Option<bool>,
    scratch: LinearScratch,
}

/// Per-layer scratch arena reused across batches.
#[derive(Clone, Debug, Default)]
struct LinearScratch {
    /// Copy of the forward input, consumed by the dW GEMM in backward.
    x_cache: Tensor,
    /// Sparse-path `dW` values at the CSR structure.
    vals: Vec<f32>,
}

impl Linear {
    /// Creates a Kaiming-initialized linear layer.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_dim: usize,
        out_dim: usize,
        prunable: bool,
        name: &str,
    ) -> Self {
        Linear {
            w: Param::new(
                kaiming_normal(rng, &[out_dim, in_dim]),
                ParamKind::LinearWeight,
                prunable,
                format!("{name}.w"),
            ),
            b: Param::new(
                Tensor::zeros(&[out_dim]),
                ParamKind::Bias,
                false,
                format!("{name}.b"),
            ),
            in_dim,
            out_dim,
            crossover: DEFAULT_SPARSE_CROSSOVER,
            runtime: Runtime::sequential(),
            plan: None,
            realized_flops: 0.0,
            cache: None,
            scratch: LinearScratch::default(),
        }
    }

    /// `(in_dim, out_dim)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.in_dim, self.out_dim)
    }

    /// Sets the parallel runtime this layer's kernels execute on. The
    /// default is the sequential runtime; parallel output is bit-identical
    /// either way, so this only changes wall-clock.
    pub fn set_runtime(&mut self, rt: Runtime) {
        self.runtime = rt;
    }

    /// Sets the density crossover below which this layer runs on the sparse
    /// kernels (0.0 forces dense, 1.0 forces sparse whenever masked).
    pub fn set_sparse_crossover(&mut self, crossover: f32) {
        self.crossover = crossover.clamp(0.0, 1.0);
        if self.crossover == 0.0 {
            self.plan = None;
        }
    }

    /// Multiply–accumulate FLOPs actually executed since the last
    /// [`Linear::reset_realized_flops`].
    pub fn realized_flops(&self) -> f64 {
        self.realized_flops
    }

    /// Clears the realized-FLOPs counter.
    pub fn reset_realized_flops(&mut self) {
        self.realized_flops = 0.0;
    }

    /// Forward pass over `[n, in]` (allocating wrapper around
    /// [`Linear::forward_into`]).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut out = Tensor::default();
        self.forward_into(x, &mut out, mode);
        out
    }

    /// Forward pass into a caller-owned output tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn forward_into(&mut self, x: &Tensor, out: &mut Tensor, _mode: Mode) {
        assert_eq!(x.shape().len(), 2, "linear input must be [n, in]");
        assert_eq!(x.shape()[1], self.in_dim, "linear input dim mismatch");
        let n = x.shape()[0];
        let sparse = refresh_plan(
            &mut self.plan,
            &self.w,
            self.crossover,
            self.out_dim,
            self.in_dim,
        );
        out.resize_zeroed(&[n, self.out_dim]);
        match &self.plan {
            // Y += X · Wᵀ with W in CSR (or BSR when the mask clusters).
            Some(plan) if sparse => match &plan.bsr {
                Some(bsr) => bsr_dsmm_nt_into_rt(&self.runtime, x, bsr.view(), out),
                None => dsmm_nt_into_rt(&self.runtime, x, plan.csr.view(), out),
            },
            _ => matmul_nt_into_rt(&self.runtime, x, &self.w.data, out),
        }
        let mac = match &self.plan {
            Some(plan) if sparse => plan.bsr.as_ref().map_or(plan.csr.nnz(), |b| b.stored()),
            _ => self.out_dim * self.in_dim,
        };
        self.realized_flops += 2.0 * (n * mac) as f64;
        let od = out.data_mut();
        for i in 0..n {
            for (j, &bv) in self.b.data.data().iter().enumerate() {
                od[i * self.out_dim + j] += bv;
            }
        }
        self.scratch.x_cache.copy_from(x);
        self.cache = Some(sparse);
    }

    /// Backward pass (allocating wrapper around [`Linear::backward_into`]).
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut gx = Tensor::default();
        self.backward_into(grad_out, &mut gx);
        gx
    }

    /// Backward pass into a caller-owned input-gradient tensor.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward_into(&mut self, grad_out: &Tensor, gx: &mut Tensor) {
        let was_sparse = self
            .cache
            .take()
            .expect("Linear::backward called before forward");
        let scratch = &mut self.scratch;
        let n = scratch.x_cache.shape()[0];
        assert_eq!(
            grad_out.shape(),
            &[n, self.out_dim],
            "linear grad_out shape mismatch"
        );
        let sparse_plan = if was_sparse { self.plan.as_ref() } else { None };
        gx.resize_zeroed(&[n, self.in_dim]);
        match sparse_plan {
            Some(plan) => {
                // dW (mask-alive coordinates only) += dYᵀ · X sampled at the
                // CSR structure.
                scratch.vals.clear();
                scratch.vals.resize(plan.csr.nnz(), 0.0);
                sddmm_tn_into_rt(
                    &self.runtime,
                    plan.csr.view(),
                    grad_out,
                    &scratch.x_cache,
                    &mut scratch.vals,
                );
                plan.csr.scatter_add(&scratch.vals, self.w.grad.data_mut());
                // dX = dY · W through the sparse kernel.
                dsmm_into_rt(&self.runtime, grad_out, plan.csr.view(), gx);
                self.realized_flops += 4.0 * (n * plan.csr.nnz()) as f64;
            }
            None => {
                // dW += dYᵀ · X   ([n,out]ᵀ x [n,in] → [out,in])
                matmul_tn_into_rt(&self.runtime, grad_out, &scratch.x_cache, &mut self.w.grad);
                // dX = dY · W   ([n,out] x [out,in] → [n,in])
                matmul_into_rt(&self.runtime, grad_out, &self.w.data, gx);
                self.realized_flops += 4.0 * (n * self.out_dim * self.in_dim) as f64;
            }
        }
        // db += column sums of dY
        let bd = self.b.grad.data_mut();
        for row in grad_out.data().chunks_exact(self.out_dim) {
            for (b, &g) in bd.iter_mut().zip(row.iter()) {
                *b += g;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Stateless layers
// ---------------------------------------------------------------------------

/// ReLU activation.
#[derive(Clone, Debug, Default)]
pub struct Relu {
    /// Reused activation mask (arena).
    mask: Vec<bool>,
    primed: bool,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }

    /// Forward pass (allocating wrapper around [`Relu::forward_into`]).
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut out = Tensor::default();
        self.forward_into(x, &mut out, mode);
        out
    }

    /// Forward pass (any shape) into a caller-owned output tensor.
    pub fn forward_into(&mut self, x: &Tensor, out: &mut Tensor, _mode: Mode) {
        self.mask.clear();
        self.mask.extend(x.data().iter().map(|&v| v > 0.0));
        out.resize_for_overwrite(x.shape());
        for (o, &v) in out.data_mut().iter_mut().zip(x.data().iter()) {
            *o = v.max(0.0);
        }
        self.primed = true;
    }

    /// Backward pass (allocating wrapper around [`Relu::backward_into`]).
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` or with a mismatched shape.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut gx = Tensor::default();
        self.backward_into(grad_out, &mut gx);
        gx
    }

    /// Backward pass into a caller-owned input-gradient tensor.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` or with a mismatched shape.
    pub fn backward_into(&mut self, grad_out: &Tensor, gx: &mut Tensor) {
        assert!(self.primed, "Relu::backward called before forward");
        self.primed = false;
        assert_eq!(
            grad_out.numel(),
            self.mask.len(),
            "relu grad shape mismatch"
        );
        gx.copy_from(grad_out);
        // Branchless select: the mask is ~50/50 in practice, so a
        // conditional store would mispredict on half the elements.
        for (v, &alive) in gx.data_mut().iter_mut().zip(self.mask.iter()) {
            *v = if alive { *v } else { 0.0 };
        }
    }
}

/// 2×2 max pooling with stride 2.
#[derive(Clone, Debug, Default)]
pub struct MaxPool2x2 {
    runtime: Runtime,
    /// Reused argmax indices (arena).
    arg: Vec<usize>,
    /// Reused input-shape record (arena).
    in_shape: Vec<usize>,
    primed: bool,
}

impl MaxPool2x2 {
    /// Creates a pooling layer.
    pub fn new() -> Self {
        MaxPool2x2::default()
    }

    /// Sets the parallel runtime the pooling kernel executes on.
    pub fn set_runtime(&mut self, rt: Runtime) {
        self.runtime = rt;
    }

    /// Forward pass (allocating wrapper around [`MaxPool2x2::forward_into`]).
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut out = Tensor::default();
        self.forward_into(x, &mut out, mode);
        out
    }

    /// Forward pass over `[n, c, h, w]` into a caller-owned output tensor.
    pub fn forward_into(&mut self, x: &Tensor, out: &mut Tensor, _mode: Mode) {
        max_pool2x2_into_rt(&self.runtime, x, out, &mut self.arg);
        self.in_shape.clear();
        self.in_shape.extend_from_slice(x.shape());
        self.primed = true;
    }

    /// Backward pass (allocating wrapper around
    /// [`MaxPool2x2::backward_into`]).
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut gx = Tensor::default();
        self.backward_into(grad_out, &mut gx);
        gx
    }

    /// Backward pass into a caller-owned input-gradient tensor.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward_into(&mut self, grad_out: &Tensor, gx: &mut Tensor) {
        assert!(self.primed, "MaxPool2x2::backward before forward");
        self.primed = false;
        max_pool2x2_backward_into(grad_out, &self.arg, &self.in_shape, gx);
    }
}

/// Global average pooling `[n, c, h, w] → [n, c]`.
#[derive(Clone, Debug, Default)]
pub struct GlobalAvgPool {
    runtime: Runtime,
    /// Reused input-shape record (arena).
    in_shape: Vec<usize>,
    primed: bool,
}

impl GlobalAvgPool {
    /// Creates a pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool::default()
    }

    /// Sets the parallel runtime the pooling kernel executes on.
    pub fn set_runtime(&mut self, rt: Runtime) {
        self.runtime = rt;
    }

    /// Forward pass (allocating wrapper around
    /// [`GlobalAvgPool::forward_into`]).
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut out = Tensor::default();
        self.forward_into(x, &mut out, mode);
        out
    }

    /// Forward pass into a caller-owned output tensor.
    pub fn forward_into(&mut self, x: &Tensor, out: &mut Tensor, _mode: Mode) {
        self.in_shape.clear();
        self.in_shape.extend_from_slice(x.shape());
        avg_pool_global_into_rt(&self.runtime, x, out);
        self.primed = true;
    }

    /// Backward pass (allocating wrapper around
    /// [`GlobalAvgPool::backward_into`]).
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut gx = Tensor::default();
        self.backward_into(grad_out, &mut gx);
        gx
    }

    /// Backward pass into a caller-owned input-gradient tensor.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward_into(&mut self, grad_out: &Tensor, gx: &mut Tensor) {
        assert!(self.primed, "GlobalAvgPool::backward before forward");
        self.primed = false;
        avg_pool_global_backward_into(grad_out, &self.in_shape, gx);
    }
}

/// Flattens `[n, ...] → [n, prod(...)]`.
#[derive(Clone, Debug, Default)]
pub struct Flatten {
    /// Reused input-shape record (arena).
    in_shape: Vec<usize>,
    primed: bool,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }

    /// Forward pass (allocating wrapper around [`Flatten::forward_into`]).
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut out = Tensor::default();
        self.forward_into(x, &mut out, mode);
        out
    }

    /// Forward pass into a caller-owned output tensor.
    pub fn forward_into(&mut self, x: &Tensor, out: &mut Tensor, _mode: Mode) {
        self.in_shape.clear();
        self.in_shape.extend_from_slice(x.shape());
        let n = x.shape()[0];
        let rest: usize = x.shape()[1..].iter().product();
        out.copy_from(x);
        out.reshape_in_place(&[n, rest]);
        self.primed = true;
    }

    /// Backward pass (allocating wrapper around [`Flatten::backward_into`]).
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut gx = Tensor::default();
        self.backward_into(grad_out, &mut gx);
        gx
    }

    /// Backward pass into a caller-owned input-gradient tensor.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward_into(&mut self, grad_out: &Tensor, gx: &mut Tensor) {
        assert!(self.primed, "Flatten::backward before forward");
        self.primed = false;
        gx.copy_from(grad_out);
        gx.reshape_in_place(&self.in_shape);
    }
}

// ---------------------------------------------------------------------------
// AnyLayer + Sequential
// ---------------------------------------------------------------------------

/// A closed sum of every layer type, enabling heterogeneous [`Sequential`]
/// stacks without trait objects (and therefore cheap cloning).
#[derive(Clone, Debug)]
pub enum AnyLayer {
    /// Convolution.
    Conv(Conv2d),
    /// Batch normalization.
    Bn(BatchNorm2d),
    /// ReLU.
    Relu(Relu),
    /// 2×2 max pooling.
    MaxPool(MaxPool2x2),
    /// Global average pooling.
    GlobalAvg(GlobalAvgPool),
    /// Flatten.
    Flatten(Flatten),
    /// Fully-connected.
    Linear(Linear),
}

impl AnyLayer {
    /// Forward dispatch.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        match self {
            AnyLayer::Conv(l) => l.forward(x, mode),
            AnyLayer::Bn(l) => l.forward(x, mode),
            AnyLayer::Relu(l) => l.forward(x, mode),
            AnyLayer::MaxPool(l) => l.forward(x, mode),
            AnyLayer::GlobalAvg(l) => l.forward(x, mode),
            AnyLayer::Flatten(l) => l.forward(x, mode),
            AnyLayer::Linear(l) => l.forward(x, mode),
        }
    }

    /// Backward dispatch.
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        match self {
            AnyLayer::Conv(l) => l.backward(grad),
            AnyLayer::Bn(l) => l.backward(grad),
            AnyLayer::Relu(l) => l.backward(grad),
            AnyLayer::MaxPool(l) => l.backward(grad),
            AnyLayer::GlobalAvg(l) => l.backward(grad),
            AnyLayer::Flatten(l) => l.backward(grad),
            AnyLayer::Linear(l) => l.backward(grad),
        }
    }

    /// Alloc-free forward dispatch into a caller-owned output tensor.
    pub fn forward_into(&mut self, x: &Tensor, out: &mut Tensor, mode: Mode) {
        match self {
            AnyLayer::Conv(l) => l.forward_into(x, out, mode),
            AnyLayer::Bn(l) => l.forward_into(x, out, mode),
            AnyLayer::Relu(l) => l.forward_into(x, out, mode),
            AnyLayer::MaxPool(l) => l.forward_into(x, out, mode),
            AnyLayer::GlobalAvg(l) => l.forward_into(x, out, mode),
            AnyLayer::Flatten(l) => l.forward_into(x, out, mode),
            AnyLayer::Linear(l) => l.forward_into(x, out, mode),
        }
    }

    /// Alloc-free backward dispatch into a caller-owned gradient tensor.
    pub fn backward_into(&mut self, grad: &Tensor, gx: &mut Tensor) {
        match self {
            AnyLayer::Conv(l) => l.backward_into(grad, gx),
            AnyLayer::Bn(l) => l.backward_into(grad, gx),
            AnyLayer::Relu(l) => l.backward_into(grad, gx),
            AnyLayer::MaxPool(l) => l.backward_into(grad, gx),
            AnyLayer::GlobalAvg(l) => l.backward_into(grad, gx),
            AnyLayer::Flatten(l) => l.backward_into(grad, gx),
            AnyLayer::Linear(l) => l.backward_into(grad, gx),
        }
    }

    /// Visits the layer's parameters in the same order as
    /// [`AnyLayer::params`] without allocating.
    pub fn for_each_param(&self, f: &mut dyn FnMut(&Param)) {
        match self {
            AnyLayer::Conv(l) => f(&l.w),
            AnyLayer::Bn(l) => {
                f(&l.gamma);
                f(&l.beta);
            }
            AnyLayer::Linear(l) => {
                f(&l.w);
                f(&l.b);
            }
            _ => {}
        }
    }

    /// Visits the layer's parameters mutably, in the same order as
    /// [`AnyLayer::params`], without allocating.
    pub fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        match self {
            AnyLayer::Conv(l) => f(&mut l.w),
            AnyLayer::Bn(l) => {
                f(&mut l.gamma);
                f(&mut l.beta);
            }
            AnyLayer::Linear(l) => {
                f(&mut l.w);
                f(&mut l.b);
            }
            _ => {}
        }
    }

    /// Immutable references to the layer's parameters, in a fixed order.
    pub fn params(&self) -> Vec<&Param> {
        match self {
            AnyLayer::Conv(l) => vec![&l.w],
            AnyLayer::Bn(l) => vec![&l.gamma, &l.beta],
            AnyLayer::Linear(l) => vec![&l.w, &l.b],
            _ => Vec::new(),
        }
    }

    /// Mutable references to the layer's parameters, in the same order as
    /// [`AnyLayer::params`].
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            AnyLayer::Conv(l) => vec![&mut l.w],
            AnyLayer::Bn(l) => vec![&mut l.gamma, &mut l.beta],
            AnyLayer::Linear(l) => vec![&mut l.w, &mut l.b],
            _ => Vec::new(),
        }
    }

    /// The BN statistics if this is a BatchNorm layer.
    pub fn bn_stats(&self) -> Option<&BnStats> {
        match self {
            AnyLayer::Bn(l) => Some(&l.stats),
            _ => None,
        }
    }

    /// Mutable BN statistics if this is a BatchNorm layer.
    pub fn bn_stats_mut(&mut self) -> Option<&mut BnStats> {
        match self {
            AnyLayer::Bn(l) => Some(&mut l.stats),
            _ => None,
        }
    }

    /// Sets the BN momentum if this is a BatchNorm layer.
    pub fn set_bn_momentum(&mut self, momentum: f32) {
        if let AnyLayer::Bn(l) = self {
            l.set_momentum(momentum);
        }
    }

    /// Sets the sparse-dispatch crossover if this layer has weights.
    pub fn set_sparse_crossover(&mut self, crossover: f32) {
        match self {
            AnyLayer::Conv(l) => l.set_sparse_crossover(crossover),
            AnyLayer::Linear(l) => l.set_sparse_crossover(crossover),
            _ => {}
        }
    }

    /// Sets the parallel runtime of every kernel-bearing layer.
    pub fn set_runtime(&mut self, rt: Runtime) {
        match self {
            AnyLayer::Conv(l) => l.set_runtime(rt),
            AnyLayer::Linear(l) => l.set_runtime(rt),
            AnyLayer::MaxPool(l) => l.set_runtime(rt),
            AnyLayer::GlobalAvg(l) => l.set_runtime(rt),
            _ => {}
        }
    }

    /// Multiply–accumulate FLOPs actually executed by this layer's GEMMs.
    pub fn realized_flops(&self) -> f64 {
        match self {
            AnyLayer::Conv(l) => l.realized_flops(),
            AnyLayer::Linear(l) => l.realized_flops(),
            _ => 0.0,
        }
    }

    /// Clears the realized-FLOPs counter.
    pub fn reset_realized_flops(&mut self) {
        match self {
            AnyLayer::Conv(l) => l.reset_realized_flops(),
            AnyLayer::Linear(l) => l.reset_realized_flops(),
            _ => {}
        }
    }
}

/// An ordered stack of layers executed front to back.
///
/// Activations flow through a pair of ping-pong tensors owned by the stack,
/// so a full forward/backward pass allocates nothing once the buffers have
/// grown to the batch geometry.
#[derive(Clone, Debug, Default)]
pub struct Sequential {
    /// The layers, in execution order.
    pub layers: Vec<AnyLayer>,
    ping: Tensor,
    pong: Tensor,
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Sequential::default()
    }

    /// Appends a layer (builder style).
    pub fn push(&mut self, layer: AnyLayer) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Forward through every layer (allocating wrapper around
    /// [`Sequential::forward_into`]).
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut out = Tensor::default();
        self.forward_into(x, &mut out, mode);
        out
    }

    /// Forward through every layer into a caller-owned output tensor,
    /// ping-ponging intermediate activations between two reused buffers.
    pub fn forward_into(&mut self, x: &Tensor, out: &mut Tensor, mode: Mode) {
        let Sequential { layers, ping, pong } = self;
        let n = layers.len();
        if n == 0 {
            out.copy_from(x);
            return;
        }
        for (idx, l) in layers.iter_mut().enumerate() {
            let src: &Tensor = if idx == 0 { x } else { &*ping };
            if idx == n - 1 {
                l.forward_into(src, out, mode);
            } else {
                l.forward_into(src, pong, mode);
                std::mem::swap(ping, pong);
            }
        }
    }

    /// Backward through every layer in reverse (allocating wrapper around
    /// [`Sequential::backward_into`]).
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut gx = Tensor::default();
        self.backward_into(grad, &mut gx);
        gx
    }

    /// Backward through every layer in reverse into a caller-owned
    /// input-gradient tensor.
    pub fn backward_into(&mut self, grad: &Tensor, gx: &mut Tensor) {
        let Sequential { layers, ping, pong } = self;
        let n = layers.len();
        if n == 0 {
            gx.copy_from(grad);
            return;
        }
        for (idx, l) in layers.iter_mut().rev().enumerate() {
            let src: &Tensor = if idx == 0 { grad } else { &*ping };
            if idx == n - 1 {
                l.backward_into(src, gx);
            } else {
                l.backward_into(src, pong);
                std::mem::swap(ping, pong);
            }
        }
    }

    /// Backward through every layer in reverse, discarding the network
    /// input gradient. The leading layer only accumulates its parameter
    /// gradients — for a leading convolution this skips the dCol GEMM and
    /// col2im entirely, since no layer sits before it to consume the
    /// result. Parameter gradients are identical to
    /// [`Sequential::backward_into`].
    pub fn backward_discard_input(&mut self, grad: &Tensor) {
        let Sequential { layers, ping, pong } = self;
        let n = layers.len();
        for (idx, l) in layers.iter_mut().rev().enumerate() {
            let src: &Tensor = if idx == 0 { grad } else { &*ping };
            if idx == n - 1 {
                if let AnyLayer::Conv(c) = l {
                    c.backward_params_only(src);
                } else {
                    l.backward_into(src, pong);
                }
            } else {
                l.backward_into(src, pong);
                std::mem::swap(ping, pong);
            }
        }
    }

    /// Visits every parameter in execution order without allocating.
    pub fn for_each_param(&self, f: &mut dyn FnMut(&Param)) {
        for l in &self.layers {
            l.for_each_param(f);
        }
    }

    /// Visits every parameter mutably, in execution order, without
    /// allocating.
    pub fn for_each_param_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for l in &mut self.layers {
            l.for_each_param_mut(f);
        }
    }

    /// Visits the BN statistics of every BatchNorm layer in order.
    pub fn for_each_bn_stats(&self, f: &mut dyn FnMut(&BnStats)) {
        for l in &self.layers {
            if let Some(s) = l.bn_stats() {
                f(s);
            }
        }
    }

    /// Visits the BN statistics of every BatchNorm layer, mutably, in order.
    pub fn for_each_bn_stats_mut(&mut self, f: &mut dyn FnMut(&mut BnStats)) {
        for l in &mut self.layers {
            if let Some(s) = l.bn_stats_mut() {
                f(s);
            }
        }
    }

    /// All parameters in execution order.
    pub fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// All parameters, mutably, in execution order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// BN statistics of every BatchNorm layer, in order.
    pub fn bn_stats(&self) -> Vec<&BnStats> {
        self.layers.iter().filter_map(|l| l.bn_stats()).collect()
    }

    /// Mutable BN statistics of every BatchNorm layer, in order.
    pub fn bn_stats_mut(&mut self) -> Vec<&mut BnStats> {
        self.layers
            .iter_mut()
            .filter_map(|l| l.bn_stats_mut())
            .collect()
    }

    /// Sets the BN momentum of every BatchNorm layer.
    pub fn set_bn_momentum(&mut self, momentum: f32) {
        for l in &mut self.layers {
            l.set_bn_momentum(momentum);
        }
    }

    /// Sets the sparse-dispatch crossover of every weighted layer.
    pub fn set_sparse_crossover(&mut self, crossover: f32) {
        for l in &mut self.layers {
            l.set_sparse_crossover(crossover);
        }
    }

    /// Sets the parallel runtime of every kernel-bearing layer.
    pub fn set_runtime(&mut self, rt: Runtime) {
        for l in &mut self.layers {
            l.set_runtime(rt);
        }
    }

    /// Total multiply–accumulate FLOPs actually executed by the stack.
    pub fn realized_flops(&self) -> f64 {
        self.layers.iter().map(AnyLayer::realized_flops).sum()
    }

    /// Clears every layer's realized-FLOPs counter.
    pub fn reset_realized_flops(&mut self) {
        for l in &mut self.layers {
            l.reset_realized_flops();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_tensor::assert_close;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    /// Finite-difference gradient check for a scalar loss = sum(forward(x)).
    fn grad_check_conv() {
        // implemented in numeric tests below
    }

    #[test]
    fn conv_forward_shape() {
        let mut c = Conv2d::new(&mut rng(), 3, 5, 3, 1, 1, true, "c");
        let x = Tensor::ones(&[2, 3, 8, 8]);
        let y = c.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 5, 8, 8]);
        let mut c2 = Conv2d::new(&mut rng(), 3, 4, 3, 2, 1, true, "c2");
        let y2 = c2.forward(&x, Mode::Train);
        assert_eq!(y2.shape(), &[2, 4, 4, 4]);
        let _ = grad_check_conv;
    }

    #[test]
    fn conv_gradient_check() {
        let mut rng = rng();
        let mut c = Conv2d::new(&mut rng, 2, 3, 3, 1, 1, true, "c");
        let x = ft_tensor::normal(&mut rng, &[1, 2, 4, 4], 0.0, 1.0);
        let y = c.forward(&x, Mode::Train);
        let gy = Tensor::ones(y.shape());
        let gx = c.backward(&gy);

        // Finite differences wrt input.
        let eps = 1e-3;
        for check in [0usize, 7, 15, 31] {
            let mut xp = x.clone();
            xp.data_mut()[check] += eps;
            let mut xm = x.clone();
            xm.data_mut()[check] -= eps;
            let yp = c.forward(&xp, Mode::Train).sum();
            let _ = c.backward(&Tensor::ones(&[1, 3, 4, 4])); // clear cache
            let ym = c.forward(&xm, Mode::Train).sum();
            let _ = c.backward(&Tensor::ones(&[1, 3, 4, 4]));
            let num = (yp - ym) / (2.0 * eps);
            assert!(
                (gx.data()[check] - num).abs() < 1e-2,
                "input grad {} vs numeric {}",
                gx.data()[check],
                num
            );
        }

        // Finite differences wrt a few weights.
        let mut c2 = Conv2d::new(&mut rng, 2, 3, 3, 1, 1, true, "c");
        let _ = c2.forward(&x, Mode::Train);
        let gw = {
            let _ = c2.backward(&Tensor::ones(&[1, 3, 4, 4]));
            c2.w.grad.clone()
        };
        for check in [0usize, 10, 25] {
            let orig = c2.w.data.data()[check];
            c2.w.data.data_mut()[check] = orig + eps;
            let yp = c2.forward(&x, Mode::Train).sum();
            let _ = c2.backward(&Tensor::ones(&[1, 3, 4, 4]));
            c2.w.data.data_mut()[check] = orig - eps;
            let ym = c2.forward(&x, Mode::Train).sum();
            let _ = c2.backward(&Tensor::ones(&[1, 3, 4, 4]));
            c2.w.data.data_mut()[check] = orig;
            let num = (yp - ym) / (2.0 * eps);
            assert!(
                (gw.data()[check] - num).abs() < 1e-2,
                "weight grad {} vs numeric {}",
                gw.data()[check],
                num
            );
        }
    }

    #[test]
    fn linear_forward_matches_manual() {
        let mut l = Linear::new(&mut rng(), 3, 2, true, "fc");
        l.w.data = Tensor::from_vec(vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5], &[2, 3]);
        l.b.data = Tensor::from_vec(vec![0.1, -0.1], &[2]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let y = l.forward(&x, Mode::Train);
        assert_close(y.data(), &[1.0 - 3.0 + 0.1, 6.0 * 0.5 - 0.1], 1e-6);
    }

    #[test]
    fn linear_gradient_check() {
        let mut rng = rng();
        let mut l = Linear::new(&mut rng, 4, 3, true, "fc");
        let x = ft_tensor::normal(&mut rng, &[2, 4], 0.0, 1.0);
        let y = l.forward(&x, Mode::Train);
        let gx = l.backward(&Tensor::ones(y.shape()));
        let eps = 1e-3;
        for check in 0..8 {
            let mut xp = x.clone();
            xp.data_mut()[check] += eps;
            let yp = l.forward(&xp, Mode::Train).sum();
            let _ = l.backward(&Tensor::ones(&[2, 3]));
            let mut xm = x.clone();
            xm.data_mut()[check] -= eps;
            let ym = l.forward(&xm, Mode::Train).sum();
            let _ = l.backward(&Tensor::ones(&[2, 3]));
            let num = (yp - ym) / (2.0 * eps);
            assert!((gx.data()[check] - num).abs() < 1e-2);
        }
    }

    #[test]
    fn bn_train_normalizes_batch() {
        let mut bn = BatchNorm2d::new(2, "bn");
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
            &[1, 2, 2, 2],
        );
        let y = bn.forward(&x, Mode::Train);
        // Each channel should be ~zero-mean, unit-var after normalization.
        for c in 0..2 {
            let ch: Vec<f32> = (0..4).map(|i| y.data()[c * 4 + i]).collect();
            let mean: f32 = ch.iter().sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-4, "channel {c} mean {mean}");
        }
        // Running stats moved toward batch stats.
        assert!(bn.stats.mean[0] > 0.0);
        assert!(bn.stats.mean[1] > bn.stats.mean[0]);
    }

    #[test]
    fn bn_eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1, "bn");
        bn.stats.mean = vec![5.0];
        bn.stats.var = vec![4.0];
        let x = Tensor::from_vec(vec![5.0, 7.0], &[2, 1, 1, 1]);
        let y = bn.forward(&x, Mode::Eval);
        assert_close(y.data(), &[0.0, 2.0 / (4.0f32 + 1e-5).sqrt()], 1e-4);
    }

    #[test]
    fn bn_gradient_check() {
        let mut rng = rng();
        let mut bn = BatchNorm2d::new(2, "bn");
        let x = ft_tensor::normal(&mut rng, &[2, 2, 2, 2], 1.0, 2.0);
        let y = bn.forward(&x, Mode::Train);
        // Loss = sum(y * w) for a fixed random w so the gradient is nontrivial.
        let wv = ft_tensor::normal(&mut rng, &[16], 0.0, 1.0);
        let gy = Tensor::from_vec(wv.data().to_vec(), y.shape());
        let gx = bn.backward(&gy);
        let eps = 2e-3;
        for check in [0usize, 5, 11, 15] {
            let mut bn2 = BatchNorm2d::new(2, "bn");
            let mut xp = x.clone();
            xp.data_mut()[check] += eps;
            let yp = bn2.forward(&xp, Mode::Train).mul(&gy).sum();
            let mut xm = x.clone();
            xm.data_mut()[check] -= eps;
            let ym = bn2.forward(&xm, Mode::Train).mul(&gy).sum();
            let num = (yp - ym) / (2.0 * eps);
            assert!(
                (gx.data()[check] - num).abs() < 2e-2,
                "bn input grad {} vs numeric {}",
                gx.data()[check],
                num
            );
        }
    }

    #[test]
    fn relu_masks_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0, 0.0], &[3]);
        let y = r.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0]);
        let g = r.backward(&Tensor::ones(&[3]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::ones(&[2, 3, 4, 4]);
        let y = f.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 48]);
        let g = f.backward(&y);
        assert_eq!(g.shape(), &[2, 3, 4, 4]);
    }

    #[test]
    fn sequential_composes() {
        let mut rng = rng();
        let mut seq = Sequential::new();
        seq.push(AnyLayer::Conv(Conv2d::new(
            &mut rng, 1, 2, 3, 1, 1, true, "c",
        )))
        .push(AnyLayer::Bn(BatchNorm2d::new(2, "bn")))
        .push(AnyLayer::Relu(Relu::new()))
        .push(AnyLayer::Flatten(Flatten::new()))
        .push(AnyLayer::Linear(Linear::new(
            &mut rng,
            2 * 16,
            4,
            true,
            "fc",
        )));
        let x = ft_tensor::normal(&mut rng, &[3, 1, 4, 4], 0.0, 1.0);
        let y = seq.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[3, 4]);
        let gx = seq.backward(&Tensor::ones(&[3, 4]));
        assert_eq!(gx.shape(), &[3, 1, 4, 4]);
        assert_eq!(seq.params().len(), 1 + 2 + 2); // conv w, bn γβ, fc w+b
        assert_eq!(seq.bn_stats().len(), 1);
    }

    #[test]
    fn maxpool_layer_roundtrip() {
        let mut p = MaxPool2x2::new();
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let y = p.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        let g = p.backward(&Tensor::ones(y.shape()));
        assert_eq!(g.shape(), x.shape());
        assert_eq!(g.sum(), 4.0);
    }

    #[test]
    fn global_avg_pool_layer() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::ones(&[2, 3, 4, 4]);
        let y = p.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 3]);
        assert_close(y.data(), &[1.0; 6], 1e-6);
    }

    /// Applies an every-other-weight mask directly to a weight param,
    /// zeroing and recording it like `ft_nn::apply_mask` does.
    fn mask_param(w: &mut Param, keep_every: usize) {
        let bits: Vec<bool> = (0..w.len()).map(|i| i % keep_every == 0).collect();
        for (v, &alive) in w.data.data_mut().iter_mut().zip(bits.iter()) {
            if !alive {
                *v = 0.0;
            }
        }
        w.note_mask(&bits);
    }

    #[test]
    fn conv_sparse_forward_matches_dense_masked() {
        let mut rng = rng();
        let mut sparse = Conv2d::new(&mut rng, 3, 8, 3, 1, 1, true, "c");
        mask_param(&mut sparse.w, 5); // density 0.2
        let mut dense = sparse.clone();
        sparse.set_sparse_crossover(1.0);
        dense.set_sparse_crossover(0.0);
        let x = ft_tensor::normal(&mut rng, &[4, 3, 8, 8], 0.0, 1.0);
        let ys = sparse.forward(&x, Mode::Train);
        let yd = dense.forward(&x, Mode::Train);
        assert_close(ys.data(), yd.data(), 1e-5);
        // The sparse path executed ~0.2x the dense MACs.
        assert!(
            sparse.realized_flops() < 0.3 * dense.realized_flops(),
            "sparse {} vs dense {}",
            sparse.realized_flops(),
            dense.realized_flops()
        );
    }

    #[test]
    fn conv_sparse_backward_matches_dense_on_alive_coords() {
        let mut rng = rng();
        let mut sparse = Conv2d::new(&mut rng, 2, 6, 3, 1, 1, true, "c");
        mask_param(&mut sparse.w, 4);
        let mut dense = sparse.clone();
        sparse.set_sparse_crossover(1.0);
        dense.set_sparse_crossover(0.0);
        let x = ft_tensor::normal(&mut rng, &[2, 2, 6, 6], 0.0, 1.0);
        let go = ft_tensor::normal(&mut rng, &[2, 6, 6, 6], 0.0, 1.0);
        let _ = sparse.forward(&x, Mode::Train);
        let _ = dense.forward(&x, Mode::Train);
        let gxs = sparse.backward(&go);
        let gxd = dense.backward(&go);
        // Input gradients agree exactly (pruned weights are zero either way).
        assert_close(gxs.data(), gxd.data(), 1e-4);
        // Weight gradients agree at mask-alive coordinates and are zero at
        // pruned coordinates on the sparse path.
        let bits = sparse.w.mask_bits.clone().expect("mask recorded");
        for (i, &alive) in bits.iter().enumerate() {
            if alive {
                let (a, b) = (sparse.w.grad.data()[i], dense.w.grad.data()[i]);
                assert!((a - b).abs() < 1e-3, "alive grad {i}: {a} vs {b}");
            } else {
                assert_eq!(sparse.w.grad.data()[i], 0.0, "pruned grad {i} nonzero");
            }
        }
    }

    #[test]
    fn linear_sparse_paths_match_dense() {
        let mut rng = rng();
        let mut sparse = Linear::new(&mut rng, 32, 16, true, "fc");
        mask_param(&mut sparse.w, 5);
        let mut dense = sparse.clone();
        sparse.set_sparse_crossover(1.0);
        dense.set_sparse_crossover(0.0);
        let x = ft_tensor::normal(&mut rng, &[8, 32], 0.0, 1.0);
        let ys = sparse.forward(&x, Mode::Train);
        let yd = dense.forward(&x, Mode::Train);
        assert_close(ys.data(), yd.data(), 1e-5);
        let go = ft_tensor::normal(&mut rng, &[8, 16], 0.0, 1.0);
        let gxs = sparse.backward(&go);
        let gxd = dense.backward(&go);
        assert_close(gxs.data(), gxd.data(), 1e-4);
        assert_close(sparse.b.grad.data(), dense.b.grad.data(), 1e-4);
        let bits = sparse.w.mask_bits.clone().expect("mask recorded");
        for (i, &alive) in bits.iter().enumerate() {
            if alive {
                let (a, b) = (sparse.w.grad.data()[i], dense.w.grad.data()[i]);
                assert!((a - b).abs() < 1e-3, "alive grad {i}: {a} vs {b}");
            } else {
                assert_eq!(sparse.w.grad.data()[i], 0.0, "pruned grad {i} nonzero");
            }
        }
    }

    #[test]
    fn dispatch_respects_crossover_and_density() {
        let mut rng = rng();
        let mut l = Linear::new(&mut rng, 20, 10, true, "fc");
        let x = Tensor::ones(&[1, 20]);
        // Unmasked: dense (full MAC count).
        let _ = l.forward(&x, Mode::Train);
        assert_eq!(l.realized_flops(), 2.0 * 200.0);
        // Masked at density 0.5 with default crossover 0.5: sparse.
        l.reset_realized_flops();
        mask_param(&mut l.w, 2);
        let _ = l.forward(&x, Mode::Train);
        assert_eq!(l.realized_flops(), 2.0 * 100.0);
        // Crossover 0 forces dense again.
        l.reset_realized_flops();
        l.set_sparse_crossover(0.0);
        let _ = l.forward(&x, Mode::Train);
        assert_eq!(l.realized_flops(), 2.0 * 200.0);
    }

    /// Applies a *clustered* mask: the first `keep_rows` weight rows stay
    /// fully alive, the rest are pruned. Whole BSR tiles end up fully alive
    /// or fully dead, so the average tile fill is high.
    fn mask_param_rows(w: &mut Param, cols: usize, keep_rows: usize) {
        let bits: Vec<bool> = (0..w.len()).map(|i| i / cols < keep_rows).collect();
        for (v, &alive) in w.data.data_mut().iter_mut().zip(bits.iter()) {
            if !alive {
                *v = 0.0;
            }
        }
        w.note_mask(&bits);
    }

    /// A clustered mask (high tile fill) routes the forward pass through the
    /// BSR kernels; the output matches the dense reference and the
    /// realized-FLOPs counter switches to counting stored tile slots.
    #[test]
    fn clustered_mask_routes_linear_forward_through_bsr() {
        let mut rng = rng();
        let mut l = Linear::new(&mut rng, 16, 8, true, "fc");
        let mut dense = l.clone();
        mask_param_rows(&mut l.w, 16, 4);
        mask_param_rows(&mut dense.w, 16, 4);
        dense.set_sparse_crossover(0.0);
        let x = ft_tensor::normal(&mut rng, &[3, 16], 0.0, 1.0);
        let y = l.forward(&x, Mode::Train);
        let plan = l.plan.as_ref().expect("sparse plan built");
        let bsr = plan.bsr.as_ref().expect("clustered mask must engage BSR");
        assert_eq!(bsr.fill(), 1.0);
        assert_close(y.data(), dense.forward(&x, Mode::Train).data(), 1e-5);
        // Block row 0 fully alive (4 rows × 16 cols), block row 1 unstored.
        assert_eq!(bsr.stored(), 64);
        assert_eq!(l.realized_flops(), 2.0 * 3.0 * 64.0);
        // A scattered mask at the same density must stay on CSR.
        let mut scattered = Linear::new(&mut rng, 16, 8, true, "fc");
        mask_param(&mut scattered.w, 2);
        let _ = scattered.forward(&x, Mode::Train);
        let plan = scattered.plan.as_ref().expect("sparse plan built");
        assert!(plan.bsr.is_none(), "scattered mask must not engage BSR");
    }

    #[test]
    fn clustered_mask_routes_conv_forward_through_bsr() {
        let mut rng = rng();
        let mut c = Conv2d::new(&mut rng, 2, 8, 3, 1, 1, true, "c");
        let mut dense = c.clone();
        let cr = 2 * 3 * 3;
        mask_param_rows(&mut c.w, cr, 4);
        mask_param_rows(&mut dense.w, cr, 4);
        dense.set_sparse_crossover(0.0);
        let x = ft_tensor::normal(&mut rng, &[2, 2, 6, 6], 0.0, 1.0);
        let y = c.forward(&x, Mode::Train);
        let plan = c.plan.as_ref().expect("sparse plan built");
        assert!(
            plan.bsr.is_some(),
            "clustered conv mask must engage BSR (fill {})",
            BsrMatrix::from_mask_values(
                c.w.mask_bits.as_ref().unwrap(),
                c.w.data.data(),
                8,
                cr,
                BSR_BLOCK,
            )
            .fill()
        );
        assert_close(y.data(), dense.forward(&x, Mode::Train).data(), 1e-4);
        // Backward stays on CSR and still matches the dense gradients at
        // alive coordinates.
        let go = Tensor::ones(&[2, 8, 6, 6]);
        let gx = c.backward(&go);
        let gxd = dense.backward(&go);
        assert_close(gx.data(), gxd.data(), 1e-4);
    }

    /// `refresh_plan` keeps the BSR values in sync with optimizer updates
    /// between mask epochs (structure reused, values re-gathered).
    #[test]
    fn bsr_plan_refreshes_values_between_epochs() {
        let mut rng = rng();
        let mut l = Linear::new(&mut rng, 8, 8, true, "fc");
        mask_param_rows(&mut l.w, 8, 4);
        let x = Tensor::ones(&[1, 8]);
        let _ = l.forward(&x, Mode::Train);
        assert!(l.plan.as_ref().unwrap().bsr.is_some());
        // Simulate an optimizer step on alive weights.
        for v in l.w.data.data_mut().iter_mut() {
            *v *= 2.0;
        }
        let y = l.forward(&x, Mode::Train);
        let mut dense = l.clone();
        dense.set_sparse_crossover(0.0);
        assert_close(y.data(), dense.forward(&x, Mode::Train).data(), 1e-5);
    }

    #[test]
    fn crossover_zero_forces_dense_even_when_fully_pruned() {
        // A zero-density layer must still take the dense path under
        // crossover 0.0 — the grow-scoring probes depend on dense weight
        // gradients to revive fully-pruned layers.
        let mut rng = rng();
        let mut l = Linear::new(&mut rng, 6, 4, true, "fc");
        let bits = vec![false; l.w.len()];
        for v in l.w.data.data_mut().iter_mut() {
            *v = 0.0;
        }
        l.w.note_mask(&bits);
        l.set_sparse_crossover(0.0);
        let x = Tensor::ones(&[2, 6]);
        let _ = l.forward(&x, Mode::Train);
        assert!(
            l.plan.is_none(),
            "crossover 0.0 must not build a sparse plan"
        );
        // Dense backward produces gradients at pruned coordinates.
        let _ = l.backward(&Tensor::ones(&[2, 4]));
        assert!(
            l.w.grad.data().iter().any(|&g| g != 0.0),
            "dense backward must produce pruned-coordinate gradients"
        );
    }

    /// A whole layer stack produces bit-identical activations, gradients,
    /// and realized-FLOPs counters on the parallel runtime — the layer-level
    /// face of the runtime determinism contract, covering both the dense
    /// and the sparse dispatch paths.
    #[test]
    fn parallel_runtime_is_bit_identical_through_layers() {
        for (density_keep, crossover) in [(1usize, 0.0f32), (4, 1.0)] {
            let mut rng = rng();
            let mut seq_stack = Sequential::new();
            seq_stack
                .push(AnyLayer::Conv(Conv2d::new(
                    &mut rng, 2, 4, 3, 1, 1, true, "c",
                )))
                .push(AnyLayer::MaxPool(MaxPool2x2::new()))
                .push(AnyLayer::GlobalAvg(GlobalAvgPool::new()))
                .push(AnyLayer::Linear(Linear::new(&mut rng, 4, 3, true, "fc")));
            if density_keep > 1 {
                for l in &mut seq_stack.layers {
                    for p in l.params_mut() {
                        if p.prunable {
                            mask_param(p, density_keep);
                        }
                    }
                }
            }
            seq_stack.set_sparse_crossover(crossover);
            let mut par_stack = seq_stack.clone();
            par_stack.set_runtime(Runtime::exact(4).with_min_work(0));

            let x = ft_tensor::normal(&mut rng, &[3, 2, 8, 8], 0.0, 1.0);
            let ys = seq_stack.forward(&x, Mode::Train);
            let yp = par_stack.forward(&x, Mode::Train);
            assert_eq!(ys.data(), yp.data(), "forward diverged");
            let g = ft_tensor::normal(&mut rng, &[3, 3], 0.0, 1.0);
            let gs = seq_stack.backward(&g);
            let gp = par_stack.backward(&g);
            assert_eq!(gs.data(), gp.data(), "input grads diverged");
            for (a, b) in seq_stack.params().iter().zip(par_stack.params().iter()) {
                assert_eq!(a.grad.data(), b.grad.data(), "param grads diverged");
            }
            assert_eq!(seq_stack.realized_flops(), par_stack.realized_flops());
        }
    }

    #[test]
    fn csr_plan_reused_until_mask_epoch_changes() {
        let mut rng = rng();
        let mut l = Linear::new(&mut rng, 16, 8, true, "fc");
        mask_param(&mut l.w, 4);
        let x = Tensor::ones(&[2, 16]);
        let _ = l.forward(&x, Mode::Train);
        let epoch0 = l.plan.as_ref().expect("plan built").epoch;
        let _ = l.forward(&x, Mode::Train);
        assert_eq!(l.plan.as_ref().expect("plan kept").epoch, epoch0);
        // A new mask invalidates the structure.
        mask_param(&mut l.w, 2);
        let _ = l.forward(&x, Mode::Train);
        let plan = l.plan.as_ref().expect("plan rebuilt");
        assert_ne!(plan.epoch, epoch0);
        assert_eq!(plan.csr.nnz(), 16 * 8 / 2);
    }
}
