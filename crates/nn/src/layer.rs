//! Concrete layers with manual forward/backward passes.
//!
//! Every layer caches what its backward pass needs during `forward`, so a
//! model's backward pass is simply the layers' backward calls in reverse
//! order. Parameter gradients *accumulate* into [`Param::grad`]; call
//! [`Param::zero_grad`] (or `Model::zero_grad`) between batches.

use crate::param::{Param, ParamKind};
use ft_tensor::{
    avg_pool_global, avg_pool_global_backward, col2im, im2col, kaiming_normal, matmul_into,
    matmul_nt_into, matmul_tn_into, max_pool2x2, max_pool2x2_backward, ConvGeom, Tensor,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Forward-pass mode.
///
/// `Train` uses batch statistics in BatchNorm and updates the running
/// statistics — this is also the mode used for FedTiny's *BN adaptation*
/// forward passes (parameters frozen, statistics refreshed). `Eval` uses the
/// stored running statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Batch statistics; running statistics are updated.
    Train,
    /// Running statistics; nothing is updated.
    Eval,
}

/// Running statistics of one BatchNorm layer.
///
/// These are the `µ, σ` the FedTiny selection module aggregates across
/// devices (Alg. 1 lines 10–13).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BnStats {
    /// Per-channel running mean.
    pub mean: Vec<f32>,
    /// Per-channel running variance.
    pub var: Vec<f32>,
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

/// 2-D convolution with square kernels, computed via im2col + matmul.
///
/// Bias-free by convention in this workspace (every conv is followed by
/// BatchNorm, which supplies the shift).
#[derive(Clone, Debug)]
pub struct Conv2d {
    /// Kernel weights `[out_c, in_c, k, k]`.
    pub w: Param,
    in_c: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    cache: Option<ConvCache>,
}

#[derive(Clone, Debug)]
struct ConvCache {
    cols: Tensor, // [n, col_rows, col_cols]
    geom: ConvGeom,
    batch: usize,
}

impl Conv2d {
    /// Creates a Kaiming-initialized convolution.
    ///
    /// `prunable` marks whether the weight participates in pruning masks
    /// (the input layer of a model passes `false`).
    #[allow(clippy::too_many_arguments)] // geometry is naturally positional
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        prunable: bool,
        name: &str,
    ) -> Self {
        let w = Param::new(
            kaiming_normal(rng, &[out_c, in_c, kernel, kernel]),
            ParamKind::ConvWeight,
            prunable,
            format!("{name}.w"),
        );
        Conv2d {
            w,
            in_c,
            out_c,
            kernel,
            stride,
            pad,
            cache: None,
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// `(in_c, out_c, kernel, stride, pad)` geometry tuple.
    pub fn geometry(&self) -> (usize, usize, usize, usize, usize) {
        (self.in_c, self.out_c, self.kernel, self.stride, self.pad)
    }

    /// Forward pass over `[n, in_c, h, w]`.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank-4 or the channel count differs.
    pub fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 4, "conv input must be [n,c,h,w]");
        assert_eq!(
            s[1], self.in_c,
            "conv expected {} input channels, got {}",
            self.in_c, s[1]
        );
        let (n, h, w) = (s[0], s[2], s[3]);
        let geom = ConvGeom {
            in_c: self.in_c,
            in_h: h,
            in_w: w,
            kernel: self.kernel,
            stride: self.stride,
            pad: self.pad,
        };
        let (cr, cc) = (geom.col_rows(), geom.col_cols());
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let mut cols = Tensor::zeros(&[n, cr, cc]);
        let mut out = Tensor::zeros(&[n, self.out_c, oh, ow]);
        let wmat = self.w.data.reshaped(&[self.out_c, cr]);
        let sample = self.in_c * h * w;
        for i in 0..n {
            let xi = &x.data()[i * sample..(i + 1) * sample];
            let col_slice = &mut cols.data_mut()[i * cr * cc..(i + 1) * cr * cc];
            im2col(xi, &geom, col_slice);
            let col_t = Tensor::from_vec(col_slice.to_vec(), &[cr, cc]);
            let mut out_mat = Tensor::zeros(&[self.out_c, cc]);
            matmul_into(&wmat, &col_t, &mut out_mat);
            let dst = &mut out.data_mut()[i * self.out_c * cc..(i + 1) * self.out_c * cc];
            dst.copy_from_slice(out_mat.data());
        }
        self.cache = Some(ConvCache {
            cols,
            geom,
            batch: n,
        });
        out
    }

    /// Backward pass: accumulates `w.grad` and returns the input gradient.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("Conv2d::backward called before forward");
        let geom = cache.geom;
        let (cr, cc) = (geom.col_rows(), geom.col_cols());
        let n = cache.batch;
        assert_eq!(
            grad_out.shape(),
            &[n, self.out_c, geom.out_h(), geom.out_w()],
            "conv grad_out shape mismatch"
        );
        let wmat = self.w.data.reshaped(&[self.out_c, cr]);
        let mut grad_w = Tensor::zeros(&[self.out_c, cr]);
        let mut gx = Tensor::zeros(&[n, geom.in_c, geom.in_h, geom.in_w]);
        let sample = geom.in_c * geom.in_h * geom.in_w;
        for i in 0..n {
            let go = Tensor::from_vec(
                grad_out.data()[i * self.out_c * cc..(i + 1) * self.out_c * cc].to_vec(),
                &[self.out_c, cc],
            );
            let col = Tensor::from_vec(
                cache.cols.data()[i * cr * cc..(i + 1) * cr * cc].to_vec(),
                &[cr, cc],
            );
            // dW += dY · colᵀ   ([oc,cc] x [cr,cc]ᵀ → [oc,cr])
            matmul_nt_into(&go, &col, &mut grad_w);
            // dCol = Wᵀ · dY    ([oc,cr]ᵀ x [oc,cc] → [cr,cc])
            let mut grad_col = Tensor::zeros(&[cr, cc]);
            matmul_tn_into(&wmat, &go, &mut grad_col);
            let gx_slice = &mut gx.data_mut()[i * sample..(i + 1) * sample];
            col2im(grad_col.data(), &geom, gx_slice);
        }
        self.w
            .grad
            .add_assign(&grad_w.reshaped(self.w.data.shape()));
        gx
    }
}

// ---------------------------------------------------------------------------
// BatchNorm2d
// ---------------------------------------------------------------------------

/// Batch normalization over the channel dimension of `[n, c, h, w]`.
///
/// In `Train` mode the layer normalizes with batch statistics and updates
/// the running statistics with momentum (`running = (1-m)·running +
/// m·batch`). FedTiny's adaptive selection performs exactly this forward
/// pass with frozen parameters to re-estimate `µ, σ` on device data.
#[derive(Clone, Debug)]
pub struct BatchNorm2d {
    /// Scale `γ`, initialized to 1.
    pub gamma: Param,
    /// Shift `β`, initialized to 0.
    pub beta: Param,
    /// Running statistics used in `Eval` mode.
    pub stats: BnStats,
    channels: usize,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Clone, Debug)]
struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
    batch_shape: Vec<usize>,
    /// Whether normalization used batch statistics (Train) — the backward
    /// pass then includes the statistic-dependent terms — or fixed running
    /// statistics (Eval), where the statistics are constants.
    batch_mode: bool,
}

impl BatchNorm2d {
    /// Creates a BatchNorm layer over `channels` channels with the standard
    /// momentum of 0.1 and epsilon 1e-5.
    pub fn new(channels: usize, name: &str) -> Self {
        BatchNorm2d {
            gamma: Param::new(
                Tensor::ones(&[channels]),
                ParamKind::BnGamma,
                false,
                format!("{name}.gamma"),
            ),
            beta: Param::new(
                Tensor::zeros(&[channels]),
                ParamKind::BnBeta,
                false,
                format!("{name}.beta"),
            ),
            stats: BnStats {
                mean: vec![0.0; channels],
                var: vec![1.0; channels],
            },
            channels,
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Overrides the running-statistics momentum.
    ///
    /// FedTiny's BN adaptation (Alg. 1 line 5) sets momentum to 1.0 so a
    /// single forward pass over the development split replaces the running
    /// statistics with that split's exact batch statistics.
    pub fn set_momentum(&mut self, momentum: f32) {
        self.momentum = momentum.clamp(0.0, 1.0);
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if the input is not `[n, c, h, w]` with matching channels.
    #[allow(clippy::needless_range_loop)] // index math mirrors the NCHW layout
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let s = x.shape().to_vec();
        assert_eq!(s.len(), 4, "batchnorm input must be [n,c,h,w]");
        assert_eq!(s[1], self.channels, "batchnorm channel mismatch");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let plane = h * w;
        let count = (n * plane) as f32;
        let xd = x.data();
        let mut out = Tensor::zeros(&s);

        match mode {
            Mode::Train => {
                let mut mean = vec![0.0f32; c];
                let mut var = vec![0.0f32; c];
                for ci in 0..c {
                    let mut sum = 0.0f32;
                    for ni in 0..n {
                        let base = (ni * c + ci) * plane;
                        sum += xd[base..base + plane].iter().sum::<f32>();
                    }
                    mean[ci] = sum / count;
                }
                for ci in 0..c {
                    let m = mean[ci];
                    let mut sq = 0.0f32;
                    for ni in 0..n {
                        let base = (ni * c + ci) * plane;
                        sq += xd[base..base + plane]
                            .iter()
                            .map(|&v| (v - m) * (v - m))
                            .sum::<f32>();
                    }
                    var[ci] = sq / count;
                }
                for ci in 0..c {
                    self.stats.mean[ci] =
                        (1.0 - self.momentum) * self.stats.mean[ci] + self.momentum * mean[ci];
                    self.stats.var[ci] =
                        (1.0 - self.momentum) * self.stats.var[ci] + self.momentum * var[ci];
                }
                let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
                let mut xhat = Tensor::zeros(&s);
                {
                    let xh = xhat.data_mut();
                    let od = out.data_mut();
                    for ni in 0..n {
                        for ci in 0..c {
                            let base = (ni * c + ci) * plane;
                            let (m, is) = (mean[ci], inv_std[ci]);
                            let (g, b) = (self.gamma.data.data()[ci], self.beta.data.data()[ci]);
                            for idx in base..base + plane {
                                let xn = (xd[idx] - m) * is;
                                xh[idx] = xn;
                                od[idx] = g * xn + b;
                            }
                        }
                    }
                }
                self.cache = Some(BnCache {
                    xhat,
                    inv_std,
                    batch_shape: s,
                    batch_mode: true,
                });
            }
            Mode::Eval => {
                let inv_std: Vec<f32> = self
                    .stats
                    .var
                    .iter()
                    .map(|&v| 1.0 / (v + self.eps).sqrt())
                    .collect();
                let mut xhat = Tensor::zeros(&s);
                {
                    let xh = xhat.data_mut();
                    let od = out.data_mut();
                    for ni in 0..n {
                        for ci in 0..c {
                            let base = (ni * c + ci) * plane;
                            let m = self.stats.mean[ci];
                            let is = inv_std[ci];
                            let (g, b) = (self.gamma.data.data()[ci], self.beta.data.data()[ci]);
                            for idx in base..base + plane {
                                let xn = (xd[idx] - m) * is;
                                xh[idx] = xn;
                                od[idx] = g * xn + b;
                            }
                        }
                    }
                }
                self.cache = Some(BnCache {
                    xhat,
                    inv_std,
                    batch_shape: s,
                    batch_mode: false,
                });
            }
        }
        out
    }

    /// Backward pass. After a `Train`-mode forward the full batch-statistic
    /// gradient is used; after an `Eval`-mode forward the running statistics
    /// are constants, so `∂y/∂x = γ/σ` (used e.g. by SynFlow's linearized
    /// probe).
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding forward.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("BatchNorm2d::backward requires a forward first");
        let s = cache.batch_shape;
        assert_eq!(
            grad_out.shape(),
            &s[..],
            "batchnorm grad_out shape mismatch"
        );
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let plane = h * w;
        let count = (n * plane) as f32;
        let god = grad_out.data();
        let xh = cache.xhat.data();

        let mut gx = Tensor::zeros(&s);
        for ci in 0..c {
            // Per-channel reductions.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for idx in base..base + plane {
                    sum_dy += god[idx];
                    sum_dy_xhat += god[idx] * xh[idx];
                }
            }
            self.beta.grad.data_mut()[ci] += sum_dy;
            self.gamma.grad.data_mut()[ci] += sum_dy_xhat;
            let g = self.gamma.data.data()[ci];
            let is = cache.inv_std[ci];
            let gxd = gx.data_mut();
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for idx in base..base + plane {
                    gxd[idx] = if cache.batch_mode {
                        g * is / count * (count * god[idx] - sum_dy - xh[idx] * sum_dy_xhat)
                    } else {
                        g * is * god[idx]
                    };
                }
            }
        }
        gx
    }
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

/// Fully-connected layer `y = x Wᵀ + b` over `[n, in]`.
#[derive(Clone, Debug)]
pub struct Linear {
    /// Weights `[out, in]`.
    pub w: Param,
    /// Bias `[out]`.
    pub b: Param,
    in_dim: usize,
    out_dim: usize,
    cache: Option<Tensor>,
}

impl Linear {
    /// Creates a Kaiming-initialized linear layer.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_dim: usize,
        out_dim: usize,
        prunable: bool,
        name: &str,
    ) -> Self {
        Linear {
            w: Param::new(
                kaiming_normal(rng, &[out_dim, in_dim]),
                ParamKind::LinearWeight,
                prunable,
                format!("{name}.w"),
            ),
            b: Param::new(
                Tensor::zeros(&[out_dim]),
                ParamKind::Bias,
                false,
                format!("{name}.b"),
            ),
            in_dim,
            out_dim,
            cache: None,
        }
    }

    /// `(in_dim, out_dim)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.in_dim, self.out_dim)
    }

    /// Forward pass over `[n, in]`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(x.shape().len(), 2, "linear input must be [n, in]");
        assert_eq!(x.shape()[1], self.in_dim, "linear input dim mismatch");
        let n = x.shape()[0];
        let mut out = Tensor::zeros(&[n, self.out_dim]);
        matmul_nt_into(x, &self.w.data, &mut out);
        let od = out.data_mut();
        for i in 0..n {
            for (j, &bv) in self.b.data.data().iter().enumerate() {
                od[i * self.out_dim + j] += bv;
            }
        }
        self.cache = Some(x.clone());
        out
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cache
            .take()
            .expect("Linear::backward called before forward");
        let n = x.shape()[0];
        assert_eq!(
            grad_out.shape(),
            &[n, self.out_dim],
            "linear grad_out shape mismatch"
        );
        // dW += dYᵀ · X   ([n,out]ᵀ x [n,in] → [out,in])
        matmul_tn_into(grad_out, &x, &mut self.w.grad);
        // db += column sums of dY
        let bd = self.b.grad.data_mut();
        for row in grad_out.data().chunks_exact(self.out_dim) {
            for (b, &g) in bd.iter_mut().zip(row.iter()) {
                *b += g;
            }
        }
        // dX = dY · W   ([n,out] x [out,in] → [n,in])
        let mut gx = Tensor::zeros(&[n, self.in_dim]);
        matmul_into(grad_out, &self.w.data, &mut gx);
        gx
    }
}

// ---------------------------------------------------------------------------
// Stateless layers
// ---------------------------------------------------------------------------

/// ReLU activation.
#[derive(Clone, Debug, Default)]
pub struct Relu {
    cache: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { cache: None }
    }

    /// Forward pass (any shape).
    pub fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let mask: Vec<bool> = x.data().iter().map(|&v| v > 0.0).collect();
        let out = x.map(|v| v.max(0.0));
        self.cache = Some(mask);
        out
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` or with a mismatched shape.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self
            .cache
            .take()
            .expect("Relu::backward called before forward");
        assert_eq!(grad_out.numel(), mask.len(), "relu grad shape mismatch");
        let mut g = grad_out.clone();
        for (v, &alive) in g.data_mut().iter_mut().zip(mask.iter()) {
            if !alive {
                *v = 0.0;
            }
        }
        g
    }
}

/// 2×2 max pooling with stride 2.
#[derive(Clone, Debug, Default)]
pub struct MaxPool2x2 {
    cache: Option<(Vec<usize>, Vec<usize>)>, // (argmax, input shape)
}

impl MaxPool2x2 {
    /// Creates a pooling layer.
    pub fn new() -> Self {
        MaxPool2x2 { cache: None }
    }

    /// Forward pass over `[n, c, h, w]`.
    pub fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let (out, arg) = max_pool2x2(x);
        self.cache = Some((arg, x.shape().to_vec()));
        out
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (arg, shape) = self
            .cache
            .take()
            .expect("MaxPool2x2::backward before forward");
        max_pool2x2_backward(grad_out, &arg, &shape)
    }
}

/// Global average pooling `[n, c, h, w] → [n, c]`.
#[derive(Clone, Debug, Default)]
pub struct GlobalAvgPool {
    cache: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { cache: None }
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        self.cache = Some(x.shape().to_vec());
        avg_pool_global(x)
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .cache
            .take()
            .expect("GlobalAvgPool::backward before forward");
        avg_pool_global_backward(grad_out, &shape)
    }
}

/// Flattens `[n, ...] → [n, prod(...)]`.
#[derive(Clone, Debug, Default)]
pub struct Flatten {
    cache: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cache: None }
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        self.cache = Some(x.shape().to_vec());
        let n = x.shape()[0];
        let rest: usize = x.shape()[1..].iter().product();
        x.reshaped(&[n, rest])
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self.cache.take().expect("Flatten::backward before forward");
        grad_out.reshaped(&shape)
    }
}

// ---------------------------------------------------------------------------
// AnyLayer + Sequential
// ---------------------------------------------------------------------------

/// A closed sum of every layer type, enabling heterogeneous [`Sequential`]
/// stacks without trait objects (and therefore cheap cloning).
#[derive(Clone, Debug)]
pub enum AnyLayer {
    /// Convolution.
    Conv(Conv2d),
    /// Batch normalization.
    Bn(BatchNorm2d),
    /// ReLU.
    Relu(Relu),
    /// 2×2 max pooling.
    MaxPool(MaxPool2x2),
    /// Global average pooling.
    GlobalAvg(GlobalAvgPool),
    /// Flatten.
    Flatten(Flatten),
    /// Fully-connected.
    Linear(Linear),
}

impl AnyLayer {
    /// Forward dispatch.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        match self {
            AnyLayer::Conv(l) => l.forward(x, mode),
            AnyLayer::Bn(l) => l.forward(x, mode),
            AnyLayer::Relu(l) => l.forward(x, mode),
            AnyLayer::MaxPool(l) => l.forward(x, mode),
            AnyLayer::GlobalAvg(l) => l.forward(x, mode),
            AnyLayer::Flatten(l) => l.forward(x, mode),
            AnyLayer::Linear(l) => l.forward(x, mode),
        }
    }

    /// Backward dispatch.
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        match self {
            AnyLayer::Conv(l) => l.backward(grad),
            AnyLayer::Bn(l) => l.backward(grad),
            AnyLayer::Relu(l) => l.backward(grad),
            AnyLayer::MaxPool(l) => l.backward(grad),
            AnyLayer::GlobalAvg(l) => l.backward(grad),
            AnyLayer::Flatten(l) => l.backward(grad),
            AnyLayer::Linear(l) => l.backward(grad),
        }
    }

    /// Immutable references to the layer's parameters, in a fixed order.
    pub fn params(&self) -> Vec<&Param> {
        match self {
            AnyLayer::Conv(l) => vec![&l.w],
            AnyLayer::Bn(l) => vec![&l.gamma, &l.beta],
            AnyLayer::Linear(l) => vec![&l.w, &l.b],
            _ => Vec::new(),
        }
    }

    /// Mutable references to the layer's parameters, in the same order as
    /// [`AnyLayer::params`].
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            AnyLayer::Conv(l) => vec![&mut l.w],
            AnyLayer::Bn(l) => vec![&mut l.gamma, &mut l.beta],
            AnyLayer::Linear(l) => vec![&mut l.w, &mut l.b],
            _ => Vec::new(),
        }
    }

    /// The BN statistics if this is a BatchNorm layer.
    pub fn bn_stats(&self) -> Option<&BnStats> {
        match self {
            AnyLayer::Bn(l) => Some(&l.stats),
            _ => None,
        }
    }

    /// Mutable BN statistics if this is a BatchNorm layer.
    pub fn bn_stats_mut(&mut self) -> Option<&mut BnStats> {
        match self {
            AnyLayer::Bn(l) => Some(&mut l.stats),
            _ => None,
        }
    }

    /// Sets the BN momentum if this is a BatchNorm layer.
    pub fn set_bn_momentum(&mut self, momentum: f32) {
        if let AnyLayer::Bn(l) = self {
            l.set_momentum(momentum);
        }
    }
}

/// An ordered stack of layers executed front to back.
#[derive(Clone, Debug, Default)]
pub struct Sequential {
    /// The layers, in execution order.
    pub layers: Vec<AnyLayer>,
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    pub fn push(&mut self, layer: AnyLayer) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Forward through every layer.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut cur = x.clone();
        for l in &mut self.layers {
            cur = l.forward(&cur, mode);
        }
        cur
    }

    /// Backward through every layer in reverse.
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut cur = grad.clone();
        for l in self.layers.iter_mut().rev() {
            cur = l.backward(&cur);
        }
        cur
    }

    /// All parameters in execution order.
    pub fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// All parameters, mutably, in execution order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// BN statistics of every BatchNorm layer, in order.
    pub fn bn_stats(&self) -> Vec<&BnStats> {
        self.layers.iter().filter_map(|l| l.bn_stats()).collect()
    }

    /// Mutable BN statistics of every BatchNorm layer, in order.
    pub fn bn_stats_mut(&mut self) -> Vec<&mut BnStats> {
        self.layers
            .iter_mut()
            .filter_map(|l| l.bn_stats_mut())
            .collect()
    }

    /// Sets the BN momentum of every BatchNorm layer.
    pub fn set_bn_momentum(&mut self, momentum: f32) {
        for l in &mut self.layers {
            l.set_bn_momentum(momentum);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_tensor::assert_close;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    /// Finite-difference gradient check for a scalar loss = sum(forward(x)).
    fn grad_check_conv() {
        // implemented in numeric tests below
    }

    #[test]
    fn conv_forward_shape() {
        let mut c = Conv2d::new(&mut rng(), 3, 5, 3, 1, 1, true, "c");
        let x = Tensor::ones(&[2, 3, 8, 8]);
        let y = c.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 5, 8, 8]);
        let mut c2 = Conv2d::new(&mut rng(), 3, 4, 3, 2, 1, true, "c2");
        let y2 = c2.forward(&x, Mode::Train);
        assert_eq!(y2.shape(), &[2, 4, 4, 4]);
        let _ = grad_check_conv;
    }

    #[test]
    fn conv_gradient_check() {
        let mut rng = rng();
        let mut c = Conv2d::new(&mut rng, 2, 3, 3, 1, 1, true, "c");
        let x = ft_tensor::normal(&mut rng, &[1, 2, 4, 4], 0.0, 1.0);
        let y = c.forward(&x, Mode::Train);
        let gy = Tensor::ones(y.shape());
        let gx = c.backward(&gy);

        // Finite differences wrt input.
        let eps = 1e-3;
        for check in [0usize, 7, 15, 31] {
            let mut xp = x.clone();
            xp.data_mut()[check] += eps;
            let mut xm = x.clone();
            xm.data_mut()[check] -= eps;
            let yp = c.forward(&xp, Mode::Train).sum();
            let _ = c.backward(&Tensor::ones(&[1, 3, 4, 4])); // clear cache
            let ym = c.forward(&xm, Mode::Train).sum();
            let _ = c.backward(&Tensor::ones(&[1, 3, 4, 4]));
            let num = (yp - ym) / (2.0 * eps);
            assert!(
                (gx.data()[check] - num).abs() < 1e-2,
                "input grad {} vs numeric {}",
                gx.data()[check],
                num
            );
        }

        // Finite differences wrt a few weights.
        let mut c2 = Conv2d::new(&mut rng, 2, 3, 3, 1, 1, true, "c");
        let _ = c2.forward(&x, Mode::Train);
        let gw = {
            let _ = c2.backward(&Tensor::ones(&[1, 3, 4, 4]));
            c2.w.grad.clone()
        };
        for check in [0usize, 10, 25] {
            let orig = c2.w.data.data()[check];
            c2.w.data.data_mut()[check] = orig + eps;
            let yp = c2.forward(&x, Mode::Train).sum();
            let _ = c2.backward(&Tensor::ones(&[1, 3, 4, 4]));
            c2.w.data.data_mut()[check] = orig - eps;
            let ym = c2.forward(&x, Mode::Train).sum();
            let _ = c2.backward(&Tensor::ones(&[1, 3, 4, 4]));
            c2.w.data.data_mut()[check] = orig;
            let num = (yp - ym) / (2.0 * eps);
            assert!(
                (gw.data()[check] - num).abs() < 1e-2,
                "weight grad {} vs numeric {}",
                gw.data()[check],
                num
            );
        }
    }

    #[test]
    fn linear_forward_matches_manual() {
        let mut l = Linear::new(&mut rng(), 3, 2, true, "fc");
        l.w.data = Tensor::from_vec(vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5], &[2, 3]);
        l.b.data = Tensor::from_vec(vec![0.1, -0.1], &[2]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let y = l.forward(&x, Mode::Train);
        assert_close(y.data(), &[1.0 - 3.0 + 0.1, 6.0 * 0.5 - 0.1], 1e-6);
    }

    #[test]
    fn linear_gradient_check() {
        let mut rng = rng();
        let mut l = Linear::new(&mut rng, 4, 3, true, "fc");
        let x = ft_tensor::normal(&mut rng, &[2, 4], 0.0, 1.0);
        let y = l.forward(&x, Mode::Train);
        let gx = l.backward(&Tensor::ones(y.shape()));
        let eps = 1e-3;
        for check in 0..8 {
            let mut xp = x.clone();
            xp.data_mut()[check] += eps;
            let yp = l.forward(&xp, Mode::Train).sum();
            let _ = l.backward(&Tensor::ones(&[2, 3]));
            let mut xm = x.clone();
            xm.data_mut()[check] -= eps;
            let ym = l.forward(&xm, Mode::Train).sum();
            let _ = l.backward(&Tensor::ones(&[2, 3]));
            let num = (yp - ym) / (2.0 * eps);
            assert!((gx.data()[check] - num).abs() < 1e-2);
        }
    }

    #[test]
    fn bn_train_normalizes_batch() {
        let mut bn = BatchNorm2d::new(2, "bn");
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
            &[1, 2, 2, 2],
        );
        let y = bn.forward(&x, Mode::Train);
        // Each channel should be ~zero-mean, unit-var after normalization.
        for c in 0..2 {
            let ch: Vec<f32> = (0..4).map(|i| y.data()[c * 4 + i]).collect();
            let mean: f32 = ch.iter().sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-4, "channel {c} mean {mean}");
        }
        // Running stats moved toward batch stats.
        assert!(bn.stats.mean[0] > 0.0);
        assert!(bn.stats.mean[1] > bn.stats.mean[0]);
    }

    #[test]
    fn bn_eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1, "bn");
        bn.stats.mean = vec![5.0];
        bn.stats.var = vec![4.0];
        let x = Tensor::from_vec(vec![5.0, 7.0], &[2, 1, 1, 1]);
        let y = bn.forward(&x, Mode::Eval);
        assert_close(y.data(), &[0.0, 2.0 / (4.0f32 + 1e-5).sqrt()], 1e-4);
    }

    #[test]
    fn bn_gradient_check() {
        let mut rng = rng();
        let mut bn = BatchNorm2d::new(2, "bn");
        let x = ft_tensor::normal(&mut rng, &[2, 2, 2, 2], 1.0, 2.0);
        let y = bn.forward(&x, Mode::Train);
        // Loss = sum(y * w) for a fixed random w so the gradient is nontrivial.
        let wv = ft_tensor::normal(&mut rng, &[16], 0.0, 1.0);
        let gy = Tensor::from_vec(wv.data().to_vec(), y.shape());
        let gx = bn.backward(&gy);
        let eps = 2e-3;
        for check in [0usize, 5, 11, 15] {
            let mut bn2 = BatchNorm2d::new(2, "bn");
            let mut xp = x.clone();
            xp.data_mut()[check] += eps;
            let yp = bn2.forward(&xp, Mode::Train).mul(&gy).sum();
            let mut xm = x.clone();
            xm.data_mut()[check] -= eps;
            let ym = bn2.forward(&xm, Mode::Train).mul(&gy).sum();
            let num = (yp - ym) / (2.0 * eps);
            assert!(
                (gx.data()[check] - num).abs() < 2e-2,
                "bn input grad {} vs numeric {}",
                gx.data()[check],
                num
            );
        }
    }

    #[test]
    fn relu_masks_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0, 0.0], &[3]);
        let y = r.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0]);
        let g = r.backward(&Tensor::ones(&[3]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::ones(&[2, 3, 4, 4]);
        let y = f.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 48]);
        let g = f.backward(&y);
        assert_eq!(g.shape(), &[2, 3, 4, 4]);
    }

    #[test]
    fn sequential_composes() {
        let mut rng = rng();
        let mut seq = Sequential::new();
        seq.push(AnyLayer::Conv(Conv2d::new(
            &mut rng, 1, 2, 3, 1, 1, true, "c",
        )))
        .push(AnyLayer::Bn(BatchNorm2d::new(2, "bn")))
        .push(AnyLayer::Relu(Relu::new()))
        .push(AnyLayer::Flatten(Flatten::new()))
        .push(AnyLayer::Linear(Linear::new(
            &mut rng,
            2 * 16,
            4,
            true,
            "fc",
        )));
        let x = ft_tensor::normal(&mut rng, &[3, 1, 4, 4], 0.0, 1.0);
        let y = seq.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[3, 4]);
        let gx = seq.backward(&Tensor::ones(&[3, 4]));
        assert_eq!(gx.shape(), &[3, 1, 4, 4]);
        assert_eq!(seq.params().len(), 1 + 2 + 2); // conv w, bn γβ, fc w+b
        assert_eq!(seq.bn_stats().len(), 1);
    }

    #[test]
    fn maxpool_layer_roundtrip() {
        let mut p = MaxPool2x2::new();
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let y = p.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        let g = p.backward(&Tensor::ones(y.shape()));
        assert_eq!(g.shape(), x.shape());
        assert_eq!(g.sum(), 4.0);
    }

    #[test]
    fn global_avg_pool_layer() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::ones(&[2, 3, 4, 4]);
        let y = p.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 3]);
        assert_close(y.data(), &[1.0; 6], 1e-6);
    }
}
