//! Neural-network substrate for the FedTiny reproduction.
//!
//! A deliberately small, framework-free stack: concrete layers with manual
//! forward/backward passes, three models used by the paper (ResNet18, VGG11
//! and the 3-conv `SmallCnn` of Tables IV/V), softmax cross-entropy, and
//! plain SGD with mask-aware updates.
//!
//! Key types:
//! - [`Param`] — a weight tensor plus its gradient accumulator and pruning
//!   metadata.
//! - [`AnyLayer`] / [`Sequential`] — compositional layers with caches for
//!   backprop.
//! - [`Model`] — the object-safe trait the federated simulator drives;
//!   constructors: [`models::SmallCnn`], [`models::Vgg11`],
//!   [`models::ResNet18`].
//! - [`BatchNorm2d`] — supports the *BN-adaptation* forward mode FedTiny's
//!   selection module relies on (update batch statistics with frozen
//!   parameters, no gradients).
//! - [`loss::softmax_cross_entropy`] and [`optim::SgdConfig`].
//!
//! # Examples
//!
//! ```
//! use ft_nn::models::SmallCnn;
//! use ft_nn::{Mode, Model};
//! use ft_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let mut model = SmallCnn::new(&mut rng, 8, 10, 3, 8);
//! let x = Tensor::zeros(&[2, 3, 8, 8]);
//! let logits = model.forward(&x, Mode::Train);
//! assert_eq!(logits.shape(), &[2, 10]);
//! ```

mod layer;
pub mod loss;
mod model;
pub mod models;
pub mod optim;
mod param;

pub use ft_runtime::Runtime;
pub use layer::{
    AnyLayer, BatchNorm2d, BnStats, Conv2d, Flatten, GlobalAvgPool, Linear, MaxPool2x2, Mode, Relu,
    Sequential, DEFAULT_SPARSE_CROSSOVER,
};
pub use model::{
    accuracy, apply_mask, bn_stats_encoded_len, flat_params, flat_params_into, mask_grads,
    prunable_param_indices, restore_snapshot, set_flat_params, sparse_layout, take_snapshot,
    wire_ctx, ArchInfo, LayerArch, Model, ModelSnapshot,
};
pub use param::{Param, ParamKind};
