//! Softmax cross-entropy loss.

use ft_tensor::Tensor;

/// Computes mean softmax cross-entropy over a batch and the gradient with
/// respect to the logits.
///
/// `logits` has shape `[n, classes]`; `labels` holds `n` class indices.
/// Returns `(mean_loss, grad_logits)` where `grad_logits = (softmax - onehot)
/// / n`, ready to feed into `Model::backward`.
///
/// # Panics
///
/// Panics if shapes disagree or any label is out of range.
///
/// # Examples
///
/// ```
/// use ft_nn::loss::softmax_cross_entropy;
/// use ft_tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0, 2.0], &[2, 2]);
/// let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1]);
/// assert!(loss > 0.0 && loss < 0.2);
/// assert_eq!(grad.shape(), &[2, 2]);
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let mut grad = Tensor::zeros(logits.shape());
    let loss = softmax_cross_entropy_into(logits, labels, &mut grad);
    (loss, grad)
}

/// [`softmax_cross_entropy`] writing the logits gradient into a
/// caller-owned tensor (resized in place, reusing its buffer): the
/// softmax numerator is staged in the gradient row itself, so the whole
/// loss computation allocates nothing at steady state. Bit-identical to
/// [`softmax_cross_entropy`].
///
/// # Panics
///
/// Panics if shapes disagree or any label is out of range.
pub fn softmax_cross_entropy_into(logits: &Tensor, labels: &[usize], grad: &mut Tensor) -> f32 {
    assert_eq!(logits.shape().len(), 2, "logits must be [n, classes]");
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), n, "labels/batch size mismatch");
    assert!(n > 0, "empty batch");
    grad.resize_for_overwrite(&[n, c]);
    let mut loss = 0.0f64;
    let ld = logits.data();
    let gd = grad.data_mut();
    for i in 0..n {
        let row = &ld[i * c..(i + 1) * c];
        let y = labels[i];
        assert!(y < c, "label {y} out of range for {c} classes");
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        // Stage exp(v - max) in the gradient row, then normalize in place.
        let grow = &mut gd[i * c..(i + 1) * c];
        for (g, &v) in grow.iter_mut().zip(row.iter()) {
            *g = (v - max).exp();
        }
        let sum: f32 = grow.iter().sum();
        let log_sum = sum.ln() + max;
        loss += (log_sum - row[y]) as f64;
        for (j, g) in grow.iter_mut().enumerate() {
            let p = *g / sum;
            *g = (p - if j == y { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    (loss / n as f64) as f32
}

/// Mean loss only (no gradient); used for candidate scoring in Alg. 1 where
/// devices evaluate but never backpropagate.
///
/// # Panics
///
/// Panics on the same conditions as [`softmax_cross_entropy`].
pub fn cross_entropy_loss_only(logits: &Tensor, labels: &[usize]) -> f32 {
    assert_eq!(logits.shape().len(), 2, "logits must be [n, classes]");
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), n, "labels/batch size mismatch");
    assert!(n > 0, "empty batch");
    let ld = logits.data();
    let mut loss = 0.0f64;
    for i in 0..n {
        let row = &ld[i * c..(i + 1) * c];
        let y = labels[i];
        assert!(y < c, "label {y} out of range for {c} classes");
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let sum: f32 = row.iter().map(|&v| (v - max).exp()).sum();
        loss += (sum.ln() + max - row[y]) as f64;
    }
    (loss / n as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_loss_is_log_c() {
        let logits = Tensor::zeros(&[4, 10]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn grad_sums_to_zero_per_row() {
        let logits = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0, 0.0, -1.0], &[2, 3]);
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 0]);
        for i in 0..2 {
            let s: f32 = grad.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.1], &[1, 4]);
        let labels = [2usize];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for j in 0..4 {
            let mut lp = logits.clone();
            lp.data_mut()[j] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[j] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels);
            let (fm, _) = softmax_cross_entropy(&lm, &labels);
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (grad.data()[j] - num).abs() < 1e-3,
                "{} vs {num}",
                grad.data()[j]
            );
        }
    }

    #[test]
    fn loss_only_matches_full() {
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.1, 2.0, -2.0], &[2, 3]);
        let labels = [1usize, 0];
        let (full, _) = softmax_cross_entropy(&logits, &labels);
        let only = cross_entropy_loss_only(&logits, &labels);
        assert!((full - only).abs() < 1e-6);
    }

    #[test]
    fn numerically_stable_for_large_logits() {
        let logits = Tensor::from_vec(vec![1000.0, 0.0], &[1, 2]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite() && loss < 1e-3);
        assert!(grad.data().iter().all(|g| g.is_finite()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_label() {
        let logits = Tensor::zeros(&[1, 3]);
        let _ = softmax_cross_entropy(&logits, &[3]);
    }
}
